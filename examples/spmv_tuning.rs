//! SpMV placement tuning: a domain-specific walk-through on the sparse
//! matrix-vector kernel, the workload the paper's Figure 4 uses to
//! motivate the G/G/1 queuing model.
//!
//! The CSR SpMV kernel has five arrays with very different access
//! characters:
//!
//! * `val`, `cols` — streamed once, coalesced: texture adds little;
//! * `rowDelimiters` — two uniform reads per warp: broadcast-friendly;
//! * `d_vec` — gathered through `cols`: the cache-sensitive one (SHOC
//!   binds it to a texture for a reason);
//! * `out` — written once.
//!
//! The example profiles the SHOC sample placement, inspects the DRAM
//! inter-arrival burstiness that rules out an M/M/1 queue, then compares
//! predicted vs measured time for the placement moves in the paper's
//! Table IV training rows.
//!
//! ```text
//! cargo run --release --example spmv_tuning
//! ```

use gpu_hms::prelude::*;
use gpu_hms::stats::Summary;
use hms_types::ArrayId;

fn array_id(kernel: &KernelTrace, name: &str) -> ArrayId {
    ArrayId(
        kernel
            .arrays
            .iter()
            .position(|a| a.name == name)
            .expect("array exists") as u32,
    )
}

fn main() {
    let cfg = GpuConfig::tesla_k80();
    let kernel = by_name("spmv", Scale::Full).expect("spmv registered");
    // SHOC's sample placement: the dense vector behind a texture.
    let sample = kernel
        .default_placement()
        .with(array_id(&kernel, "d_vec"), MemorySpace::Texture1D);

    // --- Figure 4 style burstiness check ---
    let ct = materialize(&kernel, &sample, &cfg).expect("valid");
    let r = simulate(
        &ct,
        &cfg,
        &SimOptions {
            record_dram_arrivals: true,
            ..Default::default()
        },
    )
    .expect("simulates");
    let mut cas = Vec::new();
    for bank in 0..cfg.dram.total_banks() {
        let inter: Vec<f64> = r
            .dram
            .interarrival_times(bank)
            .iter()
            .map(|&x| x as f64)
            .collect();
        if inter.len() >= 4 {
            if let Some(s) = Summary::of(&inter) {
                if s.mean > 0.0 {
                    cas.push(s.cv());
                }
            }
        }
    }
    let ca = Summary::of(&cas).expect("busy banks exist");
    println!("spmv sample placement: {} cycles", r.cycles);
    println!(
        "per-bank inter-arrival c_a: mean {:.2} (std {:.2}) over {} banks",
        ca.mean,
        ca.std_dev,
        cas.len()
    );
    println!(
        "=> {} (exponential arrivals would have c_a = 1)",
        if ca.mean > 1.3 {
            "bursty: a G/G/1 queue is required"
        } else {
            "close to Markovian"
        }
    );

    // --- Placement moves from Table IV's spmv training rows ---
    let profile = profile_sample(&kernel, &sample, &cfg).expect("profiles");
    let predictor = Predictor::new(cfg.clone());
    let moves: Vec<(&str, PlacementMap)> = vec![
        ("sample (vec in texture)", sample.clone()),
        (
            "vec -> global",
            sample.with(array_id(&kernel, "d_vec"), MemorySpace::Global),
        ),
        (
            "vec -> constant",
            sample.with(array_id(&kernel, "d_vec"), MemorySpace::Constant),
        ),
        (
            "rowDelimiters -> constant",
            sample.with(array_id(&kernel, "rowDelimiters"), MemorySpace::Constant),
        ),
        (
            "rowDelimiters -> shared",
            sample.with(array_id(&kernel, "rowDelimiters"), MemorySpace::Shared),
        ),
        (
            "val, cols -> texture",
            sample
                .with(array_id(&kernel, "val"), MemorySpace::Texture1D)
                .with(array_id(&kernel, "cols"), MemorySpace::Texture1D),
        ),
    ];

    println!(
        "\n{:<28} {:>11} {:>11} {:>10}",
        "move", "predicted", "measured", "pred/meas"
    );
    for (label, pm) in &moves {
        let pred = predictor.predict(&profile, pm).expect("predicts");
        let measured = {
            let ct = materialize(&kernel, pm, &cfg).expect("valid");
            simulate_default(&ct, &cfg).expect("simulates").cycles
        };
        println!(
            "{:<28} {:>11.0} {:>11} {:>10.2}",
            label,
            pred.cycles,
            measured,
            pred.cycles / measured as f64
        );
    }
}
