//! Placement advisor: the paper's end-to-end use case as a tool.
//!
//! "Our models can work as a tool to help programmers for GPU
//! performance optimization and improve their productivity." Given a
//! kernel name from the built-in benchmark registry, this example:
//!
//! 1. profiles the kernel's conventional placement;
//! 2. trains the `T_overlap` model on the Table IV training suite;
//! 3. exhaustively ranks every legal placement of every read-only
//!    array (the `m^n` search space the paper describes);
//! 4. reports the advised placement and checks it against the machine.
//!
//! ```text
//! cargo run --release --example placement_advisor -- neuralnet
//! ```

use gpu_hms::prelude::*;
use hms_bench::{trained_predictor, Harness};
use hms_types::ArrayId;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "neuralnet".into());
    let cfg = GpuConfig::tesla_k80();
    let Some(kernel) = by_name(&name, Scale::Full) else {
        eprintln!("unknown kernel `{name}`; available:");
        for k in registry() {
            eprintln!("  {}", k.name);
        }
        std::process::exit(1);
    };
    let sample = kernel.default_placement();
    println!("advising placements for `{}`", kernel.name);

    eprintln!("training T_overlap on the Table IV training suite...");
    let (predictor, _) = trained_predictor(&Harness::paper(), ModelOptions::full());

    let profile = profile_sample(&kernel, &sample, &cfg).expect("profiles");

    // Candidate arrays: everything the kernel only reads (written arrays
    // are pinned to global/shared by hardware rules anyway).
    let candidates: Vec<ArrayId> = kernel
        .arrays
        .iter()
        .filter(|a| !a.written)
        .map(|a| a.id)
        .collect();
    println!(
        "candidate arrays: {:?}",
        candidates
            .iter()
            .map(|id| kernel.arrays[id.index()].name.as_str())
            .collect::<Vec<_>>()
    );

    let outcome = SearchRequest::new(&kernel.arrays, &sample)
        .candidates(&candidates)
        .limit(1024)
        .run(&predictor, &profile)
        .expect("predicts");
    let ranked = &outcome.ranked;
    println!("legal placements in the search space: {}", ranked.len());
    println!(
        "engine economy: {} evaluations over {} full rewrites ({:.1}x reuse)",
        outcome.stats.candidates_evaluated,
        outcome.stats.full_rewrites,
        outcome.stats.rewrite_reduction()
    );

    println!("\ntop 5 advised placements:");
    for r in ranked.iter().take(5) {
        let measured = {
            let ct = materialize(&kernel, &r.placement, &cfg).expect("valid");
            simulate_default(&ct, &cfg).expect("simulates").cycles
        };
        println!(
            "  {:<40} predicted {:>9.0}  measured {:>8}",
            r.placement.describe(&kernel.arrays),
            r.predicted_cycles,
            measured
        );
    }

    // How good is the advice? Compare the advised placement's measured
    // time against the measured-best of the whole space.
    let advised = &ranked[0].placement;
    let mut best_measured = u64::MAX;
    let mut best_pm = sample.clone();
    for r in ranked {
        let pm = &r.placement;
        let ct = materialize(&kernel, pm, &cfg).expect("valid");
        let c = simulate_default(&ct, &cfg).expect("simulates").cycles;
        if c < best_measured {
            best_measured = c;
            best_pm = pm.clone();
        }
    }
    let advised_measured = {
        let ct = materialize(&kernel, advised, &cfg).expect("valid");
        simulate_default(&ct, &cfg).expect("simulates").cycles
    };
    println!(
        "\nadvised:       {} -> {} cycles",
        advised.describe(&kernel.arrays),
        advised_measured
    );
    println!(
        "true optimum:  {} -> {} cycles",
        best_pm.describe(&kernel.arrays),
        best_measured
    );
    println!(
        "advice quality: {:.1}% of optimal",
        best_measured as f64 / advised_measured as f64 * 100.0
    );
}
