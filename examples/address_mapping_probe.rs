//! Address-mapping probe: the paper's Algorithm 1 as a library API.
//!
//! The scenario: you are handed a GPU (here, a simulated GDDR5 memory
//! system whose bit layout you pretend not to know) and need the
//! address-mapping scheme and row-buffer latencies that the `T_mem`
//! queuing model requires. The probe flips one address bit at a time,
//! measures two back-to-back accesses, and classifies every bit as
//! column, row, or bank — no knowledge of the controller internals.
//!
//! It then demonstrates *why* the mapping matters: the same 64
//! transactions, laid out to stream through one row versus ping-pong
//! between two rows of one bank, differ by the hit/conflict latency gap
//! the paper measured as up to 110%.
//!
//! ```text
//! cargo run --release --example address_mapping_probe
//! ```

use gpu_hms::dram::{detect_mapping, AddressMapping, BitClass, MemoryController};
use gpu_hms::prelude::*;

fn fresh(cfg: &GpuConfig) -> MemoryController {
    MemoryController::new(
        AddressMapping::k80_like(cfg.dram.total_banks()),
        cfg.dram,
        false,
    )
}

fn main() {
    let cfg = GpuConfig::tesla_k80();

    // --- Algorithm 1 ---
    let detected = detect_mapping(|| fresh(&cfg), 32);
    let cols = detected.column_bits();
    let rows = detected.row_bits();
    let banks = detected.bank_bits();
    println!("detected column/byte bits: {cols:?}");
    println!("detected row bits:         {rows:?}");
    println!("detected bank bits:        {banks:?}");
    println!(
        "latencies: hit {:.0} ns, miss {:.0} ns, conflict {:.0} ns",
        cfg.cycles_to_ns(detected.hit_latency as f64),
        cfg.cycles_to_ns(detected.miss_latency as f64),
        cfg.cycles_to_ns(detected.conflict_latency as f64),
    );

    // --- Use the detected mapping to craft two access patterns ---
    // Pattern A: walk the detected column bits -> stays in one row.
    let mut ctl = fresh(&cfg);
    let col_bit = *cols
        .iter()
        .find(|&&b| b >= 5)
        .expect("a column bit above the byte offset");
    let mut t = 0;
    let mut total_a = 0u64;
    for i in 0..64u64 {
        let addr = (i & 1) << col_bit;
        let r = ctl.access(t, addr);
        total_a += r.latency;
        t = r.complete_at;
    }

    // Pattern B: ping-pong a detected row bit -> row conflict every time.
    let mut ctl = fresh(&cfg);
    let row_bit = rows[0];
    let mut t = 0;
    let mut total_b = 0u64;
    for i in 0..64u64 {
        let addr = (i & 1) << row_bit;
        let r = ctl.access(t, addr);
        total_b += r.latency;
        t = r.complete_at;
    }

    println!();
    println!("64 dependent accesses, column-bit walk:   {total_a} cycles total");
    println!("64 dependent accesses, row-bit ping-pong: {total_b} cycles total");
    println!(
        "row-conflict pattern is {:.2}x slower — the variation a constant-latency model misses",
        total_b as f64 / total_a as f64
    );

    // Sanity: the probe classified at least one bit of each kind.
    assert!(detected.classes.contains(&BitClass::Column));
    assert!(detected.classes.contains(&BitClass::Row));
    assert!(detected.classes.contains(&BitClass::Bank));
}
