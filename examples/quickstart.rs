//! Quickstart: predict how data placement changes a kernel's performance
//! from one profiled run.
//!
//! This walks the paper's core workflow on its running example — the
//! vector-addition kernel of Figure 2, whose inputs `a` and `b` can live
//! in global, texture, constant, or shared memory:
//!
//! 1. profile the kernel under its conventional all-global placement;
//! 2. predict every legal placement of the two input arrays *without*
//!    running them;
//! 3. verify the ranking against the simulated machine.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpu_hms::prelude::*;

fn main() {
    let cfg = GpuConfig::tesla_k80();
    let kernel = gpu_hms::kernels::vecadd::build(Scale::Full);
    let sample = kernel.default_placement();

    println!(
        "kernel: {} ({} arrays, {} warps)",
        kernel.name,
        kernel.arrays.len(),
        kernel.geometry.total_warps()
    );
    println!("sample placement: {}\n", sample.describe(&kernel.arrays));

    // One profiled run of the sample placement — trace + events + time.
    let profile = profile_sample(&kernel, &sample, &cfg).expect("sample profiles");
    println!(
        "profiled: {} cycles, {} instructions issued, {} DRAM requests\n",
        profile.measured_cycles, profile.events.inst_issued, profile.events.dram_requests
    );

    // Search every legal placement of the two inputs through the
    // incremental engine: one trace rewrite per shared-memory set, every
    // other candidate composed from cached deltas.
    let predictor = Predictor::new(cfg.clone());
    let outcome = SearchRequest::new(&kernel.arrays, &sample)
        .candidates(&[ArrayId(0), ArrayId(1)])
        .limit(64)
        .run(&predictor, &profile)
        .expect("predicts");
    let ranked = &outcome.ranked;

    println!(
        "{} candidate placements, ranked by predicted time ({} full rewrites, {:.0}x reuse):",
        ranked.len(),
        outcome.stats.full_rewrites,
        outcome.stats.rewrite_reduction()
    );
    println!(
        "{:<28} {:>12} {:>12} {:>8}",
        "placement", "predicted", "measured", "pred/meas"
    );
    for r in ranked {
        // "Measure" by actually simulating, for comparison.
        let ct = materialize(&kernel, &r.placement, &cfg).expect("valid");
        let measured = simulate_default(&ct, &cfg).expect("simulates").cycles;
        println!(
            "{:<28} {:>12.0} {:>12} {:>8.2}",
            r.placement.describe(&kernel.arrays),
            r.predicted_cycles,
            measured,
            r.predicted_cycles / measured as f64
        );
    }

    let best = &ranked[0];
    println!(
        "\nmodel-recommended placement: {}",
        best.placement.describe(&kernel.arrays)
    );
}
