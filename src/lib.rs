//! # gpu-hms
//!
//! Performance modeling for optimal data placement on GPUs with
//! heterogeneous memory systems — a full reproduction of Huang & Li,
//! *"Performance Modeling for Optimal Data Placement on GPU with
//! Heterogeneous Memory Systems"* (IEEE CLUSTER 2017), built as a pure
//! Rust workspace with a simulated Tesla-K80-class machine as the
//! evaluation substrate.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`types`] — memory spaces, placements, machine configuration;
//! * [`stats`] — cosine similarity, OLS/stepwise regression, Kingman
//!   G/G/1 queuing, distribution analysis;
//! * [`dram`] — the GDDR5 model with row buffers, per-bank queues, and
//!   the paper's Algorithm-1 address-mapping detection;
//! * [`cache`] — L2 / constant / texture cache and shared-memory bank
//!   models;
//! * [`trace`] — kernel traces, addressing-mode tables, placement
//!   rewriting;
//! * [`kernels`] — the Table IV benchmark workloads;
//! * [`sim`] — the cycle-level execution simulator ("measured" ground
//!   truth);
//! * [`core`] — the paper's contribution: the `T = T_comp + T_mem −
//!   T_overlap` predictor, baselines, ablations, and placement search;
//! * [`serve`] — the placement-advisory HTTP server (std-only):
//!   event-driven readiness loops over `poll(2)`, single-flight
//!   coalescing, a multi-tenant GPU-config registry, JSON wire codec,
//!   sharded prediction cache, Prometheus metrics (`hms serve`);
//! * [`faults`] — seed-replayable deterministic fault injection
//!   (slowloris, truncation, resets, adversarial JSON corpus) used by
//!   the chaos suite and the serving benchmark.
//!
//! ## Quick start
//!
//! ```
//! use gpu_hms::prelude::*;
//!
//! // A kernel, its conventional all-global placement, and the machine.
//! let cfg = GpuConfig::test_small();
//! let kernel = gpu_hms::kernels::vecadd::build(Scale::Test);
//! let sample = kernel.default_placement();
//!
//! // Profile the sample placement once (the paper's single profiled run).
//! let profile = profile_sample(&kernel, &sample, &cfg).unwrap();
//!
//! // Predict a target placement without running it.
//! let target = sample
//!     .with(ArrayId(0), MemorySpace::Texture1D)
//!     .with(ArrayId(1), MemorySpace::Texture1D);
//! let predictor = Predictor::new(cfg.clone());
//! let prediction = predictor.predict(&profile, &target).unwrap();
//! assert!(prediction.cycles > 0.0);
//! ```

pub use hms_cache as cache;
pub use hms_core as core;
pub use hms_dram as dram;
pub use hms_faults as faults;
pub use hms_kernels as kernels;
pub use hms_serve as serve;
pub use hms_sim as sim;
pub use hms_stats as stats;
pub use hms_trace as trace;
pub use hms_types as types;

/// The commonly-used names, one `use` away.
pub mod prelude {
    pub use hms_core::{
        enumerate_placements, profile_sample, rank_placements, search, Engine, EngineStats,
        ModelOptions, Prediction, Predictor, Profile, QueuingMode, SearchOutcome, SearchRequest,
        SearchStrategy, ToverlapModel,
    };
    pub use hms_faults::{FaultClient, FaultKind, FaultPlan};
    pub use hms_kernels::{by_name, registry, Scale};
    pub use hms_serve::{
        Advisor, ConfigRegistry, Handler, Json, Metrics, Outcome, Response, ServerConfig,
        ServerHandle,
    };
    pub use hms_sim::{simulate, simulate_default, EventSet, SimOptions, SimResult};
    pub use hms_trace::{materialize, rewrite, KernelTrace};
    pub use hms_types::{
        ArrayDef, ArrayId, DType, Geometry, GpuConfig, HmsError, MemorySpace, PlacementMap,
    };
}
