//! Corruption suite for the persistent skeleton cache (DESIGN.md §12).
//!
//! The cache's contract is *rebuild-not-garbage*: whatever is on disk —
//! truncated files, flipped bits, stale format versions, skeletons from
//! a different kernel — a search must silently fall back to rebuilding
//! and produce predictions byte-identical to a cold run. Every scenario
//! here corrupts the on-disk files directly at the documented offsets
//! (magic at 0, version at 8, kernel hash at 12, payload length at 20,
//! checksum at 28, payload at 36) and asserts both the bits and the
//! rebuild counters.

use gpu_hms::faults::{FaultyFs, FsFault};
use gpu_hms::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use hms_kernels::Scale;

fn bits(ranked: &[hms_core::RankedPlacement]) -> Vec<u64> {
    ranked
        .iter()
        .map(|r| r.predicted_cycles.to_bits())
        .collect()
}

struct Setup {
    kt: KernelTrace,
    profile: Profile,
    predictor: Predictor,
    candidates: Vec<ArrayId>,
    dir: PathBuf,
}

impl Setup {
    fn new(tag: &str) -> Setup {
        let cfg = GpuConfig::test_small();
        let kt = hms_kernels::by_name("spmv", Scale::Test).expect("spmv registered");
        let sample = kt.default_placement();
        let profile = profile_sample(&kt, &sample, &cfg).expect("profiles");
        let predictor = Predictor::new(cfg);
        let candidates: Vec<ArrayId> = kt
            .arrays
            .iter()
            .filter(|a| !a.written)
            .map(|a| a.id)
            .take(3)
            .collect();
        let dir =
            std::env::temp_dir().join(format!("hms-skelcorrupt-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Setup {
            kt,
            profile,
            predictor,
            candidates,
            dir,
        }
    }

    fn run(&self) -> SearchOutcome {
        SearchRequest::new(&self.kt.arrays, &self.kt.default_placement())
            .candidates(&self.candidates)
            .skeleton_cache(&self.dir)
            .run(&self.predictor, &self.profile)
            .expect("searches")
    }

    /// Like [`run`](Setup::run), but through an injected filesystem.
    fn run_on(&self, fs: &Arc<FaultyFs>) -> SearchOutcome {
        SearchRequest::new(&self.kt.arrays, &self.kt.default_placement())
            .candidates(&self.candidates)
            .skeleton_cache_fs(&self.dir, Arc::clone(fs) as Arc<dyn hms_core::CacheFs>)
            .run(&self.predictor, &self.profile)
            .expect("searches")
    }

    /// The no-disk-cache reference run the faulty runs must match.
    fn run_nocache(&self) -> SearchOutcome {
        SearchRequest::new(&self.kt.arrays, &self.kt.default_placement())
            .candidates(&self.candidates)
            .run(&self.predictor, &self.profile)
            .expect("searches")
    }

    fn stranded_tmps(&self) -> Vec<PathBuf> {
        fs::read_dir(&self.dir)
            .map(|rd| {
                rd.map(|e| e.expect("dir entry").path())
                    .filter(|p| {
                        p.extension()
                            .is_some_and(|x| x.to_string_lossy().starts_with("tmp"))
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    fn skeleton_files(&self) -> Vec<PathBuf> {
        let mut files: Vec<PathBuf> = fs::read_dir(&self.dir)
            .expect("cache dir exists")
            .map(|e| e.expect("dir entry").path())
            .filter(|p| p.extension().is_some_and(|x| x == "hsk"))
            .collect();
        files.sort();
        assert!(!files.is_empty(), "cold run persisted no skeletons");
        files
    }
}

impl Drop for Setup {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

/// Corrupt every skeleton file with `f`, then assert the next run
/// rebuilds (not loads) and still matches the cold-run bits exactly,
/// and that the run after *that* trusts the freshly rewritten files.
fn assert_rebuild_not_garbage(tag: &str, mut corrupt: impl FnMut(&Path, Vec<u8>) -> Vec<u8>) {
    let setup = Setup::new(tag);
    let cold = setup.run();
    assert!(
        cold.stats.skeleton_disk_writes > 0,
        "{tag}: nothing persisted"
    );
    let baseline = bits(&cold.ranked);

    for path in setup.skeleton_files() {
        let body = fs::read(&path).expect("reads skeleton");
        assert!(body.len() > 36, "{tag}: skeleton shorter than its header");
        fs::write(&path, corrupt(&path, body)).expect("writes corrupted skeleton");
    }

    let after = setup.run();
    assert_eq!(
        baseline,
        bits(&after.ranked),
        "{tag}: corrupted cache changed the predictions"
    );
    assert_eq!(
        after.stats.skeleton_disk_hits, 0,
        "{tag}: a corrupted skeleton was accepted"
    );
    assert!(
        after.stats.skeletons_built > 0,
        "{tag}: nothing was rebuilt after corruption"
    );
    assert!(
        after.stats.skeleton_disk_misses > 0,
        "{tag}: the rejects were not counted as misses"
    );

    // The rebuild must have healed the cache in place.
    let healed = setup.run();
    assert_eq!(
        baseline,
        bits(&healed.ranked),
        "{tag}: healed cache drifted"
    );
    assert_eq!(
        healed.stats.skeletons_built, 0,
        "{tag}: healed cache still rebuilding"
    );
    assert!(
        healed.stats.skeleton_disk_hits > 0,
        "{tag}: healed cache not reused"
    );
}

#[test]
fn truncated_skeleton_triggers_rebuild() {
    assert_rebuild_not_garbage("truncate", |_, body| {
        let cut = body.len() / 2;
        body[..cut].to_vec()
    });
}

#[test]
fn truncation_inside_header_triggers_rebuild() {
    assert_rebuild_not_garbage("truncate-header", |_, body| body[..17].to_vec());
}

#[test]
fn flipped_payload_byte_triggers_rebuild() {
    assert_rebuild_not_garbage("bitflip", |_, mut body| {
        // One bit, deterministically placed inside the payload.
        let at = 36 + (body.len() - 36) / 2;
        body[at] ^= 0x10;
        body
    });
}

#[test]
fn flipped_checksum_byte_triggers_rebuild() {
    assert_rebuild_not_garbage("checksum-flip", |_, mut body| {
        body[28] ^= 0xFF;
        body
    });
}

#[test]
fn stale_version_header_triggers_rebuild() {
    assert_rebuild_not_garbage("stale-version", |_, mut body| {
        // Bump the u32 format version at offset 8: a file written by a
        // future (or past) build of the codec.
        body[8] = body[8].wrapping_add(1);
        body
    });
}

#[test]
fn kernel_hash_mismatch_triggers_rebuild() {
    assert_rebuild_not_garbage("kernel-hash", |_, mut body| {
        // A skeleton recorded for a *different* kernel/config: flip the
        // stored kernel hash at offset 12 without touching anything
        // else (the checksum only covers the payload, so this is the
        // hash check's job alone).
        body[12] ^= 0xA5;
        body
    });
}

#[test]
fn zero_length_and_garbage_files_trigger_rebuild() {
    assert_rebuild_not_garbage("garbage", |path, body| {
        // Alternate per file between an empty file and uniform junk of
        // the original length.
        if path.as_os_str().len() % 2 == 0 {
            Vec::new()
        } else {
            vec![0xDB; body.len()]
        }
    });
}

/// ENOSPC mid-store: the write fails after a prefix lands and even the
/// cleanup unlink fails, stranding a partial temp. The search loses
/// only the warm-start — bits match a cache-less run — and the next
/// healthy open sweeps the stranded temps before serving.
#[test]
fn injected_enospc_loses_only_the_warm_start_and_temps_are_swept() {
    let setup = Setup::new("fs-enospc");
    let baseline = bits(&setup.run_nocache().ranked);

    let fs = Arc::new(FaultyFs::new(0xD15C_0001));
    fs.set(FsFault::Enospc);
    let sick = setup.run_on(&fs);
    assert_eq!(
        baseline,
        bits(&sick.ranked),
        "a full disk changed the predictions"
    );
    assert_eq!(
        sick.stats.skeleton_disk_writes, 0,
        "a failed store was counted as persisted"
    );
    assert!(fs.injected() > 0, "the ENOSPC fault never fired");
    assert!(
        !setup.stranded_tmps().is_empty(),
        "ENOSPC with a failing unlink must strand its partial temp"
    );

    // Disk recovers: the next open sweeps the strands, the run persists
    // normally, and the one after that loads from disk.
    fs.set(FsFault::None);
    let healed = setup.run_on(&fs);
    assert_eq!(baseline, bits(&healed.ranked));
    assert!(
        healed.stats.skeleton_disk_tmp_swept > 0,
        "stranded temps were not swept at open"
    );
    assert!(setup.stranded_tmps().is_empty(), "sweep left temps behind");
    assert!(healed.stats.skeleton_disk_writes > 0);
    let warm = setup.run_on(&fs);
    assert_eq!(baseline, bits(&warm.ranked));
    assert!(warm.stats.skeleton_disk_hits > 0, "healed cache not reused");
}

/// A torn write (power-cut image): the store reports success but only a
/// prefix persists. The next load must reject the short file via the
/// length/checksum checks and rebuild bit-identically, then heal the
/// cache in place.
#[test]
fn injected_torn_write_is_rejected_on_the_next_load() {
    let setup = Setup::new("fs-torn");
    let baseline = bits(&setup.run_nocache().ranked);

    let fs = Arc::new(FaultyFs::new(0xD15C_0002));
    fs.set(FsFault::TornWrite);
    let torn = setup.run_on(&fs);
    assert_eq!(baseline, bits(&torn.ranked));
    assert!(fs.injected() > 0, "the torn-write fault never fired");

    fs.set(FsFault::None);
    let after = setup.run_on(&fs);
    assert_eq!(
        baseline,
        bits(&after.ranked),
        "a torn skeleton changed the predictions"
    );
    assert_eq!(
        after.stats.skeleton_disk_hits, 0,
        "a torn skeleton was accepted"
    );
    assert!(after.stats.skeleton_disk_misses > 0);
    assert!(after.stats.skeletons_built > 0);

    let healed = setup.run_on(&fs);
    assert_eq!(baseline, bits(&healed.ranked));
    assert!(
        healed.stats.skeleton_disk_hits > 0,
        "rewrite after the torn write did not heal the cache"
    );
}

/// The atomic rename at the end of a store fails: the store is
/// swallowed, the temp is cleaned (unlink still works), and reads keep
/// missing — no half-named file is ever visible to a loader.
#[test]
fn injected_rename_failure_swallows_the_store_cleanly() {
    let setup = Setup::new("fs-rename");
    let baseline = bits(&setup.run_nocache().ranked);

    let fs = Arc::new(FaultyFs::new(0xD15C_0003));
    fs.set(FsFault::RenameFail);
    let sick = setup.run_on(&fs);
    assert_eq!(baseline, bits(&sick.ranked));
    assert_eq!(
        sick.stats.skeleton_disk_writes, 0,
        "a store that never renamed into place was counted"
    );
    assert!(fs.injected() > 0, "the rename fault never fired");
    assert!(
        setup.stranded_tmps().is_empty(),
        "rename failure must clean its temp (unlink works here)"
    );

    // Still all misses on the next run — nothing half-stored landed.
    let again = setup.run_on(&fs);
    assert_eq!(baseline, bits(&again.ranked));
    assert_eq!(again.stats.skeleton_disk_hits, 0);
}

/// Bit-rot on the read path: a persisted skeleton comes back with one
/// flipped bit. The checksum rejects it, the rebuild matches the
/// baseline bit-for-bit, and the freshly rewritten file serves the next
/// (healthy) run — the rot never reaches a prediction.
#[test]
fn injected_bit_rot_is_caught_by_the_checksum() {
    let setup = Setup::new("fs-bitrot");
    let baseline = bits(&setup.run_nocache().ranked);

    let fs = Arc::new(FaultyFs::new(0xD15C_0004));
    let cold = setup.run_on(&fs);
    assert_eq!(baseline, bits(&cold.ranked));
    assert!(cold.stats.skeleton_disk_writes > 0, "nothing persisted");

    fs.set(FsFault::BitRot);
    let rotten = setup.run_on(&fs);
    assert_eq!(
        baseline,
        bits(&rotten.ranked),
        "a rotten read changed the predictions"
    );
    assert_eq!(
        rotten.stats.skeleton_disk_hits, 0,
        "a bit-rotted skeleton passed the checksum"
    );
    assert!(rotten.stats.skeletons_built > 0);

    fs.set(FsFault::None);
    let healed = setup.run_on(&fs);
    assert_eq!(baseline, bits(&healed.ranked));
    assert!(
        healed.stats.skeleton_disk_hits > 0,
        "the rebuild did not heal the on-disk copy"
    );
}

/// The adversarial byte-soup corpus as whole-file contents: whatever
/// `hms-faults` dreams up, dropped in place of every skeleton, must
/// load as a miss and rebuild bit-identically.
#[test]
fn adversarial_byte_soup_files_trigger_rebuild() {
    let corpus = gpu_hms::faults::adversarial_json(0xC0FF_EE00, 64);
    let mut i = 0usize;
    assert_rebuild_not_garbage("byte-soup", move |_, _| {
        let doc = corpus[i % corpus.len()].clone();
        i += 1;
        doc
    });
}
