//! Invariants of the anytime search strategies (DESIGN.md §14).
//!
//! Three contracts, checked end to end:
//!
//! * **Sandwich** — for any strategy and any knob setting, the best
//!   placement found never beats the exhaustive optimum, and the
//!   reported gap bound always covers the distance back to it:
//!   `optimum ≤ best ≤ optimum × (1 + gap_upper_bound)`.
//! * **Determinism** — a seeded local search is bit-identical at any
//!   worker count: same ranking, same prediction bits, same gap.
//! * **Partial results are never cached** — a deadline-cut ranking
//!   reflects that request's deadline, not the query; the server must
//!   recompute it on the next identical request instead of serving the
//!   truncated body forever.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use gpu_hms::prelude::*;
use hms_stats::proptest_lite::{check, Config};

fn setup(kernel: &str) -> (Predictor, Profile, Vec<hms_types::ArrayDef>) {
    let cfg = GpuConfig::test_small();
    let kt = by_name(kernel, Scale::Test).unwrap();
    let profile = profile_sample(&kt, &kt.default_placement(), &cfg).unwrap();
    (Predictor::new(cfg), profile, kt.arrays)
}

/// Property: every strategy, at randomly drawn knobs, respects the
/// sandwich bound against the exhaustive optimum on kernels small
/// enough to rank completely.
#[test]
fn sandwich_property_holds_for_random_strategies_and_knobs() {
    let setups: Vec<_> = ["vecadd", "wide4", "wide5"]
        .iter()
        .map(|name| {
            let (predictor, profile, arrays) = setup(name);
            let base = profile.trace.placement.clone();
            let optimum = SearchRequest::new(&arrays, &base)
                .run(&predictor, &profile)
                .unwrap()
                .best()
                .unwrap()
                .predicted_cycles;
            (*name, predictor, profile, arrays, base, optimum)
        })
        .collect();
    check(
        "anytime_sandwich",
        &Config::with_cases(32),
        |rng| {
            let k = rng.gen_range(0u64..3) as usize;
            let strategy = match rng.gen_range(0u64..3) {
                0 => SearchStrategy::Beam {
                    width: rng.gen_range(1u64..13) as usize,
                },
                1 => SearchStrategy::SuccessiveHalving,
                _ => SearchStrategy::LocalSearch {
                    seed: rng.next_u64(),
                },
            };
            (k, strategy)
        },
        |(k, strategy)| {
            let (name, predictor, profile, arrays, base, optimum) = &setups[*k];
            let out = SearchRequest::new(arrays, base)
                .strategy(*strategy)
                .run(predictor, profile)
                .map_err(|e| e.to_string())?;
            let best = out.best().expect("non-empty ranking").predicted_cycles;
            let gap = out.stats.gap_upper_bound;
            if !(gap.is_finite() && gap >= 0.0) {
                return Err(format!("{name} {strategy:?}: bad gap {gap}"));
            }
            if best < *optimum {
                return Err(format!(
                    "{name} {strategy:?}: best {best} beats the optimum {optimum}"
                ));
            }
            if best > optimum * (1.0 + gap) + 1e-6 {
                return Err(format!(
                    "{name} {strategy:?}: best {best} outside optimum {optimum} x (1 + {gap})"
                ));
            }
            Ok(())
        },
    );
}

/// A seeded local search over a wide kernel is bit-identical across
/// worker counts — ranking order, prediction bits, and the reported
/// gap all match at 1, 2, and 8 workers.
#[test]
fn local_search_is_bit_identical_across_worker_counts_on_wide_kernels() {
    let (predictor, profile, arrays) = setup("wide6");
    let base = profile.trace.placement.clone();
    for seed in [7u64, 42, 0xDEAD_BEEF] {
        let runs: Vec<_> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                SearchRequest::new(&arrays, &base)
                    .strategy(SearchStrategy::LocalSearch { seed })
                    .threads(threads)
                    .run(&predictor, &profile)
                    .unwrap()
            })
            .collect();
        for (i, other) in runs.iter().enumerate().skip(1) {
            assert_eq!(
                runs[0].ranked.len(),
                other.ranked.len(),
                "seed {seed}: ranking length diverged at run {i}"
            );
            for (a, b) in runs[0].ranked.iter().zip(&other.ranked) {
                assert_eq!(a.placement, b.placement, "seed {seed}");
                assert_eq!(
                    a.predicted_cycles.to_bits(),
                    b.predicted_cycles.to_bits(),
                    "seed {seed}"
                );
            }
            assert_eq!(
                runs[0].stats.gap_upper_bound.to_bits(),
                other.stats.gap_upper_bound.to_bits(),
                "seed {seed}: gap diverged"
            );
            assert_eq!(
                runs[0].stats.candidates_visited,
                other.stats.candidates_visited
            );
        }
    }
}

/// Minimal keep-alive HTTP/1.1 test client (same shape as serve_e2e).
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let writer = stream.try_clone().expect("clones");
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn post(&mut self, path: &str, body: &str) -> (u16, String) {
        write!(
            self.writer,
            "POST {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("writes");
        self.writer.flush().unwrap();
        self.read_response()
    }

    fn get(&mut self, path: &str) -> (u16, String) {
        write!(self.writer, "GET {path} HTTP/1.1\r\nhost: t\r\n\r\n").expect("writes");
        self.writer.flush().unwrap();
        self.read_response()
    }

    fn read_response(&mut self) -> (u16, String) {
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).expect("status");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
            {
                content_length = v.parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap())
    }
}

/// A deadline-cut (`"partial": true`) search response must never enter
/// the rank cache: the identical follow-up request recomputes. A
/// completed search on the same server IS cached, proving the cache
/// itself works and only partial results are excluded.
#[test]
fn partial_deadline_cut_searches_are_never_cached() {
    let advisor = || {
        Advisor::new(
            GpuConfig::test_small(),
            Predictor::new(GpuConfig::test_small()),
        )
    };
    let hits = |c: &mut Client| {
        let (status, text) = c.get("/metrics");
        assert_eq!(status, 200);
        Metrics::scrape_counter(&text, "hms_search_cache_hits_total").unwrap()
    };

    // Contrast server, generous default deadline: a search that
    // completes is served from cache on repeat.
    let relaxed = ServerConfig::new()
        .bind("127.0.0.1:0")
        .workers(1)
        .spawn(ConfigRegistry::new("default", advisor()))
        .expect("binds");
    let mut c = Client::connect(relaxed.addr());
    let small = r#"{"kernel":"vecadd","scale":"test","top":1}"#;
    let (status, body) = c.post("/v1/search", small);
    assert_eq!(status, 200);
    assert!(!body.contains("\"partial\""), "vecadd was cut: {body}");
    let (status, _) = c.post("/v1/search", small);
    assert_eq!(status, 200);
    assert_eq!(hits(&mut c), 1.0, "completed search must be cached");
    relaxed.shutdown();

    // Partial server: 5 ms is far below what wide8's enumerated space
    // needs under any strategy, so every search below is cut short —
    // and none of those truncated bodies may enter the cache.
    let tight = ServerConfig::new()
        .bind("127.0.0.1:0")
        .workers(1)
        .deadline(Duration::from_millis(5))
        .spawn(ConfigRegistry::new("default", advisor()))
        .expect("binds");
    let mut c = Client::connect(tight.addr());
    for body in [
        r#"{"kernel":"wide8","scale":"test","top":1}"#,
        r#"{"kernel":"wide8","scale":"test","top":1,"strategy":"halving"}"#,
    ] {
        for round in 0..2 {
            let (status, text) = c.post("/v1/search", body);
            assert_eq!(status, 200);
            assert!(
                text.contains("\"partial\": true"),
                "round {round}: expected a deadline cut: {body}"
            );
        }
    }
    assert_eq!(
        hits(&mut c),
        0.0,
        "a partial search body was served from cache"
    );
    tight.shutdown();
}
