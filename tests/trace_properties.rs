//! Property-based tests on the trace machinery (via the in-repo
//! `hms_stats::proptest_lite` harness): the rewrite/materialize
//! equivalence, coalescing invariants, and prediction sanity, under
//! randomized kernels and placements.
//!
//! Failing cases print an `HMS_PROPTEST_SEED=<seed>` replay line; see
//! the harness docs for the replay workflow.

use gpu_hms::prelude::*;
use gpu_hms::trace::{coalesce, ColumnarTrace, ElemIdx, MemRef, SymOp, WarpTrace};
use hms_stats::proptest_lite::{check, check_shrink, gen_where, shrink_vec, Config};
use hms_stats::rng::Rng;
use hms_types::{ArrayDef, ArrayId};

fn cfg() -> GpuConfig {
    GpuConfig::test_small()
}

fn arb_lane_idx(rng: &mut Rng) -> Vec<Option<ElemIdx>> {
    (0..32)
        .map(|_| {
            rng.gen_bool(0.5)
                .then(|| ElemIdx::Lin(rng.gen_range(0u64..256)))
        })
        .collect()
}

fn arb_op(rng: &mut Rng) -> SymOp {
    match rng.gen_range(0u32..5) {
        0 => SymOp::IntAlu(rng.gen_range(1u32..4) as u16),
        1 => SymOp::FpAlu(rng.gen_range(1u32..4) as u16),
        2 => {
            let a = rng.gen_range(0u32..2);
            SymOp::Access(MemRef::load(ArrayId(a), arb_lane_idx(rng)))
        }
        3 => SymOp::Access(MemRef::store(ArrayId(2), arb_lane_idx(rng))),
        _ => SymOp::WaitLoads,
    }
}

/// A random small kernel with 3 arrays and randomized accesses.
fn arb_kernel(rng: &mut Rng) -> KernelTrace {
    let blocks = rng.gen_range(1u32..4);
    let warps = (0..blocks)
        .map(|b| {
            let nops = rng.gen_range(1usize..12);
            WarpTrace {
                block: b,
                warp: 0,
                ops: (0..nops).map(|_| arb_op(rng)).collect(),
            }
        })
        .collect();
    KernelTrace {
        name: "prop".into(),
        arrays: vec![
            ArrayDef::new_1d(0, "a", DType::F32, 256, false),
            ArrayDef::new_2d(1, "b", DType::F64, 16, 16, false),
            ArrayDef::new_1d(2, "out", DType::F32, 256, true),
        ],
        geometry: Geometry::new(blocks, 32),
        warps,
    }
}

fn arb_placement(rng: &mut Rng) -> Vec<MemorySpace> {
    use MemorySpace::*;
    fn pick(rng: &mut Rng, opts: &[MemorySpace]) -> MemorySpace {
        opts[rng.gen_range(0..opts.len())]
    }
    vec![
        pick(rng, &[Global, Texture1D, Constant, Shared]),
        pick(rng, &[Global, Texture1D, Texture2D, Constant, Shared]),
        pick(rng, &[Global, Shared]),
    ]
}

/// A placement that validates against `kt`'s arrays (the
/// `prop_assume!`-replacement: regenerate until legal).
fn valid_placement(rng: &mut Rng, kt: &KernelTrace, cfg: &GpuConfig) -> PlacementMap {
    gen_where(
        rng,
        256,
        |rng| PlacementMap::from_spaces(arb_placement(rng)),
        |p| p.validate(&kt.arrays, cfg).is_ok(),
    )
}

/// rewrite(materialize(k, s), t) == materialize(k, t) for random kernels
/// and placement pairs — the SASSI-flow equivalence.
#[test]
fn rewrite_equals_materialize() {
    let cfg = cfg();
    check(
        "rewrite_equals_materialize",
        &Config::with_cases(64),
        |rng| {
            let kt = arb_kernel(rng);
            let s = valid_placement(rng, &kt, &cfg);
            let t = valid_placement(rng, &kt, &cfg);
            (kt, s, t)
        },
        |(kt, s, t)| {
            let sample = materialize(kt, s, &cfg).map_err(|e| e.to_string())?;
            let direct = materialize(kt, t, &cfg).map_err(|e| e.to_string())?;
            let rewritten = rewrite(&sample, t, &cfg).map_err(|e| e.to_string())?;
            if rewritten == direct {
                Ok(())
            } else {
                Err("rewrite(materialize(k,s), t) != materialize(k,t)".into())
            }
        },
    );
}

/// Simulation completes and conserves instruction counts for random
/// kernels: executed <= issued <= issue slots.
#[test]
fn simulation_instruction_accounting() {
    let cfg = cfg();
    check(
        "simulation_instruction_accounting",
        &Config::with_cases(64),
        |rng| {
            let kt = arb_kernel(rng);
            let s = valid_placement(rng, &kt, &cfg);
            (kt, s)
        },
        |(kt, s)| {
            let ct = materialize(kt, s, &cfg).map_err(|e| e.to_string())?;
            let r = simulate_default(&ct, &cfg).map_err(|e| e.to_string())?;
            let e = &r.events;
            if e.inst_executed > e.inst_issued {
                return Err(format!(
                    "executed {} > issued {}",
                    e.inst_executed, e.inst_issued
                ));
            }
            if e.inst_issued > e.issue_slots {
                return Err(format!(
                    "issued {} > slots {}",
                    e.inst_issued, e.issue_slots
                ));
            }
            let want = e.inst_executed + e.total_replays() - e.replay_double_width;
            if e.inst_issued != want {
                return Err(format!(
                    "issued {} != executed+replays {}",
                    e.inst_issued, want
                ));
            }
            // Row-buffer outcomes partition DRAM requests.
            let parts = e.row_buffer_hits + e.row_buffer_misses + e.row_buffer_conflicts;
            if e.dram_requests != parts {
                return Err(format!("dram {} != outcome sum {}", e.dram_requests, parts));
            }
            Ok(())
        },
    );
}

/// Coalescing invariants: transaction count bounded by active lanes
/// (+1 for straddle), aligned, sorted, deduplicated.
#[test]
fn coalescing_invariants() {
    check_shrink(
        "coalescing_invariants",
        &Config::with_cases(64),
        |rng| {
            let n = rng.gen_range(1usize..32);
            let addrs: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..100_000)).collect();
            let elem = if rng.gen_bool(0.5) { 4u64 } else { 8 };
            (addrs, elem)
        },
        |(addrs, elem)| shrink_vec(addrs).into_iter().map(|a| (a, *elem)).collect(),
        |(addrs, elem)| {
            if addrs.is_empty() {
                return Ok(());
            }
            let r = coalesce(addrs.iter().copied(), *elem, 128);
            if r.transactions.is_empty() {
                return Err("no transactions".into());
            }
            if r.transactions.len() > addrs.len() * 2 {
                return Err(format!(
                    "{} transactions for {} lanes",
                    r.transactions.len(),
                    addrs.len()
                ));
            }
            if r.replays as usize != r.transactions.len() - 1 {
                return Err(format!("replays {} != transactions-1", r.replays));
            }
            for w in r.transactions.windows(2) {
                if w[0] >= w[1] {
                    return Err("transactions not strictly sorted".into());
                }
            }
            for t in &r.transactions {
                if t % 128 != 0 {
                    return Err(format!("transaction {t} misaligned"));
                }
            }
            // Every byte touched is covered by some transaction.
            for &a in addrs {
                if !r
                    .transactions
                    .iter()
                    .any(|&t| a >= t && a + elem <= t + 256)
                {
                    return Err(format!("addr {a} not covered"));
                }
            }
            Ok(())
        },
    );
}

/// Columnar decomposition is lossless on random kernels:
/// `to_concrete` reconstructs the materialized trace exactly, and every
/// op decodes back to its source `CInstr` through the per-op view.
#[test]
fn columnar_round_trip_is_exact() {
    let cfg = cfg();
    check(
        "columnar_round_trip_is_exact",
        &Config::with_cases(64),
        |rng| {
            let kt = arb_kernel(rng);
            let s = valid_placement(rng, &kt, &cfg);
            (kt, s)
        },
        |(kt, s)| {
            let ct = materialize(kt, s, &cfg).map_err(|e| e.to_string())?;
            let col = ColumnarTrace::from_concrete(&ct);
            if col.to_concrete() != ct {
                return Err("to_concrete() != source trace".into());
            }
            for (cw, w) in col.warps().iter().zip(&ct.warps) {
                if (cw.block, cw.warp) != (w.block, w.warp) {
                    return Err("warp identity drifted".into());
                }
                if cw.ops.len as usize != w.instrs.len() {
                    return Err(format!(
                        "op count drifted: {} columnar vs {} source",
                        cw.ops.len,
                        w.instrs.len()
                    ));
                }
                for (j, instr) in w.instrs.iter().enumerate() {
                    let idx = cw.ops.start + j as u32;
                    if col.op_to_instr(idx) != *instr {
                        return Err(format!("op {idx} decoded differently"));
                    }
                }
            }
            Ok(())
        },
    );
}

/// The columnar analysis walk produces a bit-identical `TraceAnalysis`
/// to the per-op reference walk on random kernels and placements — the
/// equivalence net's oracle, fuzzed (the registry-wide pinning lives in
/// `hms-core`'s unit tests).
#[test]
fn columnar_walk_matches_reference_on_random_kernels() {
    let cfg = cfg();
    check(
        "columnar_walk_matches_reference",
        &Config::with_cases(64),
        |rng| {
            let kt = arb_kernel(rng);
            let s = valid_placement(rng, &kt, &cfg);
            (kt, s)
        },
        |(kt, s)| {
            let ct = materialize(kt, s, &cfg).map_err(|e| e.to_string())?;
            let fast = gpu_hms::core::analysis::analyze(&ct, &cfg);
            let slow = gpu_hms::core::analysis::analyze_reference(&ct, &cfg);
            if fast != slow {
                return Err("columnar walk diverged from the reference walk".into());
            }
            // `PartialEq` on the analysis already compares the floats;
            // pin the derived f64s to the exact bit patterns too.
            if fast.mlp.to_bits() != slow.mlp.to_bits()
                || fast.warps_per_sm.to_bits() != slow.warps_per_sm.to_bits()
            {
                return Err("float fields differ in bit pattern".into());
            }
            Ok(())
        },
    );
}

/// `dump`/`load` round-trips random materialized traces exactly and
/// agrees with the columnar layout: serializing the columnar
/// reconstruction yields byte-identical text.
#[test]
fn serialize_round_trips_against_columnar_layout() {
    let cfg = cfg();
    check(
        "serialize_round_trips_against_columnar_layout",
        &Config::with_cases(48),
        |rng| {
            let kt = arb_kernel(rng);
            let s = valid_placement(rng, &kt, &cfg);
            (kt, s)
        },
        |(kt, s)| {
            let ct = materialize(kt, s, &cfg).map_err(|e| e.to_string())?;
            let text = gpu_hms::trace::dump(&ct);
            let back = gpu_hms::trace::load(&text, &cfg).map_err(|e| e.to_string())?;
            if back != ct {
                return Err("load(dump(t)) != t".into());
            }
            let via_columnar = ColumnarTrace::from_concrete(&ct).to_concrete();
            if gpu_hms::trace::dump(&via_columnar) != text {
                return Err("columnar reconstruction serializes differently".into());
            }
            Ok(())
        },
    );
}

/// The trace loader never panics on adversarial input: both raw
/// byte-soup documents from the `hms-faults` corpus and valid dumps
/// with hostile bytes spliced in must yield a parse or a typed error.
#[test]
fn trace_loader_survives_adversarial_byte_soup() {
    let cfg = cfg();
    let corpus = gpu_hms::faults::adversarial_json(0x5eed_7ace, 256);
    for doc in &corpus {
        let text = String::from_utf8_lossy(doc);
        if let Err(e) = gpu_hms::trace::load(&text, &cfg) {
            let _ = e.to_string(); // typed error, formats fine
        }
    }
    // Splice corpus bytes into an otherwise-valid dump: exercises the
    // parser states past the prologue.
    let mut rng = Rng::seed_from_u64(0x5eed_7ace);
    let kt = arb_kernel(&mut rng);
    let s = valid_placement(&mut rng, &kt, &cfg);
    let ct = materialize(&kt, &s, &cfg).expect("materializes");
    let good = gpu_hms::trace::dump(&ct);
    for doc in corpus.iter().take(128) {
        let cut = rng.gen_range(0u64..good.len() as u64 + 1) as usize;
        let mut hostile = good.as_bytes()[..cut].to_vec();
        hostile.extend_from_slice(doc);
        hostile.extend_from_slice(&good.as_bytes()[cut..]);
        let text = String::from_utf8_lossy(&hostile);
        if let Err(e) = gpu_hms::trace::load(&text, &cfg) {
            let _ = e.to_string();
        }
    }
}

/// Predictions are finite and positive for any legal target.
#[test]
fn predictions_are_finite() {
    let cfg = cfg();
    check(
        "predictions_are_finite",
        &Config::with_cases(64),
        |rng| {
            let kt = arb_kernel(rng);
            let s = valid_placement(rng, &kt, &cfg);
            let t = valid_placement(rng, &kt, &cfg);
            (kt, s, t)
        },
        |(kt, s, t)| {
            let profile = profile_sample(kt, s, &cfg).map_err(|e| e.to_string())?;
            let pred = Predictor::new(cfg.clone())
                .predict(&profile, t)
                .map_err(|e| e.to_string())?;
            if !pred.cycles.is_finite() {
                return Err(format!("non-finite cycles {}", pred.cycles));
            }
            if pred.cycles < 1.0 {
                return Err(format!("cycles {} < 1", pred.cycles));
            }
            if pred.t_comp < 0.0 || pred.t_mem < 0.0 {
                return Err(format!(
                    "negative component: {} / {}",
                    pred.t_comp, pred.t_mem
                ));
            }
            Ok(())
        },
    );
}
