//! Property-based tests on the trace machinery (proptest): the
//! rewrite/materialize equivalence, coalescing invariants, and the
//! address allocator, under randomized kernels and placements.

use proptest::prelude::*;

use gpu_hms::prelude::*;
use gpu_hms::trace::{coalesce, ElemIdx, MemRef, SymOp, WarpTrace};
use hms_types::{ArrayDef, ArrayId};

fn cfg() -> GpuConfig {
    GpuConfig::test_small()
}

/// Strategy: a random small kernel with 3 arrays and randomized accesses.
fn arb_kernel() -> impl Strategy<Value = KernelTrace> {
    let lane_idx = prop::collection::vec(prop::option::of(0u64..256), 32);
    let ops = prop::collection::vec(
        prop_oneof![
            (1u16..4).prop_map(SymOp::IntAlu),
            (1u16..4).prop_map(SymOp::FpAlu),
            (0u32..2, lane_idx.clone()).prop_map(|(a, idx)| {
                SymOp::Access(MemRef::load(
                    ArrayId(a),
                    idx.into_iter().map(|o| o.map(ElemIdx::Lin)).collect(),
                ))
            }),
            (lane_idx).prop_map(|idx| {
                SymOp::Access(MemRef::store(
                    ArrayId(2),
                    idx.into_iter().map(|o| o.map(ElemIdx::Lin)).collect(),
                ))
            }),
            Just(SymOp::WaitLoads),
        ],
        1..12,
    );
    prop::collection::vec(ops, 1..4).prop_map(|warp_ops| {
        let blocks = warp_ops.len() as u32;
        KernelTrace {
            name: "prop".into(),
            arrays: vec![
                ArrayDef::new_1d(0, "a", DType::F32, 256, false),
                ArrayDef::new_2d(1, "b", DType::F64, 16, 16, false),
                ArrayDef::new_1d(2, "out", DType::F32, 256, true),
            ],
            geometry: Geometry::new(blocks, 32),
            warps: warp_ops
                .into_iter()
                .enumerate()
                .map(|(b, ops)| WarpTrace { block: b as u32, warp: 0, ops })
                .collect(),
        }
    })
}

fn arb_placement() -> impl Strategy<Value = Vec<MemorySpace>> {
    use MemorySpace::*;
    (
        prop::sample::select(vec![Global, Texture1D, Constant, Shared]),
        prop::sample::select(vec![Global, Texture1D, Texture2D, Constant, Shared]),
        prop::sample::select(vec![Global, Shared]),
    )
        .prop_map(|(a, b, c)| vec![a, b, c])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// rewrite(materialize(k, s), t) == materialize(k, t) for random
    /// kernels and placement pairs — the SASSI-flow equivalence.
    #[test]
    fn rewrite_equals_materialize(
        kt in arb_kernel(),
        s in arb_placement(),
        t in arb_placement(),
    ) {
        let cfg = cfg();
        let s = PlacementMap::from_spaces(s);
        let t = PlacementMap::from_spaces(t);
        prop_assume!(s.validate(&kt.arrays, &cfg).is_ok());
        prop_assume!(t.validate(&kt.arrays, &cfg).is_ok());
        let sample = materialize(&kt, &s, &cfg).unwrap();
        let direct = materialize(&kt, &t, &cfg).unwrap();
        let rewritten = rewrite(&sample, &t, &cfg).unwrap();
        prop_assert_eq!(rewritten, direct);
    }

    /// Simulation completes and conserves instruction counts for random
    /// kernels: executed <= issued <= issue slots.
    #[test]
    fn simulation_instruction_accounting(kt in arb_kernel(), s in arb_placement()) {
        let cfg = cfg();
        let s = PlacementMap::from_spaces(s);
        prop_assume!(s.validate(&kt.arrays, &cfg).is_ok());
        let ct = materialize(&kt, &s, &cfg).unwrap();
        let r = simulate_default(&ct, &cfg).unwrap();
        prop_assert!(r.events.inst_executed <= r.events.inst_issued);
        prop_assert!(r.events.inst_issued <= r.events.issue_slots);
        prop_assert_eq!(
            r.events.inst_issued,
            r.events.inst_executed + r.events.total_replays()
                - r.events.replay_double_width
        );
        // Row-buffer outcomes partition DRAM requests.
        prop_assert_eq!(
            r.events.dram_requests,
            r.events.row_buffer_hits + r.events.row_buffer_misses
                + r.events.row_buffer_conflicts
        );
    }

    /// Coalescing invariants: transaction count bounded by active lanes
    /// (+1 for straddle), aligned, sorted, deduplicated.
    #[test]
    fn coalescing_invariants(
        addrs in prop::collection::vec(0u64..100_000, 1..32),
        elem in prop::sample::select(vec![4u64, 8]),
    ) {
        let r = coalesce(addrs.iter().copied(), elem, 128);
        prop_assert!(!r.transactions.is_empty());
        prop_assert!(r.transactions.len() <= addrs.len() * 2);
        prop_assert_eq!(r.replays as usize, r.transactions.len() - 1);
        for w in r.transactions.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for t in &r.transactions {
            prop_assert_eq!(t % 128, 0);
        }
        // Every byte touched is covered by some transaction.
        for &a in &addrs {
            let covered = r
                .transactions
                .iter()
                .any(|&t| a >= t && a + elem <= t + 256);
            prop_assert!(covered);
        }
    }

    /// Predictions are finite and positive for any legal target.
    #[test]
    fn predictions_are_finite(kt in arb_kernel(), s in arb_placement(), t in arb_placement()) {
        let cfg = cfg();
        let s = PlacementMap::from_spaces(s);
        let t = PlacementMap::from_spaces(t);
        prop_assume!(s.validate(&kt.arrays, &cfg).is_ok());
        prop_assume!(t.validate(&kt.arrays, &cfg).is_ok());
        let profile = profile_sample(&kt, &s, &cfg).unwrap();
        let pred = Predictor::new(cfg.clone()).predict(&profile, &t).unwrap();
        prop_assert!(pred.cycles.is_finite());
        prop_assert!(pred.cycles >= 1.0);
        prop_assert!(pred.t_comp >= 0.0);
        prop_assert!(pred.t_mem >= 0.0);
    }
}
