//! Equivalence suite for the incremental search engine (see DESIGN.md,
//! "Delta evaluation & search engine").
//!
//! The engine's contract is *bit-identity*: composing a candidate's
//! `TraceAnalysis` from one recorded skeleton walk plus memoized
//! per-`(array, space)` deltas must reproduce the naive
//! rewrite-per-candidate path exactly — same prediction bits, same
//! ranking, for every kernel in the registry and every worker count.
//! Branch-and-bound pruning must additionally never cut the subtree
//! holding the true optimum.

use gpu_hms::prelude::*;
use hms_core::Engine;
use hms_kernels::{registry, Scale};
use hms_stats::proptest_lite::{check, Config};
use hms_types::MemorySpace;

fn bits(ranked: &[hms_core::RankedPlacement]) -> Vec<(String, u64)> {
    ranked
        .iter()
        .map(|r| (format!("{:?}", r.placement), r.predicted_cycles.to_bits()))
        .collect()
}

/// For every registered kernel: the engine ranking over the full legal
/// space equals the naive ranking bit for bit, at 1, 2, and all
/// workers — and no skeleton ever fails its self-check.
#[test]
fn incremental_ranking_is_bit_identical_to_naive_registry_wide() {
    let cfg = GpuConfig::test_small();
    for spec in registry() {
        let kt = (spec.build)(Scale::Test);
        let base = kt.default_placement();
        let profile = profile_sample(&kt, &base, &cfg).unwrap();
        let predictor = Predictor::new(cfg.clone());
        let ids: Vec<ArrayId> = kt.arrays.iter().map(|a| a.id).collect();
        let space = enumerate_placements(&kt.arrays, &base, &ids, &cfg, 256);
        let naive = hms_core::rank_placements_naive(&predictor, &profile, &space, 1).unwrap();
        for threads in [1usize, 2, 0] {
            let outcome = SearchRequest::new(&kt.arrays, &base)
                .limit(256)
                .threads(threads)
                .run(&predictor, &profile)
                .unwrap();
            assert_eq!(
                bits(&naive),
                bits(&outcome.ranked),
                "{}: incremental ranking diverged from naive at {threads} workers",
                spec.name
            );
            assert_eq!(
                outcome.stats.exact_fallbacks, 0,
                "{}: a skeleton failed its self-check",
                spec.name
            );
            assert!(outcome.stats.full_rewrites <= outcome.stats.candidates_evaluated);
        }
    }
}

/// For every registered kernel: branch-and-bound returns the same best
/// placement (same prediction bits) as the exhaustive search, at 1, 2,
/// and all workers, and accounts for the whole space as either
/// evaluated or pruned.
#[test]
fn branch_and_bound_never_drops_the_true_best_registry_wide() {
    let cfg = GpuConfig::test_small();
    for spec in registry() {
        let kt = (spec.build)(Scale::Test);
        let base = kt.default_placement();
        let profile = profile_sample(&kt, &base, &cfg).unwrap();
        let predictor = Predictor::new(cfg.clone());
        let full = SearchRequest::new(&kt.arrays, &base)
            .run(&predictor, &profile)
            .unwrap();
        let truth = full.best().expect("non-empty space");
        for threads in [1usize, 2, 0] {
            let bb = SearchRequest::new(&kt.arrays, &base)
                .strategy(SearchStrategy::BranchAndBound)
                .threads(threads)
                .run(&predictor, &profile)
                .unwrap();
            let best = bb.best().expect("non-empty space");
            assert_eq!(
                best.placement, truth.placement,
                "{}: pruning dropped the optimum at {threads} workers",
                spec.name
            );
            assert_eq!(
                best.predicted_cycles.to_bits(),
                truth.predicted_cycles.to_bits(),
                "{}: best prediction drifted",
                spec.name
            );
            assert!(
                bb.stats.candidates_evaluated + bb.stats.candidates_pruned
                    >= full.ranked.len() as u64,
                "{}: space not fully accounted for",
                spec.name
            );
        }
    }
}

/// Property: for a random kernel and a random *legal* placement, the
/// engine's single prediction is bit-identical to the naive predictor's
/// (analysis and all).
#[test]
fn engine_prediction_matches_naive_on_random_placements() {
    let cfg = GpuConfig::test_small();
    let setups: Vec<_> = registry()
        .iter()
        .map(|spec| {
            let kt = (spec.build)(Scale::Test);
            let base = kt.default_placement();
            let profile = profile_sample(&kt, &base, &cfg).unwrap();
            (spec.name, kt, profile)
        })
        .collect();
    let predictor = Predictor::new(cfg.clone());
    check(
        "engine_matches_naive",
        &Config::with_cases(48),
        |rng| {
            let k = rng.gen_range(0u64..setups.len() as u64) as usize;
            let (_, kt, _) = &setups[k];
            // Draw random spaces until the joint placement is legal.
            loop {
                let mut pm = kt.default_placement();
                for (i, _) in kt.arrays.iter().enumerate() {
                    let s =
                        MemorySpace::ALL[rng.gen_range(0..MemorySpace::ALL.len() as u64) as usize];
                    pm = pm.with(ArrayId(i as u32), s);
                }
                if pm.validate(&kt.arrays, &cfg).is_ok() {
                    return (k, pm);
                }
            }
        },
        |(k, pm)| {
            let (name, _, profile) = &setups[*k];
            let engine = Engine::new(&predictor, profile);
            let fast = engine.predict(pm).map_err(|e| e.to_string())?;
            let slow = predictor.predict(profile, pm).map_err(|e| e.to_string())?;
            if fast.cycles.to_bits() != slow.cycles.to_bits() {
                return Err(format!(
                    "{name}: engine {} != naive {} for {pm:?}",
                    fast.cycles, slow.cycles
                ));
            }
            if fast.analysis != slow.analysis {
                return Err(format!("{name}: composed analysis drifted for {pm:?}"));
            }
            Ok(())
        },
    );
}

/// Property: the event-major lane-batched replay is bit-identical to
/// the naive path for random kernels at every lane width and worker
/// count — including the poisoned-skeleton case, where every candidate
/// must route through the exact per-candidate fallback instead of a
/// lane batch and still rank identically.
#[test]
fn batched_replay_is_bit_identical_across_lane_widths_and_workers() {
    let cfg = GpuConfig::test_small();
    let setups: Vec<_> = registry()
        .iter()
        .map(|spec| {
            let kt = (spec.build)(Scale::Test);
            let base = kt.default_placement();
            let profile = profile_sample(&kt, &base, &cfg).unwrap();
            let predictor = Predictor::new(cfg.clone());
            let ids: Vec<ArrayId> = kt.arrays.iter().map(|a| a.id).collect();
            let space = enumerate_placements(&kt.arrays, &base, &ids, &cfg, 128);
            let naive = hms_core::rank_placements_naive(&predictor, &profile, &space, 1).unwrap();
            (spec.name, profile, space, naive)
        })
        .collect();
    let predictor = Predictor::new(cfg.clone());
    check(
        "batched_replay_matches_naive",
        &Config::with_cases(24),
        |rng| {
            let k = rng.gen_range(0u64..setups.len() as u64) as usize;
            let width = [1u64, 2, 7, 64][rng.gen_range(0..4) as usize];
            let threads = [1usize, 2, 8][rng.gen_range(0..3) as usize];
            let poison = rng.gen_range(0..4) == 0;
            (k, width, threads, poison)
        },
        |&(k, width, threads, poison)| {
            let (name, profile, space, naive) = &setups[k];
            // Fresh engine per case: the skeleton cache must not leak a
            // (possibly poisoned) skeleton across cases.
            let engine = Engine::new(&predictor, profile);
            engine.set_lane_width(width);
            engine.inject_poison(poison);
            let ranked = engine.rank(space, threads).map_err(|e| e.to_string())?;
            if bits(naive) != bits(&ranked) {
                return Err(format!(
                    "{name}: batched ranking diverged from naive \
                     (lane_width={width}, threads={threads}, poison={poison})"
                ));
            }
            let stats = engine.stats();
            if poison {
                if stats.exact_fallbacks != space.len() as u64 {
                    return Err(format!(
                        "{name}: poisoned skeleton fell back {} of {} times",
                        stats.exact_fallbacks,
                        space.len()
                    ));
                }
                if stats.batched_replays != 0 {
                    return Err(format!(
                        "{name}: poisoned skeleton still took the batched path"
                    ));
                }
            } else {
                if stats.exact_fallbacks != 0 {
                    return Err(format!("{name}: healthy skeleton fell back"));
                }
                if stats.batched_replays == 0 || stats.events_streamed == 0 {
                    return Err(format!(
                        "{name}: healthy batch left the batched-replay counters at zero"
                    ));
                }
                if stats.lane_width == 0 || stats.lane_width > width {
                    return Err(format!(
                        "{name}: peak lane width {} outside 1..={width}",
                        stats.lane_width
                    ));
                }
            }
            Ok(())
        },
    );
}

/// Persistent skeletons: for every registry kernel, a warm restart
/// that reads its skeletons back from disk ranks bit-identically to
/// both the cold run that wrote them and the naive path — while
/// rebuilding nothing.
#[test]
fn persistent_skeletons_reload_bit_identically_registry_wide() {
    let cfg = GpuConfig::test_small();
    let dir = std::env::temp_dir().join(format!(
        "hms-skel-eqv-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    for spec in registry() {
        let kt = (spec.build)(Scale::Test);
        let base = kt.default_placement();
        let profile = profile_sample(&kt, &base, &cfg).unwrap();
        let predictor = Predictor::new(cfg.clone());
        let ids: Vec<ArrayId> = kt.arrays.iter().map(|a| a.id).collect();
        let space = enumerate_placements(&kt.arrays, &base, &ids, &cfg, 256);
        let naive = hms_core::rank_placements_naive(&predictor, &profile, &space, 1).unwrap();
        let req = SearchRequest::new(&kt.arrays, &base)
            .limit(256)
            .skeleton_cache(&dir);
        let cold = req.run(&predictor, &profile).unwrap();
        let warm = req.run(&predictor, &profile).unwrap();
        assert_eq!(
            bits(&naive),
            bits(&cold.ranked),
            "{}: cold persistent run diverged from naive",
            spec.name
        );
        assert_eq!(
            bits(&cold.ranked),
            bits(&warm.ranked),
            "{}: warm restart diverged from the cold run",
            spec.name
        );
        assert_eq!(
            warm.stats.skeletons_built, 0,
            "{}: warm restart rebuilt a skeleton",
            spec.name
        );
        assert!(
            warm.stats.skeleton_disk_hits > 0,
            "{}: warm restart never touched the disk cache",
            spec.name
        );
        assert_eq!(
            cold.stats.skeleton_disk_hits, 0,
            "{}: cold run hit a cache that should have been empty",
            spec.name
        );
        assert!(
            cold.stats.skeleton_disk_writes > 0,
            "{}: cold run persisted nothing",
            spec.name
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance: on a three-array search over read-only arrays, the
/// engine performs at least five times fewer full trace rewrites than
/// candidate evaluations, while staying bit-identical to the naive
/// path.
#[test]
fn three_array_search_reuses_rewrites_five_fold() {
    let cfg = GpuConfig::test_small();
    let mut checked = 0;
    for spec in registry() {
        let kt = (spec.build)(Scale::Test);
        let read_only: Vec<ArrayId> = kt
            .arrays
            .iter()
            .filter(|a| !a.written)
            .map(|a| a.id)
            .collect();
        if read_only.len() < 3 {
            continue;
        }
        checked += 1;
        let candidates = &read_only[..3];
        let base = kt.default_placement();
        let profile = profile_sample(&kt, &base, &cfg).unwrap();
        let predictor = Predictor::new(cfg.clone());
        let outcome = SearchRequest::new(&kt.arrays, &base)
            .candidates(candidates)
            .run(&predictor, &profile)
            .unwrap();
        assert!(
            outcome.stats.rewrite_reduction() >= 5.0,
            "{}: only {:.2}x rewrite reduction ({} evals / {} rewrites)",
            spec.name,
            outcome.stats.rewrite_reduction(),
            outcome.stats.candidates_evaluated,
            outcome.stats.full_rewrites
        );
        let space = enumerate_placements(&kt.arrays, &base, candidates, &cfg, 4096);
        let naive = hms_core::rank_placements_naive(&predictor, &profile, &space, 0).unwrap();
        assert_eq!(bits(&naive), bits(&outcome.ranked), "{}", spec.name);
    }
    assert!(
        checked >= 2,
        "registry lost its kernels with >= 3 read-only arrays"
    );
}
