//! Cross-crate model validation: the analytical models against the
//! simulated machine, beyond what unit tests cover.

use gpu_hms::core::analysis::analyze;
use gpu_hms::core::tmem::{dram_estimate, QueuingMode};
use gpu_hms::prelude::*;
use hms_types::ArrayId;

fn cfg() -> GpuConfig {
    GpuConfig::test_small()
}

/// The trace analysis must agree with the simulator on every event it
/// shares, for every kernel — the property that makes the prediction
/// pipeline trustworthy (all model error is then timing, not counting).
#[test]
fn analysis_event_counts_match_simulator_exactly() {
    let cfg = cfg();
    for spec in registry() {
        let kt = (spec.build)(Scale::Test);
        let ct = materialize(&kt, &kt.default_placement(), &cfg).unwrap();
        let sim = simulate_default(&ct, &cfg).unwrap();
        let a = analyze(&ct, &cfg);
        assert_eq!(
            a.executed, sim.events.inst_executed,
            "{}: executed",
            spec.name
        );
        assert_eq!(
            a.mem_instrs, sim.events.ldst_executed,
            "{}: mem instrs",
            spec.name
        );
        assert_eq!(
            a.l2_transactions, sim.events.l2_transactions,
            "{}: L2",
            spec.name
        );
        assert_eq!(
            a.l2_misses, sim.events.l2_misses,
            "{}: L2 misses",
            spec.name
        );
        assert_eq!(
            a.dram.len() as u64,
            sim.events.dram_requests,
            "{}: DRAM",
            spec.name
        );
        assert_eq!(
            a.replays_1_to_4(),
            sim.events.replays_1_to_4(),
            "{}: replays",
            spec.name
        );
        assert_eq!(a.sync_count, sim.events.sync_count, "{}: syncs", spec.name);
        assert_eq!(
            a.shared_requests,
            sim.events.shared_ld_requests + sim.events.shared_st_requests,
            "{}: shared",
            spec.name
        );
    }
}

/// The queuing model's mapped mode must estimate the mean DRAM latency
/// at least as well as the constant-latency assumption for a majority of
/// kernels (the paper's Figures 8–9 claim, as a regression guard).
#[test]
fn mapped_queuing_beats_constant_latency_for_most_kernels() {
    let cfg = cfg();
    let mut mapped_wins = 0u32;
    let mut total = 0u32;
    for spec in registry() {
        let kt = (spec.build)(Scale::Test);
        let pm = kt.default_placement();
        let profile = profile_sample(&kt, &pm, &cfg).unwrap();
        if profile.events.dram_requests < 16 {
            continue; // not enough off-chip traffic to classify
        }
        let a = analyze(&profile.trace, &cfg);
        let measured =
            profile.events.dram_total_latency as f64 / profile.events.dram_requests as f64;
        let c = dram_estimate(&profile, &a, &cfg, QueuingMode::ConstantLatency).avg_latency;
        let m = dram_estimate(&profile, &a, &cfg, QueuingMode::Mapped).avg_latency;
        total += 1;
        if (m - measured).abs() <= (c - measured).abs() {
            mapped_wins += 1;
        }
    }
    assert!(total >= 10, "too few DRAM-active kernels: {total}");
    assert!(
        mapped_wins * 3 >= total * 2,
        "mapped queuing won only {mapped_wins}/{total} kernels"
    );
}

/// Trained prediction must beat the untrained default on the training
/// distribution (in-sample sanity of the Eq. 11 regression).
#[test]
fn training_reduces_in_sample_error() {
    let cfg = cfg();
    let kernels = [
        "vecadd",
        "convolutionRows",
        "triad",
        "spmv",
        "md",
        "transpose",
        "qtc",
        "matrixMul",
        "cfd",
        "stencil2d",
        "scan",
        "sort",
    ];
    let mut profiles = Vec::new();
    for name in kernels {
        let kt = by_name(name, Scale::Test).unwrap();
        profiles.push(profile_sample(&kt, &kt.default_placement(), &cfg).unwrap());
    }
    let mut trained = Predictor::new(cfg.clone());
    trained.train(&profiles).unwrap();
    let untrained = Predictor::new(cfg.clone());

    let err = |p: &Predictor| -> f64 {
        profiles
            .iter()
            .map(|prof| {
                let pred = p.predict(prof, &prof.trace.placement).unwrap();
                (pred.cycles - prof.measured_cycles as f64).abs() / prof.measured_cycles as f64
            })
            .sum::<f64>()
            / profiles.len() as f64
    };
    let e_trained = err(&trained);
    let e_untrained = err(&untrained);
    assert!(
        e_trained <= e_untrained + 1e-9,
        "training made in-sample error worse: {e_trained:.3} vs {e_untrained:.3}"
    );
}

/// The PORPLE-style baseline and our model disagree on at least one
/// placement ranking for the neuralnet kernel — the Figure 6 setup.
#[test]
fn porple_and_full_model_are_distinguishable() {
    let cfg = cfg();
    let kt = by_name("neuralnet", Scale::Test).unwrap();
    let sample = kt.default_placement();
    let profile = profile_sample(&kt, &sample, &cfg).unwrap();
    let porple = gpu_hms::core::PorpleModel::new(cfg.clone());
    let ours = Predictor::new(cfg.clone());

    let weights = ArrayId(0);
    let mut porple_scores = Vec::new();
    let mut our_preds = Vec::new();
    for space in MemorySpace::ALL {
        let pm = sample.with(weights, space);
        if pm.validate(&kt.arrays, &cfg).is_err() {
            continue;
        }
        porple_scores.push(porple.score(&profile, &pm).unwrap());
        our_preds.push(ours.predict(&profile, &pm).unwrap().cycles);
    }
    assert!(porple_scores.len() >= 4);
    let rank = |xs: &[f64]| gpu_hms::stats::rank_of(xs);
    assert_ne!(
        rank(&porple_scores),
        rank(&our_preds),
        "models rank identically — the comparison would be vacuous"
    );
}
