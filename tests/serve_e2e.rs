//! End-to-end tests for the advisory server: a real listener on an
//! ephemeral port, real TCP clients, and assertions over both the
//! response bodies and the `/metrics` counters that prove the caching
//! claims (a warm repeat query re-runs neither the simulator nor the
//! trace-rewrite engine).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use gpu_hms::core::Predictor;
use gpu_hms::serve::{
    Advisor, ConfigRegistry, Ctx, Handler, Metrics, Outcome, Response as HandlerResponse,
    ServerConfig,
};
use gpu_hms::types::GpuConfig;

fn advisor(cfg: GpuConfig) -> Advisor {
    Advisor::new(cfg.clone(), Predictor::new(cfg))
}

fn test_server(mutate: impl FnOnce(ServerConfig) -> ServerConfig) -> gpu_hms::serve::ServerHandle {
    let registry = ConfigRegistry::new("default", advisor(GpuConfig::test_small()));
    mutate(ServerConfig::new().bind("127.0.0.1:0").workers(2))
        .spawn(registry)
        .expect("binds ephemeral port")
}

/// Minimal keep-alive HTTP/1.1 test client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

struct Response {
    status: u16,
    body: String,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let writer = stream.try_clone().expect("clones");
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> Response {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("writes");
        self.writer.flush().unwrap();
        self.read_response().expect("response")
    }

    fn read_response(&mut self) -> Option<Response> {
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).ok()?;
        if status_line.is_empty() {
            return None;
        }
        let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).ok()?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
            {
                content_length = v.parse().ok()?;
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).ok()?;
        Some(Response {
            status,
            body: String::from_utf8(body).ok()?,
        })
    }

    fn get(&mut self, path: &str) -> Response {
        self.request("GET", path, "")
    }

    fn post(&mut self, path: &str, body: &str) -> Response {
        self.request("POST", path, body)
    }
}

fn counter(c: &mut Client, series: &str) -> f64 {
    let text = c.get("/metrics").body;
    Metrics::scrape_counter(&text, series).unwrap_or_else(|| panic!("no series {series}"))
}

const PREDICT: &str = r#"{"kernel":"vecadd","scale":"test","moves":[{"array":"a","space":"T"}]}"#;

#[test]
fn healthz_kernels_and_not_found() {
    let h = test_server(|c| c);
    let mut c = Client::connect(h.addr());
    let r = c.get("/healthz");
    assert_eq!((r.status, r.body.as_str()), (200, "ok\n"));

    let r = c.get("/v1/kernels?scale=test");
    assert_eq!(r.status, 200);
    assert!(
        r.body.contains("\"spmv\""),
        "registry missing spmv: {}",
        r.body
    );
    assert!(r.body.contains("\"scale\": \"test\""));
    assert_eq!(c.get("/v1/kernels?scale=medium").status, 400);

    assert_eq!(c.get("/v1/nope").status, 404);
    // Wrong method on a real endpoint is 405, not 404.
    assert_eq!(c.get("/v1/predict").status, 405);
    assert_eq!(c.post("/healthz", "").status, 405);
    h.shutdown();
}

#[test]
fn predict_warm_cache_skips_model_work() {
    let h = test_server(|c| c);
    let mut c = Client::connect(h.addr());

    let r1 = c.post("/v1/predict", PREDICT);
    assert_eq!(r1.status, 200, "{}", r1.body);
    assert!(r1.body.contains("\"predicted_cycles\""));
    assert_eq!(counter(&mut c, "hms_simulations_total"), 1.0);
    assert_eq!(counter(&mut c, "hms_prediction_cache_misses_total"), 1.0);
    assert_eq!(counter(&mut c, "hms_predictions_computed_total"), 1.0);

    // Warm repeat: byte-identical body, cache hit, and *no* new model
    // work — the simulation and prediction counters stay flat.
    let r2 = c.post("/v1/predict", PREDICT);
    assert_eq!(r2.status, 200);
    assert_eq!(r1.body, r2.body, "cached body diverged");
    assert_eq!(counter(&mut c, "hms_prediction_cache_hits_total"), 1.0);
    assert_eq!(counter(&mut c, "hms_simulations_total"), 1.0);
    assert_eq!(counter(&mut c, "hms_predictions_computed_total"), 1.0);

    // `placement` spelling of the same target placement also hits: the
    // cache key is the resolved placement, not the request text.
    let r3 = c.post(
        "/v1/predict",
        r#"{"kernel":"vecadd","scale":"test","placement":{"a":"T"}}"#,
    );
    assert_eq!(r3.status, 200);
    assert_eq!(r1.body, r3.body);
    assert_eq!(counter(&mut c, "hms_prediction_cache_hits_total"), 2.0);
    h.shutdown();
}

#[test]
fn search_warm_cache_skips_engine_work() {
    let h = test_server(|c| c);
    let mut c = Client::connect(h.addr());
    let body = r#"{"kernel":"vecadd","scale":"test","top":3}"#;

    let r1 = c.post("/v1/search", body);
    assert_eq!(r1.status, 200, "{}", r1.body);
    assert!(r1.body.contains("\"stats\""));
    assert!(!r1.body.contains("nanos"), "wall-clock leaked into body");
    let evaluated = counter(&mut c, "hms_engine_candidates_evaluated_total");
    assert!(evaluated > 0.0);

    let r2 = c.post("/v1/search", body);
    assert_eq!(r2.status, 200);
    assert_eq!(r1.body, r2.body);
    assert_eq!(counter(&mut c, "hms_search_cache_hits_total"), 1.0);
    // Engine counters flat: the repeat ran no rewrites, no evaluation.
    assert_eq!(
        counter(&mut c, "hms_engine_candidates_evaluated_total"),
        evaluated
    );

    // Advise shares the ranking path but not the search cache entry
    // (no stats block), and never accepts search knobs.
    let r = c.post(
        "/v1/advise",
        r#"{"kernel":"vecadd","scale":"test","top":3}"#,
    );
    assert_eq!(r.status, 200);
    assert!(!r.body.contains("\"stats\""));
    let r = c.post(
        "/v1/advise",
        r#"{"kernel":"vecadd","scale":"test","prune":true}"#,
    );
    assert_eq!(r.status, 400);
    h.shutdown();
}

#[test]
fn client_errors_are_4xx() {
    let h = test_server(|c| c);
    let mut c = Client::connect(h.addr());
    // Malformed JSON.
    let r = c.post("/v1/predict", "{not json");
    assert_eq!(r.status, 400);
    assert!(r.body.contains("invalid JSON"));
    // Unknown kernel.
    let r = c.post(
        "/v1/predict",
        r#"{"kernel":"ghost","moves":[{"array":"a","space":"T"}]}"#,
    );
    assert_eq!(r.status, 404);
    // Unknown field.
    let r = c.post("/v1/predict", r#"{"kernel":"vecadd","movez":[]}"#);
    assert_eq!(r.status, 400);
    // Illegal placement: written array into read-only constant memory.
    let r = c.post(
        "/v1/predict",
        r#"{"kernel":"vecadd","scale":"test","placement":{"v":"C"}}"#,
    );
    assert_eq!(r.status, 400);
    assert!(r.body.contains("read-only"), "{}", r.body);
    h.shutdown();
}

#[test]
fn zero_deadline_rejects_model_queries_but_not_probes() {
    let h = test_server(|c| c.deadline(Duration::ZERO));
    let mut c = Client::connect(h.addr());
    // Liveness and metrics stay reachable on a saturated deadline.
    assert_eq!(c.get("/healthz").status, 200);
    assert_eq!(c.get("/metrics").status, 200);
    let r = c.post("/v1/predict", PREDICT);
    assert_eq!(r.status, 504, "{}", r.body);
    assert!(r.body.contains("deadline"));
    assert!(counter(&mut c, "hms_deadline_exceeded_total") >= 1.0);
    h.shutdown();
}

#[test]
fn zero_queue_sheds_with_503() {
    let h = test_server(|c| c.queue_depth(0));
    // Every connection is refused before reaching a worker.
    let mut c = Client::connect(h.addr());
    let r = c.read_response().expect("shed response");
    assert_eq!(r.status, 503, "{}", r.body);
    assert!(r.body.contains("overloaded"));
    h.shutdown();
}

#[test]
fn concurrent_clients_get_consistent_answers() {
    let h = test_server(|c| c);
    let addr = h.addr();
    let bodies: Vec<String> = std::thread::scope(|s| {
        (0..4)
            .map(|_| {
                s.spawn(move || {
                    let mut c = Client::connect(addr);
                    let mut last = String::new();
                    for _ in 0..20 {
                        let r = c.post("/v1/predict", PREDICT);
                        assert_eq!(r.status, 200);
                        last = r.body;
                    }
                    last
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| t.join().unwrap())
            .collect()
    });
    assert!(
        bodies.windows(2).all(|w| w[0] == w[1]),
        "clients saw different bodies for the same query"
    );
    // 80 requests, exactly one simulation.
    let mut c = Client::connect(addr);
    assert_eq!(counter(&mut c, "hms_simulations_total"), 1.0);
    h.shutdown();
}

#[test]
fn graceful_shutdown_closes_the_port() {
    let h = test_server(|c| c);
    let addr = h.addr();
    let mut c = Client::connect(addr);
    assert_eq!(c.post("/v1/predict", PREDICT).status, 200);
    h.shutdown(); // joins every thread; in-flight work already drained
    std::thread::sleep(Duration::from_millis(50));
    // New connections must now fail (or be closed without a response).
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(stream) => {
            let mut buf = [0u8; 1];
            let mut s = stream;
            s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let _ = write!(s, "GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n");
            assert!(
                matches!(s.read(&mut buf), Ok(0) | Err(_)),
                "server still answering after shutdown"
            );
        }
    }
}

/// Worker-stage handler that records every `compute` call and parks
/// long enough for concurrent identical requests to pile onto the
/// leader's flight instead of racing it to the cache.
struct SlowEcho {
    computes: Arc<AtomicU64>,
    park: Duration,
}

impl Handler for SlowEcho {
    fn poll(&self, _ctx: &Ctx<'_>, _req: &gpu_hms::serve::http::Request) -> Outcome {
        Outcome::Compute { coalesce: true }
    }

    fn compute(&self, _ctx: &Ctx<'_>, req: &gpu_hms::serve::http::Request) -> HandlerResponse {
        self.computes.fetch_add(1, Ordering::SeqCst);
        std::thread::sleep(self.park);
        HandlerResponse::json(
            200,
            format!("{{\"echo\": {}}}\n", String::from_utf8_lossy(&req.body)),
        )
    }
}

#[test]
fn single_flight_coalesces_concurrent_identical_requests() {
    const CLIENTS: usize = 8;
    let computes = Arc::new(AtomicU64::new(0));
    let handler = Arc::new(SlowEcho {
        computes: Arc::clone(&computes),
        park: Duration::from_millis(600),
    });
    let h = test_server(|c| c.route("POST", "/v1/slow", handler));
    let addr = h.addr();

    // All clients release together; the leader's compute parks for
    // 600 ms, so every follower joins the in-progress flight.
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let bodies: Vec<String> = std::thread::scope(|s| {
        (0..CLIENTS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    let mut c = Client::connect(addr);
                    barrier.wait();
                    let r = c.post("/v1/slow", "7");
                    assert_eq!(r.status, 200, "{}", r.body);
                    r.body
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| t.join().unwrap())
            .collect()
    });

    assert!(
        bodies.iter().all(|b| b == &bodies[0]),
        "coalesced followers saw different bodies"
    );
    assert_eq!(
        computes.load(Ordering::SeqCst),
        1,
        "single-flight must run the handler exactly once"
    );
    let mut c = Client::connect(addr);
    assert_eq!(counter(&mut c, "hms_singleflight_leaders_total"), 1.0);
    assert_eq!(
        counter(&mut c, "hms_coalesced_requests_total"),
        (CLIENTS - 1) as f64,
        "every non-leader must be counted as coalesced"
    );
    h.shutdown();
}

#[test]
fn coalescing_can_be_disabled() {
    const CLIENTS: usize = 4;
    let computes = Arc::new(AtomicU64::new(0));
    let handler = Arc::new(SlowEcho {
        computes: Arc::clone(&computes),
        park: Duration::from_millis(100),
    });
    let h = test_server(|c| {
        c.coalescing(false)
            .workers(CLIENTS)
            .route("POST", "/v1/slow", handler)
    });
    let addr = h.addr();
    let barrier = Arc::new(Barrier::new(CLIENTS));
    std::thread::scope(|s| {
        for _ in 0..CLIENTS {
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                let mut c = Client::connect(addr);
                barrier.wait();
                assert_eq!(c.post("/v1/slow", "7").status, 200);
            });
        }
    });
    assert_eq!(
        computes.load(Ordering::SeqCst),
        CLIENTS as u64,
        "with coalescing off every request must compute independently"
    );
    let mut c = Client::connect(addr);
    assert_eq!(counter(&mut c, "hms_coalesced_requests_total"), 0.0);
    h.shutdown();
}

#[test]
fn tenants_never_share_cache_entries() {
    // Two tenants: the default small machine and a C2050-class one
    // (different core clock, so every latency constant differs). The
    // same kernel + placement must be predicted per-tenant, on the
    // tenant's own machine model, with fully separate caches.
    let registry = ConfigRegistry::new("default", advisor(GpuConfig::test_small()))
        .with("c2050", advisor(GpuConfig::tesla_c2050()));
    let h = ServerConfig::new()
        .bind("127.0.0.1:0")
        .workers(2)
        .spawn(registry)
        .expect("binds ephemeral port");
    let mut c = Client::connect(h.addr());

    const PREDICT_C2050: &str = r#"{"kernel":"vecadd","scale":"test","config":"c2050","moves":[{"array":"a","space":"T"}]}"#;

    let small = c.post("/v1/predict", PREDICT);
    assert_eq!(small.status, 200, "{}", small.body);
    let c2050 = c.post("/v1/predict", PREDICT_C2050);
    assert_eq!(c2050.status, 200, "{}", c2050.body);
    assert_ne!(
        small.body, c2050.body,
        "different machines must predict differently"
    );
    assert!(
        !c2050.body.contains("config"),
        "responses must not echo the tenant: {}",
        c2050.body
    );
    assert_eq!(counter(&mut c, "hms_predictions_computed_total"), 2.0);
    assert_eq!(counter(&mut c, "hms_prediction_cache_misses_total"), 2.0);

    // Warm repeats hit each tenant's own cache; no cross-tenant reuse,
    // no new model work.
    let small2 = c.post("/v1/predict", PREDICT);
    let c2050_2 = c.post("/v1/predict", PREDICT_C2050);
    assert_eq!(small.body, small2.body);
    assert_eq!(c2050.body, c2050_2.body);
    assert_eq!(counter(&mut c, "hms_prediction_cache_hits_total"), 2.0);
    assert_eq!(counter(&mut c, "hms_predictions_computed_total"), 2.0);

    // Naming the default tenant explicitly is byte-identical to
    // omitting `config` — same tenant, same cache entry.
    let named = c.post(
        "/v1/predict",
        r#"{"kernel":"vecadd","scale":"test","config":"default","moves":[{"array":"a","space":"T"}]}"#,
    );
    assert_eq!(named.status, 200);
    assert_eq!(small.body, named.body);
    assert_eq!(counter(&mut c, "hms_predictions_computed_total"), 2.0);

    // Unknown tenants are a client error, and list what exists.
    let r = c.post(
        "/v1/predict",
        r#"{"kernel":"vecadd","scale":"test","config":"h100","moves":[{"array":"a","space":"T"}]}"#,
    );
    assert_eq!(r.status, 400, "{}", r.body);
    assert!(r.body.contains("unknown config"), "{}", r.body);
    h.shutdown();
}
