//! Golden-value regression tests for the three sub-models.
//!
//! Every number here was computed once from the deterministic pipeline
//! and committed; the tests assert *exact* equality (f64 bit equality
//! where the quantity is model output). If a model change moves one of
//! these values intentionally, recompute and update the constant in the
//! same commit — these tests exist to make silent numeric drift
//! impossible, not to freeze the models forever.

use gpu_hms::prelude::*;
use hms_core::toverlap::{features, ToverlapModel, TrainingPoint};
use hms_core::QueuingMode;
use hms_stats::queuing::{kingman_waiting_time, kingman_waiting_time_squared, GG1Inputs, RHO_CAP};
use hms_trace::addressing::{addr_calc_delta, addr_calc_instrs};
use hms_types::MemorySpace::{Constant, Global, Shared, Texture1D};

/// Eq. 2's addressing-instruction table: "the numbers of instructions
/// required to calculate the address of a 1D-array element ... are
/// 2, 0, 1, 1 for global, 1D texture, constant, and shared memories."
#[test]
fn golden_tcomp_addressing_deltas() {
    assert_eq!(addr_calc_instrs(Global, DType::F32), 2);
    assert_eq!(addr_calc_instrs(Texture1D, DType::F32), 0);
    assert_eq!(addr_calc_instrs(Constant, DType::F32), 1);
    assert_eq!(addr_calc_instrs(Shared, DType::F32), 1);
    // The deltas T_comp adds per access when an array moves.
    assert_eq!(addr_calc_delta(Global, Texture1D, DType::F32), -2);
    assert_eq!(addr_calc_delta(Global, Constant, DType::F32), -1);
    assert_eq!(addr_calc_delta(Global, Shared, DType::F32), -1);
    assert_eq!(addr_calc_delta(Texture1D, Global, DType::F64), 2);
    assert_eq!(addr_calc_delta(Constant, Global, DType::F64), 1);
    assert_eq!(addr_calc_delta(Shared, Global, DType::I32), 1);
    assert_eq!(addr_calc_delta(Constant, Shared, DType::F32), 0);
}

/// Kingman's approximation (Eq. 9–10), both published forms, at
/// hand-checkable operating points.
#[test]
fn golden_kingman_waiting_times() {
    // rho = 0.5, c_a = 1.5, c_s = 0.5, tau_a = 100:
    // ((1.5 + 0.5)/2) * (0.5/0.5) * 100 = 100 exactly.
    let q = GG1Inputs {
        mean_interarrival: 100.0,
        cv_interarrival: 1.5,
        mean_service: 50.0,
        cv_service: 0.5,
    };
    assert_eq!(kingman_waiting_time(&q), 100.0);
    // Textbook squared-CV form: ((2.25 + 0.25)/2) * (0.5/0.5) * 50 = 62.5.
    assert_eq!(kingman_waiting_time_squared(&q), 62.5);
    // Saturated queue (rho = 5) clamps to RHO_CAP and stays finite:
    // 1.25 * (0.995/0.005) * 10 = 2487.4999999999977 in f64.
    let sat = GG1Inputs {
        mean_interarrival: 10.0,
        cv_interarrival: 1.5,
        mean_service: 50.0,
        cv_service: 1.0,
    };
    assert_eq!(RHO_CAP, 0.995);
    assert_eq!(kingman_waiting_time(&sat), 2487.4999999999977);
}

/// The full AMAT path through `core::tmem` for vecadd at test scale
/// under its default placement — the composition of Eq. 4–10.
#[test]
fn golden_tmem_amat_path() {
    let cfg = GpuConfig::test_small();
    let kt = hms_kernels::vecadd::build(hms_kernels::Scale::Test);
    let pm = kt.default_placement();
    let profile = profile_sample(&kt, &pm, &cfg).unwrap();
    let analysis = hms_core::analyze(&gpu_hms::trace::materialize(&kt, &pm, &cfg).unwrap(), &cfg);
    let tm = hms_core::tmem::tmem(&profile, &analysis, &cfg, QueuingMode::Mapped);
    assert_eq!(tm.cycles, 3606.0);
    assert_eq!(tm.amat, 1450.2772435897434);
    assert_eq!(tm.dram_lat, 1228.2772435897436);
    assert_eq!(tm.effective_requests_per_sm, 1.0);
    assert_eq!(tm.itmlp, 8.0);
}

/// The detailed `T_comp` (Eq. 2/3/13–16) and the assembled Eq. 1
/// prediction for the same kernel/placement.
#[test]
fn golden_tcomp_and_prediction() {
    let cfg = GpuConfig::test_small();
    let kt = hms_kernels::vecadd::build(hms_kernels::Scale::Test);
    let pm = kt.default_placement();
    let profile = profile_sample(&kt, &pm, &cfg).unwrap();
    let analysis = hms_core::analyze(&gpu_hms::trace::materialize(&kt, &pm, &cfg).unwrap(), &cfg);
    let tc = hms_core::tcomp::tcomp(&profile, &analysis, &cfg, true);
    assert_eq!(tc.cycles, 39.0);
    assert_eq!(tc.inst_per_warp, 13.0);
    assert_eq!(tc.effective_throughput, 0.75);
    assert_eq!(tc.w_serial, 0.0);
    // Eq. 1 with the untrained overlap default (ratio 0.5):
    // T = 39 + 3606 - 0.5 * 3606 = 1842.
    let pred = Predictor::new(cfg.clone()).predict(&profile, &pm).unwrap();
    assert_eq!(pred.t_comp, 39.0);
    assert_eq!(pred.t_mem, 3606.0);
    assert_eq!(pred.t_overlap, 1803.0);
    assert_eq!(pred.cycles, 1842.0);
}

/// `T_overlap` regression round-trip (Eq. 11–12): a model fitted on
/// ratios planted over the selectable features recovers the planted
/// value at an unseen probe, and inverting Eq. 1/12 from the assembled
/// prediction returns the model's own ratio.
#[test]
fn golden_toverlap_round_trip() {
    let cfg = GpuConfig::test_small();
    let kt = hms_kernels::vecadd::build(hms_kernels::Scale::Test);
    let pm = kt.default_placement();
    let analysis = hms_core::analyze(&gpu_hms::trace::materialize(&kt, &pm, &cfg).unwrap(), &cfg);
    // Plant ratio = 0.2 + 0.3 f8 - 0.05 f7 (f8: regime balance,
    // f7: MLP) and fit over a sweep of both.
    let mut points = Vec::new();
    for i in 0..40u64 {
        let tc = 50.0 + 10.0 * i as f64;
        let tm = 500.0;
        let mut a2 = analysis.clone();
        a2.mlp = 1.0 + (i % 5) as f64;
        let f = features(&a2, &cfg, tc, tm);
        let ratio = 0.2 + 0.3 * f[8] - 0.05 * f[7];
        points.push(TrainingPoint {
            features: f,
            ratio,
            group: i,
        });
    }
    let m = ToverlapModel::fit(&points).unwrap();
    // Probe at tc = 123, tm = 500, MLP = 2.5 (inside the seen ranges but
    // not a training point): planted value is
    // 0.2 + 0.3 * 0.246 - 0.05 * 2.5 = 0.1488.
    let mut probe = analysis.clone();
    probe.mlp = 2.5;
    let (tc, tm) = (123.0, 500.0);
    let ratio = m.ratio(&probe, &cfg, tc, tm);
    assert!((ratio - 0.1488).abs() < 1e-6, "recovered ratio {ratio}");
    // Eq. 12 exactly: T_overlap = ratio x T_mem.
    let t_overlap = m.t_overlap(&probe, &cfg, tc, tm);
    assert_eq!(t_overlap, ratio * tm);
    // Round-trip through Eq. 1: T = T_comp + T_mem - T_overlap, so the
    // ratio recovered from the total is the model's ratio again.
    let total = tc + tm - t_overlap;
    let recovered = (tc + tm - total) / tm;
    assert!(
        (recovered - ratio).abs() < 1e-12,
        "round-trip ratio {recovered} != {ratio}"
    );
}
