//! Integration coverage for the extension features: shared write-back
//! epilogues, local-memory spills, trace serialization through the
//! simulator, and sensitivity sweeps.

use gpu_hms::prelude::*;
use hms_types::ArrayId;

fn cfg() -> GpuConfig {
    GpuConfig::test_small()
}

/// A written, non-scratch array placed in shared memory must be staged
/// in *and* written back; both copies show up in the event counts.
#[test]
fn shared_writeback_epilogue_runs_end_to_end() {
    use gpu_hms::trace::{MemRef, SymOp, WarpTrace};
    let cfg = cfg();
    let kt = KernelTrace {
        name: "accum".into(),
        arrays: vec![hms_types::ArrayDef::new_1d(0, "acc", DType::F32, 64, true)],
        geometry: Geometry::new(2, 64),
        warps: (0..4)
            .map(|i| WarpTrace {
                block: i / 2,
                warp: i % 2,
                ops: vec![
                    SymOp::IntAlu(2),
                    SymOp::Access(MemRef::load_lin(ArrayId(0), 0..32)),
                    SymOp::WaitLoads,
                    SymOp::FpAlu(1),
                    SymOp::Access(MemRef::store_lin(ArrayId(0), 0..32)),
                ],
            })
            .collect(),
    };
    let global = {
        let ct = materialize(&kt, &kt.default_placement(), &cfg).unwrap();
        simulate_default(&ct, &cfg).unwrap()
    };
    let shared = {
        let pm = kt.default_placement().with(ArrayId(0), MemorySpace::Shared);
        let ct = materialize(&kt, &pm, &cfg).unwrap();
        simulate_default(&ct, &cfg).unwrap()
    };
    // Staging in: global loads; writing back: global stores — both exist
    // even though the kernel body never touches global memory.
    assert!(shared.events.global_ld_requests > 0, "no staging loads");
    assert!(shared.events.global_st_requests > 0, "no write-back stores");
    assert!(shared.events.shared_ld_requests > 0);
    assert!(shared.events.shared_st_requests > 0);
    // The global placement runs the body directly.
    assert_eq!(global.events.shared_ld_requests, 0);
}

/// md5hash's register spills reach DRAM-side structures through the L1
/// and are counted as the paper's replay causes (7)/(9).
#[test]
fn local_memory_spills_are_observable() {
    let cfg = cfg();
    // Full scale: the Test preset has too few MD5 rounds to trigger the
    // every-16-rounds reload.
    let kt = by_name("md5hash", Scale::Full).unwrap();
    let ct = materialize(&kt, &kt.default_placement(), &cfg).unwrap();
    let r = simulate_default(&ct, &cfg).unwrap();
    assert!(r.events.local_st_requests > 0);
    assert!(r.events.local_ld_requests > 0);
    assert!(r.events.l1_local_hits + r.events.l1_local_misses > 0);
    // Cause (7) replays only exist if some local access missed L1.
    assert_eq!(
        r.events.replay_local_l1_miss, r.events.l1_local_misses,
        "one replay per local L1 miss"
    );
    // Causes (5)-(10) are placement-invariant: moving foundKey to shared
    // must not change the local-memory replay counts.
    let pm = kt.default_placement().with(ArrayId(0), MemorySpace::Shared);
    let ct2 = materialize(&kt, &pm, &cfg).unwrap();
    let r2 = simulate_default(&ct2, &cfg).unwrap();
    assert_eq!(
        r.events.replay_local_divergence,
        r2.events.replay_local_divergence
    );
}

/// Serialized traces simulate to identical results after a round trip.
#[test]
fn serialized_trace_simulates_identically() {
    let cfg = cfg();
    for name in ["vecadd", "md5hash", "spmv"] {
        let kt = by_name(name, Scale::Test).unwrap();
        let ct = materialize(&kt, &kt.default_placement(), &cfg).unwrap();
        let text = gpu_hms::trace::dump(&ct);
        let back = gpu_hms::trace::load(&text, &cfg).unwrap();
        let a = simulate_default(&ct, &cfg).unwrap();
        let b = simulate_default(&back, &cfg).unwrap();
        assert_eq!(
            a.cycles, b.cycles,
            "{name}: cycles diverged after round trip"
        );
        assert_eq!(
            a.events, b.events,
            "{name}: events diverged after round trip"
        );
    }
}

/// The sensitivity API's `winner_stable` flag agrees with the raw sweep
/// data, and every sweep point is finite, for every knob at +-25%.
#[test]
fn sensitivity_reports_are_internally_consistent() {
    use gpu_hms::core::{stability, Predictor};
    let cfg = cfg();
    let kt = by_name("neuralnet", Scale::Test).unwrap();
    let sample = kt.default_placement();
    let profile = gpu_hms::core::profile_sample(&kt, &sample, &cfg).unwrap();
    let candidates = vec![
        sample.clone(),
        sample.with(ArrayId(0), MemorySpace::Shared),
        sample.with(ArrayId(0), MemorySpace::Texture1D),
    ];
    let predictor = Predictor::new(cfg.clone());
    let reports = stability(&predictor, &profile, &candidates, 0.25).unwrap();
    assert_eq!(reports.len(), 4);
    for r in &reports {
        assert_eq!(r.points.len(), 3);
        let argmin = |preds: &[f64]| {
            preds
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        };
        let winners: Vec<usize> = r
            .points
            .iter()
            .map(|(_, preds)| {
                assert!(preds.iter().all(|x| x.is_finite() && *x > 0.0));
                argmin(preds)
            })
            .collect();
        let stable = winners.windows(2).all(|w| w[0] == w[1]);
        assert_eq!(
            r.winner_stable, stable,
            "{:?}: flag disagrees with data",
            r.knob
        );
    }
}

/// Event mining over real simulator runs selects time-tracking events.
#[test]
fn event_mining_on_real_runs() {
    use hms_bench::{mine_events, PlacementStudy};
    let cfg = cfg();
    let mut studies = Vec::new();
    for name in ["vecadd", "convolutionRows", "triad"] {
        let kt = by_name(name, Scale::Test).unwrap();
        let mut runs = Vec::new();
        for (id, _) in kt.default_placement().iter() {
            for space in [
                MemorySpace::Global,
                MemorySpace::Texture1D,
                MemorySpace::Constant,
            ] {
                let pm = kt.default_placement().with(id, space);
                if pm.validate(&kt.arrays, &cfg).is_err() {
                    continue;
                }
                let ct = materialize(&kt, &pm, &cfg).unwrap();
                let r = simulate_default(&ct, &cfg).unwrap();
                runs.push((r.cycles, r.events));
            }
        }
        studies.push(PlacementStudy::from_runs(name, &runs));
    }
    let mined = mine_events(&studies, 0.94, 3);
    assert!(!mined.is_empty(), "no events qualified across all kernels");
    // Everything mined must genuinely clear the threshold everywhere it
    // claims to.
    for m in &mined {
        assert!(m.mean_similarity >= 0.94);
        assert!(m.qualified_in.len() >= 3);
    }
}
