//! Chaos suite: a seed-replayable fault matrix committed against a live
//! advisory server, plus the degradation guarantees around it.
//!
//! Every case is drawn from a [`FaultPlan`] expanded from one seed
//! (`HMS_CHAOS_SEED` overrides the default), so a CI failure prints a
//! one-line replay recipe. The invariants, per DESIGN.md §11:
//!
//! * every committed fault ends in its documented outcome (4xx/5xx or a
//!   clean close) — never a hung worker ([`FaultOutcome::TimedOut`]);
//! * after *every* fault the process still answers `/healthz` with the
//!   exact bytes `ok\n` — faults cost one connection, never the server;
//! * with faults disabled, predictions are byte-identical before and
//!   after the storm — degradation machinery is invisible when idle.

use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gpu_hms::core::{CacheFs, Predictor};
use gpu_hms::faults::{
    FaultClient, FaultOutcome, FaultPlan, FaultyFs, FsFault, ResourceFaultKind, ResourceFaultPlan,
};
use gpu_hms::serve::api::{Effort, RankQuery};
use gpu_hms::serve::http::Request;
use gpu_hms::serve::{
    decode, ready_state, Advisor, ConfigRegistry, Ctx, Handler, Json, Metrics, Outcome, ReadyState,
    Response, ServerConfig,
};
use gpu_hms::types::GpuConfig;

/// The pinned default plan seed; `HMS_CHAOS_SEED=<n>` replays any other.
const DEFAULT_SEED: u64 = 0xC1A0_05;

fn chaos_seed() -> u64 {
    std::env::var("HMS_CHAOS_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

fn advisor() -> Advisor {
    let cfg = GpuConfig::test_small();
    Advisor::new(cfg.clone(), Predictor::new(cfg))
}

fn chaos_server() -> gpu_hms::serve::ServerHandle {
    ServerConfig::new()
        .bind("127.0.0.1:0")
        .workers(2)
        // Short enough that a slowloris trickle hits the cumulative
        // read deadline within one case, long enough that a normal
        // request never does.
        .read_deadline(Duration::from_millis(250))
        .spawn(ConfigRegistry::new("default", advisor()))
        .expect("binds ephemeral port")
}

/// Minimal well-formed HTTP/1.1 client for the non-fault probes.
struct Probe {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Probe {
    fn connect(addr: SocketAddr) -> Probe {
        let stream = TcpStream::connect(addr).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let writer = stream.try_clone().expect("clones");
        Probe {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("writes");
        self.writer.flush().unwrap();
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).expect("status");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header");
            if line.trim_end().is_empty() {
                break;
            }
            if let Some(v) = line
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
            {
                content_length = v.parse().expect("length");
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        (status, String::from_utf8(body).expect("utf8 body"))
    }
}

const PREDICT: &str = r#"{"kernel":"vecadd","scale":"test","moves":[{"array":"a","space":"T"}]}"#;

#[test]
fn fault_matrix_is_survived_with_documented_outcomes() {
    let seed = chaos_seed();
    let plan = FaultPlan::from_seed(seed, 8);
    let h = chaos_server();
    let addr = h.addr();

    // Baseline prediction before any fault is committed.
    let (status, baseline) = Probe::connect(addr).request("POST", "/v1/predict", PREDICT);
    assert_eq!(status, 200, "{baseline}");

    let mut client = FaultClient::new(addr);
    client.read_timeout = Duration::from_secs(5);
    client.trickle_delay = Duration::from_millis(40);
    let mut saw_408 = false;
    for case in &plan.cases {
        let outcome = client.commit(*case, "/v1/predict", PREDICT.as_bytes());
        assert!(
            outcome.satisfies(case.kind),
            "fault `{}` ended in undocumented outcome {outcome:?}\n  {}",
            case.kind.label(),
            case.replay_line(seed)
        );
        saw_408 |= outcome == FaultOutcome::Status(408);
        // The cardinal invariant: one poisoned connection never takes
        // the process (or a worker) with it. A hung worker pool would
        // stall this probe past its 10 s timeout.
        let (status, body) = Probe::connect(addr).request("GET", "/healthz", "");
        assert_eq!(
            (status, body.as_str()),
            (200, "ok\n"),
            "liveness lost after `{}`\n  {}",
            case.kind.label(),
            case.replay_line(seed)
        );
    }

    // Every slowloris that earned its 408 is visible to the operator.
    if saw_408 {
        let (_, text) = Probe::connect(addr).request("GET", "/metrics", "");
        let timeouts = Metrics::scrape_counter(&text, "hms_read_timeouts_total")
            .expect("read-timeout series exists");
        assert!(timeouts >= 1.0, "408s answered but not counted");
    }

    // With faults off the wire again, the model output is bit-identical
    // to the pre-chaos baseline: nothing degraded stays degraded.
    let (status, after) = Probe::connect(addr).request("POST", "/v1/predict", PREDICT);
    assert_eq!(status, 200);
    assert_eq!(baseline, after, "prediction bytes drifted across chaos");
    h.shutdown();
}

#[test]
fn distinct_seeds_give_distinct_but_replayable_schedules() {
    let a = FaultPlan::from_seed(1, 8);
    let b = FaultPlan::from_seed(1, 8);
    let c = FaultPlan::from_seed(2, 8);
    assert_eq!(a, b, "same seed must replay the same schedule");
    assert_ne!(a.cases, c.cases, "different seeds should differ");
}

#[test]
fn readiness_is_distinct_from_liveness() {
    let h = chaos_server();
    let mut p = Probe::connect(h.addr());

    // Healthy: ready, and the gauge agrees with the endpoint.
    let (status, body) = p.request("GET", "/readyz", "");
    assert_eq!((status, body.as_str()), (200, "ready\n"));
    let (_, text) = p.request("GET", "/metrics", "");
    assert_eq!(
        Metrics::scrape_counter(&text, "hms_ready_state"),
        Some(0.0),
        "gauge disagrees with /readyz"
    );
    // Liveness body is part of the wire contract — byte-exact.
    let (status, body) = p.request("GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    // The classification function behind /readyz, on the states a live
    // test cannot park a real server in without racing the acceptor.
    assert_eq!(ready_state(false, 0, 8), ReadyState::Ready);
    assert_eq!(ready_state(false, 8, 8), ReadyState::Degraded);
    assert_eq!(ready_state(false, 9, 8), ReadyState::Degraded);
    assert_eq!(ready_state(true, 0, 8), ReadyState::Draining);
    // Draining wins over a full queue: shutdown is the stronger fact.
    assert_eq!(ready_state(true, 8, 8), ReadyState::Draining);
    h.shutdown();
}

/// A compute job that ignores the cooperative cancel flag and parks for
/// `park` — the wedged-task image. Bounded (it always returns) so the
/// server can still join its workers at shutdown; the watchdog's
/// force-claim answers the waiter long before the park ends.
struct Wedge {
    park: Duration,
}

impl Handler for Wedge {
    fn poll(&self, _ctx: &Ctx<'_>, _req: &Request) -> Outcome {
        Outcome::Compute { coalesce: false }
    }

    fn compute(&self, _ctx: &Ctx<'_>, _req: &Request) -> Response {
        std::thread::sleep(self.park);
        Response::text(200, "late\n")
    }
}

/// One `/v1/search` answer under storm: either exact (no `degraded`
/// member at all) or `degraded: true` with a finite, non-negative
/// `gap_upper_bound`. Anything else — and any 5xx — fails the storm.
fn assert_exact_or_degraded(status: u16, body: &str, when: &str) -> Option<(f64, f64)> {
    assert!(
        status < 500,
        "{when}: in-quota /v1/search answered {status}: {body}"
    );
    assert_eq!(status, 200, "{when}: {body}");
    let v = decode(body).expect("search body is JSON");
    let best = v
        .get("ranked")
        .and_then(Json::as_arr)
        .and_then(|r| r.first())
        .and_then(|e| e.get("predicted_cycles"))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("{when}: no best candidate in {body}"));
    match v.get("degraded") {
        None => {
            assert!(
                v.get("gap_upper_bound").is_none(),
                "{when}: gap without degraded flag"
            );
            None
        }
        Some(d) => {
            assert_eq!(d.as_bool(), Some(true), "{when}: degraded must be `true`");
            let gap = v
                .get("gap_upper_bound")
                .and_then(Json::as_f64)
                .unwrap_or_else(|| panic!("{when}: degraded without a gap bound"));
            assert!(
                gap.is_finite() && gap >= 0.0,
                "{when}: unsound gap bound {gap}"
            );
            Some((best, gap))
        }
    }
}

/// The resource-fault storm: every disk, pool, and clock fault from a
/// pinned seed-replayable schedule, committed against one live server,
/// with the tentpole guarantees asserted after every case — liveness,
/// zero 5xx for in-quota `/v1/search` (exact or gap-bounded degraded),
/// byte-identical predictions once the storm clears, and monotone
/// ladder recovery back to a non-degraded `/readyz`.
#[test]
fn resource_storm_degrades_gracefully_and_recovers() {
    let seed = chaos_seed();
    let plan = ResourceFaultPlan::from_seed(seed, 8);
    let dir = std::env::temp_dir().join(format!("hms-chaos-storm-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fs = Arc::new(FaultyFs::new(seed));

    let cfg = GpuConfig::test_small();
    let advisor = Advisor::new(cfg.clone(), Predictor::new(cfg))
        .with_skeleton_cache_fs(&dir, Arc::clone(&fs) as Arc<dyn CacheFs>);
    let sweep = Duration::from_millis(20);
    let h = ServerConfig::new()
        .bind("127.0.0.1:0")
        .workers(2)
        .deadline(Duration::from_secs(5))
        // Generous quota: the storm's probe traffic is always in-quota,
        // so every 429 would be a bug.
        .quota(64, 1000)
        // One watchdog kill opens the breaker — the ladder must engage
        // visibly during the storm, and recover monotonically after it.
        .breaker(1, Duration::from_millis(150))
        .watchdog_interval(sweep)
        .stall_timeout(Duration::from_millis(60))
        .route(
            "POST",
            "/v1/wedge",
            Arc::new(Wedge {
                park: Duration::from_millis(400),
            }),
        )
        .spawn(ConfigRegistry::new("default", advisor))
        .expect("binds ephemeral port");
    let addr = h.addr();

    // Pre-storm baselines for the byte-identity check at the end.
    let (status, predict_before) = Probe::connect(addr).request("POST", "/v1/predict", PREDICT);
    assert_eq!(status, 200, "{predict_before}");
    const BASELINE_SEARCH: &str = r#"{"kernel":"vecadd","scale":"test","top":2}"#;
    let (status, search_before) =
        Probe::connect(addr).request("POST", "/v1/search", BASELINE_SEARCH);
    assert_eq!(status, 200, "{search_before}");
    assert_exact_or_degraded(status, &search_before, "pre-storm baseline");

    // Distinct cold queries per case (never repeating the baseline), so
    // each storm search exercises the engine + faulty disk, not the
    // rank cache.
    let storm_query = |i: usize| {
        let kernel = if i % 2 == 0 { "vecadd" } else { "spmv" };
        format!(r#"{{"kernel":"{kernel}","scale":"test","top":{}}}"#, 3 + i)
    };
    // Queries issued degraded during the storm, to be re-run exact
    // afterwards for the gap-soundness check.
    let mut degraded_probes: Vec<(String, f64, f64)> = Vec::new();
    let mut saw_watchdog_kill = false;

    for (i, case) in plan.cases.iter().enumerate() {
        let when = format!("case {i} `{}`", case.kind.label());
        match case.kind.fs_fault() {
            // Disk faults: committed through the injected cache fs
            // under a live cold search.
            Some(mode) => {
                fs.set(mode);
                let q = storm_query(i);
                let (status, body) = Probe::connect(addr).request("POST", "/v1/search", &q);
                if let Some((best, gap)) = assert_exact_or_degraded(status, &body, &when) {
                    degraded_probes.push((q, best, gap));
                }
                fs.set(FsFault::None);
            }
            None => match case.kind {
                ResourceFaultKind::PoolStall => {
                    // Wedge one worker; the concurrent search must keep
                    // being answered by the rest of the pool while the
                    // watchdog force-claims the wedged slot with a 504.
                    let wedged = std::thread::scope(|s| {
                        let t = s.spawn(|| Probe::connect(addr).request("POST", "/v1/wedge", "{}"));
                        std::thread::sleep(Duration::from_millis(10));
                        let q = storm_query(i);
                        let (status, body) = Probe::connect(addr).request("POST", "/v1/search", &q);
                        if let Some((best, gap)) = assert_exact_or_degraded(status, &body, &when) {
                            degraded_probes.push((q, best, gap));
                        }
                        t.join().expect("wedge probe")
                    });
                    assert_eq!(
                        wedged.0,
                        504,
                        "a wedged task must be force-claimed, got {}: {}\n  {}",
                        wedged.0,
                        wedged.1,
                        case.replay_line(seed)
                    );
                    saw_watchdog_kill = true;
                    assert!(
                        h.degradation_level() >= 1,
                        "{when}: a watchdog kill must engage the ladder"
                    );
                }
                ResourceFaultKind::ClockSkew => {
                    // Skew the deadline clock far past the budget: the
                    // search must downgrade (never 504) and stamp its
                    // gap on the wire.
                    h.set_clock_skew(case.skew());
                    let q = storm_query(i);
                    let (status, body) = Probe::connect(addr).request("POST", "/v1/search", &q);
                    let (best, gap) = assert_exact_or_degraded(status, &body, &when)
                        .unwrap_or_else(|| {
                            panic!("{when}: a skewed-out search served exact? {body}")
                        });
                    degraded_probes.push((q, best, gap));
                    h.set_clock_skew(Duration::ZERO);
                }
                _ => unreachable!("disk kinds are handled above"),
            },
        }
        // The cardinal invariant, after every committed case.
        let (status, body) = Probe::connect(addr).request("GET", "/healthz", "");
        assert_eq!(
            (status, body.as_str()),
            (200, "ok\n"),
            "liveness lost after {when}\n  {}",
            case.replay_line(seed)
        );
    }

    // Storm over: all faults cleared above. Monotone ladder recovery —
    // the level never climbs while draining back to 0, and it reaches 0
    // (a breaker needs one observed success to close, which the probe
    // search provides).
    let recovery_deadline = Instant::now() + Duration::from_secs(5);
    let mut last = u8::MAX;
    let mut attempt = 0usize;
    loop {
        let lvl = h.degradation_level();
        assert!(
            lvl <= last,
            "ladder went back up during recovery: {last} -> {lvl}"
        );
        last = lvl;
        if lvl == 0 {
            break;
        }
        // A *cold* probe: cache hits are answered in the poll stage and
        // never reach the breaker, so only a computed success can close
        // a half-open breaker.
        attempt += 1;
        let q = format!(
            r#"{{"kernel":"vecadd","scale":"test","top":{}}}"#,
            100 + attempt
        );
        let (status, _) = Probe::connect(addr).request("POST", "/v1/search", &q);
        assert_eq!(status, 200);
        assert!(
            Instant::now() < recovery_deadline,
            "ladder never recovered to level 0"
        );
        std::thread::sleep(sweep);
    }
    // Non-degraded readiness within a watchdog sweep of reaching 0.
    std::thread::sleep(sweep);
    let (status, body) = Probe::connect(addr).request("GET", "/readyz", "");
    assert_eq!(
        (status, body.as_str()),
        (200, "ready\n"),
        "readiness still degraded after the storm"
    );

    // Byte-identity across the storm: the same predict query answers
    // with the exact same bytes it did before any fault was committed.
    let (status, predict_after) = Probe::connect(addr).request("POST", "/v1/predict", PREDICT);
    assert_eq!(status, 200);
    assert_eq!(
        predict_before, predict_after,
        "prediction bytes drifted across the resource storm"
    );
    let (status, search_after) =
        Probe::connect(addr).request("POST", "/v1/search", BASELINE_SEARCH);
    assert_eq!(status, 200);
    assert_eq!(
        search_before, search_after,
        "search bytes drifted across the resource storm"
    );

    // Gap soundness: re-run every query that answered degraded, now
    // exact (degraded bodies are never cached, so this recomputes), and
    // check the documented contract `best <= optimum * (1 + gap)`.
    for (q, degraded_best, gap) in &degraded_probes {
        let (status, body) = Probe::connect(addr).request("POST", "/v1/search", q);
        assert_eq!(status, 200, "{body}");
        let v = decode(&body).expect("exact rerun is JSON");
        assert!(
            v.get("degraded").is_none(),
            "post-storm rerun still degraded: {body}"
        );
        let optimum = v
            .get("ranked")
            .and_then(Json::as_arr)
            .and_then(|r| r.first())
            .and_then(|e| e.get("predicted_cycles"))
            .and_then(Json::as_f64)
            .expect("exact rerun has a best candidate");
        assert!(
            *degraded_best >= optimum * (1.0 - 1e-9),
            "degraded answer beat the optimum? {degraded_best} < {optimum} for {q}"
        );
        assert!(
            *degraded_best <= optimum * (1.0 + gap) * (1.0 + 1e-9),
            "unsound gap bound: best {degraded_best}, optimum {optimum}, gap {gap} for {q}"
        );
    }

    // A watchdog kill (if the plan scheduled one) is operator-visible.
    if saw_watchdog_kill {
        let (_, text) = Probe::connect(addr).request("GET", "/metrics", "");
        let kills = Metrics::scrape_counter(&text, "hms_watchdog_cancels_total")
            .expect("watchdog series exists");
        assert!(kills >= 1.0, "watchdog 504s answered but not counted");
    }

    h.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Quota exhaustion is an admission decision (429), never a 5xx, and
/// warm cache hits stay free — only cold requests spend tokens.
#[test]
fn quota_exhaustion_is_a_429_and_cache_hits_stay_free() {
    let h = ServerConfig::new()
        .bind("127.0.0.1:0")
        .workers(1)
        // One token, no refill: exactly one cold search is in quota.
        .quota(1, 0)
        .spawn(ConfigRegistry::new("default", advisor()))
        .expect("binds");
    let mut p = Probe::connect(h.addr());

    let first = r#"{"kernel":"vecadd","scale":"test","top":1}"#;
    let (status, body) = p.request("POST", "/v1/search", first);
    assert_eq!(status, 200, "{body}");

    // Second cold query: the bucket is empty.
    let (status, body) = p.request(
        "POST",
        "/v1/search",
        r#"{"kernel":"spmv","scale":"test","top":1}"#,
    );
    assert_eq!(
        status, 429,
        "expected quota rejection, got {status}: {body}"
    );

    // The first query again: a rank-cache hit, served without a token.
    let (status, _) = p.request("POST", "/v1/search", first);
    assert_eq!(status, 200, "cache hits must not consume quota");

    // Rejections are counted for the operator.
    let (_, text) = p.request("GET", "/metrics", "");
    let rejected = Metrics::scrape_counter(&text, "hms_admission_rejected_total")
        .expect("admission series exists");
    assert!(rejected >= 1.0);
    h.shutdown();
}

#[test]
fn deadline_partial_flag_reaches_the_wire_format() {
    // Advisor::rank *is* the server's body builder (byte-identity is the
    // serve crate's core claim), so asserting on it asserts the wire.
    let adv = advisor();
    let q = RankQuery {
        kernel: "vecadd".into(),
        scale: gpu_hms::kernels::Scale::Test,
        top: 3,
        prune: true,
        threads: 1,
        config: None,
        strategy: None,
        seed: None,
        beam: None,
    };
    let mut effort = Effort::default();
    let (body, outcome) = adv
        .rank(&q, true, Some(Instant::now()), &mut effort)
        .expect("partial rank succeeds");
    assert!(outcome.partial);
    assert!(!outcome.ranked.is_empty(), "partial must carry best-so-far");
    assert_eq!(body.get("partial").and_then(Json::as_bool), Some(true));
    assert!(body.encode_pretty().contains("\"partial\": true"));

    // Unbounded: the member is absent, keeping finished responses
    // byte-identical to the pre-deadline wire format.
    let (body, outcome) = adv.rank(&q, true, None, &mut effort).expect("full rank");
    assert!(!outcome.partial);
    assert!(body.get("partial").is_none());
    assert!(!body.encode_pretty().contains("partial"));
}
