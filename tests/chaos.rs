//! Chaos suite: a seed-replayable fault matrix committed against a live
//! advisory server, plus the degradation guarantees around it.
//!
//! Every case is drawn from a [`FaultPlan`] expanded from one seed
//! (`HMS_CHAOS_SEED` overrides the default), so a CI failure prints a
//! one-line replay recipe. The invariants, per DESIGN.md §11:
//!
//! * every committed fault ends in its documented outcome (4xx/5xx or a
//!   clean close) — never a hung worker ([`FaultOutcome::TimedOut`]);
//! * after *every* fault the process still answers `/healthz` with the
//!   exact bytes `ok\n` — faults cost one connection, never the server;
//! * with faults disabled, predictions are byte-identical before and
//!   after the storm — degradation machinery is invisible when idle.

use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use gpu_hms::core::Predictor;
use gpu_hms::faults::{FaultClient, FaultOutcome, FaultPlan};
use gpu_hms::serve::api::{Effort, RankQuery};
use gpu_hms::serve::{
    ready_state, Advisor, ConfigRegistry, Json, Metrics, ReadyState, ServerConfig,
};
use gpu_hms::types::GpuConfig;

/// The pinned default plan seed; `HMS_CHAOS_SEED=<n>` replays any other.
const DEFAULT_SEED: u64 = 0xC1A0_05;

fn chaos_seed() -> u64 {
    std::env::var("HMS_CHAOS_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

fn advisor() -> Advisor {
    let cfg = GpuConfig::test_small();
    Advisor::new(cfg.clone(), Predictor::new(cfg))
}

fn chaos_server() -> gpu_hms::serve::ServerHandle {
    ServerConfig::new()
        .bind("127.0.0.1:0")
        .workers(2)
        // Short enough that a slowloris trickle hits the cumulative
        // read deadline within one case, long enough that a normal
        // request never does.
        .read_deadline(Duration::from_millis(250))
        .spawn(ConfigRegistry::new("default", advisor()))
        .expect("binds ephemeral port")
}

/// Minimal well-formed HTTP/1.1 client for the non-fault probes.
struct Probe {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Probe {
    fn connect(addr: SocketAddr) -> Probe {
        let stream = TcpStream::connect(addr).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let writer = stream.try_clone().expect("clones");
        Probe {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("writes");
        self.writer.flush().unwrap();
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).expect("status");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header");
            if line.trim_end().is_empty() {
                break;
            }
            if let Some(v) = line
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
            {
                content_length = v.parse().expect("length");
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        (status, String::from_utf8(body).expect("utf8 body"))
    }
}

const PREDICT: &str = r#"{"kernel":"vecadd","scale":"test","moves":[{"array":"a","space":"T"}]}"#;

#[test]
fn fault_matrix_is_survived_with_documented_outcomes() {
    let seed = chaos_seed();
    let plan = FaultPlan::from_seed(seed, 8);
    let h = chaos_server();
    let addr = h.addr();

    // Baseline prediction before any fault is committed.
    let (status, baseline) = Probe::connect(addr).request("POST", "/v1/predict", PREDICT);
    assert_eq!(status, 200, "{baseline}");

    let mut client = FaultClient::new(addr);
    client.read_timeout = Duration::from_secs(5);
    client.trickle_delay = Duration::from_millis(40);
    let mut saw_408 = false;
    for case in &plan.cases {
        let outcome = client.commit(*case, "/v1/predict", PREDICT.as_bytes());
        assert!(
            outcome.satisfies(case.kind),
            "fault `{}` ended in undocumented outcome {outcome:?}\n  {}",
            case.kind.label(),
            case.replay_line(seed)
        );
        saw_408 |= outcome == FaultOutcome::Status(408);
        // The cardinal invariant: one poisoned connection never takes
        // the process (or a worker) with it. A hung worker pool would
        // stall this probe past its 10 s timeout.
        let (status, body) = Probe::connect(addr).request("GET", "/healthz", "");
        assert_eq!(
            (status, body.as_str()),
            (200, "ok\n"),
            "liveness lost after `{}`\n  {}",
            case.kind.label(),
            case.replay_line(seed)
        );
    }

    // Every slowloris that earned its 408 is visible to the operator.
    if saw_408 {
        let (_, text) = Probe::connect(addr).request("GET", "/metrics", "");
        let timeouts = Metrics::scrape_counter(&text, "hms_read_timeouts_total")
            .expect("read-timeout series exists");
        assert!(timeouts >= 1.0, "408s answered but not counted");
    }

    // With faults off the wire again, the model output is bit-identical
    // to the pre-chaos baseline: nothing degraded stays degraded.
    let (status, after) = Probe::connect(addr).request("POST", "/v1/predict", PREDICT);
    assert_eq!(status, 200);
    assert_eq!(baseline, after, "prediction bytes drifted across chaos");
    h.shutdown();
}

#[test]
fn distinct_seeds_give_distinct_but_replayable_schedules() {
    let a = FaultPlan::from_seed(1, 8);
    let b = FaultPlan::from_seed(1, 8);
    let c = FaultPlan::from_seed(2, 8);
    assert_eq!(a, b, "same seed must replay the same schedule");
    assert_ne!(a.cases, c.cases, "different seeds should differ");
}

#[test]
fn readiness_is_distinct_from_liveness() {
    let h = chaos_server();
    let mut p = Probe::connect(h.addr());

    // Healthy: ready, and the gauge agrees with the endpoint.
    let (status, body) = p.request("GET", "/readyz", "");
    assert_eq!((status, body.as_str()), (200, "ready\n"));
    let (_, text) = p.request("GET", "/metrics", "");
    assert_eq!(
        Metrics::scrape_counter(&text, "hms_ready_state"),
        Some(0.0),
        "gauge disagrees with /readyz"
    );
    // Liveness body is part of the wire contract — byte-exact.
    let (status, body) = p.request("GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    // The classification function behind /readyz, on the states a live
    // test cannot park a real server in without racing the acceptor.
    assert_eq!(ready_state(false, 0, 8), ReadyState::Ready);
    assert_eq!(ready_state(false, 8, 8), ReadyState::Degraded);
    assert_eq!(ready_state(false, 9, 8), ReadyState::Degraded);
    assert_eq!(ready_state(true, 0, 8), ReadyState::Draining);
    // Draining wins over a full queue: shutdown is the stronger fact.
    assert_eq!(ready_state(true, 8, 8), ReadyState::Draining);
    h.shutdown();
}

#[test]
fn deadline_partial_flag_reaches_the_wire_format() {
    // Advisor::rank *is* the server's body builder (byte-identity is the
    // serve crate's core claim), so asserting on it asserts the wire.
    let adv = advisor();
    let q = RankQuery {
        kernel: "vecadd".into(),
        scale: gpu_hms::kernels::Scale::Test,
        top: 3,
        prune: true,
        threads: 1,
        config: None,
        strategy: None,
        seed: None,
        beam: None,
    };
    let mut effort = Effort::default();
    let (body, outcome) = adv
        .rank(&q, true, Some(Instant::now()), &mut effort)
        .expect("partial rank succeeds");
    assert!(outcome.partial);
    assert!(!outcome.ranked.is_empty(), "partial must carry best-so-far");
    assert_eq!(body.get("partial").and_then(Json::as_bool), Some(true));
    assert!(body.encode_pretty().contains("\"partial\": true"));

    // Unbounded: the member is absent, keeping finished responses
    // byte-identical to the pre-deadline wire format.
    let (body, outcome) = adv.rank(&q, true, None, &mut effort).expect("full rank");
    assert!(!outcome.partial);
    assert!(body.get("partial").is_none());
    assert!(!body.encode_pretty().contains("partial"));
}
