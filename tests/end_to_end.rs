//! End-to-end integration tests: kernel generation -> materialization ->
//! simulation -> profiling -> prediction, across crates.

use gpu_hms::prelude::*;
use hms_types::ArrayId;

fn cfg() -> GpuConfig {
    GpuConfig::test_small()
}

/// The full predict-vs-measure loop stays sane for every registered
/// kernel under its default placement.
#[test]
fn predict_identity_for_every_kernel() {
    let cfg = cfg();
    let predictor = Predictor::new(cfg.clone());
    for spec in registry() {
        let kt = (spec.build)(Scale::Test);
        let pm = kt.default_placement();
        let profile = profile_sample(&kt, &pm, &cfg)
            .unwrap_or_else(|e| panic!("{}: profile failed: {e}", spec.name));
        let pred = predictor
            .predict(&profile, &pm)
            .unwrap_or_else(|e| panic!("{}: predict failed: {e}", spec.name));
        let measured = profile.measured_cycles as f64;
        assert!(
            pred.cycles.is_finite() && pred.cycles > 0.0,
            "{}",
            spec.name
        );
        // Identity predictions should be within an order of magnitude
        // even untrained — they share the trace analysis with the
        // machine.
        assert!(
            pred.cycles > measured / 10.0 && pred.cycles < measured * 10.0,
            "{}: pred {} vs measured {}",
            spec.name,
            pred.cycles,
            measured
        );
    }
}

/// Every legal single-array move of the vecadd kernel can be predicted
/// and simulated; predicted and measured times are positive and finite.
#[test]
fn all_single_moves_round_trip() {
    let cfg = cfg();
    let kt = gpu_hms::kernels::vecadd::build(Scale::Test);
    let sample = kt.default_placement();
    let profile = profile_sample(&kt, &sample, &cfg).unwrap();
    let predictor = Predictor::new(cfg.clone());
    let mut tried = 0;
    for (id, _) in sample.iter() {
        for space in MemorySpace::ALL {
            let target = sample.with(id, space);
            if target.validate(&kt.arrays, &cfg).is_err() {
                continue;
            }
            tried += 1;
            let pred = predictor.predict(&profile, &target).unwrap();
            let ct = materialize(&kt, &target, &cfg).unwrap();
            let sim = simulate_default(&ct, &cfg).unwrap();
            assert!(pred.cycles > 0.0);
            assert!(sim.cycles > 0);
        }
    }
    assert!(tried >= 8, "probe set unexpectedly small: {tried}");
}

/// The simulator is deterministic: same trace, same result.
#[test]
fn simulation_is_deterministic() {
    let cfg = cfg();
    let kt = gpu_hms::kernels::md::build(Scale::Test);
    let ct = materialize(&kt, &kt.default_placement(), &cfg).unwrap();
    let a = simulate_default(&ct, &cfg).unwrap();
    let b = simulate_default(&ct, &cfg).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.events, b.events);
}

/// Moving arrays around must never change how much *work* the kernel
/// does — only addressing instructions, replays, and memory behaviour.
#[test]
fn placement_preserves_algorithmic_work() {
    let cfg = cfg();
    let kt = gpu_hms::kernels::stencil2d::build(Scale::Test);
    let sample = kt.default_placement();
    let s = {
        let ct = materialize(&kt, &sample, &cfg).unwrap();
        simulate_default(&ct, &cfg).unwrap()
    };
    let t = {
        let pm = sample.with(ArrayId(0), MemorySpace::Texture2D);
        let ct = materialize(&kt, &pm, &cfg).unwrap();
        simulate_default(&ct, &cfg).unwrap()
    };
    // FP work identical; loads/stores identical in count.
    assert_eq!(s.events.inst_fp32, t.events.inst_fp32);
    assert_eq!(s.events.ldst_executed, t.events.ldst_executed);
    // Addressing instructions differ (texture drops them).
    assert!(t.events.inst_integer < s.events.inst_integer);
}

/// The placement search respects hardware legality end to end.
#[test]
fn search_only_returns_legal_placements() {
    let cfg = cfg();
    let kt = gpu_hms::kernels::spmv::build(Scale::Test);
    let sample = kt.default_placement();
    let candidates: Vec<ArrayId> = kt.arrays.iter().map(|a| a.id).collect();
    let all = enumerate_placements(&kt.arrays, &sample, &candidates, &cfg, 4096);
    assert!(!all.is_empty());
    for pm in &all {
        pm.validate(&kt.arrays, &cfg)
            .expect("search returned an illegal placement");
        // The written output array must never be in a read-only space.
        let out = kt.arrays.iter().find(|a| a.written).unwrap();
        assert!(pm.space(out.id).is_writable());
    }
}
