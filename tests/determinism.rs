//! End-to-end determinism: the full prediction + placement-search
//! pipeline over every registered kernel is bit-identical between runs
//! and across worker counts.
//!
//! This is the guarantee that makes the parallel search trustworthy: the
//! `hms_stats::par` pool reassembles results in input order and the
//! ranking sort is stable, so scheduling nondeterminism can never leak
//! into model output (see DESIGN.md, "Hermetic build & determinism").

use gpu_hms::prelude::*;
use hms_kernels::{registry, Scale};

/// One search outcome, reduced to exactly-comparable form: the best
/// placement and the bit pattern of every ranked prediction.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    kernel: &'static str,
    best: String,
    prediction_bits: Vec<u64>,
}

fn search_all(threads: usize, limit: usize) -> Vec<Outcome> {
    let cfg = GpuConfig::test_small();
    registry()
        .iter()
        .map(|spec| {
            let kt = (spec.build)(Scale::Test);
            let base = kt.default_placement();
            let profile = profile_sample(&kt, &base, &cfg).unwrap();
            let predictor = Predictor::new(cfg.clone());
            let ranked = SearchRequest::new(&kt.arrays, &base)
                .limit(limit)
                .threads(threads)
                .run(&predictor, &profile)
                .unwrap()
                .ranked;
            assert!(!ranked.is_empty(), "{}: empty search space", spec.name);
            Outcome {
                kernel: spec.name,
                best: format!("{:?}", ranked[0].placement),
                prediction_bits: ranked
                    .iter()
                    .map(|r| r.predicted_cycles.to_bits())
                    .collect(),
            }
        })
        .collect()
}

#[test]
fn predictor_and_search_are_bit_deterministic() {
    const LIMIT: usize = 16;
    // Two independent runs at full parallelism must agree bit-for-bit.
    let first = search_all(0, LIMIT);
    let second = search_all(0, LIMIT);
    assert_eq!(first, second, "repeated runs diverged");
    // And the worker count (1, 2, all cores) must not matter either.
    for threads in [1usize, 2] {
        let other = search_all(threads, LIMIT);
        assert_eq!(
            first, other,
            "search with {threads} worker(s) diverged from the all-cores run"
        );
    }
}
