#!/usr/bin/env bash
# The repository's CI gate: hermetic (offline) build + full test suite +
# formatting. Must pass from a clean checkout with no network and no
# cargo registry cache — the default dependency graph is workspace
# crates only (see DESIGN.md §8, "Hermetic build & determinism").
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> cargo fmt --check"
cargo fmt --check

# Arithmetic that only misbehaves when it wraps must fail loudly: rerun
# the numeric crates' tests with overflow checks forced on (release
# builds default them off).
echo "==> overflow-checks test pass (core, sim, stats)"
RUSTFLAGS="-C overflow-checks=on" \
    cargo test -q --offline -p hms-core -p hms-sim -p hms-stats

# Chaos gate: the seed-replayable connection-fault matrix AND the
# resource-fault storm (disk ENOSPC/torn-write/bit-rot/rename, pool
# stalls, clock skew — DESIGN.md §11, §15), pinned to three fixed seeds
# so CI failures reproduce locally with the printed HMS_CHAOS_SEED
# line. The storm asserts zero 5xx for in-quota /v1/search (exact or
# degraded:true with a sound gap bound) and monotone ladder recovery.
echo "==> chaos gate (3 pinned seeds, connection + resource faults)"
for seed in 12689413 271828 9221; do
    echo "    HMS_CHAOS_SEED=$seed"
    HMS_CHAOS_SEED="$seed" cargo test -q --offline --test chaos
done

# Bit-identity net with optimizations on: the release-mode equivalence
# pass replays the columnar/engine/skeleton property suites under three
# pinned seeds, so float-contraction or UB that only appears with
# optimizations cannot slip through, and any failure reproduces locally
# from the printed HMS_PROPTEST_SEED line (see DESIGN.md §12).
echo "==> release equivalence net (3 pinned seeds)"
for seed in 7 170831 948276; do
    echo "    HMS_PROPTEST_SEED=$seed"
    HMS_PROPTEST_SEED="$seed" HMS_PROPTEST_CASES=24 cargo test -q --offline --release \
        --test trace_properties --test engine_equivalence --test skeleton_cache
done

echo "==> search micro-benchmark (BENCH_search.json)"
bench_num() {
    sed -n 's/^ *"'"$2"'": *\([0-9.eE+-]*\),*$/\1/p' "$1"
}
baseline_cps="$(bench_num BENCH_search.json engine_candidates_per_sec)"
baseline_batch_cps="$(bench_num BENCH_search.json batch_candidates_per_sec)"
[ -n "$baseline_cps" ] || { echo "no committed BENCH_search.json baseline"; exit 1; }
[ -n "$baseline_batch_cps" ] || { echo "no committed batch baseline in BENCH_search.json"; exit 1; }
cargo run -q -p hms-bench --release --offline --bin bench_search -- test
current_cps="$(bench_num BENCH_search.json engine_candidates_per_sec)"
current_batch_cps="$(bench_num BENCH_search.json batch_candidates_per_sec)"
echo "    engine_candidates_per_sec: baseline=$baseline_cps current=$current_cps"
awk -v cur="$current_cps" -v base="$baseline_cps" 'BEGIN { exit !(cur >= 0.8 * base) }' || {
    echo "search throughput regressed >20% against the committed BENCH_search.json baseline"
    exit 1
}
echo "    batch_candidates_per_sec: baseline=$baseline_batch_cps current=$current_batch_cps"
awk -v cur="$current_batch_cps" -v base="$baseline_batch_cps" 'BEGIN { exit !(cur >= 0.8 * base) }' || {
    echo "batch throughput regressed >20% against the committed BENCH_search.json baseline"
    exit 1
}

echo "==> anytime search gate (BENCH_anytime.json)"
bench_gap() {
    sed -n 's/^ *"gate_gap_upper_bound": *\([0-9.eE+-]*\),*$/\1/p' "$1"
}
baseline_gap="$(bench_gap BENCH_anytime.json)"
[ -n "$baseline_gap" ] || { echo "no committed BENCH_anytime.json baseline"; exit 1; }
cargo run -q -p hms-bench --release --offline --bin bench_anytime -- gate
current_gap="$(bench_gap BENCH_anytime.json)"
echo "    gate_gap_upper_bound: baseline=$baseline_gap current=$current_gap"
# The gate gap is a pure function of the model (beam at a pinned width,
# no deadline), so any growth is an engine/bound change, not noise; a
# small epsilon absorbs float formatting.
awk -v cur="$current_gap" -v base="$baseline_gap" \
    'BEGIN { exit !(cur <= 1.2 * base + 1e-9) }' || {
    echo "beam gap bound regressed >20% against the committed BENCH_anytime.json baseline"
    exit 1
}

echo "==> serve smoke (hms serve + curl predict/metrics + clean SIGTERM)"
serve_log="$(mktemp)"
./target/release/hms serve --port 0 --threads 2 > "$serve_log" 2>&1 &
serve_pid=$!
trap 'kill -9 "$serve_pid" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
    grep -q '^listening on ' "$serve_log" && break
    sleep 0.1
done
serve_url="$(sed -n 's#^listening on \(http://.*\)$#\1#p' "$serve_log")"
[ -n "$serve_url" ] || { echo "serve did not come up"; cat "$serve_log"; exit 1; }
predict_status="$(curl -s -o /dev/null -w '%{http_code}' -X POST "$serve_url/v1/predict" \
    -d '{"kernel":"vecadd","scale":"test","moves":[{"array":"a","space":"T"}]}')"
[ "$predict_status" = "200" ] || { echo "predict returned $predict_status"; exit 1; }
metrics_status="$(curl -s -o /dev/null -w '%{http_code}' "$serve_url/metrics")"
[ "$metrics_status" = "200" ] || { echo "metrics returned $metrics_status"; exit 1; }
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "serve exited nonzero on SIGTERM"; exit 1; }
trap - EXIT
rm -f "$serve_log"

echo "==> serve load benchmark gate (256 connections, BENCH_serve.json)"
bench_rps() {
    sed -n 's/^ *"throughput_rps": *\([0-9.eE+-]*\),*$/\1/p' "$1"
}
baseline_rps="$(bench_rps BENCH_serve.json)"
[ -n "$baseline_rps" ] || { echo "no committed BENCH_serve.json baseline"; exit 1; }
cargo run -q -p hms-bench --release --offline --bin bench_serve -- gate
current_rps="$(bench_rps BENCH_serve.json)"
echo "    throughput_rps: baseline=$baseline_rps current=$current_rps"
awk -v cur="$current_rps" -v base="$baseline_rps" 'BEGIN { exit !(cur >= 0.8 * base) }' || {
    echo "serve throughput regressed >20% against the committed BENCH_serve.json baseline"
    exit 1
}

echo "CI OK"
