#!/usr/bin/env bash
# The repository's CI gate: hermetic (offline) build + full test suite +
# formatting. Must pass from a clean checkout with no network and no
# cargo registry cache — the default dependency graph is workspace
# crates only (see DESIGN.md §8, "Hermetic build & determinism").
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> search micro-benchmark (BENCH_search.json)"
cargo run -q -p hms-bench --release --offline --bin bench_search -- test

echo "CI OK"
