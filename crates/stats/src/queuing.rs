//! G/G/1 queuing via Kingman's approximation (paper Eq. 9–10).
//!
//! Each GDDR5 bank is modeled as a single server with a general arrival
//! process and a general service distribution. The mean waiting time is
//! approximated by Kingman's formula
//!
//! ```text
//! W_q ≈ ((c_a^2 + c_s^2) / 2) * (rho / (1 - rho)) * tau_s
//! ```
//!
//! The paper prints the factor as `(c_a + c_s)/2 * (rho/(1-rho)) * tau_a`;
//! we implement the equation as printed (it is the form the model was
//! validated with), and additionally expose the textbook squared-CV form
//! for comparison in the ablation harness.

/// Inputs to the G/G/1 waiting-time approximation for one memory bank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GG1Inputs {
    /// Mean inter-arrival time `tau_a` (cycles).
    pub mean_interarrival: f64,
    /// Coefficient of variation of inter-arrival times `c_a`.
    pub cv_interarrival: f64,
    /// Mean service time `tau_s` (cycles).
    pub mean_service: f64,
    /// Coefficient of variation of service times `c_s`.
    pub cv_service: f64,
}

impl GG1Inputs {
    /// Server utilization `rho = tau_s / tau_a` (paper Eq. 10).
    #[inline]
    pub fn utilization(&self) -> f64 {
        if self.mean_interarrival <= 0.0 {
            return 1.0;
        }
        self.mean_service / self.mean_interarrival
    }
}

/// Maximum utilization admitted before the queue is clamped; an open
/// queue with `rho >= 1` has unbounded delay, but a finite GPU kernel
/// issues a finite request stream, so saturation is modeled as a large,
/// finite backlog rather than infinity.
pub const RHO_CAP: f64 = 0.995;

/// Kingman's mean waiting time for a G/G/1 queue, as printed in the
/// paper's Eq. 9: `W_q ≈ ((c_a + c_s)/2) * (rho/(1-rho)) * tau_a`.
///
/// Utilization is clamped to [`RHO_CAP`] so saturated banks report a
/// large finite queuing delay. Returns 0 for an idle or degenerate queue.
pub fn kingman_waiting_time(q: &GG1Inputs) -> f64 {
    if q.mean_service <= 0.0 || q.mean_interarrival <= 0.0 {
        return 0.0;
    }
    let rho = q.utilization().min(RHO_CAP);
    if rho <= 0.0 {
        return 0.0;
    }
    let variability = (q.cv_interarrival + q.cv_service) / 2.0;
    variability * (rho / (1.0 - rho)) * q.mean_interarrival
}

/// The textbook Kingman form with squared CVs and `tau_s` scaling:
/// `W_q ≈ ((c_a^2 + c_s^2)/2) * (rho/(1-rho)) * tau_s`.
///
/// Exposed so the ablation harness can check the model is not sensitive to
/// which of the two published forms is used.
pub fn kingman_waiting_time_squared(q: &GG1Inputs) -> f64 {
    if q.mean_service <= 0.0 || q.mean_interarrival <= 0.0 {
        return 0.0;
    }
    let rho = q.utilization().min(RHO_CAP);
    if rho <= 0.0 {
        return 0.0;
    }
    let variability = (q.cv_interarrival * q.cv_interarrival + q.cv_service * q.cv_service) / 2.0;
    variability * (rho / (1.0 - rho)) * q.mean_service
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(tau_a: f64, ca: f64, tau_s: f64, cs: f64) -> GG1Inputs {
        GG1Inputs {
            mean_interarrival: tau_a,
            cv_interarrival: ca,
            mean_service: tau_s,
            cv_service: cs,
        }
    }

    #[test]
    fn idle_queue_has_no_delay() {
        // Service much faster than arrivals and deterministic: no queue.
        let q = mk(1000.0, 0.0, 1.0, 0.0);
        assert_eq!(kingman_waiting_time(&q), 0.0);
    }

    #[test]
    fn delay_grows_with_utilization() {
        let lo = kingman_waiting_time(&mk(100.0, 1.0, 20.0, 0.5));
        let hi = kingman_waiting_time(&mk(100.0, 1.0, 80.0, 0.5));
        assert!(hi > lo);
    }

    #[test]
    fn delay_grows_with_burstiness() {
        // The paper's central claim: bursty GPU arrivals (c_a >> 1)
        // queue longer than Markovian ones at equal utilization.
        let markov = kingman_waiting_time(&mk(100.0, 1.0, 50.0, 0.5));
        let bursty = kingman_waiting_time(&mk(100.0, 2.2, 50.0, 0.5));
        assert!(bursty > markov);
        assert!((bursty / markov - (2.2 + 0.5) / 1.5).abs() < 1e-9);
    }

    #[test]
    fn saturation_is_finite() {
        let q = mk(10.0, 1.5, 50.0, 1.0); // rho = 5, heavily saturated
        let w = kingman_waiting_time(&q);
        assert!(w.is_finite());
        assert!(w > 0.0);
    }

    #[test]
    fn squared_form_matches_mm1_limit() {
        // For c_a = c_s = 1 the squared form reduces to the M/M/1 waiting
        // time rho/(1-rho) * tau_s.
        let q = mk(100.0, 1.0, 50.0, 1.0);
        let w = kingman_waiting_time_squared(&q);
        let mm1 = 0.5 / (1.0 - 0.5) * 50.0;
        assert!((w - mm1).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        assert_eq!(kingman_waiting_time(&mk(0.0, 1.0, 10.0, 1.0)), 0.0);
        assert_eq!(kingman_waiting_time(&mk(10.0, 1.0, 0.0, 1.0)), 0.0);
    }
}
