//! Deterministic pseudo-random number generation, in-repo.
//!
//! The workspace's hermetic-build policy (no crates.io dependencies in
//! the default graph) needs a replacement for `rand`: every irregular
//! workload (sparse matrices, neighbor lists, graphs) and every
//! resampling procedure draws from a seeded generator, so builds and
//! tests are bit-reproducible on any machine with no network access.
//!
//! The generator is **xoshiro256++** (Blackman & Vigna), seeded by
//! expanding a 64-bit seed through **SplitMix64** — the standard
//! pairing: SplitMix64 decorrelates low-entropy seeds (consecutive
//! integers, ASCII tags) before they reach the xoshiro state, and
//! xoshiro256++ passes BigCrush while needing four words of state and
//! a handful of ALU ops per draw.
//!
//! The API mirrors the `rand` subset the workspace used: `seed_from_u64`,
//! `gen_range` over integer ranges, `gen_bool`, `gen_f64`, plus
//! `shuffle` and `fill` helpers. **The stream is part of the repo's
//! contract**: generated workloads are checksummed in
//! `hms-kernels/tests/workload_checksums.rs`, so any change to the
//! generator or to how call sites consume it is a deliberate,
//! test-visible event.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Public because the property-test harness also uses it to derive
/// per-case seeds from a base seed.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed via SplitMix64 expansion of a 64-bit seed (never yields the
    /// all-zero state, which xoshiro cannot escape).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The xoshiro256++ core: rotl(s0 + s3, 23) + s0.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`: the top 53 bits over 2^53.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform draw from an integer range, e.g. `rng.gen_range(0..n)`
    /// or `rng.gen_range(-32i64..=32)`. Panics on an empty range, like
    /// `rand`.
    #[inline]
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Unbiased uniform draw in `[0, bound)` by rejection on the widening
    /// multiply (Lemire's method). `bound` must be non-zero.
    #[inline]
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
            // Rejected: retry keeps the distribution exactly uniform.
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.bounded_u64(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Fill a slice with independent draws.
    pub fn fill(&mut self, dest: &mut [u64]) {
        for d in dest {
            *d = self.next_u64();
        }
    }

    /// Fill a slice with uniform `[0, 1)` doubles.
    pub fn fill_f64(&mut self, dest: &mut [f64]) {
        for d in dest {
            *d = self.gen_f64();
        }
    }
}

/// Integer range types accepted by [`Rng::gen_range`].
pub trait UniformRange {
    type Output;
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded_u64(span) as $t
            }
        }
        impl UniformRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.bounded_u64(span + 1) as $t
            }
        }
    )*};
}

impl_uniform_unsigned!(u64, u32, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.bounded_u64(span) as $t)
            }
        }
        impl UniformRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.bounded_u64(span + 1) as $t)
            }
        }
    )*};
}

impl_uniform_signed!(i64 => u64, i32 => u32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors_match_splitmix64() {
        // Canonical SplitMix64 vectors (https://prng.di.unimi.it/splitmix64.c).
        let mut sm = 0u64;
        assert_eq!(splitmix64(&mut sm), 0xE220_A839_7B1D_CDAF);
        let mut sm = 1u64;
        assert_eq!(splitmix64(&mut sm), 0x910A_2DEC_8902_5CC1);
        // And the xoshiro256++ output combiner on the seeded state:
        // rotl(s0 + s3, 23) + s0.
        let mut rng = Rng::seed_from_u64(1);
        let s = rng.s;
        let expect0 = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        assert_eq!(rng.next_u64(), expect0);
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..2000 {
            let x = rng.gen_range(10u64..17);
            assert!((10..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(0usize..3);
            assert!(z < 3);
            let w = rng.gen_range(3u32..=3);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = Rng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..400 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "8-way range not covered in 400 draws"
        );
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6_600..=7_400).contains(&hits), "p=0.7 gave {hits}/10000");
        assert!(!Rng::seed_from_u64(1).gen_bool(0.0));
        assert!(Rng::seed_from_u64(1).gen_bool(1.0));
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50-element shuffle left input in order"
        );
    }

    #[test]
    fn fill_writes_every_slot() {
        let mut rng = Rng::seed_from_u64(13);
        let mut buf = [0u64; 16];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&x| x != 0));
        let mut fs = [0.0f64; 16];
        rng.fill_f64(&mut fs);
        assert!(fs.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn signed_ranges_handle_negative_spans() {
        let mut rng = Rng::seed_from_u64(21);
        let mut saw_neg = false;
        let mut saw_pos = false;
        for _ in 0..500 {
            let x = rng.gen_range(-64i64..=64);
            assert!((-64..=64).contains(&x));
            saw_neg |= x < 0;
            saw_pos |= x > 0;
        }
        assert!(saw_neg && saw_pos);
    }
}
