//! Percentiles and bootstrap confidence intervals.
//!
//! Used by the experiment harness to attach uncertainty to the mean
//! prediction errors it reports: the evaluation suite has 14 points, so
//! the headline averages deserve intervals.

use crate::rng::Rng;

/// Linear-interpolated percentile of a sample, `q` in `[0, 1]`.
///
/// Returns `None` on an empty slice.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(v[lo])
    } else {
        let frac = pos - lo as f64;
        Some(v[lo] * (1.0 - frac) + v[hi] * frac)
    }
}

/// A bootstrap confidence interval for a statistic of the sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    pub lo: f64,
    pub hi: f64,
    /// Point estimate on the original sample.
    pub point: f64,
}

/// Percentile-bootstrap CI for the mean: resample with replacement
/// `resamples` times (seeded, deterministic), take the
/// `[(1-level)/2, (1+level)/2]` percentiles of the resampled means.
pub fn bootstrap_mean_ci(xs: &[f64], level: f64, resamples: u32, seed: u64) -> Option<Interval> {
    if xs.is_empty() || !(0.0..1.0).contains(&level) {
        return None;
    }
    let n = xs.len();
    let point = xs.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return Some(Interval {
            lo: point,
            hi: point,
            point,
        });
    }
    let mut rng = Rng::seed_from_u64(seed);
    let mut means = Vec::with_capacity(resamples as usize);
    for _ in 0..resamples {
        let mut acc = 0.0;
        for _ in 0..n {
            acc += xs[rng.gen_range(0..n)];
        }
        means.push(acc / n as f64);
    }
    let alpha = (1.0 - level) / 2.0;
    Some(Interval {
        lo: percentile(&means, alpha)?,
        hi: percentile(&means, 1.0 - alpha)?,
        point,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 1.0), Some(4.0));
        assert_eq!(percentile(&xs, 0.5), Some(2.5));
        assert_eq!(percentile(&[], 0.5), None);
        // Order-independence.
        let shuffled = [3.0, 1.0, 4.0, 2.0];
        assert_eq!(percentile(&shuffled, 0.5), Some(2.5));
    }

    #[test]
    fn bootstrap_brackets_the_mean() {
        let xs: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
        let ci = bootstrap_mean_ci(&xs, 0.95, 2000, 7).unwrap();
        assert!(ci.lo <= ci.point && ci.point <= ci.hi);
        // Interval is non-degenerate but not absurdly wide.
        assert!(ci.hi - ci.lo > 0.0);
        assert!(ci.hi - ci.lo < 2.0);
    }

    #[test]
    fn bootstrap_is_deterministic_per_seed() {
        let xs = [0.1, 0.5, 0.9, 0.3, 0.7];
        let a = bootstrap_mean_ci(&xs, 0.9, 500, 42).unwrap();
        let b = bootstrap_mean_ci(&xs, 0.9, 500, 42).unwrap();
        assert_eq!(a, b);
        let c = bootstrap_mean_ci(&xs, 0.9, 500, 43).unwrap();
        assert!(a != c || a.point == c.point); // point identical, bounds may differ
    }

    #[test]
    fn degenerate_inputs() {
        assert!(bootstrap_mean_ci(&[], 0.9, 100, 0).is_none());
        assert!(bootstrap_mean_ci(&[1.0, 2.0], 1.5, 100, 0).is_none());
        let one = bootstrap_mean_ci(&[5.0], 0.9, 100, 0).unwrap();
        assert_eq!(one.lo, 5.0);
        assert_eq!(one.hi, 5.0);
    }

    #[test]
    fn narrower_level_gives_narrower_interval() {
        let xs: Vec<f64> = (0..40).map(|i| (i * 37 % 11) as f64).collect();
        let wide = bootstrap_mean_ci(&xs, 0.99, 2000, 1).unwrap();
        let narrow = bootstrap_mean_ci(&xs, 0.5, 2000, 1).unwrap();
        assert!(narrow.hi - narrow.lo < wide.hi - wide.lo);
    }
}
