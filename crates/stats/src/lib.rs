//! # hms-stats
//!
//! The statistics toolbox behind the paper's methodology:
//!
//! * **cosine similarity** — used in Section II-B to select the performance
//!   events most correlated with execution-time variation across data
//!   placements (threshold 0.94);
//! * **descriptive statistics** — mean, standard deviation and the
//!   coefficient of variation `c = sigma / tau` that drives the choice of a
//!   G/G/1 queue over M/M/1 (Section III-C3);
//! * **Kingman's approximation** for the mean waiting time of a G/G/1
//!   queue (Eq. 9–10);
//! * **ordinary least squares** — fits the `T_overlap` regression of
//!   Eq. 11;
//! * **distribution fitting** — exponential fit and empirical-CDF distance
//!   used to reproduce Figure 4's inter-arrival analysis;
//! * **rank statistics** — Spearman correlation and inversion counting for
//!   the PORPLE ranking comparison of Figure 6.
//!
//! Plus the workspace's hermetic-build substrates (no crates.io
//! dependencies in the default graph):
//!
//! * [`rng`] — deterministic xoshiro256++ PRNG with SplitMix64 seeding,
//!   replacing `rand` for every workload generator and resampler;
//! * [`par`] — a scoped, chunk-stealing worker pool over
//!   `std::thread::scope`, replacing `rayon` in the experiment harness
//!   and the placement search;
//! * [`proptest_lite`] — a seeded property-test harness with
//!   shrink-by-bisection and failure-seed reporting, replacing
//!   `proptest` in the three property suites.

pub mod cosine;
pub mod descriptive;
pub mod distribution;
pub mod par;
pub mod proptest_lite;
pub mod queuing;
pub mod rank;
pub mod regression;
pub mod resample;
pub mod rng;

pub use cosine::cosine_similarity;
pub use descriptive::Summary;
pub use distribution::{exp_cdf_distance, fit_exponential_rate, Histogram};
pub use par::{max_threads, par_map, par_map_threads};
pub use queuing::{kingman_waiting_time, GG1Inputs};
pub use rank::{rank_inversions, rank_of, spearman};
pub use regression::{LinearModel, OlsFit};
pub use resample::{bootstrap_mean_ci, percentile, Interval};
pub use rng::Rng;
