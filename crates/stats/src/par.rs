//! A zero-dependency data-parallel map over `std::thread::scope`.
//!
//! Replaces `rayon` in the experiment harness and the placement search:
//! the workspace's hot paths are embarrassingly parallel maps over
//! independent items (placements to rank, suites to simulate), so a
//! chunk-stealing scoped pool covers them without any external crate.
//!
//! Design:
//!
//! * workers share one atomic cursor into the item slice and claim
//!   *chunks* of it (`max(1, n / (threads * 4))`, capped at 64), so
//!   cheap items amortize the atomic traffic while stragglers still
//!   steal work from long tails;
//! * each worker accumulates `(index, result)` pairs locally and the
//!   caller reassembles them by index, so **output order always equals
//!   input order regardless of thread count or scheduling** — parallel
//!   callers are bit-deterministic wherever the mapped function is;
//! * worker panics propagate to the caller (the scope joins all
//!   threads), so a failing item behaves like it would in a plain loop.
//!
//! `HMS_THREADS` caps the pool globally (useful for CI determinism
//! experiments and for sharing machines); `par_map_threads` pins it per
//! call.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count used by [`par_map`]: `HMS_THREADS` if set and non-zero,
/// otherwise `std::thread::available_parallelism`.
pub fn max_threads() -> usize {
    if let Ok(v) = std::env::var("HMS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on up to [`max_threads`] workers, preserving
/// input order in the output.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_threads(max_threads(), items, f)
}

/// [`par_map`] with an explicit worker count (`0` means [`max_threads`]).
///
/// The output is identical for every `threads` value: results are
/// reassembled by item index, so thread scheduling never reorders them.
pub fn par_map_threads<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = if threads == 0 { max_threads() } else { threads };
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.min(n);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk = (n / (workers * 4)).clamp(1, 64);
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    for (i, item) in items[start..end].iter().enumerate() {
                        local.push((start + i, f(item)));
                    }
                }
                collected
                    .lock()
                    .expect("no poisoned par_map worker")
                    .extend(local);
            });
        }
    });
    let mut pairs = collected.into_inner().expect("all workers joined");
    debug_assert_eq!(pairs.len(), n);
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// [`par_map_threads`] with per-*item* work stealing: workers claim one
/// item at a time off the shared cursor instead of a chunk. For coarse,
/// unevenly-sized units (lane batches spanning different skeleton
/// groups, whole benchmark suites) chunked claiming can strand a long
/// tail behind one worker; stealing single units keeps every worker
/// busy until the queue drains. Output order equals input order for
/// every worker count, exactly like [`par_map_threads`].
pub fn par_map_steal<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = if threads == 0 { max_threads() } else { threads };
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.min(n);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                collected
                    .lock()
                    .expect("no poisoned par_map worker")
                    .extend(local);
            });
        }
    });
    let mut pairs = collected.into_inner().expect("all workers joined");
    debug_assert_eq!(pairs.len(), n);
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steal_matches_sequential_map() {
        let items: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8] {
            let par = par_map_steal(threads, &items, |x| x * 3 + 1);
            assert_eq!(par, seq, "threads = {threads}");
        }
        assert!(par_map_steal(2, &Vec::<u32>::new(), |x| *x).is_empty());
    }

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8] {
            let par = par_map_threads(threads, &items, |x| x * x + 1);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn preserves_order_with_uneven_work() {
        // Early items are the slowest: a naive collect-in-completion-order
        // pool would reverse them.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map_threads(4, &items, |&x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |x| *x).is_empty());
        assert_eq!(par_map(&[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn zero_thread_request_falls_back_to_auto() {
        let items: Vec<u32> = (0..10).collect();
        assert_eq!(par_map_threads(0, &items, |x| *x), items);
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..100).collect();
        let _ = par_map_threads(4, &items, |&x| {
            assert!(x != 50, "boom");
            x
        });
    }
}
