//! A minimal in-repo property-testing harness.
//!
//! Replaces `proptest` for the workspace's three property suites so the
//! default build is hermetic. It keeps the three properties that made
//! those suites worth having:
//!
//! 1. **seeded case generation** — every case draws its input from a
//!    [`Rng`](crate::rng::Rng) seeded by `SplitMix64(base_seed, index)`,
//!    so a failing case is reproducible from its printed seed alone, no
//!    persistence files needed;
//! 2. **shrinking by bisection** — on failure the harness asks the
//!    caller's shrinker for simpler candidates (halves, chunk deletions,
//!    element simplifications — see [`shrink_vec`]) and recurses on the
//!    first one that still fails, reporting a (locally) minimal input;
//! 3. **failure-seed reporting** — the panic message carries the case
//!    seed and the `HMS_PROPTEST_SEED` / `HMS_PROPTEST_CASES` overrides
//!    that replay exactly that input.
//!
//! ```no_run
//! use hms_stats::proptest_lite::{check, Config};
//!
//! check("sum_is_commutative", &Config::default(), |rng| {
//!     let a = rng.gen_range(0u64..1000);
//!     let b = rng.gen_range(0u64..1000);
//!     (a, b)
//! }, |&(a, b)| {
//!     if a + b == b + a { Ok(()) } else { Err("addition broke".into()) }
//! });
//! ```
//!
//! Generators are plain closures over `&mut Rng` — no strategy
//! combinator DSL. `prop_assume`-style filtering is a loop in the
//! generator (regenerate until valid); the harness bounds nothing there,
//! so keep acceptance rates high.

use crate::rng::{splitmix64, Rng};

/// Harness configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of cases to run (`HMS_PROPTEST_CASES` overrides).
    pub cases: u32,
    /// Base seed; each case `i` derives `splitmix64(base ^ i)`
    /// (`HMS_PROPTEST_SEED` overrides, and pins `cases` to 1 unless
    /// `HMS_PROPTEST_CASES` is also set).
    pub seed: u64,
    /// Cap on shrink iterations (each iteration tries every candidate of
    /// the current witness once).
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            seed: 0x484D_5350,
            max_shrink_iters: 200,
        }
    }
}

impl Config {
    /// A config running `cases` cases with the default seed.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Resolved (seed, cases) after environment overrides.
fn resolve(cfg: &Config) -> (u64, u32, bool) {
    match env_u64("HMS_PROPTEST_SEED") {
        Some(seed) => {
            let cases = env_u64("HMS_PROPTEST_CASES").map(|c| c as u32).unwrap_or(1);
            (seed, cases, true)
        }
        None => {
            let cases = env_u64("HMS_PROPTEST_CASES")
                .map(|c| c as u32)
                .unwrap_or(cfg.cases);
            (cfg.seed, cases, false)
        }
    }
}

/// Run `prop` on `cases` generated inputs; panic with a reproducible
/// report on the first failure. No shrinking — see [`check_shrink`].
pub fn check<T, G, P>(name: &str, cfg: &Config, gen: G, prop: P)
where
    T: std::fmt::Debug,
    G: Fn(&mut Rng) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    check_shrink(name, cfg, gen, |_| Vec::new(), prop);
}

/// [`check`] with a shrinker: on failure, `shrink` proposes simpler
/// variants of the witness and the harness recurses on the first variant
/// that still fails, up to `cfg.max_shrink_iters` rounds.
pub fn check_shrink<T, G, S, P>(name: &str, cfg: &Config, gen: G, shrink: S, prop: P)
where
    T: std::fmt::Debug,
    G: Fn(&mut Rng) -> T,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    let (base_seed, cases, seed_pinned) = resolve(cfg);
    for i in 0..cases {
        // With a pinned seed, replay it exactly; otherwise derive an
        // independent stream per case so one seed reproduces one case.
        let case_seed = if seed_pinned && cases == 1 {
            base_seed
        } else {
            let mut s = base_seed ^ u64::from(i);
            splitmix64(&mut s)
        };
        let mut rng = Rng::seed_from_u64(case_seed);
        let input = gen(&mut rng);
        if let Err(msg) = prop(&input) {
            let (witness, final_msg, rounds) =
                shrink_failure(input, msg, &shrink, &prop, cfg.max_shrink_iters);
            panic!(
                "property '{name}' failed (case {i}/{cases}, seed {case_seed:#018x}, \
                 {rounds} shrink rounds)\n  failure: {final_msg}\n  minimal witness: \
                 {witness:#?}\n  replay: HMS_PROPTEST_SEED={case_seed} cargo test {name}"
            );
        }
    }
}

/// Greedy shrink loop: repeatedly move to the first failing candidate.
fn shrink_failure<T, S, P>(
    mut witness: T,
    mut msg: String,
    shrink: &S,
    prop: &P,
    max_iters: u32,
) -> (T, String, u32)
where
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    let mut rounds = 0;
    'outer: for _ in 0..max_iters {
        for cand in shrink(&witness) {
            if let Err(m) = prop(&cand) {
                witness = cand;
                msg = m;
                rounds += 1;
                continue 'outer;
            }
        }
        break;
    }
    (witness, msg, rounds)
}

/// Bisection-style shrink candidates for a vector input, simplest first:
/// the two halves, then the vector with one quarter-chunk deleted, then
/// single-element deletions (only for short vectors, to bound the
/// candidate count).
pub fn shrink_vec<T: Clone>(v: &[T]) -> Vec<Vec<T>> {
    let n = v.len();
    let mut out = Vec::new();
    if n <= 1 {
        return out;
    }
    out.push(v[..n / 2].to_vec());
    out.push(v[n / 2..].to_vec());
    let quarter = (n / 4).max(1);
    if quarter < n {
        let mut start = 0;
        while start < n {
            let end = (start + quarter).min(n);
            if (start, end) != (0, n) {
                let mut w = Vec::with_capacity(n - (end - start));
                w.extend_from_slice(&v[..start]);
                w.extend_from_slice(&v[end..]);
                out.push(w);
            }
            start = end;
        }
    }
    if n <= 16 {
        for i in 0..n {
            let mut w = v.to_vec();
            w.remove(i);
            out.push(w);
        }
    }
    out
}

/// Generate-until-accepted helper for `prop_assume`-style constraints.
/// Panics after `limit` rejections (a generator that can't hit its
/// constraint is a bug, not a skip).
pub fn gen_where<T>(
    rng: &mut Rng,
    limit: u32,
    gen: impl Fn(&mut Rng) -> T,
    accept: impl Fn(&T) -> bool,
) -> T {
    for _ in 0..limit {
        let x = gen(rng);
        if accept(&x) {
            return x;
        }
    }
    panic!("gen_where: no accepted value in {limit} attempts");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        check(
            "counts_cases",
            &Config::with_cases(17),
            |rng| rng.gen_range(0u64..100),
            |_| {
                counter.set(counter.get() + 1);
                Ok(())
            },
        );
        assert_eq!(counter.get(), 17);
    }

    #[test]
    fn failing_property_reports_seed_and_witness() {
        let result = std::panic::catch_unwind(|| {
            check(
                "finds_big_values",
                &Config::with_cases(64),
                |rng| rng.gen_range(0u64..1000),
                |&x| {
                    if x < 900 {
                        Ok(())
                    } else {
                        Err(format!("{x} too big"))
                    }
                },
            );
        });
        let msg = *result
            .expect_err("property must fail")
            .downcast::<String>()
            .unwrap();
        assert!(msg.contains("finds_big_values"), "message: {msg}");
        assert!(msg.contains("HMS_PROPTEST_SEED="), "message: {msg}");
        assert!(msg.contains("too big"), "message: {msg}");
    }

    #[test]
    fn generation_is_deterministic_per_config() {
        let collect = |seed: u64| {
            let vals = std::cell::RefCell::new(Vec::new());
            check(
                "collects",
                &Config {
                    cases: 10,
                    seed,
                    ..Config::default()
                },
                |rng| rng.gen_range(0u64..u64::MAX / 2),
                |&x| {
                    vals.borrow_mut().push(x);
                    Ok(())
                },
            );
            vals.into_inner()
        };
        assert_eq!(collect(1), collect(1));
        assert_ne!(collect(1), collect(2));
    }

    #[test]
    fn shrinking_minimizes_vector_witnesses() {
        // Property: no element is >= 100. Failure witness should shrink
        // to a single offending element.
        let result = std::panic::catch_unwind(|| {
            check_shrink(
                "shrinks_to_one",
                &Config::with_cases(64),
                |rng| {
                    let n = rng.gen_range(1usize..40);
                    (0..n).map(|_| rng.gen_range(0u64..128)).collect::<Vec<_>>()
                },
                |v| shrink_vec(v),
                |v| {
                    if v.iter().all(|&x| x < 100) {
                        Ok(())
                    } else {
                        Err("element >= 100".into())
                    }
                },
            );
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        // The minimal witness is one element, printed on its own lines.
        let witness_block = msg
            .split("minimal witness:")
            .nth(1)
            .expect("witness in message");
        let elements = witness_block
            .split("replay:")
            .next()
            .unwrap()
            .matches(|c: char| c == ',')
            .count();
        assert!(elements <= 1, "witness not minimal: {msg}");
    }

    #[test]
    fn shrink_vec_candidates_are_strictly_smaller() {
        let v: Vec<u32> = (0..20).collect();
        for cand in shrink_vec(&v) {
            assert!(cand.len() < v.len());
        }
        assert!(shrink_vec::<u32>(&[]).is_empty());
        assert!(shrink_vec(&[1u32]).is_empty());
    }

    #[test]
    fn gen_where_filters() {
        let mut rng = Rng::seed_from_u64(2);
        let x = gen_where(&mut rng, 1000, |r| r.gen_range(0u64..100), |&x| x % 7 == 0);
        assert_eq!(x % 7, 0);
    }
}
