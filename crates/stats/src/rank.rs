//! Rank statistics for the PORPLE comparison (Figure 6).
//!
//! PORPLE "aims to rank performance of different data placements instead
//! of predicting execution time"; Figure 6 checks whether each model's
//! predicted ranking matches the measured ranking. We quantify agreement
//! with Spearman correlation and the number of pairwise inversions.

/// Ranks of the values in `xs` (0 = smallest). Ties receive distinct ranks
/// in input order, which is adequate for strictly-ordered execution times.
pub fn rank_of(xs: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in ranking input"));
    let mut ranks = vec![0usize; xs.len()];
    for (rank, &i) in idx.iter().enumerate() {
        ranks[i] = rank;
    }
    ranks
}

/// Spearman rank correlation between two paired samples.
///
/// Returns `None` for mismatched lengths or fewer than 2 points.
pub fn spearman(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let ra = rank_of(a);
    let rb = rank_of(b);
    let n = a.len() as f64;
    let d2: f64 = ra
        .iter()
        .zip(&rb)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum();
    Some(1.0 - 6.0 * d2 / (n * (n * n - 1.0)))
}

/// Number of discordant pairs between the ranking induced by `predicted`
/// and the one induced by `measured` — 0 means the model ranks the
/// placements exactly as the hardware does.
pub fn rank_inversions(predicted: &[f64], measured: &[f64]) -> usize {
    assert_eq!(predicted.len(), measured.len());
    let n = predicted.len();
    let mut inversions = 0;
    for i in 0..n {
        for j in i + 1..n {
            let p = predicted[i].partial_cmp(&predicted[j]).expect("NaN");
            let m = measured[i].partial_cmp(&measured[j]).expect("NaN");
            if p != std::cmp::Ordering::Equal && m != std::cmp::Ordering::Equal && p != m {
                inversions += 1;
            }
        }
    }
    inversions
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_positional() {
        assert_eq!(rank_of(&[30.0, 10.0, 20.0]), vec![2, 0, 1]);
    }

    #[test]
    fn perfect_agreement() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(rank_inversions(&a, &b), 0);
    }

    #[test]
    fn perfect_disagreement() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [40.0, 30.0, 20.0, 10.0];
        assert!((spearman(&a, &b).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(rank_inversions(&a, &b), 6); // all C(4,2) pairs flipped
    }

    #[test]
    fn single_swap_costs_one_inversion() {
        let measured = [1.0, 2.0, 3.0];
        let predicted = [1.0, 3.0, 2.0];
        assert_eq!(rank_inversions(&predicted, &measured), 1);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(spearman(&[1.0], &[1.0]).is_none());
        assert!(spearman(&[1.0, 2.0], &[1.0]).is_none());
    }
}
