//! Cosine similarity between a performance-event vector and the
//! execution-time vector (paper Section II-B).
//!
//! For a kernel with `N` data placements the paper builds a length-`N`
//! *time vector* and one length-`N` vector per hardware performance event,
//! then keeps the events whose cosine similarity with the time vector
//! exceeds 0.94 — those become the model's critical indicators
//! (`issue_slots`, `inst_issued`, `inst_integer`, `ldst_issue`,
//! `L2_transactions`).

/// Cosine similarity of two equal-length vectors.
///
/// Returns `None` when the vectors differ in length or either has zero
/// magnitude (the similarity is undefined there; the paper's event vectors
/// are non-negative counts, so a zero vector means the event never fired).
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.is_empty() {
        return None;
    }
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        return None;
    }
    Some(dot / (na.sqrt() * nb.sqrt()))
}

/// The paper's event-selection threshold: events with similarity above
/// 0.94 are considered strongly correlated with the time variation.
pub const PAPER_THRESHOLD: f64 = 0.94;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_are_one() {
        let v = [1.0, 2.0, 3.0];
        let s = cosine_similarity(&v, &v).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_vectors_are_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0];
        let s = cosine_similarity(&a, &b).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_vectors_are_zero() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!(cosine_similarity(&a, &b).unwrap().abs() < 1e-12);
    }

    #[test]
    fn mismatched_or_degenerate_inputs() {
        assert_eq!(cosine_similarity(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(cosine_similarity(&[], &[]), None);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn similarity_tracks_shape_not_scale() {
        // An event that follows time closely scores higher than one that
        // varies independently.
        let time = [10.0, 20.0, 15.0, 40.0];
        let follower = [11.0, 19.0, 16.0, 41.0];
        let noise = [30.0, 5.0, 40.0, 10.0];
        let s_f = cosine_similarity(&time, &follower).unwrap();
        let s_n = cosine_similarity(&time, &noise).unwrap();
        assert!(s_f > PAPER_THRESHOLD);
        assert!(s_n < s_f);
    }
}
