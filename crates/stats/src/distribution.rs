//! Distribution analysis for Figure 4: do memory-request inter-arrival
//! times follow an exponential (Markov) distribution?
//!
//! The paper collects per-bank inter-arrival times, fits the maximum-
//! likelihood exponential, and compares the empirical distribution against
//! it — concluding that md and matrixMul are far from exponential (bursty
//! arrivals, `c_a` up to 2.22) while spmv approximately follows it.

/// Maximum-likelihood rate of an exponential distribution: `1 / mean`.
///
/// Returns `None` for an empty sample or a non-positive mean.
pub fn fit_exponential_rate(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if mean <= 0.0 {
        return None;
    }
    Some(1.0 / mean)
}

/// Kolmogorov–Smirnov distance between the empirical CDF of `xs` and the
/// exponential CDF with `rate`: `sup_x |F_n(x) - (1 - e^{-rate x})|`.
///
/// A small distance means the sample is compatible with a Markov arrival
/// stream; the paper's bursty kernels produce large distances.
pub fn exp_cdf_distance(xs: &[f64], rate: f64) -> f64 {
    if xs.is_empty() || rate <= 0.0 {
        return 1.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let n = sorted.len() as f64;
    let mut sup = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let model = 1.0 - (-rate * x).exp();
        // Empirical CDF jumps at x: check both the pre- and post-jump gap.
        let lo = i as f64 / n;
        let hi = (i as f64 + 1.0) / n;
        sup = sup.max((model - lo).abs()).max((hi - model).abs());
    }
    sup
}

/// A fixed-width histogram over `[0, max)` used to print Figure 4's
/// measured-vs-theoretical distribution series.
#[derive(Debug, Clone)]
pub struct Histogram {
    pub bin_width: f64,
    pub counts: Vec<u64>,
    pub total: u64,
    /// Samples at or beyond the last bin edge.
    pub overflow: u64,
}

impl Histogram {
    /// Build a histogram with `bins` bins of width `bin_width`.
    pub fn build(xs: &[f64], bin_width: f64, bins: usize) -> Histogram {
        assert!(bin_width > 0.0 && bins > 0);
        let mut counts = vec![0u64; bins];
        let mut overflow = 0u64;
        for &x in xs {
            let idx = (x / bin_width).floor();
            if idx >= 0.0 && (idx as usize) < bins {
                counts[idx as usize] += 1;
            } else {
                overflow += 1;
            }
        }
        Histogram {
            bin_width,
            counts,
            total: xs.len() as u64,
            overflow,
        }
    }

    /// Fraction of samples in bin `i`.
    pub fn density(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// The probability mass an exponential with `rate` puts in bin `i` —
    /// the "theoretical" series of Figure 4.
    pub fn exp_mass(&self, i: usize, rate: f64) -> f64 {
        let lo = i as f64 * self.bin_width;
        let hi = lo + self.bin_width;
        (-rate * lo).exp() - (-rate * hi).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic Exp(rate) sample via inverse-CDF over a uniform grid.
    fn exp_sample(rate: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                -(1.0 - u).ln() / rate
            })
            .collect()
    }

    #[test]
    fn ml_rate_is_inverse_mean() {
        let xs = [2.0, 4.0, 6.0];
        assert!((fit_exponential_rate(&xs).unwrap() - 0.25).abs() < 1e-12);
        assert!(fit_exponential_rate(&[]).is_none());
        assert!(fit_exponential_rate(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn exponential_sample_has_small_ks_distance() {
        let xs = exp_sample(0.1, 5000);
        let rate = fit_exponential_rate(&xs).unwrap();
        let d = exp_cdf_distance(&xs, rate);
        assert!(d < 0.02, "d = {d}");
    }

    #[test]
    fn bursty_sample_has_large_ks_distance() {
        // Clumped arrivals: 90% tiny gaps, 10% huge gaps — the GPU pattern
        // the paper describes ("memory requests tend to arrive in clumps").
        let mut xs = vec![1.0; 900];
        xs.extend(vec![500.0; 100]);
        let rate = fit_exponential_rate(&xs).unwrap();
        let d = exp_cdf_distance(&xs, rate);
        assert!(d > 0.3, "d = {d}");
    }

    #[test]
    fn histogram_masses_sum_to_total() {
        let xs = [0.5, 1.5, 2.5, 3.5, 100.0];
        let h = Histogram::build(&xs, 1.0, 4);
        assert_eq!(h.counts, vec![1, 1, 1, 1]);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.total, 5);
        assert!((h.density(0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn exp_mass_sums_to_one_over_all_bins() {
        let h = Histogram::build(&[0.1], 0.5, 100);
        let total: f64 = (0..100).map(|i| h.exp_mass(i, 0.5)).sum();
        // 100 bins * 0.5 width at rate 0.5 covers 1 - e^{-25} ~ 1.
        assert!((total - 1.0).abs() < 1e-9);
    }
}
