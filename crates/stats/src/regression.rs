//! Ordinary least squares for the `T_overlap` model (paper Eq. 11).
//!
//! The overlap ratio is a linear function of memory-event ratios plus a
//! warp-count term and a constant. "Those coefficients and the constant
//! factor are derived using linear regression with a set of benchmarks."
//!
//! The solver forms the normal equations and solves them by Gaussian
//! elimination with partial pivoting; a small ridge term is added when the
//! system is near-singular (training placements can produce collinear
//! event columns, e.g. a benchmark that never touches texture memory).

use hms_types::HmsError;

/// A fitted linear model `y = w . x + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Intercept (the paper's constant factor `c`).
    pub intercept: f64,
}

impl LinearModel {
    /// Predict the response for one feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.weights.len());
        self.intercept + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>()
    }
}

/// Result of an OLS fit, with training diagnostics.
#[derive(Debug, Clone)]
pub struct OlsFit {
    pub model: LinearModel,
    /// Coefficient of determination on the training set.
    pub r_squared: f64,
    /// Root-mean-square training residual.
    pub rmse: f64,
}

impl OlsFit {
    /// Fit `y ≈ X w + b` by least squares.
    ///
    /// `rows` are feature vectors (all the same length), `ys` the
    /// responses. `ridge` (lambda >= 0) adds Tikhonov regularization on the
    /// weights (not the intercept); pass 0 for pure OLS.
    pub fn fit(rows: &[Vec<f64>], ys: &[f64], ridge: f64) -> Result<OlsFit, HmsError> {
        if rows.len() != ys.len() {
            return Err(HmsError::InvalidInput(format!(
                "{} feature rows but {} responses",
                rows.len(),
                ys.len()
            )));
        }
        if rows.is_empty() {
            return Err(HmsError::InvalidInput("empty training set".into()));
        }
        let d = rows[0].len();
        if rows.iter().any(|r| r.len() != d) {
            return Err(HmsError::InvalidInput("ragged feature rows".into()));
        }
        // NaN/Inf anywhere in the training set poisons the normal
        // equations silently (a NaN pivot passes the singularity check
        // because every NaN comparison is false) — reject at the door.
        for (i, row) in rows.iter().enumerate() {
            if let Some(&value) = row.iter().find(|v| !v.is_finite()) {
                return Err(HmsError::NonFiniteRatio {
                    name: "ols feature",
                    value,
                });
            }
            if !ys[i].is_finite() {
                return Err(HmsError::NonFiniteRatio {
                    name: "ols response",
                    value: ys[i],
                });
            }
        }
        let n = rows.len();
        let p = d + 1; // + intercept column

        // Normal equations A = X'X (p x p), v = X'y, with the intercept as
        // a trailing all-ones column.
        let mut a = vec![0.0f64; p * p];
        let mut v = vec![0.0f64; p];
        let feature = |row: &[f64], j: usize| if j == d { 1.0 } else { row[j] };
        for (row, &y) in rows.iter().zip(ys) {
            for i in 0..p {
                let xi = feature(row, i);
                v[i] += xi * y;
                for j in i..p {
                    a[i * p + j] += xi * feature(row, j);
                }
            }
        }
        // Mirror the upper triangle and apply ridge to the weight block.
        for i in 0..p {
            for j in 0..i {
                a[i * p + j] = a[j * p + i];
            }
        }
        for i in 0..d {
            a[i * p + i] += ridge;
        }

        let coeffs = solve_linear(&mut a, &mut v, p).or_else(|_| {
            // Near-singular: retry with a proportionate ridge.
            let mut a2 = vec![0.0f64; p * p];
            let mut v2 = vec![0.0f64; p];
            for (row, &y) in rows.iter().zip(ys) {
                for i in 0..p {
                    let xi = feature(row, i);
                    v2[i] += xi * y;
                    for j in 0..p {
                        a2[i * p + j] += xi * feature(row, j);
                    }
                }
            }
            let scale = (0..d)
                .map(|i| a2[i * p + i])
                .fold(0.0f64, f64::max)
                .max(1.0);
            for i in 0..d {
                a2[i * p + i] += 1e-6 * scale;
            }
            solve_linear(&mut a2, &mut v2, p)
        })?;
        // Belt and braces: finite inputs can still overflow to Inf in
        // the normal equations (huge, near-collinear columns). A model
        // with non-finite coefficients must never leave this function.
        if let Some(&value) = coeffs.iter().find(|c| !c.is_finite()) {
            return Err(HmsError::NonFiniteRatio {
                name: "ols coefficient",
                value,
            });
        }

        let model = LinearModel {
            weights: coeffs[..d].to_vec(),
            intercept: coeffs[d],
        };

        // Diagnostics.
        let y_mean = ys.iter().sum::<f64>() / n as f64;
        let mut ss_res = 0.0;
        let mut ss_tot = 0.0;
        for (row, &y) in rows.iter().zip(ys) {
            let e = y - model.predict(row);
            ss_res += e * e;
            ss_tot += (y - y_mean) * (y - y_mean);
        }
        let r_squared = if ss_tot == 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };
        Ok(OlsFit {
            model,
            r_squared,
            rmse: (ss_res / n as f64).sqrt(),
        })
    }
}

/// Forward-stepwise OLS with leave-one-out cross-validation.
///
/// Starting from an intercept-only model, greedily adds the feature that
/// most reduces the LOO mean-squared error; stops when no candidate
/// improves it. Unselected features receive weight 0. With few training
/// observations relative to features (the `T_overlap` situation: ~38
/// placements, 10 candidate events), full OLS extrapolates wildly on
/// out-of-distribution inputs; stepwise selection trades a little bias
/// for much lower variance.
pub fn stepwise_fit(rows: &[Vec<f64>], ys: &[f64], ridge: f64) -> Result<OlsFit, HmsError> {
    let groups: Vec<u64> = (0..rows.len() as u64).collect();
    stepwise_fit_grouped(rows, ys, &groups, ridge)
}

/// [`stepwise_fit`] with *grouped* cross-validation: observations sharing
/// a group id are held out together.
///
/// Essential when observations cluster (the `T_overlap` training set has
/// many near-identical placements of the same kernel): plain LOO then
/// measures interpolation within a kernel, while the model must
/// generalize *across* kernels. Leave-one-group-out holds out whole
/// kernels.
pub fn stepwise_fit_grouped(
    rows: &[Vec<f64>],
    ys: &[f64],
    groups: &[u64],
    ridge: f64,
) -> Result<OlsFit, HmsError> {
    stepwise_fit_grouped_bounded(rows, ys, groups, ridge, usize::MAX)
}

/// [`stepwise_fit_grouped`] with a cap on how many features may enter —
/// a variance budget for very small training sets.
pub fn stepwise_fit_grouped_bounded(
    rows: &[Vec<f64>],
    ys: &[f64],
    groups: &[u64],
    ridge: f64,
    max_features: usize,
) -> Result<OlsFit, HmsError> {
    let all: Vec<usize> = (0..rows.first().map_or(0, |r| r.len())).collect();
    stepwise_fit_candidates(rows, ys, groups, ridge, &all, max_features)
}

/// [`stepwise_fit_grouped_bounded`] restricted to an explicit candidate
/// feature set — lets the caller impose a prior on which features are
/// allowed to enter at all.
pub fn stepwise_fit_candidates(
    rows: &[Vec<f64>],
    ys: &[f64],
    groups: &[u64],
    ridge: f64,
    candidates: &[usize],
    max_features: usize,
) -> Result<OlsFit, HmsError> {
    stepwise_fit_seeded(rows, ys, groups, ridge, &[], candidates, max_features)
}

/// [`stepwise_fit_candidates`] with a set of *seed* features that are
/// always included (a structural prior), after which the remaining
/// candidates compete under cross-validation.
pub fn stepwise_fit_seeded(
    rows: &[Vec<f64>],
    ys: &[f64],
    groups: &[u64],
    ridge: f64,
    seed: &[usize],
    candidates: &[usize],
    max_features: usize,
) -> Result<OlsFit, HmsError> {
    if rows.is_empty() || rows.len() != ys.len() || rows.len() != groups.len() {
        return Err(HmsError::InvalidInput("bad stepwise training set".into()));
    }
    let d = rows[0].len();
    let n = rows.len();
    let mut distinct_groups: Vec<u64> = groups.to_vec();
    distinct_groups.sort_unstable();
    distinct_groups.dedup();

    let project =
        |cols: &[usize], row: &[f64]| -> Vec<f64> { cols.iter().map(|&c| row[c]).collect() };
    // Leave-one-group-out MSE of an OLS fit restricted to `cols`.
    let loo = |cols: &[usize]| -> Option<f64> {
        let mut se = 0.0;
        for &held in &distinct_groups {
            let train_rows: Vec<Vec<f64>> = rows
                .iter()
                .zip(groups)
                .filter(|(_, g)| **g != held)
                .map(|(r, _)| project(cols, r))
                .collect();
            if train_rows.len() < cols.len() + 2 {
                return None;
            }
            let train_ys: Vec<f64> = ys
                .iter()
                .zip(groups)
                .filter(|(_, g)| **g != held)
                .map(|(&y, _)| y)
                .collect();
            let fit = OlsFit::fit(&train_rows, &train_ys, ridge).ok()?;
            for (i, g) in groups.iter().enumerate() {
                if *g == held {
                    let e = ys[i] - fit.model.predict(&project(cols, &rows[i]));
                    se += e * e;
                }
            }
        }
        Some(se / n as f64)
    };

    // A feature must buy a *substantial* cross-validated improvement to
    // enter: marginal gains on ~10 groups are indistinguishable from
    // noise and anti-generalize.
    const MIN_IMPROVEMENT: f64 = 0.90;
    let mut selected: Vec<usize> = seed.to_vec();
    let mut best_mse =
        loo(&selected).ok_or_else(|| HmsError::Numerical("seeded stepwise fit failed".into()))?;
    while selected.len() < max_features {
        let mut best_candidate: Option<(usize, f64)> = None;
        for &c in candidates {
            debug_assert!(c < d, "candidate feature out of range");
            if selected.contains(&c) {
                continue;
            }
            let mut cols = selected.clone();
            cols.push(c);
            if let Some(mse) = loo(&cols) {
                if mse < best_mse * MIN_IMPROVEMENT && best_candidate.is_none_or(|(_, m)| mse < m) {
                    best_candidate = Some((c, mse));
                }
            }
        }
        match best_candidate {
            Some((c, mse)) => {
                selected.push(c);
                best_mse = mse;
            }
            None => break,
        }
    }

    // Final fit on the selected columns, expanded back to full width.
    let train_rows: Vec<Vec<f64>> = rows.iter().map(|r| project(&selected, r)).collect();
    let fit = OlsFit::fit(&train_rows, ys, ridge)?;
    let mut weights = vec![0.0; d];
    for (i, &c) in selected.iter().enumerate() {
        weights[c] = fit.model.weights[i];
    }
    Ok(OlsFit {
        model: LinearModel {
            weights,
            intercept: fit.model.intercept,
        },
        r_squared: fit.r_squared,
        rmse: fit.rmse,
    })
}

/// Solve `A x = b` in place (row-major `A`, size `n x n`) by Gaussian
/// elimination with partial pivoting.
fn solve_linear(a: &mut [f64], b: &mut [f64], n: usize) -> Result<Vec<f64>, HmsError> {
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        let mut best = a[col * n + col].abs();
        for row in col + 1..n {
            let mag = a[row * n + col].abs();
            if mag > best {
                best = mag;
                pivot = row;
            }
        }
        // `!(best >= 1e-12)` instead of `best < 1e-12`: a NaN diagonal
        // (possible when callers bypass `fit`'s input screen) fails
        // every ordered comparison and would otherwise be "pivotable".
        if !(best >= 1e-12) {
            return Err(HmsError::Numerical("singular normal equations".into()));
        }
        if pivot != col {
            for k in 0..n {
                a.swap(pivot * n + k, col * n + k);
            }
            b.swap(pivot, col);
        }
        // Eliminate below.
        let diag = a[col * n + col];
        for row in col + 1..n {
            let f = a[row * n + col] / diag;
            if f == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= f * a[col * n + k];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col * n + k] * x[k];
        }
        x[col] = acc / a[col * n + col];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relation() {
        // y = 2 x0 - 3 x1 + 0.5
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - 3.0 * r[1] + 0.5).collect();
        let fit = OlsFit::fit(&rows, &ys, 0.0).unwrap();
        assert!((fit.model.weights[0] - 2.0).abs() < 1e-8);
        assert!((fit.model.weights[1] + 3.0).abs() < 1e-8);
        assert!((fit.model.intercept - 0.5).abs() < 1e-8);
        assert!(fit.r_squared > 0.999999);
        assert!(fit.rmse < 1e-8);
    }

    #[test]
    fn handles_collinear_column_via_ridge_fallback() {
        // Second column is identically zero (a benchmark set that never
        // touches texture memory) — pure OLS is singular.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 0.0]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| 4.0 * r[0] + 1.0).collect();
        let fit = OlsFit::fit(&rows, &ys, 0.0).unwrap();
        assert!((fit.model.weights[0] - 4.0).abs() < 1e-3);
        assert!(fit.model.weights[1].abs() < 1e-3);
    }

    #[test]
    fn rejects_ragged_and_empty_inputs() {
        assert!(OlsFit::fit(&[], &[], 0.0).is_err());
        let rows = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(OlsFit::fit(&rows, &[1.0, 2.0], 0.0).is_err());
        let rows = vec![vec![1.0]];
        assert!(OlsFit::fit(&rows, &[1.0, 2.0], 0.0).is_err());
    }

    #[test]
    fn rejects_non_finite_inputs_with_typed_error() {
        let rows = vec![vec![1.0, f64::NAN], vec![2.0, 3.0]];
        assert!(matches!(
            OlsFit::fit(&rows, &[1.0, 2.0], 0.0),
            Err(HmsError::NonFiniteRatio {
                name: "ols feature",
                ..
            })
        ));
        let rows = vec![vec![1.0], vec![f64::INFINITY]];
        assert!(matches!(
            OlsFit::fit(&rows, &[1.0, 2.0], 0.0),
            Err(HmsError::NonFiniteRatio { .. })
        ));
        let rows = vec![vec![1.0], vec![2.0]];
        assert!(matches!(
            OlsFit::fit(&rows, &[1.0, f64::NAN], 0.0),
            Err(HmsError::NonFiniteRatio {
                name: "ols response",
                ..
            })
        ));
    }

    #[test]
    fn constant_column_is_fit_not_nan() {
        // A constant non-zero column is collinear with the intercept;
        // the fit must come back finite (ridge fallback), never NaN.
        let rows: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64, 7.0]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0).collect();
        let fit = OlsFit::fit(&rows, &ys, 0.0).unwrap();
        assert!(fit.model.weights.iter().all(|w| w.is_finite()));
        assert!(fit.model.intercept.is_finite());
        assert!((fit.model.weights[0] - 3.0).abs() < 1e-3);
        for row in &rows {
            assert!(fit.model.predict(row).is_finite());
        }
    }

    #[test]
    fn nan_pivot_is_singular_not_pivotable() {
        // Drive solve_linear directly with a NaN diagonal: every ordered
        // comparison on NaN is false, so the old `best < 1e-12` check
        // called it pivotable and produced NaN coefficients.
        let mut a = vec![f64::NAN, 0.0, 0.0, f64::NAN];
        let mut b = vec![1.0, 1.0];
        assert!(matches!(
            solve_linear(&mut a, &mut b, 2),
            Err(HmsError::Numerical(_))
        ));
    }

    #[test]
    fn noisy_fit_has_sane_diagnostics() {
        // y = x + deterministic "noise" in [-0.5, 0.5].
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..50)
            .map(|i| i as f64 + (((i * 37) % 11) as f64 / 11.0 - 0.5))
            .collect();
        let fit = OlsFit::fit(&rows, &ys, 0.0).unwrap();
        assert!(fit.r_squared > 0.99);
        assert!(fit.rmse < 1.0);
        assert!((fit.model.weights[0] - 1.0).abs() < 0.05);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| 5.0 * r[0]).collect();
        let plain = OlsFit::fit(&rows, &ys, 0.0).unwrap();
        let ridged = OlsFit::fit(&rows, &ys, 1e4).unwrap();
        assert!(ridged.model.weights[0] < plain.model.weights[0]);
    }
}
