//! Descriptive statistics: mean, variance, and the coefficient of
//! variation used to characterize memory-request inter-arrival burstiness
//! (paper Section III-C3: `c_a = sigma_a / tau_a`, Eq. 10).

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    /// Population standard deviation (the paper works with complete
    /// per-bank request streams, not samples of them).
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    /// Compute summary statistics; returns `None` for an empty slice.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Some(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        })
    }

    /// Coefficient of variation `sigma / mu`.
    ///
    /// For an exponential distribution this is exactly 1; the paper reports
    /// mean per-bank `c_a` of 1.11 (spmv), 2.22 (md) and 1.72 (matrixMul),
    /// concluding GPU arrivals are too bursty for an M/M/1 model.
    #[inline]
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// Summary of integer cycle counts (convenience for trace analysis).
pub fn summary_of_u64(xs: &[u64]) -> Option<Summary> {
    if xs.is_empty() {
        return None;
    }
    // Avoid materializing a second buffer for huge traces: single pass.
    let n = xs.len() as f64;
    let mut sum = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &x in xs {
        let x = x as f64;
        sum += x;
        min = min.min(x);
        max = max.max(x);
    }
    let mean = sum / n;
    let var = xs
        .iter()
        .map(|&x| {
            let d = x as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    Some(Summary {
        n: xs.len(),
        mean,
        std_dev: var.sqrt(),
        min,
        max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_sample() {
        let s = Summary::of(&[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.cv(), 0.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn known_variance() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12); // classic example
        assert!((s.cv() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_is_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(summary_of_u64(&[]).is_none());
    }

    #[test]
    fn u64_matches_f64_path() {
        let ints = [1u64, 2, 3, 4, 100];
        let floats: Vec<f64> = ints.iter().map(|&x| x as f64).collect();
        let a = summary_of_u64(&ints).unwrap();
        let b = Summary::of(&floats).unwrap();
        assert!((a.mean - b.mean).abs() < 1e-12);
        assert!((a.std_dev - b.std_dev).abs() < 1e-12);
    }

    #[test]
    fn cv_of_exponential_like_sample_near_one() {
        // Deterministic inverse-CDF sampling of Exp(1): quantiles at
        // uniform grid points — CV should approach 1 for a fine grid.
        let n = 10_000;
        let xs: Vec<f64> = (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                -(1.0 - u).ln()
            })
            .collect();
        let s = Summary::of(&xs).unwrap();
        assert!((s.cv() - 1.0).abs() < 0.05, "cv = {}", s.cv());
    }
}
