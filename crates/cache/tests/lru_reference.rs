//! Property tests for the set-associative cache against a naive
//! reference model, plus invariants of the warp-level models. Runs on
//! the in-repo `hms_stats::proptest_lite` harness; failures print an
//! `HMS_PROPTEST_SEED` replay line.

use hms_cache::{shared_conflict_passes, AccessOutcome, SetAssocCache};
use hms_stats::proptest_lite::{check_shrink, shrink_vec, Config};
use hms_types::CacheGeometry;

/// A trivially-correct LRU cache: a vector of (set, tag) in recency
/// order per set.
struct RefLru {
    line_bytes: u64,
    sets: u64,
    ways: usize,
    state: Vec<Vec<u64>>, // per set: tags, most-recent last
}

impl RefLru {
    fn new(g: CacheGeometry) -> Self {
        RefLru {
            line_bytes: g.line_bytes,
            sets: g.sets().max(1),
            ways: g.ways as usize,
            state: vec![Vec::new(); g.sets().max(1) as usize],
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set = (line % self.sets) as usize;
        let tag = line / self.sets;
        let s = &mut self.state[set];
        if let Some(pos) = s.iter().position(|&t| t == tag) {
            s.remove(pos);
            s.push(tag);
            true
        } else {
            if s.len() == self.ways {
                s.remove(0);
            }
            s.push(tag);
            false
        }
    }
}

/// The production cache and the reference LRU agree on every hit/miss
/// outcome for arbitrary address streams and geometries.
#[test]
fn setassoc_matches_reference_lru() {
    check_shrink(
        "setassoc_matches_reference_lru",
        &Config::with_cases(128),
        |rng| {
            let n = rng.gen_range(1usize..400);
            let addrs: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..16_384)).collect();
            let sets_pow = rng.gen_range(0u32..4);
            let ways = rng.gen_range(1u32..5);
            (addrs, sets_pow, ways)
        },
        |(addrs, sets_pow, ways)| {
            shrink_vec(addrs)
                .into_iter()
                .map(|a| (a, *sets_pow, *ways))
                .collect()
        },
        |(addrs, sets_pow, ways)| {
            let line = 64u64;
            let sets = 1u64 << sets_pow;
            let g = CacheGeometry::new(sets * line * u64::from(*ways), line, *ways);
            let mut real = SetAssocCache::new(g);
            let mut reference = RefLru::new(g);
            for &a in addrs {
                let want_hit = reference.access(a);
                let got = real.access(a);
                if got.is_hit() != want_hit {
                    return Err(format!("diverged at addr {a}: real hit={}", got.is_hit()));
                }
            }
            if real.accesses() != addrs.len() as u64 {
                return Err("access count wrong".into());
            }
            if real.hits() + real.misses() != real.accesses() {
                return Err("hits + misses != accesses".into());
            }
            Ok(())
        },
    );
}

/// Hit count never decreases when the cache gets more ways at the same
/// set count (LRU is a stack algorithm per set).
#[test]
fn more_ways_never_hurt() {
    check_shrink(
        "more_ways_never_hurt",
        &Config::with_cases(128),
        |rng| {
            let n = rng.gen_range(1usize..300);
            (0..n)
                .map(|_| rng.gen_range(0u64..4096))
                .collect::<Vec<_>>()
        },
        |addrs| shrink_vec(addrs),
        |addrs| {
            let line = 64u64;
            let sets = 4u64;
            let hits = |ways: u32| {
                let g = CacheGeometry::new(sets * line * u64::from(ways), line, ways);
                let mut c = SetAssocCache::new(g);
                for &a in addrs {
                    c.access(a);
                }
                c.hits()
            };
            if hits(4) < hits(2) {
                return Err("4 ways hit less than 2".into());
            }
            if hits(2) < hits(1) {
                return Err("2 ways hit less than 1".into());
            }
            Ok(())
        },
    );
}

/// Shared-memory conflict passes are within [1, active lanes] and
/// invariant under lane permutation.
#[test]
fn conflict_passes_bounds_and_symmetry() {
    check_shrink(
        "conflict_passes_bounds_and_symmetry",
        &Config::with_cases(128),
        |rng| {
            let n = rng.gen_range(1usize..32);
            (0..n)
                .map(|_| rng.gen_range(0u64..4096) * 4)
                .collect::<Vec<_>>()
        },
        |addrs| shrink_vec(addrs),
        |addrs| {
            if addrs.is_empty() {
                return Ok(());
            }
            let p = shared_conflict_passes(addrs, 32);
            if p < 1 {
                return Err("zero passes".into());
            }
            if p > addrs.len() as u32 {
                return Err(format!("{p} passes for {} lanes", addrs.len()));
            }
            let mut rev = addrs.clone();
            rev.reverse();
            if shared_conflict_passes(&rev, 32) != p {
                return Err("passes changed under lane reversal".into());
            }
            Ok(())
        },
    );
}

/// Dirty-eviction count is bounded by the number of write accesses.
#[test]
fn writebacks_bounded_by_writes() {
    check_shrink(
        "writebacks_bounded_by_writes",
        &Config::with_cases(128),
        |rng| {
            let n = rng.gen_range(1usize..300);
            (0..n)
                .map(|_| (rng.gen_range(0u64..8192), rng.gen_bool(0.5)))
                .collect::<Vec<_>>()
        },
        |ops| shrink_vec(ops),
        |ops| {
            let g = CacheGeometry::new(512, 64, 2);
            let mut c = SetAssocCache::new(g);
            let mut writes = 0u64;
            for &(a, w) in ops {
                if w {
                    writes += 1;
                }
                let _ = c.access_rw(a, w);
            }
            c.flush();
            if c.dirty_evictions() > writes {
                return Err(format!(
                    "{} writebacks > {writes} writes",
                    c.dirty_evictions()
                ));
            }
            Ok(())
        },
    );
}

#[test]
fn outcome_reports_eviction_only_when_full() {
    let g = CacheGeometry::new(128, 64, 2); // 1 set, 2 ways
    let mut c = SetAssocCache::new(g);
    assert_eq!(c.access(0), AccessOutcome::Miss { evicted: false });
    assert_eq!(c.access(64), AccessOutcome::Miss { evicted: false });
    assert_eq!(c.access(128), AccessOutcome::Miss { evicted: true });
}
