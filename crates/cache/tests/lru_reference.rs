//! Property tests for the set-associative cache against a naive
//! reference model, plus invariants of the warp-level models.

use proptest::prelude::*;

use hms_cache::{shared_conflict_passes, AccessOutcome, SetAssocCache};
use hms_types::CacheGeometry;

/// A trivially-correct LRU cache: a vector of (set, tag) in recency
/// order per set.
struct RefLru {
    line_bytes: u64,
    sets: u64,
    ways: usize,
    state: Vec<Vec<u64>>, // per set: tags, most-recent last
}

impl RefLru {
    fn new(g: CacheGeometry) -> Self {
        RefLru {
            line_bytes: g.line_bytes,
            sets: g.sets().max(1),
            ways: g.ways as usize,
            state: vec![Vec::new(); g.sets().max(1) as usize],
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set = (line % self.sets) as usize;
        let tag = line / self.sets;
        let s = &mut self.state[set];
        if let Some(pos) = s.iter().position(|&t| t == tag) {
            s.remove(pos);
            s.push(tag);
            true
        } else {
            if s.len() == self.ways {
                s.remove(0);
            }
            s.push(tag);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The production cache and the reference LRU agree on every
    /// hit/miss outcome for arbitrary address streams and geometries.
    #[test]
    fn setassoc_matches_reference_lru(
        addrs in prop::collection::vec(0u64..16_384, 1..400),
        sets_pow in 0u32..4,
        ways in 1u32..5,
    ) {
        let line = 64u64;
        let sets = 1u64 << sets_pow;
        let g = CacheGeometry::new(sets * line * u64::from(ways), line, ways);
        let mut real = SetAssocCache::new(g);
        let mut reference = RefLru::new(g);
        for &a in &addrs {
            let want_hit = reference.access(a);
            let got = real.access(a);
            prop_assert_eq!(got.is_hit(), want_hit, "diverged at addr {}", a);
        }
        prop_assert_eq!(real.accesses(), addrs.len() as u64);
        prop_assert_eq!(real.hits() + real.misses(), real.accesses());
    }

    /// Hit count never decreases when the cache gets more ways at the
    /// same set count (LRU is a stack algorithm per set).
    #[test]
    fn more_ways_never_hurt(
        addrs in prop::collection::vec(0u64..4096, 1..300),
    ) {
        let line = 64u64;
        let sets = 4u64;
        let hits = |ways: u32| {
            let g = CacheGeometry::new(sets * line * u64::from(ways), line, ways);
            let mut c = SetAssocCache::new(g);
            for &a in &addrs {
                c.access(a);
            }
            c.hits()
        };
        prop_assert!(hits(4) >= hits(2));
        prop_assert!(hits(2) >= hits(1));
    }

    /// Shared-memory conflict passes are within [1, active lanes] and
    /// invariant under lane permutation.
    #[test]
    fn conflict_passes_bounds_and_symmetry(
        mut addrs in prop::collection::vec((0u64..4096).prop_map(|a| a * 4), 1..32),
    ) {
        let p = shared_conflict_passes(&addrs, 32);
        prop_assert!(p >= 1);
        prop_assert!(p <= addrs.len() as u32);
        addrs.reverse();
        prop_assert_eq!(shared_conflict_passes(&addrs, 32), p);
    }

    /// Dirty-eviction count is bounded by the number of write accesses.
    #[test]
    fn writebacks_bounded_by_writes(
        ops in prop::collection::vec((0u64..8192, any::<bool>()), 1..300),
    ) {
        let g = CacheGeometry::new(512, 64, 2);
        let mut c = SetAssocCache::new(g);
        let mut writes = 0u64;
        for &(a, w) in &ops {
            if w {
                writes += 1;
            }
            let _ = c.access_rw(a, w);
        }
        c.flush();
        prop_assert!(c.dirty_evictions() <= writes);
    }
}

#[test]
fn outcome_reports_eviction_only_when_full() {
    let g = CacheGeometry::new(128, 64, 2); // 1 set, 2 ways
    let mut c = SetAssocCache::new(g);
    assert_eq!(c.access(0), AccessOutcome::Miss { evicted: false });
    assert_eq!(c.access(64), AccessOutcome::Miss { evicted: false });
    assert_eq!(c.access(128), AccessOutcome::Miss { evicted: true });
}
