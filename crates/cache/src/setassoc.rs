//! Generic set-associative cache with true-LRU replacement.
//!
//! The replacement policy matches what the paper assumes for the GPU L2
//! ("LRU-like policy at L2 cache for off-chip memories", Section I). Tags
//! are stored per set with a monotonically increasing use-stamp.

use hms_types::CacheGeometry;

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    Hit,
    /// Miss; `evicted` reports whether a valid line was displaced.
    Miss {
        evicted: bool,
    },
}

impl AccessOutcome {
    #[inline]
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

/// A set-associative LRU cache over byte addresses.
///
/// Line state is struct-of-arrays: the hit path scans a contiguous run
/// of liveness marks and tags (two cache lines for 16 ways) instead of
/// striding over 32-byte line structs, and `last_use` / dirty bits are
/// only touched on the way that hits. Address decomposition is
/// strength-reduced: power-of-two line sizes and set counts index by
/// shift/mask, and a non-power-of-two set count (the K80 L2 has 768
/// sets) costs a single division — the quotient *is* the tag and the
/// remainder the set — where the naive `%` + `/` pair cost two.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    sets: u64,
    ways: usize,
    /// `log2(line_bytes)` when the line size is a power of two.
    line_shift: Option<u32>,
    set_index: SetIndexer,
    tags: Vec<u64>,
    last_use: Vec<u64>,
    /// Per line: liveness marker. A line is live iff its mark equals
    /// `live_mark`; 0 is never a live mark, so freshly-zeroed and
    /// flushed lines are dead in every generation. [`Self::reset`]
    /// bumps `live_mark`, lazily invalidating every line in O(1) — one
    /// u32 compare replaces the old `valid && gen == gen` pair.
    marks: Vec<u32>,
    dirty: Vec<bool>,
    live_mark: u32,
    /// Monotone use-stamp; bumped once per access, so it doubles as the
    /// access counter.
    clock: u64,
    hits: u64,
    dirty_evictions: u64,
}

/// How an address's line number splits into `(set, tag)`. Power-of-two
/// set counts shift/mask; everything else divides once — and that
/// division is strength-reduced to a 128-bit reciprocal multiply
/// (Granlund–Montgomery round-up method) for the quotients the
/// exactness bound covers. Real GPU geometries have non-power-of-two
/// set counts (the K80 L2 has 768 sets, its texture cache 96), so this
/// is the hot path of every cache access in the replay engine.
#[derive(Debug, Clone, Copy)]
enum SetIndexer {
    /// `sets` is a power of two: set = mask, tag = shift.
    Pow2(u32),
    /// `m = floor(2^64 / sets) + 1`; `x * m >> 64 == x / sets` exactly
    /// for every `x < limit` (`limit = floor(2^64 / e)` with
    /// `e = m * sets - 2^64`). Larger line numbers — beyond any real
    /// address stream — fall back to the hardware divide.
    Magic { m: u64, limit: u64 },
}

impl SetIndexer {
    fn for_sets(sets: u64) -> SetIndexer {
        if sets.is_power_of_two() {
            return SetIndexer::Pow2(sets.trailing_zeros());
        }
        // Round-up reciprocal: exact because a non-power-of-two divisor
        // never divides 2^64, so e >= 1 (and e <= sets).
        let two64 = 1u128 << 64;
        let m = (two64 / u128::from(sets) + 1) as u64;
        let e = (u128::from(m) * u128::from(sets) - two64) as u64;
        SetIndexer::Magic {
            m,
            limit: (two64 / u128::from(e)) as u64,
        }
    }

    /// `line_addr / sets` (the tag); the caller recovers the set as
    /// `line_addr - tag * sets`.
    #[inline]
    fn quotient(self, line_addr: u64, sets: u64) -> u64 {
        match self {
            SetIndexer::Pow2(s) => line_addr >> s,
            SetIndexer::Magic { m, limit } => {
                if line_addr < limit {
                    ((u128::from(line_addr) * u128::from(m)) >> 64) as u64
                } else {
                    line_addr / sets
                }
            }
        }
    }
}

impl SetAssocCache {
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = geometry.sets().max(1);
        let ways = geometry.ways.max(1) as usize;
        let lines = sets as usize * ways;
        let pow2_shift = |n: u64| {
            if n.is_power_of_two() {
                Some(n.trailing_zeros())
            } else {
                None
            }
        };
        SetAssocCache {
            sets,
            ways,
            line_shift: pow2_shift(geometry.line_bytes),
            set_index: SetIndexer::for_sets(sets),
            geometry,
            tags: vec![0; lines],
            last_use: vec![0; lines],
            marks: vec![0; lines],
            dirty: vec![false; lines],
            live_mark: 1,
            clock: 0,
            hits: 0,
            dirty_evictions: 0,
        }
    }

    /// Return the cache to its just-constructed state without touching
    /// the line arrays: the liveness mark advances, so every line is
    /// lazily invalid, and all counters restart from zero. The observable
    /// behaviour after `reset()` is bit-identical to a fresh
    /// [`SetAssocCache::new`] with the same geometry — stale lines rank
    /// exactly like invalid ones in victim selection (both key to 0) and
    /// are overwritten wholesale on fill. Unlike [`Self::flush`], no
    /// write-backs are counted: this models reuse of the allocation, not
    /// a kernel-boundary invalidation.
    pub fn reset(&mut self) {
        if self.live_mark == u32::MAX {
            // One eager sweep per 2^32 resets keeps the wrap from
            // resurrecting lines stamped with a recycled mark.
            self.marks.fill(0);
            self.dirty.fill(false);
            self.live_mark = 1;
        } else {
            self.live_mark += 1;
        }
        self.clock = 0;
        self.hits = 0;
        self.dirty_evictions = 0;
    }

    /// Split `addr` into the index of its set's first way and its tag.
    #[inline]
    fn locate(&self, addr: u64) -> (usize, u64) {
        let line_addr = match self.line_shift {
            Some(s) => addr >> s,
            None => addr / self.geometry.line_bytes,
        };
        // Quotient = tag, remainder = set: one (strength-reduced)
        // division covers both.
        let tag = self.set_index.quotient(line_addr, self.sets);
        let set = (line_addr - tag * self.sets) as usize;
        (set * self.ways, tag)
    }

    /// Access the line containing `addr`; allocate on miss (loads and
    /// stores are both write-allocate at the GPU L2).
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        self.access_rw(addr, false)
    }

    /// [`Self::access`] with an explicit read/write flag: writes mark the
    /// line dirty (write-back policy), and evicting a dirty line counts
    /// a write-back — the off-chip write traffic a pure read-miss model
    /// would miss.
    pub fn access_rw(&mut self, addr: u64, write: bool) -> AccessOutcome {
        // Dispatch to a fixed-associativity body for the way counts real
        // geometries use (K80: L2 16, texture/constant 4): with `W`
        // const the compiler fully unrolls and vectorizes the way scans,
        // which sit under every cache access the replay engine makes.
        match self.ways {
            4 => self.access_rw_ways::<4>(addr, write),
            8 => self.access_rw_ways::<8>(addr, write),
            16 => self.access_rw_ways::<16>(addr, write),
            _ => self.access_rw_ways_dyn(addr, write),
        }
    }

    /// Fixed-associativity access body. Requires `self.ways == W`.
    /// Behaviour is identical to [`Self::access_rw_ways_dyn`]: the hit
    /// mask's first set bit is the first matching way (what `position`
    /// finds), and the victim loop's strict `<` keeps the first minimal
    /// way (what `min_by_key` keeps).
    #[inline]
    fn access_rw_ways<const W: usize>(&mut self, addr: u64, write: bool) -> AccessOutcome {
        debug_assert_eq!(self.ways, W);
        self.clock += 1;
        let (base, tag) = self.locate(addr);
        let mark = self.live_mark;

        let marks: &[u32; W] = self.marks[base..base + W].try_into().expect("way run");
        let tags: &[u64; W] = self.tags[base..base + W].try_into().expect("way run");
        // Tag-only match mask first (a branchless compare the compiler
        // can vectorize over the fixed-width run); liveness is verified
        // only on the rare candidate ways whose tag matches. Walking the
        // mask in bit order keeps "first matching live way" semantics —
        // a dead way with a stale matching tag is skipped, exactly as
        // the combined scan would.
        let mut cand = 0u32;
        for w in 0..W {
            cand |= u32::from(tags[w] == tag) << w;
        }
        while cand != 0 {
            let w = cand.trailing_zeros() as usize;
            if marks[w] == mark {
                let w = base + w;
                self.last_use[w] = self.clock;
                self.dirty[w] |= write;
                self.hits += 1;
                return AccessOutcome::Hit;
            }
            cand &= cand - 1;
        }
        // Miss: fill the invalid way, else evict true-LRU. Stale lines
        // key to 0 just like invalid ones (live `last_use` is >= 1), so
        // a reset cache picks victims in exactly the order a fresh cache
        // would.
        let last_use: &[u64; W] = self.last_use[base..base + W].try_into().expect("way run");
        let mut victim = 0;
        let mut best = u64::MAX;
        for w in 0..W {
            let key = if marks[w] == mark { last_use[w] } else { 0 };
            if key < best {
                best = key;
                victim = w;
            }
        }
        self.fill(base + victim, tag, write)
    }

    /// Runtime-associativity fallback for geometries outside the
    /// specialized way counts.
    fn access_rw_ways_dyn(&mut self, addr: u64, write: bool) -> AccessOutcome {
        self.clock += 1;
        let (base, tag) = self.locate(addr);
        let mark = self.live_mark;

        // Hit path: scan marks + tags only (as slices, so the way loop
        // carries no bounds checks); the other arrays are touched just
        // for the hitting way.
        let marks = &self.marks[base..base + self.ways];
        let tags = &self.tags[base..base + self.ways];
        if let Some(w) = marks
            .iter()
            .zip(tags)
            .position(|(&mk, &tg)| mk == mark && tg == tag)
        {
            let w = base + w;
            self.last_use[w] = self.clock;
            self.dirty[w] |= write;
            self.hits += 1;
            return AccessOutcome::Hit;
        }
        // Miss: strict `<` keeps the first minimal way, matching
        // `min_by_key`.
        let mut victim = base;
        let mut best = u64::MAX;
        for (w, (&mk, &lu)) in marks
            .iter()
            .zip(&self.last_use[base..base + self.ways])
            .enumerate()
        {
            let key = if mk == mark { lu } else { 0 };
            if key < best {
                best = key;
                victim = base + w;
            }
        }
        self.fill(victim, tag, write)
    }

    /// Install `tag` in `victim` (a global line index), accounting the
    /// eviction of whatever live line it displaces.
    #[inline]
    fn fill(&mut self, victim: usize, tag: u64, write: bool) -> AccessOutcome {
        let evicted = self.marks[victim] == self.live_mark;
        if evicted && self.dirty[victim] {
            self.dirty_evictions += 1;
        }
        self.tags[victim] = tag;
        self.marks[victim] = self.live_mark;
        self.dirty[victim] = write;
        self.last_use[victim] = self.clock;
        AccessOutcome::Miss { evicted }
    }

    /// Non-mutating lookup: would `addr` hit right now?
    pub fn probe(&self, addr: u64) -> bool {
        let (base, tag) = self.locate(addr);
        (base..base + self.ways).any(|w| self.marks[w] == self.live_mark && self.tags[w] == tag)
    }

    /// Invalidate everything (kernel-launch boundary). Dirty lines are
    /// counted as write-backs on their way out.
    pub fn flush(&mut self) {
        for w in 0..self.marks.len() {
            if self.marks[w] == self.live_mark && self.dirty[w] {
                self.dirty_evictions += 1;
            }
            self.marks[w] = 0;
            self.dirty[w] = false;
        }
    }

    /// Dirty lines evicted (or flushed) so far: the write-back traffic
    /// of the write-back, write-allocate policy.
    pub fn dirty_evictions(&self) -> u64 {
        self.dirty_evictions
    }

    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    pub fn accesses(&self) -> u64 {
        self.clock
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.clock - self.hits
    }

    /// Miss ratio over the cache's lifetime (0 when never accessed).
    pub fn miss_ratio(&self) -> f64 {
        if self.clock == 0 {
            0.0
        } else {
            self.misses() as f64 / self.clock as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hms_types::CacheGeometry;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways x 64-byte lines = 256 bytes.
        SetAssocCache::new(CacheGeometry::new(256, 64, 2))
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert_eq!(c.access(0), AccessOutcome::Miss { evicted: false });
        assert_eq!(c.access(0), AccessOutcome::Hit);
        assert_eq!(c.access(63), AccessOutcome::Hit); // same line
        assert_eq!(c.access(64), AccessOutcome::Miss { evicted: false }); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines with even line index. Fill both ways.
        c.access(0); // line 0 -> set 0
        c.access(128); // line 2 -> set 0
        c.access(0); // touch line 0, line 2 becomes LRU
        assert_eq!(c.access(256), AccessOutcome::Miss { evicted: true }); // line 4 evicts line 2
        assert!(c.probe(0));
        assert!(!c.probe(128));
        assert!(c.probe(256));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(0); // set 0
        c.access(64); // set 1
        c.access(128); // set 0
        c.access(192); // set 1
                       // Both sets full, nothing evicted yet.
        assert!(c.probe(0) && c.probe(64) && c.probe(128) && c.probe(192));
    }

    #[test]
    fn flush_invalidates() {
        let mut c = tiny();
        c.access(0);
        c.flush();
        assert!(!c.probe(0));
        assert_eq!(c.access(0), AccessOutcome::Miss { evicted: false });
    }

    #[test]
    fn miss_ratio_tracks_reuse() {
        let mut c = tiny();
        for _ in 0..10 {
            c.access(0);
        }
        assert!((c.miss_ratio() - 0.1).abs() < 1e-12);
        let empty = tiny();
        assert_eq!(empty.miss_ratio(), 0.0);
    }

    #[test]
    fn dirty_eviction_accounting() {
        let mut c = tiny();
        // Write line 0 (set 0), then stream two clean lines through the
        // same set: evicting the dirty line counts one write-back.
        c.access_rw(0, true);
        c.access_rw(128, false);
        c.access_rw(256, false); // evicts LRU = dirty line 0
        assert_eq!(c.dirty_evictions(), 1);
        // Clean evictions don't count.
        c.access_rw(384, false);
        assert_eq!(c.dirty_evictions(), 1);
    }

    #[test]
    fn flush_writes_back_dirty_lines() {
        let mut c = tiny();
        c.access_rw(0, true);
        c.access_rw(64, true);
        c.access_rw(128, false);
        c.flush();
        assert_eq!(c.dirty_evictions(), 2);
    }

    #[test]
    fn reset_is_bit_identical_to_fresh() {
        // Drive a pseudo-random mixed read/write stream, reset, then
        // replay a second stream against both the reset cache and a
        // fresh one: every outcome, probe, and counter must match.
        let mut reset = tiny();
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut step = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x
        };
        for _ in 0..200 {
            let a = step() % 4096;
            let w = step() % 2 == 0;
            reset.access_rw(a, w);
        }
        reset.reset();
        let mut fresh = tiny();
        assert_eq!(reset.accesses(), 0);
        assert_eq!(reset.hits(), 0);
        assert_eq!(reset.dirty_evictions(), 0);
        for _ in 0..400 {
            let a = step() % 4096;
            let w = step() % 2 == 0;
            assert_eq!(reset.access_rw(a, w), fresh.access_rw(a, w));
            let p = step() % 4096;
            assert_eq!(reset.probe(p), fresh.probe(p));
        }
        assert_eq!(reset.accesses(), fresh.accesses());
        assert_eq!(reset.hits(), fresh.hits());
        assert_eq!(reset.dirty_evictions(), fresh.dirty_evictions());
        // flush after reset counts only post-reset dirty lines.
        reset.flush();
        fresh.flush();
        assert_eq!(reset.dirty_evictions(), fresh.dirty_evictions());
    }

    #[test]
    fn capacity_thrash_produces_all_misses() {
        let mut c = tiny();
        // A cyclic working set of 3 lines per 2-way set thrashes LRU.
        for round in 0..5 {
            for line in 0..3u64 {
                let out = c.access(line * 128); // all map to set 0
                if round > 0 {
                    assert!(!out.is_hit(), "LRU must thrash on cyclic over-capacity set");
                }
            }
        }
    }
}
