//! Generic set-associative cache with true-LRU replacement.
//!
//! The replacement policy matches what the paper assumes for the GPU L2
//! ("LRU-like policy at L2 cache for off-chip memories", Section I). Tags
//! are stored per set with a monotonically increasing use-stamp.

use hms_types::CacheGeometry;

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    Hit,
    /// Miss; `evicted` reports whether a valid line was displaced.
    Miss {
        evicted: bool,
    },
}

impl AccessOutcome {
    #[inline]
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
    /// Generation stamp: the line is live only when `valid` *and* its
    /// generation matches the cache's. [`SetAssocCache::reset`] bumps
    /// the cache generation, lazily invalidating every line in O(1).
    gen: u32,
}

/// A set-associative LRU cache over byte addresses.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    sets: u64,
    lines: Vec<Line>,
    clock: u64,
    gen: u32,
    accesses: u64,
    hits: u64,
    dirty_evictions: u64,
}

impl SetAssocCache {
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = geometry.sets().max(1);
        let ways = geometry.ways.max(1) as usize;
        SetAssocCache {
            geometry,
            sets,
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    dirty: false,
                    last_use: 0,
                    gen: 0,
                };
                sets as usize * ways
            ],
            clock: 0,
            gen: 0,
            accesses: 0,
            hits: 0,
            dirty_evictions: 0,
        }
    }

    /// Return the cache to its just-constructed state without touching
    /// the line array: the generation stamp advances, so every line is
    /// lazily invalid, and all counters restart from zero. The observable
    /// behaviour after `reset()` is bit-identical to a fresh
    /// [`SetAssocCache::new`] with the same geometry — stale lines rank
    /// exactly like invalid ones in victim selection (both key to 0) and
    /// are overwritten wholesale on fill. Unlike [`Self::flush`], no
    /// write-backs are counted: this models reuse of the allocation, not
    /// a kernel-boundary invalidation.
    pub fn reset(&mut self) {
        if self.gen == u32::MAX {
            // One eager sweep per 2^32 resets keeps the wrap from
            // resurrecting lines stamped with a recycled generation.
            for l in &mut self.lines {
                l.valid = false;
                l.dirty = false;
                l.gen = 0;
            }
            self.gen = 0;
        } else {
            self.gen += 1;
        }
        self.clock = 0;
        self.accesses = 0;
        self.hits = 0;
        self.dirty_evictions = 0;
    }

    #[inline]
    fn live(&self, l: &Line) -> bool {
        l.valid && l.gen == self.gen
    }

    /// Access the line containing `addr`; allocate on miss (loads and
    /// stores are both write-allocate at the GPU L2).
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        self.access_rw(addr, false)
    }

    /// [`Self::access`] with an explicit read/write flag: writes mark the
    /// line dirty (write-back policy), and evicting a dirty line counts
    /// a write-back — the off-chip write traffic a pure read-miss model
    /// would miss.
    pub fn access_rw(&mut self, addr: u64, write: bool) -> AccessOutcome {
        self.clock += 1;
        self.accesses += 1;
        let line_addr = addr / self.geometry.line_bytes;
        let set = (line_addr % self.sets) as usize;
        let tag = line_addr / self.sets;
        let ways = self.geometry.ways as usize;
        let base = set * ways;
        let gen = self.gen;
        let set_lines = &mut self.lines[base..base + ways];

        // Hit path.
        for line in set_lines.iter_mut() {
            if line.valid && line.gen == gen && line.tag == tag {
                line.last_use = self.clock;
                line.dirty |= write;
                self.hits += 1;
                return AccessOutcome::Hit;
            }
        }
        // Miss: fill the invalid way, else evict true-LRU. Generation-
        // stale lines key to 0 just like invalid ones, so a reset cache
        // picks victims in exactly the order a fresh cache would.
        let victim = set_lines
            .iter_mut()
            .min_by_key(|l| {
                if l.valid && l.gen == gen {
                    l.last_use
                } else {
                    0
                }
            })
            .expect("ways >= 1");
        let evicted = victim.valid && victim.gen == gen;
        if evicted && victim.dirty {
            self.dirty_evictions += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: write,
            last_use: self.clock,
            gen,
        };
        AccessOutcome::Miss { evicted }
    }

    /// Non-mutating lookup: would `addr` hit right now?
    pub fn probe(&self, addr: u64) -> bool {
        let line_addr = addr / self.geometry.line_bytes;
        let set = (line_addr % self.sets) as usize;
        let tag = line_addr / self.sets;
        let ways = self.geometry.ways as usize;
        self.lines[set * ways..(set + 1) * ways]
            .iter()
            .any(|l| self.live(l) && l.tag == tag)
    }

    /// Invalidate everything (kernel-launch boundary). Dirty lines are
    /// counted as write-backs on their way out.
    pub fn flush(&mut self) {
        let gen = self.gen;
        for l in &mut self.lines {
            if l.valid && l.gen == gen && l.dirty {
                self.dirty_evictions += 1;
            }
            l.valid = false;
            l.dirty = false;
        }
    }

    /// Dirty lines evicted (or flushed) so far: the write-back traffic
    /// of the write-back, write-allocate policy.
    pub fn dirty_evictions(&self) -> u64 {
        self.dirty_evictions
    }

    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss ratio over the cache's lifetime (0 when never accessed).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hms_types::CacheGeometry;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways x 64-byte lines = 256 bytes.
        SetAssocCache::new(CacheGeometry::new(256, 64, 2))
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert_eq!(c.access(0), AccessOutcome::Miss { evicted: false });
        assert_eq!(c.access(0), AccessOutcome::Hit);
        assert_eq!(c.access(63), AccessOutcome::Hit); // same line
        assert_eq!(c.access(64), AccessOutcome::Miss { evicted: false }); // next line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines with even line index. Fill both ways.
        c.access(0); // line 0 -> set 0
        c.access(128); // line 2 -> set 0
        c.access(0); // touch line 0, line 2 becomes LRU
        assert_eq!(c.access(256), AccessOutcome::Miss { evicted: true }); // line 4 evicts line 2
        assert!(c.probe(0));
        assert!(!c.probe(128));
        assert!(c.probe(256));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(0); // set 0
        c.access(64); // set 1
        c.access(128); // set 0
        c.access(192); // set 1
                       // Both sets full, nothing evicted yet.
        assert!(c.probe(0) && c.probe(64) && c.probe(128) && c.probe(192));
    }

    #[test]
    fn flush_invalidates() {
        let mut c = tiny();
        c.access(0);
        c.flush();
        assert!(!c.probe(0));
        assert_eq!(c.access(0), AccessOutcome::Miss { evicted: false });
    }

    #[test]
    fn miss_ratio_tracks_reuse() {
        let mut c = tiny();
        for _ in 0..10 {
            c.access(0);
        }
        assert!((c.miss_ratio() - 0.1).abs() < 1e-12);
        let empty = tiny();
        assert_eq!(empty.miss_ratio(), 0.0);
    }

    #[test]
    fn dirty_eviction_accounting() {
        let mut c = tiny();
        // Write line 0 (set 0), then stream two clean lines through the
        // same set: evicting the dirty line counts one write-back.
        c.access_rw(0, true);
        c.access_rw(128, false);
        c.access_rw(256, false); // evicts LRU = dirty line 0
        assert_eq!(c.dirty_evictions(), 1);
        // Clean evictions don't count.
        c.access_rw(384, false);
        assert_eq!(c.dirty_evictions(), 1);
    }

    #[test]
    fn flush_writes_back_dirty_lines() {
        let mut c = tiny();
        c.access_rw(0, true);
        c.access_rw(64, true);
        c.access_rw(128, false);
        c.flush();
        assert_eq!(c.dirty_evictions(), 2);
    }

    #[test]
    fn reset_is_bit_identical_to_fresh() {
        // Drive a pseudo-random mixed read/write stream, reset, then
        // replay a second stream against both the reset cache and a
        // fresh one: every outcome, probe, and counter must match.
        let mut reset = tiny();
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut step = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x
        };
        for _ in 0..200 {
            let a = step() % 4096;
            let w = step() % 2 == 0;
            reset.access_rw(a, w);
        }
        reset.reset();
        let mut fresh = tiny();
        assert_eq!(reset.accesses(), 0);
        assert_eq!(reset.hits(), 0);
        assert_eq!(reset.dirty_evictions(), 0);
        for _ in 0..400 {
            let a = step() % 4096;
            let w = step() % 2 == 0;
            assert_eq!(reset.access_rw(a, w), fresh.access_rw(a, w));
            let p = step() % 4096;
            assert_eq!(reset.probe(p), fresh.probe(p));
        }
        assert_eq!(reset.accesses(), fresh.accesses());
        assert_eq!(reset.hits(), fresh.hits());
        assert_eq!(reset.dirty_evictions(), fresh.dirty_evictions());
        // flush after reset counts only post-reset dirty lines.
        reset.flush();
        fresh.flush();
        assert_eq!(reset.dirty_evictions(), fresh.dirty_evictions());
    }

    #[test]
    fn capacity_thrash_produces_all_misses() {
        let mut c = tiny();
        // A cyclic working set of 3 lines per 2-way set thrashes LRU.
        for round in 0..5 {
            for line in 0..3u64 {
                let out = c.access(line * 128); // all map to set 0
                if round > 0 {
                    assert!(!out.is_hit(), "LRU must thrash on cyclic over-capacity set");
                }
            }
        }
    }
}
