//! The per-SM texture (read-only data) cache.
//!
//! Texture fetches go through a dedicated cache optimized for 2-D spatial
//! locality; the locality itself comes from the block-linear address
//! layout ([`hms_types::layout::tex2d_offset`]) — by the time addresses
//! reach this cache they are plain bytes, so the cache model is an
//! ordinary set-associative array with small (32-byte) lines, as in
//! GPGPUSim.

use hms_types::CacheGeometry;

use crate::setassoc::SetAssocCache;

/// Result of one warp-level texture fetch.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TexAccessResult {
    /// Distinct cache lines touched by the warp.
    pub transactions: u32,
    /// Lines that missed and continue to L2.
    pub misses: u32,
    /// Line-aligned byte addresses of the missing lines.
    pub missed_lines: Vec<u64>,
}

/// Per-SM texture cache.
#[derive(Debug, Clone)]
pub struct TextureCache {
    cache: SetAssocCache,
    warp_accesses: u64,
    transactions: u64,
    misses: u64,
}

impl TextureCache {
    pub fn new(geometry: CacheGeometry) -> Self {
        TextureCache {
            cache: SetAssocCache::new(geometry),
            warp_accesses: 0,
            transactions: 0,
            misses: 0,
        }
    }

    /// Serve one warp texture fetch given active lanes' byte addresses.
    pub fn access_warp(&mut self, lane_addrs: &[u64]) -> TexAccessResult {
        if lane_addrs.is_empty() {
            return TexAccessResult::default();
        }
        let line = self.cache.geometry().line_bytes;
        let mut lines: Vec<u64> = lane_addrs.iter().map(|a| a / line * line).collect();
        lines.sort_unstable();
        lines.dedup();
        self.access_lines(&lines)
    }

    /// Serve one warp fetch already deduplicated to sorted, line-aligned
    /// byte addresses — the form the incremental search engine memoizes.
    /// [`access_warp`](Self::access_warp) delegates here, so both entry
    /// points apply identical state transitions.
    pub fn access_lines(&mut self, lines: &[u64]) -> TexAccessResult {
        let mut missed_lines = Vec::new();
        let (transactions, misses) = self.access_lines_into(lines, &mut missed_lines);
        TexAccessResult {
            transactions,
            misses,
            missed_lines,
        }
    }

    /// Allocation-free [`access_lines`](Self::access_lines): missing
    /// lines land in the caller's `missed` buffer (cleared first), and
    /// the `(transactions, misses)` pair is returned directly. The
    /// engine's lane-batched replay calls this once per texture body
    /// event per lane, so the result buffer must be reusable scratch.
    pub fn access_lines_into(&mut self, lines: &[u64], missed: &mut Vec<u64>) -> (u32, u32) {
        missed.clear();
        if lines.is_empty() {
            return (0, 0);
        }
        self.warp_accesses += 1;
        let mut misses = 0u32;
        for &l in lines {
            if !self.cache.access(l).is_hit() {
                misses += 1;
                missed.push(l);
            }
        }
        let transactions = lines.len() as u32;
        self.transactions += u64::from(transactions);
        self.misses += u64::from(misses);
        (transactions, misses)
    }

    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn warp_accesses(&self) -> u64 {
        self.warp_accesses
    }

    pub fn flush(&mut self) {
        self.cache.flush();
    }

    /// O(1) return to the just-constructed state (see
    /// [`SetAssocCache::reset`]); lets the engine reuse per-SM cache
    /// allocations across replays.
    pub fn reset(&mut self) {
        self.cache.reset();
        self.warp_accesses = 0;
        self.transactions = 0;
        self.misses = 0;
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> &CacheGeometry {
        self.cache.geometry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hms_types::layout::{row_major_offset, tex2d_offset};

    fn tc() -> TextureCache {
        TextureCache::new(CacheGeometry::new(2048, 32, 2))
    }

    #[test]
    fn warp_reading_one_line_is_one_transaction() {
        let mut c = tc();
        let addrs: Vec<u64> = (0..32u64).map(|i| i % 8 * 4).collect(); // 32 bytes
        let r = c.access_warp(&addrs);
        assert_eq!(r.transactions, 1);
        assert_eq!(r.misses, 1);
        let r2 = c.access_warp(&addrs);
        assert_eq!(r2.misses, 0);
    }

    #[test]
    fn tiled_layout_beats_row_major_for_2d_block_reuse() {
        // A warp reading an 8x4 2-D block of a wide array, twice. With
        // row-major addressing the four row segments sit 4 KiB apart and
        // collide in the same cache set, so the re-read thrashes; the
        // block-linear texture layout packs the block into adjacent
        // lines that spread over sets and are retained. This is the 2-D
        // spatial locality that makes Texture2D placements win for
        // neighbourhood access patterns (stencils, matrixMul operands).
        let width = 1024u64;
        let block = |f: &dyn Fn(u64, u64) -> u64| -> Vec<u64> {
            (0..4u64)
                .flat_map(|y| (0..8u64).map(move |x| (x, y)))
                .map(|(x, y)| f(x, y))
                .collect()
        };
        let rm_addrs = block(&|x, y| row_major_offset(x, y, width, 4));
        let tex_addrs = block(&|x, y| tex2d_offset(x, y, width, 4, 8));

        let mut c_rm = tc();
        let mut c_tex = tc();
        let rm1 = c_rm.access_warp(&rm_addrs);
        let tex1 = c_tex.access_warp(&tex_addrs);
        // Cold pass: same transaction and miss counts.
        assert_eq!(rm1.transactions, 4);
        assert_eq!(tex1.transactions, 4);
        // Warm pass: the tiled layout retains the whole block.
        let rm2 = c_rm.access_warp(&rm_addrs);
        let tex2 = c_tex.access_warp(&tex_addrs);
        assert_eq!(tex2.misses, 0);
        assert!(rm2.misses > 0, "row-major set collisions must thrash");
    }

    #[test]
    fn empty_warp_is_noop() {
        let mut c = tc();
        assert_eq!(c.access_warp(&[]), TexAccessResult::default());
        assert_eq!(c.access_lines(&[]), TexAccessResult::default());
        assert_eq!(c.warp_accesses(), 0);
    }

    #[test]
    fn access_lines_matches_access_warp() {
        // Two caches fed the same stream through the two entry points
        // must stay in lockstep — the engine's replay depends on it.
        let mut via_warp = tc();
        let mut via_lines = tc();
        let line = 32u64;
        let warps: Vec<Vec<u64>> = (0..16u64)
            .map(|i| (0..32u64).map(|l| (i * 37 + l * 13) % 4096).collect())
            .collect();
        for addrs in &warps {
            let mut lines: Vec<u64> = addrs.iter().map(|a| a / line * line).collect();
            lines.sort_unstable();
            lines.dedup();
            assert_eq!(via_warp.access_warp(addrs), via_lines.access_lines(&lines));
        }
        assert_eq!(via_warp.transactions(), via_lines.transactions());
        assert_eq!(via_warp.misses(), via_lines.misses());
    }

    #[test]
    fn flush_forgets_lines() {
        let mut c = tc();
        c.access_warp(&[0]);
        c.flush();
        let r = c.access_warp(&[0]);
        assert_eq!(r.misses, 1);
    }
}
