//! Shared-memory bank-conflict model.
//!
//! Kepler shared memory is organized as 32 banks of 4-byte words; a warp
//! access completes in one pass unless two lanes address *different
//! words in the same bank*, in which case the hardware serializes the
//! access into multiple passes. "Bank conflict in load/store for shared
//! memory" is instruction-replay cause (4) in the paper: each extra pass
//! is one replay.

/// Number of serialized passes a warp's shared-memory access needs, given
/// the active lanes' byte addresses and the bank count.
///
/// Lanes reading the *same* word broadcast for free; lanes reading
/// different words in the same bank conflict.
pub fn shared_conflict_passes(lane_addrs: &[u64], banks: u32) -> u32 {
    if lane_addrs.is_empty() {
        return 0;
    }
    let banks = banks.max(1) as u64;
    // Per bank, count distinct words.
    let mut per_bank: Vec<Vec<u64>> = vec![Vec::new(); banks as usize];
    for &a in lane_addrs {
        let word = a / 4;
        let bank = (word % banks) as usize;
        if !per_bank[bank].contains(&word) {
            per_bank[bank].push(word);
        }
    }
    per_bank
        .iter()
        .map(|w| w.len() as u32)
        .max()
        .unwrap_or(0)
        .max(1)
}

/// Running per-SM shared-memory statistics.
#[derive(Debug, Clone, Default)]
pub struct SharedMemBanks {
    pub banks: u32,
    warp_accesses: u64,
    conflicts: u64,
}

impl SharedMemBanks {
    pub fn new(banks: u32) -> Self {
        SharedMemBanks {
            banks,
            warp_accesses: 0,
            conflicts: 0,
        }
    }

    /// Account one warp access; returns the replay count (`passes - 1`).
    pub fn access_warp(&mut self, lane_addrs: &[u64]) -> u32 {
        if lane_addrs.is_empty() {
            return 0;
        }
        self.warp_accesses += 1;
        let replays = shared_conflict_passes(lane_addrs, self.banks) - 1;
        self.conflicts += u64::from(replays);
        replays
    }

    /// Total bank-conflict replays.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    pub fn warp_accesses(&self) -> u64 {
        self.warp_accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_words_are_conflict_free() {
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 4).collect();
        assert_eq!(shared_conflict_passes(&addrs, 32), 1);
    }

    #[test]
    fn broadcast_is_free() {
        let addrs = vec![64u64; 32];
        assert_eq!(shared_conflict_passes(&addrs, 32), 1);
    }

    #[test]
    fn stride_two_gives_two_way_conflict() {
        // Stride-2 word access: lanes 0 and 16 share bank 0, etc.
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 2 * 4).collect();
        assert_eq!(shared_conflict_passes(&addrs, 32), 2);
    }

    #[test]
    fn stride_32_is_fully_serialized() {
        // All 32 lanes hit bank 0 with distinct words: 32 passes.
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 32 * 4).collect();
        assert_eq!(shared_conflict_passes(&addrs, 32), 32);
    }

    #[test]
    fn stats_accumulate_replays() {
        let mut s = SharedMemBanks::new(32);
        let conflict_free: Vec<u64> = (0..32u64).map(|i| i * 4).collect();
        let stride2: Vec<u64> = (0..32u64).map(|i| i * 8).collect();
        assert_eq!(s.access_warp(&conflict_free), 0);
        assert_eq!(s.access_warp(&stride2), 1);
        assert_eq!(s.conflicts(), 1);
        assert_eq!(s.warp_accesses(), 2);
    }

    #[test]
    fn empty_access_is_noop() {
        let mut s = SharedMemBanks::new(32);
        assert_eq!(s.access_warp(&[]), 0);
        assert_eq!(s.warp_accesses(), 0);
        assert_eq!(shared_conflict_passes(&[], 32), 0);
    }
}
