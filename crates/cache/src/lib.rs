//! # hms-cache
//!
//! The cache models of the GPU heterogeneous memory system, mirroring the
//! paper's implementation section ("we develop cache models — including
//! the texture cache, constant cache, and L2 cache — based on the cache
//! models in GPGPUSim"):
//!
//! * a generic **set-associative LRU cache** ([`setassoc`]) parameterized
//!   by [`hms_types::CacheGeometry`];
//! * the device-wide **L2** shared by global, texture and constant
//!   traffic, with per-source transaction counters ([`l2`]);
//! * the per-SM **constant cache** with broadcast semantics — a warp's
//!   access splits into one transaction per *distinct* address, each
//!   additional one an address-divergence instruction replay ([`constant`]);
//! * the per-SM **texture cache** ([`texture`]);
//! * the **shared-memory bank-conflict** model — conflicts serialize the
//!   access and each extra pass is an instruction replay ([`shared`]).
//!
//! The same models serve two masters: the execution simulator (ground
//! truth) and the analytical predictor's trace analysis; the paper's
//! framework reuses its cache models the same way.

pub mod constant;
pub mod l2;
pub mod setassoc;
pub mod shared;
pub mod texture;

pub use constant::ConstantCache;
pub use l2::{L2Cache, L2Source};
pub use setassoc::{AccessOutcome, SetAssocCache};
pub use shared::{shared_conflict_passes, SharedMemBanks};
pub use texture::TextureCache;
