//! The device-wide L2 cache.
//!
//! "Texture, constant, and global memories share a last-level L2 cache
//! distributed over multiple streaming multiprocessors" (paper Section
//! II-A). Placement moves between those spaces therefore *interfere* in
//! L2 — one of the caching effects the models must capture — so the L2
//! tracks transactions and misses per traffic source.

use hms_types::CacheGeometry;

use crate::setassoc::{AccessOutcome, SetAssocCache};

/// Which off-chip path a transaction entered L2 through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Source {
    Global,
    Texture,
    Constant,
}

impl L2Source {
    const COUNT: usize = 3;

    #[inline]
    fn idx(self) -> usize {
        match self {
            L2Source::Global => 0,
            L2Source::Texture => 1,
            L2Source::Constant => 2,
        }
    }
}

/// The shared L2 with per-source accounting.
#[derive(Debug, Clone)]
pub struct L2Cache {
    cache: SetAssocCache,
    accesses: [u64; L2Source::COUNT],
    misses: [u64; L2Source::COUNT],
}

impl L2Cache {
    pub fn new(geometry: CacheGeometry) -> Self {
        L2Cache {
            cache: SetAssocCache::new(geometry),
            accesses: [0; L2Source::COUNT],
            misses: [0; L2Source::COUNT],
        }
    }

    /// One 32-byte-sector-aligned transaction from `source`; returns the
    /// outcome (a miss proceeds to DRAM).
    pub fn access(&mut self, addr: u64, source: L2Source) -> AccessOutcome {
        self.access_rw(addr, source, false)
    }

    /// [`Self::access`] with a write flag: stores dirty the line, and
    /// dirty evictions are counted as write-back traffic.
    pub fn access_rw(&mut self, addr: u64, source: L2Source, write: bool) -> AccessOutcome {
        let out = self.cache.access_rw(addr, write);
        self.accesses[source.idx()] += 1;
        if !out.is_hit() {
            self.misses[source.idx()] += 1;
        }
        out
    }

    /// Dirty lines written back to DRAM so far.
    pub fn writebacks(&self) -> u64 {
        self.cache.dirty_evictions()
    }

    /// Total L2 transactions (the `L2_trans` event of the paper's
    /// Table I).
    pub fn transactions(&self) -> u64 {
        self.accesses.iter().sum()
    }

    pub fn transactions_from(&self, source: L2Source) -> u64 {
        self.accesses[source.idx()]
    }

    pub fn misses(&self) -> u64 {
        self.misses.iter().sum()
    }

    pub fn misses_from(&self, source: L2Source) -> u64 {
        self.misses[source.idx()]
    }

    /// Device-wide miss ratio (the `miss_ratio` of AMAT, Eq. 5).
    pub fn miss_ratio(&self) -> f64 {
        let t = self.transactions();
        if t == 0 {
            0.0
        } else {
            self.misses() as f64 / t as f64
        }
    }

    pub fn flush(&mut self) {
        self.cache.flush();
    }

    /// Return to the just-constructed state in O(1) (generation bump in
    /// the underlying array; see [`SetAssocCache::reset`]) so the
    /// engine's replay path can reuse one allocation per thread instead
    /// of zeroing a fresh line array per candidate.
    pub fn reset(&mut self) {
        self.cache.reset();
        self.accesses = [0; L2Source::COUNT];
        self.misses = [0; L2Source::COUNT];
    }

    /// The geometry this cache was built with (used to validate that a
    /// pooled instance may be reset and reused rather than rebuilt).
    pub fn geometry(&self) -> &CacheGeometry {
        self.cache.geometry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2() -> L2Cache {
        L2Cache::new(CacheGeometry::new(8 * 1024, 128, 4))
    }

    #[test]
    fn per_source_accounting() {
        let mut c = l2();
        c.access(0, L2Source::Global);
        c.access(0, L2Source::Texture); // hit, same line
        c.access(4096, L2Source::Constant);
        assert_eq!(c.transactions(), 3);
        assert_eq!(c.transactions_from(L2Source::Global), 1);
        assert_eq!(c.misses_from(L2Source::Global), 1);
        assert_eq!(c.misses_from(L2Source::Texture), 0);
        assert_eq!(c.misses_from(L2Source::Constant), 1);
        assert!((c.miss_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn writeback_counting_through_l2() {
        let mut c = l2();
        c.access_rw(0, L2Source::Global, true);
        // Stream enough clean lines through set 0 to evict the dirty one.
        for i in 1..=4u64 {
            c.access_rw(i * 8 * 1024, L2Source::Global, false);
        }
        assert!(c.writebacks() >= 1);
    }

    #[test]
    fn sources_share_capacity_and_interfere() {
        // Fill L2 from the global path, then show texture traffic evicts
        // it — the interference effect of moving data between spaces.
        let mut c = l2();
        c.access(0, L2Source::Global);
        assert!(c.access(0, L2Source::Global).is_hit());
        // Stream enough texture lines to evict everything.
        for i in 0..1024u64 {
            c.access(100_000 + i * 128, L2Source::Texture);
        }
        assert!(!c.access(0, L2Source::Global).is_hit());
    }
}
