//! The per-SM constant cache with broadcast access semantics.
//!
//! Constant memory is built for *uniform* access: when every active lane
//! of a warp reads the same address, the cache serves all 32 lanes with
//! one transaction. Divergent addresses serialize — "address divergence in
//! an indexed constant load" is instruction-replay cause (3) in the
//! paper, and "constant cache misses" is cause (2).

use hms_types::CacheGeometry;

use crate::setassoc::SetAssocCache;

/// Result of one warp-level constant access.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConstAccessResult {
    /// Distinct addresses served (>= 1 for any active warp access).
    pub transactions: u32,
    /// Cache misses among those transactions; each miss continues to L2.
    pub misses: u32,
    /// Instruction replays: divergence replays (`transactions - 1`) plus
    /// one per miss, per the paper's replay quantification rules (2)–(3).
    pub replays: u32,
    /// Line-aligned byte addresses that missed and continue to L2.
    pub missed_lines: Vec<u64>,
}

/// Per-SM constant cache.
#[derive(Debug, Clone)]
pub struct ConstantCache {
    cache: SetAssocCache,
    warp_accesses: u64,
    transactions: u64,
    misses: u64,
    divergence_replays: u64,
}

impl ConstantCache {
    pub fn new(geometry: CacheGeometry) -> Self {
        ConstantCache {
            cache: SetAssocCache::new(geometry),
            warp_accesses: 0,
            transactions: 0,
            misses: 0,
            divergence_replays: 0,
        }
    }

    /// Serve one warp constant load given the active lanes' byte
    /// addresses. The addresses are deduplicated to whole cache-line
    /// granules first (the broadcast unit matches on the fetched word).
    pub fn access_warp(&mut self, lane_addrs: &[u64]) -> ConstAccessResult {
        if lane_addrs.is_empty() {
            return ConstAccessResult::default();
        }
        // Distinct addresses at word granularity define the serialized
        // broadcast groups.
        let mut distinct: Vec<u64> = lane_addrs.iter().map(|a| a / 4 * 4).collect();
        distinct.sort_unstable();
        distinct.dedup();
        self.access_words(&distinct)
    }

    /// Serve one warp load already deduplicated to sorted, word-aligned
    /// byte addresses — the form the incremental search engine memoizes.
    /// [`access_warp`](Self::access_warp) delegates here, so both entry
    /// points apply identical state transitions.
    pub fn access_words(&mut self, words: &[u64]) -> ConstAccessResult {
        let mut missed_lines = Vec::new();
        let (transactions, misses) = self.access_words_into(words, &mut missed_lines);
        ConstAccessResult {
            transactions,
            misses,
            replays: transactions.saturating_sub(1) + misses,
            missed_lines,
        }
    }

    /// Allocation-free [`access_words`](Self::access_words): missed
    /// line addresses land in the caller's `missed` buffer (cleared
    /// first), and the `(transactions, misses)` pair is returned
    /// directly — the replay's divergence replays are `transactions -
    /// 1` and its miss replays `misses`, both derivable by the caller.
    /// The engine's lane-batched replay calls this once per constant
    /// body event per lane, so the result buffer must be reusable
    /// scratch.
    pub fn access_words_into(&mut self, words: &[u64], missed: &mut Vec<u64>) -> (u32, u32) {
        missed.clear();
        if words.is_empty() {
            return (0, 0);
        }
        self.warp_accesses += 1;
        let transactions = words.len() as u32;

        let mut misses = 0u32;
        let line = self.cache.geometry().line_bytes;
        // Each distinct word probes the cache (line granularity inside).
        for &addr in words {
            if !self.cache.access(addr).is_hit() {
                misses += 1;
                let la = addr / line * line;
                if missed.last() != Some(&la) {
                    missed.push(la);
                }
            }
        }
        let divergence = transactions - 1;
        self.transactions += u64::from(transactions);
        self.misses += u64::from(misses);
        self.divergence_replays += u64::from(divergence);
        (transactions, misses)
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    pub fn divergence_replays(&self) -> u64 {
        self.divergence_replays
    }

    pub fn warp_accesses(&self) -> u64 {
        self.warp_accesses
    }

    pub fn flush(&mut self) {
        self.cache.flush();
    }

    /// O(1) return to the just-constructed state (see
    /// [`SetAssocCache::reset`]); lets the engine reuse per-SM cache
    /// allocations across replays.
    pub fn reset(&mut self) {
        self.cache.reset();
        self.warp_accesses = 0;
        self.transactions = 0;
        self.misses = 0;
        self.divergence_replays = 0;
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> &CacheGeometry {
        self.cache.geometry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc() -> ConstantCache {
        ConstantCache::new(CacheGeometry::new(1024, 64, 2))
    }

    #[test]
    fn uniform_access_is_one_transaction() {
        let mut c = cc();
        let addrs = vec![128u64; 32];
        let r = c.access_warp(&addrs);
        assert_eq!(r.transactions, 1);
        assert_eq!(r.misses, 1); // cold
        assert_eq!(r.replays, 1); // the miss replays once
        let r2 = c.access_warp(&addrs);
        assert_eq!(r2.misses, 0);
        assert_eq!(r2.replays, 0); // warm uniform access is free
    }

    #[test]
    fn divergent_access_serializes() {
        let mut c = cc();
        // 32 lanes reading 32 different words: 32 transactions, 31
        // divergence replays.
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 4).collect();
        let r = c.access_warp(&addrs);
        assert_eq!(r.transactions, 32);
        assert_eq!(r.divergence_replays_check(), 31);
        // 32 words span 2 x 64-byte lines -> 2 cold misses... but each
        // distinct word probes the cache, and words in an already-fetched
        // line hit. First word of each line misses.
        assert_eq!(r.misses, 2);
        assert_eq!(r.replays, 31 + 2);
    }

    #[test]
    fn two_address_groups() {
        let mut c = cc();
        let mut addrs = vec![0u64; 16];
        addrs.extend(vec![256u64; 16]);
        let r = c.access_warp(&addrs);
        assert_eq!(r.transactions, 2);
        assert_eq!(r.replays, 1 + 2); // 1 divergence + 2 cold misses
    }

    #[test]
    fn empty_warp_is_noop() {
        let mut c = cc();
        let r = c.access_warp(&[]);
        assert_eq!(r, ConstAccessResult::default());
        assert_eq!(c.access_words(&[]), ConstAccessResult::default());
        assert_eq!(c.warp_accesses(), 0);
    }

    #[test]
    fn access_words_matches_access_warp() {
        let mut via_warp = cc();
        let mut via_words = cc();
        let warps: Vec<Vec<u64>> = (0..16u64)
            .map(|i| (0..32u64).map(|l| (i * 29 + l * (i % 3)) % 2048).collect())
            .collect();
        for addrs in &warps {
            let mut words: Vec<u64> = addrs.iter().map(|a| a / 4 * 4).collect();
            words.sort_unstable();
            words.dedup();
            assert_eq!(via_warp.access_warp(addrs), via_words.access_words(&words));
        }
        assert_eq!(via_warp.transactions(), via_words.transactions());
        assert_eq!(via_warp.misses(), via_words.misses());
        assert_eq!(
            via_warp.divergence_replays(),
            via_words.divergence_replays()
        );
    }

    impl ConstAccessResult {
        fn divergence_replays_check(&self) -> u32 {
            self.transactions - 1
        }
    }
}
