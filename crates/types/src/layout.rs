//! Array element -> byte-offset layout functions.
//!
//! Global, constant and shared placements use the ordinary row-major
//! layout. A 2-D texture binding instead stores elements in a
//! *block-linear* (tiled) order so that small 2-D neighbourhoods land in
//! the same cache lines — the "2D spatial locality" caching the paper
//! attributes to texture memory (Section I). The exact NVIDIA tiling is
//! undocumented; a square-tile layout reproduces its locality behaviour.

/// Row-major byte offset of element `(x, y)` in a `width`-wide array of
/// `elem_bytes`-sized elements.
#[inline]
pub fn row_major_offset(x: u64, y: u64, width: u64, elem_bytes: u64) -> u64 {
    (y * width + x) * elem_bytes
}

/// Block-linear (tiled) byte offset of element `(x, y)` for a 2-D texture:
/// the array is partitioned into `tile x tile` element tiles stored
/// contiguously in row-major tile order, elements row-major within a tile.
///
/// `width` is rounded up to a whole number of tiles, mirroring the padded
/// pitch of a real texture allocation.
#[inline]
pub fn tex2d_offset(x: u64, y: u64, width: u64, elem_bytes: u64, tile: u64) -> u64 {
    debug_assert!(tile > 0);
    let tiles_per_row = width.div_ceil(tile);
    let (tx, ty) = (x / tile, y / tile);
    let (ix, iy) = (x % tile, y % tile);
    let tile_index = ty * tiles_per_row + tx;
    (tile_index * tile * tile + iy * tile + ix) * elem_bytes
}

/// Inverse of [`tex2d_offset`]: recover `(x, y)` from a byte offset.
///
/// Used by the trace rewriter, which — like the paper's SASSI-based
/// framework — sees only byte addresses in the sample trace and must
/// recover element coordinates to re-lay them out for a target placement.
#[inline]
pub fn tex2d_invert(offset: u64, width: u64, elem_bytes: u64, tile: u64) -> (u64, u64) {
    debug_assert!(tile > 0 && elem_bytes > 0);
    let elem = offset / elem_bytes;
    let tiles_per_row = width.div_ceil(tile);
    let tile_index = elem / (tile * tile);
    let within = elem % (tile * tile);
    let (tx, ty) = (tile_index % tiles_per_row, tile_index / tiles_per_row);
    let (ix, iy) = (within % tile, within / tile);
    (tx * tile + ix, ty * tile + iy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tex2d_invert_roundtrip() {
        for y in 0..17u64 {
            for x in 0..29u64 {
                let off = tex2d_offset(x, y, 29, 8, 8);
                assert_eq!(tex2d_invert(off, 29, 8, 8), (x, y));
            }
        }
    }

    #[test]
    fn row_major_basics() {
        assert_eq!(row_major_offset(0, 0, 64, 4), 0);
        assert_eq!(row_major_offset(3, 0, 64, 4), 12);
        assert_eq!(row_major_offset(0, 1, 64, 4), 256);
    }

    #[test]
    fn tex2d_tile_is_contiguous() {
        // All 64 elements of the first 8x8 tile occupy the first
        // 64*4 bytes, in some order.
        let mut offsets: Vec<u64> = (0..8)
            .flat_map(|y| (0..8).map(move |x| tex2d_offset(x, y, 64, 4, 8)))
            .collect();
        offsets.sort_unstable();
        let expected: Vec<u64> = (0..64).map(|i| i * 4).collect();
        assert_eq!(offsets, expected);
    }

    #[test]
    fn tex2d_vertical_neighbours_are_close() {
        // Row-major puts (0,0) and (0,7) a full row apart; the tiled
        // layout keeps them within one tile.
        let width = 1024;
        let rm = row_major_offset(0, 7, width, 4) - row_major_offset(0, 0, width, 4);
        let tex = tex2d_offset(0, 7, width, 4, 8) - tex2d_offset(0, 0, width, 4, 8);
        assert!(tex < rm);
        assert!(tex < 8 * 8 * 4);
    }

    #[test]
    fn tex2d_offsets_unique_over_padded_region() {
        // Injectivity over a ragged-width array (width not a multiple of
        // the tile edge).
        let mut seen = std::collections::HashSet::new();
        for y in 0..20u64 {
            for x in 0..13u64 {
                assert!(seen.insert(tex2d_offset(x, y, 13, 4, 8)));
            }
        }
    }
}
