//! The programmable memory spaces of a GPU heterogeneous memory system.
//!
//! The paper's data-placement problem is over the four *programmable*
//! memories of a Kepler GPU — global, texture, constant and shared — with
//! texture further split into its 1-D and 2-D binding modes (the paper's
//! Table IV distinguishes `T` and `2T` placements). Global, texture and
//! constant are off-chip GDDR5 behind different cache paths; shared memory
//! is on-chip SRAM scoped to a thread block.

use std::fmt;

/// One of the programmable memory spaces a data array can be placed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemorySpace {
    /// Off-chip global memory (`LD.E`/`ST.E`), cached in L2 only on Kepler.
    Global,
    /// Off-chip memory bound to a 1-D texture reference (`TEX`), read-only,
    /// cached in the per-SM texture cache and L2.
    Texture1D,
    /// Off-chip memory bound to a 2-D texture reference, read-only, cached
    /// with 2-D block locality in the per-SM texture cache and L2.
    Texture2D,
    /// Off-chip constant memory (`LDC`), read-only, 64 KiB, cached in the
    /// per-SM constant cache (broadcast access) and L2.
    Constant,
    /// On-chip shared memory (`LDS`/`STS`), scoped to a thread block,
    /// organized as 32 four-byte banks.
    Shared,
}

impl MemorySpace {
    /// All placement candidates, in the order used throughout the harness
    /// (matches the paper's `G, T, 2T, C, S` notation order, with `T`
    /// before `2T`).
    pub const ALL: [MemorySpace; 5] = [
        MemorySpace::Global,
        MemorySpace::Texture1D,
        MemorySpace::Texture2D,
        MemorySpace::Constant,
        MemorySpace::Shared,
    ];

    /// Whether the space lives in off-chip GDDR5 DRAM (and therefore
    /// participates in L2 caching, row-buffer behaviour and the queuing
    /// model of the paper's Section III-C).
    #[inline]
    pub fn is_off_chip(self) -> bool {
        !matches!(self, MemorySpace::Shared)
    }

    /// Whether a kernel may write to data placed in this space.
    ///
    /// Texture and constant memories are read-only from device code; the
    /// placement search uses this to prune illegal placements.
    #[inline]
    pub fn is_writable(self) -> bool {
        matches!(self, MemorySpace::Global | MemorySpace::Shared)
    }

    /// Whether this space is one of the texture binding modes.
    #[inline]
    pub fn is_texture(self) -> bool {
        matches!(self, MemorySpace::Texture1D | MemorySpace::Texture2D)
    }

    /// Short label used in placement-test notation, mirroring the paper's
    /// Table IV ("G, T, C, S and 2T stand for global, 1Dtexture, constant,
    /// shared, and 2Dtexture memories").
    pub fn short(self) -> &'static str {
        match self {
            MemorySpace::Global => "G",
            MemorySpace::Texture1D => "T",
            MemorySpace::Texture2D => "2T",
            MemorySpace::Constant => "C",
            MemorySpace::Shared => "S",
        }
    }

    /// Parse the paper's short notation back into a space.
    pub fn from_short(s: &str) -> Option<Self> {
        Some(match s {
            "G" => MemorySpace::Global,
            "T" => MemorySpace::Texture1D,
            "2T" => MemorySpace::Texture2D,
            "C" => MemorySpace::Constant,
            "S" => MemorySpace::Shared,
            _ => return None,
        })
    }
}

impl fmt::Display for MemorySpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MemorySpace::Global => "global",
            MemorySpace::Texture1D => "texture1d",
            MemorySpace::Texture2D => "texture2d",
            MemorySpace::Constant => "constant",
            MemorySpace::Shared => "shared",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_chip_classification() {
        assert!(MemorySpace::Global.is_off_chip());
        assert!(MemorySpace::Texture1D.is_off_chip());
        assert!(MemorySpace::Texture2D.is_off_chip());
        assert!(MemorySpace::Constant.is_off_chip());
        assert!(!MemorySpace::Shared.is_off_chip());
    }

    #[test]
    fn writability() {
        assert!(MemorySpace::Global.is_writable());
        assert!(MemorySpace::Shared.is_writable());
        assert!(!MemorySpace::Texture1D.is_writable());
        assert!(!MemorySpace::Texture2D.is_writable());
        assert!(!MemorySpace::Constant.is_writable());
    }

    #[test]
    fn short_roundtrip() {
        for s in MemorySpace::ALL {
            assert_eq!(MemorySpace::from_short(s.short()), Some(s));
        }
        assert_eq!(MemorySpace::from_short("X"), None);
    }

    #[test]
    fn all_contains_every_variant_once() {
        let mut sorted = MemorySpace::ALL.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn display_names() {
        assert_eq!(MemorySpace::Global.to_string(), "global");
        assert_eq!(MemorySpace::Texture2D.to_string(), "texture2d");
    }
}
