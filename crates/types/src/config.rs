//! GPU hardware configuration.
//!
//! Defaults model the NVIDIA Tesla K80 (one GK210 die, Kepler) used in the
//! paper's evaluation. Every latency is expressed in *core clock cycles* so
//! the simulator and the analytical models share one time base; the
//! conversion to nanoseconds happens only at the reporting boundary.
//! The row-buffer service latencies default to the values the paper
//! measured with its Algorithm 1 microbenchmark: 352 ns (row-buffer hit),
//! 742 ns (miss), 1008 ns (conflict).

/// Geometry of one set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    pub size_bytes: u64,
    pub line_bytes: u64,
    pub ways: u32,
}

impl CacheGeometry {
    pub const fn new(size_bytes: u64, line_bytes: u64, ways: u32) -> Self {
        CacheGeometry {
            size_bytes,
            line_bytes,
            ways,
        }
    }

    /// Number of sets implied by the geometry.
    #[inline]
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * u64::from(self.ways))
    }
}

/// Timing and organization of the off-chip GDDR5 memory system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramTimingConfig {
    /// Memory controllers / partitions (`M = 6` for Kepler in the paper).
    pub channels: u32,
    /// Banks per channel (one rank per channel on GPU; 16 banks/chip is
    /// the GDDR5 configuration that yields the paper's 96 total banks).
    pub banks_per_channel: u32,
    /// Row (page) size per bank in bytes.
    pub row_bytes: u64,
    /// Service time of a row-buffer hit, in core cycles.
    pub hit_cycles: u64,
    /// Service time of a row-buffer miss to a closed row, in core cycles.
    pub miss_cycles: u64,
    /// Service time of a row conflict (precharge + activate), core cycles.
    pub conflict_cycles: u64,
    /// Data-bus occupancy per 32-byte transaction on a channel, in core
    /// cycles; serializes transfers sharing a channel.
    pub burst_cycles: u64,
    /// Auto-refresh period in core cycles; every boundary closes all row
    /// buffers (tREFI-driven). 0 disables refresh modeling.
    pub refresh_interval_cycles: u64,
}

impl DramTimingConfig {
    /// Total banks across all channels (`NB` in the paper's Eq. 7).
    #[inline]
    pub fn total_banks(&self) -> u32 {
        self.channels * self.banks_per_channel
    }
}

/// Full machine description consumed by the simulator and the models.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Streaming multiprocessors.
    pub num_sms: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Warp instructions issued per SM per cycle.
    pub issue_width: u32,
    /// Effective SIMD lane width per issued warp instruction (32 on
    /// Kepler: a full warp issues in one cycle).
    pub simd_width: u32,
    /// Core clock in GHz (K80 base: 562 MHz).
    pub core_clock_ghz: f64,
    /// Average arithmetic instruction latency in cycles (the paper follows
    /// [7] in using the FP-op latency as the average instruction latency).
    pub avg_inst_lat: u64,
    /// Warp-local instruction-level parallelism: the average number of
    /// independent instructions a warp can issue before stalling on a
    /// result (the `ILP` of the paper's Eq. 14). The simulator uses it to
    /// pace per-warp issue; the models use the same value, keeping the
    /// two sides consistent the way the paper calibrates [7]'s model to
    /// its hardware.
    pub warp_ilp: f64,

    /// Shared memory capacity per SM in bytes.
    pub shared_mem_bytes_per_sm: u64,
    /// Shared memory banks (32 four-byte banks on Kepler).
    pub shared_banks: u32,
    /// Shared memory access latency in cycles.
    pub shared_lat: u64,

    /// Constant memory capacity (64 KiB on every CUDA GPU).
    pub constant_mem_bytes: u64,
    /// Per-SM constant cache.
    pub const_cache: CacheGeometry,
    /// Constant cache hit latency in cycles.
    pub const_hit_lat: u64,

    /// Per-SM texture cache.
    pub tex_cache: CacheGeometry,
    /// Texture cache hit latency in cycles (the texture pipeline is long
    /// even on a hit).
    pub tex_hit_lat: u64,
    /// Tile edge (in elements) used by the 2-D texture block-linear layout.
    pub tex2d_tile: u64,

    /// Per-SM L1 data cache, used by *local*-memory traffic (register
    /// spills and stack data; Kepler reserves L1 for local/register
    /// spill accesses — replay causes (7) and (9) in the paper).
    pub l1_cache: CacheGeometry,
    /// L1 hit latency in cycles.
    pub l1_hit_lat: u64,
    /// Local-memory slots available per thread (4-byte words).
    pub local_slots_per_thread: u32,

    /// Device-wide L2 cache.
    pub l2_cache: CacheGeometry,
    /// L2 hit latency in cycles (the paper approximates every cache-hit
    /// latency with the L2 latency in Eq. 5).
    pub l2_hit_lat: u64,

    /// Off-chip memory system.
    pub dram: DramTimingConfig,
    /// Width of a coalesced memory transaction in bytes (128-byte
    /// transactions on Kepler for cached accesses; 32-byte sectors at L2).
    pub transaction_bytes: u64,
    /// Maximum outstanding memory requests per warp before issue stalls
    /// (models MSHR/LSU capacity; replay cause (10) — "LSU full").
    pub max_pending_per_warp: u32,
}

impl GpuConfig {
    /// The paper's evaluation platform: NVIDIA Tesla K80 (Kepler GK210).
    pub fn tesla_k80() -> Self {
        let core_clock_ghz = 0.562;
        // Convert the paper's measured DRAM service latencies (ns) into
        // core cycles: cycles = ns * GHz.
        let ns = |t: f64| (t * core_clock_ghz).round() as u64;
        GpuConfig {
            num_sms: 13,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 16,
            warp_size: 32,
            issue_width: 2,
            simd_width: 32,
            core_clock_ghz,
            avg_inst_lat: 9,
            warp_ilp: 3.0,

            shared_mem_bytes_per_sm: 48 * 1024,
            shared_banks: 32,
            shared_lat: 48,

            constant_mem_bytes: 64 * 1024,
            const_cache: CacheGeometry::new(8 * 1024, 64, 4),
            const_hit_lat: 30,

            tex_cache: CacheGeometry::new(12 * 1024, 32, 4),
            tex_hit_lat: 104,
            tex2d_tile: 8,

            l1_cache: CacheGeometry::new(16 * 1024, 128, 4),
            l1_hit_lat: 30,
            local_slots_per_thread: 256,

            l2_cache: CacheGeometry::new(1536 * 1024, 128, 16),
            l2_hit_lat: 222,

            dram: DramTimingConfig {
                channels: 6,
                banks_per_channel: 16,
                row_bytes: 2048,
                hit_cycles: ns(352.0),
                miss_cycles: ns(742.0),
                conflict_cycles: ns(1008.0),
                // One 128-byte transaction at the K80's ~240 GB/s pin
                // bandwidth occupies ~0.53 ns ~ 0.3 core cycles per
                // channel; 1 cycle is the closest integer granule.
                burst_cycles: 1,
                // tREFI ~ 3.9 us on GDDR5 ~ 2192 core cycles at 562 MHz.
                refresh_interval_cycles: 2192,
            },
            transaction_bytes: 128,
            max_pending_per_warp: 6,
        }
    }

    /// The Fermi-generation Tesla C2050 — the platform the paper's
    /// Figure 4 inter-arrival study uses (via GPGPUSim's default
    /// configuration). 14 SMs, 16-wide SIMD halves (modeled as one-cycle
    /// warp issue like Kepler), 768 KiB L2, 6 channels.
    pub fn tesla_c2050() -> Self {
        let mut cfg = Self::tesla_k80();
        cfg.num_sms = 14;
        cfg.max_warps_per_sm = 48;
        cfg.max_blocks_per_sm = 8;
        cfg.issue_width = 1;
        cfg.core_clock_ghz = 1.15;
        let ns = |t: f64| (t * cfg.core_clock_ghz).round() as u64;
        // GDDR5 at the same absolute timings, re-expressed in the faster
        // Fermi core clock.
        cfg.dram.hit_cycles = ns(352.0);
        cfg.dram.miss_cycles = ns(742.0);
        cfg.dram.conflict_cycles = ns(1008.0);
        cfg.l2_cache = CacheGeometry::new(768 * 1024, 128, 16);
        cfg.shared_mem_bytes_per_sm = 48 * 1024;
        cfg
    }

    /// A deliberately small machine for fast unit tests: 2 SMs, tiny
    /// caches, 2 channels x 4 banks. Timing constants match the K80 so
    /// latency-sensitive assertions carry over.
    pub fn test_small() -> Self {
        let mut cfg = Self::tesla_k80();
        cfg.num_sms = 2;
        cfg.max_warps_per_sm = 16;
        cfg.max_blocks_per_sm = 4;
        cfg.const_cache = CacheGeometry::new(1024, 64, 2);
        cfg.tex_cache = CacheGeometry::new(2048, 32, 2);
        cfg.l1_cache = CacheGeometry::new(2 * 1024, 128, 2);
        cfg.l2_cache = CacheGeometry::new(32 * 1024, 128, 4);
        cfg.dram.channels = 2;
        cfg.dram.banks_per_channel = 4;
        cfg
    }

    /// Nanoseconds per core cycle.
    #[inline]
    pub fn ns_per_cycle(&self) -> f64 {
        1.0 / self.core_clock_ghz
    }

    /// Convert a cycle count to nanoseconds.
    #[inline]
    pub fn cycles_to_ns(&self, cycles: f64) -> f64 {
        cycles * self.ns_per_cycle()
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::tesla_k80()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k80_bank_count_matches_paper() {
        // Section III-C3: "all memory banks (96 banks)".
        assert_eq!(GpuConfig::tesla_k80().dram.total_banks(), 96);
    }

    #[test]
    fn measured_latencies_convert_to_cycles() {
        let cfg = GpuConfig::tesla_k80();
        // 352 ns * 0.562 GHz = 197.8 -> 198 cycles, etc.
        assert_eq!(cfg.dram.hit_cycles, 198);
        assert_eq!(cfg.dram.miss_cycles, 417);
        assert_eq!(cfg.dram.conflict_cycles, 566);
        // Ordering invariant: hit < miss < conflict.
        assert!(cfg.dram.hit_cycles < cfg.dram.miss_cycles);
        assert!(cfg.dram.miss_cycles < cfg.dram.conflict_cycles);
    }

    #[test]
    fn cache_sets() {
        let g = CacheGeometry::new(1536 * 1024, 128, 16);
        assert_eq!(g.sets(), 768);
    }

    #[test]
    fn ns_round_trip() {
        let cfg = GpuConfig::tesla_k80();
        let ns = cfg.cycles_to_ns(562.0);
        assert!((ns - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn c2050_differs_where_fermi_differs() {
        let fermi = GpuConfig::tesla_c2050();
        let kepler = GpuConfig::tesla_k80();
        assert_eq!(fermi.num_sms, 14);
        assert_eq!(fermi.dram.total_banks(), 96);
        assert!(fermi.l2_cache.size_bytes < kepler.l2_cache.size_bytes);
        // Same absolute DRAM timings, different clock -> more cycles.
        assert!(fermi.dram.hit_cycles > kepler.dram.hit_cycles);
        assert!((fermi.cycles_to_ns(fermi.dram.hit_cycles as f64) - 352.0).abs() < 1.0);
    }

    #[test]
    fn test_config_is_small_but_consistent() {
        let cfg = GpuConfig::test_small();
        assert_eq!(cfg.dram.total_banks(), 8);
        assert!(cfg.l2_cache.sets() > 0);
        assert_eq!(cfg.dram.hit_cycles, GpuConfig::tesla_k80().dram.hit_cycles);
    }
}
