//! Element data types of placed arrays.
//!
//! The paper enumerates "common data types (double-precision floating
//! point and integer)" when quantifying addressing-mode instruction
//! differences (Section III-B), so the type of an array element is part of
//! the model input.

use std::fmt;

/// Element type of a data array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit single-precision float (`float`).
    F32,
    /// 64-bit double-precision float (`double`).
    F64,
    /// 32-bit signed integer (`int`).
    I32,
    /// 32-bit unsigned integer (`unsigned int`).
    U32,
    /// 64-bit signed integer (`long long`).
    I64,
}

impl DType {
    /// Size of one element in bytes.
    #[inline]
    pub fn size_bytes(self) -> u64 {
        match self {
            DType::F32 | DType::I32 | DType::U32 => 4,
            DType::F64 | DType::I64 => 8,
        }
    }

    /// Whether arithmetic on this type uses the double-precision pipeline,
    /// whose instructions "issue over 2 cycles" (replay cause (5) in the
    /// paper's Section III-B).
    #[inline]
    pub fn is_double_width(self) -> bool {
        matches!(self, DType::F64 | DType::I64)
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DType::F32 => "f32",
            DType::F64 => "f64",
            DType::I32 => "i32",
            DType::U32 => "u32",
            DType::I64 => "i64",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F64.size_bytes(), 8);
        assert_eq!(DType::I32.size_bytes(), 4);
        assert_eq!(DType::U32.size_bytes(), 4);
        assert_eq!(DType::I64.size_bytes(), 8);
    }

    #[test]
    fn double_width() {
        assert!(DType::F64.is_double_width());
        assert!(DType::I64.is_double_width());
        assert!(!DType::F32.is_double_width());
    }
}
