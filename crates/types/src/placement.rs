//! Placement maps: which memory space holds each data array.
//!
//! A *sample placement* is the placement the kernel was profiled with; a
//! *target placement* is any candidate the models must predict. The paper's
//! search space is `m^n` placements for `n` arrays over `m` programmable
//! memories, pruned by capacity and read/write legality.

use std::fmt;

use crate::array::{ArrayDef, ArrayId, Dims};
use crate::config::GpuConfig;
use crate::error::HmsError;
use crate::space::MemorySpace;

/// Placement of a single array.
pub type Placement = MemorySpace;

/// Assignment of every array of a kernel to a memory space, indexed by
/// [`ArrayId`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlacementMap {
    spaces: Vec<MemorySpace>,
}

impl PlacementMap {
    /// A placement map putting every one of `n` arrays in global memory —
    /// the conventional starting point of most CUDA code.
    pub fn all_global(n: usize) -> Self {
        PlacementMap {
            spaces: vec![MemorySpace::Global; n],
        }
    }

    /// Build from an explicit per-array list (index = `ArrayId`).
    pub fn from_spaces(spaces: Vec<MemorySpace>) -> Self {
        PlacementMap { spaces }
    }

    /// Number of arrays covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.spaces.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.spaces.is_empty()
    }

    /// Space assigned to `id`.
    #[inline]
    pub fn space(&self, id: ArrayId) -> MemorySpace {
        self.spaces[id.index()]
    }

    /// Iterate `(ArrayId, MemorySpace)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ArrayId, MemorySpace)> + '_ {
        self.spaces
            .iter()
            .enumerate()
            .map(|(i, &s)| (ArrayId(i as u32), s))
    }

    /// Return a copy with `id` moved to `space` (the paper's single
    /// target-data-object move).
    pub fn with(&self, id: ArrayId, space: MemorySpace) -> Self {
        let mut spaces = self.spaces.clone();
        spaces[id.index()] = space;
        PlacementMap { spaces }
    }

    /// The arrays whose space differs between `self` (sample) and `target`.
    pub fn delta(&self, target: &PlacementMap) -> Vec<PlacementDelta> {
        assert_eq!(
            self.len(),
            target.len(),
            "placement maps cover different kernels"
        );
        self.iter()
            .zip(target.iter())
            .filter(|((_, a), (_, b))| a != b)
            .map(|((id, from), (_, to))| PlacementDelta {
                array: id,
                from,
                to,
            })
            .collect()
    }

    /// Validate the placement against hardware constraints:
    ///
    /// * written arrays may only live in global or shared memory;
    /// * the sum of constant-placed footprints must fit the 64 KiB constant
    ///   memory;
    /// * shared-placed footprints must fit the per-SM shared memory (the
    ///   whole working set of one block's share);
    /// * `Texture2D` requires a 2-D array shape.
    pub fn validate(&self, arrays: &[ArrayDef], cfg: &GpuConfig) -> Result<(), HmsError> {
        if arrays.len() != self.len() {
            return Err(HmsError::ArrayCountMismatch {
                expected: arrays.len(),
                got: self.len(),
            });
        }
        let mut constant_bytes = 0u64;
        let mut shared_bytes = 0u64;
        for (id, space) in self.iter() {
            let a = &arrays[id.index()];
            if a.written && !space.is_writable() {
                return Err(HmsError::ReadOnlyPlacement {
                    array: a.name.clone(),
                    space,
                });
            }
            match space {
                MemorySpace::Constant => constant_bytes += a.size_bytes(),
                MemorySpace::Shared => shared_bytes += a.size_bytes(),
                MemorySpace::Texture2D if !matches!(a.dims, Dims::D2 { .. }) => {
                    return Err(HmsError::Texture2DNeeds2D {
                        array: a.name.clone(),
                    });
                }
                _ => {}
            }
        }
        if constant_bytes > cfg.constant_mem_bytes {
            return Err(HmsError::CapacityExceeded {
                space: MemorySpace::Constant,
                used: constant_bytes,
                capacity: cfg.constant_mem_bytes,
            });
        }
        if shared_bytes > cfg.shared_mem_bytes_per_sm {
            return Err(HmsError::CapacityExceeded {
                space: MemorySpace::Shared,
                used: shared_bytes,
                capacity: cfg.shared_mem_bytes_per_sm,
            });
        }
        Ok(())
    }

    /// Placement-test notation in the paper's Table IV style, e.g.
    /// `"[a(G), b(C)]"`.
    pub fn describe(&self, arrays: &[ArrayDef]) -> String {
        let mut out = String::from("[");
        for (i, (id, space)) in self.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let name = arrays.get(id.index()).map_or("?", |a| a.name.as_str());
            out.push_str(name);
            out.push('(');
            out.push_str(space.short());
            out.push(')');
        }
        out.push(']');
        out
    }
}

/// One array moved between a sample and a target placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementDelta {
    pub array: ArrayId,
    pub from: MemorySpace,
    pub to: MemorySpace,
}

impl fmt::Display for PlacementDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{}({}->{})",
            self.array.0,
            self.from.short(),
            self.to.short()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DType;

    fn arrays() -> Vec<ArrayDef> {
        vec![
            ArrayDef::new_1d(0, "a", DType::F32, 1024, false),
            ArrayDef::new_1d(1, "b", DType::F32, 1024, false),
            ArrayDef::new_1d(2, "v", DType::F32, 1024, true),
        ]
    }

    #[test]
    fn all_global_and_with() {
        let p = PlacementMap::all_global(3);
        assert_eq!(p.space(ArrayId(1)), MemorySpace::Global);
        let q = p.with(ArrayId(1), MemorySpace::Constant);
        assert_eq!(q.space(ArrayId(1)), MemorySpace::Constant);
        assert_eq!(p.space(ArrayId(1)), MemorySpace::Global); // original untouched
    }

    #[test]
    fn delta_lists_moved_arrays_only() {
        let p = PlacementMap::all_global(3);
        let q = p
            .with(ArrayId(0), MemorySpace::Texture1D)
            .with(ArrayId(2), MemorySpace::Shared);
        let d = p.delta(&q);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].array, ArrayId(0));
        assert_eq!(d[0].to, MemorySpace::Texture1D);
        assert_eq!(d[1].from, MemorySpace::Global);
    }

    #[test]
    fn written_array_rejected_in_readonly_space() {
        let cfg = GpuConfig::tesla_k80();
        let p = PlacementMap::all_global(3).with(ArrayId(2), MemorySpace::Constant);
        assert!(matches!(
            p.validate(&arrays(), &cfg),
            Err(HmsError::ReadOnlyPlacement { .. })
        ));
    }

    #[test]
    fn constant_capacity_enforced() {
        let cfg = GpuConfig::tesla_k80();
        let big = vec![ArrayDef::new_1d(0, "huge", DType::F32, 1 << 20, false)];
        let p = PlacementMap::from_spaces(vec![MemorySpace::Constant]);
        assert!(matches!(
            p.validate(&big, &cfg),
            Err(HmsError::CapacityExceeded {
                space: MemorySpace::Constant,
                ..
            })
        ));
    }

    #[test]
    fn texture2d_requires_2d_shape() {
        let cfg = GpuConfig::tesla_k80();
        let p = PlacementMap::from_spaces(vec![
            MemorySpace::Texture2D,
            MemorySpace::Global,
            MemorySpace::Global,
        ]);
        assert!(matches!(
            p.validate(&arrays(), &cfg),
            Err(HmsError::Texture2DNeeds2D { .. })
        ));
    }

    #[test]
    fn valid_placement_passes() {
        let cfg = GpuConfig::tesla_k80();
        let p = PlacementMap::all_global(3)
            .with(ArrayId(0), MemorySpace::Constant)
            .with(ArrayId(1), MemorySpace::Texture1D);
        assert!(p.validate(&arrays(), &cfg).is_ok());
    }

    #[test]
    fn describe_notation() {
        let p = PlacementMap::all_global(3).with(ArrayId(1), MemorySpace::Texture2D);
        assert_eq!(p.describe(&arrays()), "[a(G), b(2T), v(G)]");
    }
}
