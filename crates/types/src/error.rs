//! Error type shared across the workspace.

use std::fmt;

use crate::space::MemorySpace;

/// Errors surfaced by placement validation, trace rewriting and the models.
#[derive(Debug, Clone, PartialEq)]
pub enum HmsError {
    /// A placement map covers a different number of arrays than the kernel
    /// declares.
    ArrayCountMismatch { expected: usize, got: usize },
    /// A written array was placed in a read-only memory space.
    ReadOnlyPlacement { array: String, space: MemorySpace },
    /// The combined footprint in a space exceeds its capacity.
    CapacityExceeded {
        space: MemorySpace,
        used: u64,
        capacity: u64,
    },
    /// A 1-D array was bound to a 2-D texture.
    Texture2DNeeds2D { array: String },
    /// The T_overlap regression was asked to predict before being fitted.
    ModelNotTrained,
    /// A model produced a NaN or infinite predicted time. Surfaced as an
    /// error so ranking never has to compare non-finite keys.
    NonFinitePrediction {
        cycles: f64,
        t_comp: f64,
        t_mem: f64,
        t_overlap: f64,
    },
    /// A numerical routine failed (e.g. singular regression system).
    Numerical(String),
    /// A model input was inconsistent (message explains).
    InvalidInput(String),
    /// A profile carried no trace (zero warps / zero instructions) —
    /// nothing to rewrite, nothing to model.
    EmptyTrace,
    /// A profile measured zero elapsed cycles: every derived rate
    /// (cycles per instruction, overlap ratio) would divide by it.
    ZeroMeasuredCycles,
    /// A derived event ratio left the finite domain (NaN or ±inf) —
    /// the validity boundary of the Eq. 11 regression inputs.
    NonFiniteRatio { name: &'static str, value: f64 },
    /// A u64 event counter combination over- or underflowed (e.g. a
    /// cause-subset replay count exceeding the total). Surfaced as a
    /// typed error instead of a panic under `overflow-checks`.
    CounterOverflow { what: &'static str },
}

impl fmt::Display for HmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HmsError::ArrayCountMismatch { expected, got } => {
                write!(
                    f,
                    "placement covers {got} arrays, kernel declares {expected}"
                )
            }
            HmsError::ReadOnlyPlacement { array, space } => {
                write!(
                    f,
                    "array `{array}` is written but placed in read-only {space} memory"
                )
            }
            HmsError::CapacityExceeded {
                space,
                used,
                capacity,
            } => {
                write!(
                    f,
                    "{space} memory over capacity: {used} bytes used, {capacity} available"
                )
            }
            HmsError::Texture2DNeeds2D { array } => {
                write!(f, "array `{array}` is 1-D but placed in 2-D texture memory")
            }
            HmsError::ModelNotTrained => write!(f, "T_overlap model used before fit()"),
            HmsError::NonFinitePrediction {
                cycles,
                t_comp,
                t_mem,
                t_overlap,
            } => {
                write!(
                    f,
                    "non-finite prediction: {cycles} cycles \
                     (T_comp {t_comp} + T_mem {t_mem} - T_overlap {t_overlap})"
                )
            }
            HmsError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            HmsError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            HmsError::EmptyTrace => write!(f, "profile has an empty trace (no warps)"),
            HmsError::ZeroMeasuredCycles => {
                write!(f, "profile measured zero cycles; rates are undefined")
            }
            HmsError::NonFiniteRatio { name, value } => {
                write!(f, "event ratio `{name}` is non-finite ({value})")
            }
            HmsError::CounterOverflow { what } => {
                write!(f, "event counter overflow in {what}")
            }
        }
    }
}

impl std::error::Error for HmsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = HmsError::ReadOnlyPlacement {
            array: "weights".into(),
            space: MemorySpace::Constant,
        };
        let msg = e.to_string();
        assert!(msg.contains("weights"));
        assert!(msg.contains("constant"));
    }

    #[test]
    fn non_finite_display_carries_terms() {
        let e = HmsError::NonFinitePrediction {
            cycles: f64::NAN,
            t_comp: 1.0,
            t_mem: f64::INFINITY,
            t_overlap: 0.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("non-finite"));
        assert!(msg.contains("inf"));
    }

    #[test]
    fn validity_domain_variants_display() {
        assert!(HmsError::EmptyTrace.to_string().contains("empty trace"));
        assert!(HmsError::ZeroMeasuredCycles
            .to_string()
            .contains("zero cycles"));
        let e = HmsError::NonFiniteRatio {
            name: "cycles_per_instruction",
            value: f64::NAN,
        };
        assert!(e.to_string().contains("cycles_per_instruction"));
        let e = HmsError::CounterOverflow {
            what: "other_replays",
        };
        assert!(e.to_string().contains("other_replays"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(HmsError::ModelNotTrained);
        assert!(e.to_string().contains("fit"));
    }
}
