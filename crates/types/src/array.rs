//! Data-array descriptors — the objects whose placement is optimized.
//!
//! Following the paper ("our work focuses on the placement of data arrays
//! ... because the data array is the most common data structure in GPU
//! programming"), the placement unit is a 1-D or 2-D array of a fixed
//! element type.

use crate::dtype::DType;

/// Identifier of a data array within one kernel, assigned by the kernel
/// generator in declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

impl ArrayId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Logical dimensionality of an array.
///
/// The paper keeps "the dimension of the array in the target data placement
/// ... the same as that in the sample data placement"; a 2-D shape is what
/// makes a `Texture2D` placement meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dims {
    /// Flat array of `len` elements.
    D1 { len: u64 },
    /// Row-major `height x width` array.
    D2 { width: u64, height: u64 },
}

impl Dims {
    /// Total number of elements.
    #[inline]
    pub fn elements(&self) -> u64 {
        match *self {
            Dims::D1 { len } => len,
            Dims::D2 { width, height } => width * height,
        }
    }
}

/// Descriptor of one placeable data array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDef {
    pub id: ArrayId,
    /// Human-readable name, matching the paper's Table IV object names
    /// where applicable (e.g. `"neighList"`, `"rowDelimiters"`).
    pub name: String,
    pub dtype: DType,
    pub dims: Dims,
    /// Whether the kernel ever stores to the array. Writable arrays cannot
    /// be placed in texture or constant memory.
    pub written: bool,
    /// A *scratch* array holds no input data (e.g. a reduction buffer or
    /// an FFT staging tile): moving it into shared memory needs no
    /// initialization copy, and moving it out needs no write-back.
    pub scratch: bool,
    /// A *block-scoped* array is logically private to each thread block
    /// (the natural shape of shared-memory data). When such an array is
    /// placed off-chip, every block addresses its own region — the
    /// paper's "the array index in shared memory is replaced with a
    /// global thread ID" convention.
    pub per_block: bool,
}

impl ArrayDef {
    pub fn new_1d(id: u32, name: &str, dtype: DType, len: u64, written: bool) -> Self {
        ArrayDef {
            id: ArrayId(id),
            name: name.to_owned(),
            dtype,
            dims: Dims::D1 { len },
            written,
            scratch: false,
            per_block: false,
        }
    }

    pub fn new_2d(
        id: u32,
        name: &str,
        dtype: DType,
        width: u64,
        height: u64,
        written: bool,
    ) -> Self {
        ArrayDef {
            id: ArrayId(id),
            name: name.to_owned(),
            dtype,
            dims: Dims::D2 { width, height },
            written,
            scratch: false,
            per_block: false,
        }
    }

    /// Mark the array as scratch (no input contents; see [`ArrayDef::scratch`]).
    pub fn scratch(mut self) -> Self {
        self.scratch = true;
        self
    }

    /// Mark the array as block-scoped (see [`ArrayDef::per_block`]).
    pub fn per_block(mut self) -> Self {
        self.per_block = true;
        self
    }

    /// Footprint of the array in bytes.
    #[inline]
    pub fn size_bytes(&self) -> u64 {
        self.dims.elements() * self.dtype.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        let a = ArrayDef::new_1d(0, "a", DType::F32, 1024, false);
        assert_eq!(a.size_bytes(), 4096);
        let b = ArrayDef::new_2d(1, "b", DType::F64, 64, 32, true);
        assert_eq!(b.dims.elements(), 2048);
        assert_eq!(b.size_bytes(), 16384);
    }
}
