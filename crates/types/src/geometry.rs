//! Kernel launch geometry: grid, blocks, warps.

/// Launch geometry of one GPU kernel invocation.
///
/// Only the sizes matter to the models — thread indices are linearized, so
/// multi-dimensional launches are expressed by the kernel generators through
/// the element indices they emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Number of thread blocks in the grid.
    pub grid_blocks: u32,
    /// Number of threads per block (multiple of the warp size is typical
    /// but not required; a ragged final warp is masked).
    pub block_threads: u32,
    /// Threads per warp (32 on every NVIDIA architecture the paper covers).
    pub warp_size: u32,
}

impl Geometry {
    /// A geometry with the standard 32-thread warps.
    pub fn new(grid_blocks: u32, block_threads: u32) -> Self {
        Geometry {
            grid_blocks,
            block_threads,
            warp_size: 32,
        }
    }

    /// Warps per block, rounding a ragged tail up to a full (masked) warp.
    #[inline]
    pub fn warps_per_block(&self) -> u32 {
        self.block_threads.div_ceil(self.warp_size)
    }

    /// Total warps in the launch (`#total_warps` in the paper's Eq. 2).
    #[inline]
    pub fn total_warps(&self) -> u64 {
        u64::from(self.grid_blocks) * u64::from(self.warps_per_block())
    }

    /// Total threads in the launch.
    #[inline]
    pub fn total_threads(&self) -> u64 {
        u64::from(self.grid_blocks) * u64::from(self.block_threads)
    }

    /// Global linear thread id of lane `lane` in warp `warp` of block
    /// `block`, or `None` for lanes beyond a ragged block tail.
    #[inline]
    pub fn thread_id(&self, block: u32, warp: u32, lane: u32) -> Option<u64> {
        debug_assert!(lane < self.warp_size);
        let in_block = warp * self.warp_size + lane;
        if in_block >= self.block_threads {
            return None;
        }
        Some(u64::from(block) * u64::from(self.block_threads) + u64::from(in_block))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_counts() {
        let g = Geometry::new(4, 128);
        assert_eq!(g.warps_per_block(), 4);
        assert_eq!(g.total_warps(), 16);
        assert_eq!(g.total_threads(), 512);
    }

    #[test]
    fn ragged_block_rounds_up() {
        let g = Geometry::new(2, 100);
        assert_eq!(g.warps_per_block(), 4); // 100/32 -> 4 warps, last masked
        assert_eq!(g.total_warps(), 8);
    }

    #[test]
    fn thread_ids_and_masking() {
        let g = Geometry::new(2, 100);
        assert_eq!(g.thread_id(0, 0, 0), Some(0));
        assert_eq!(g.thread_id(0, 3, 3), Some(99));
        assert_eq!(g.thread_id(0, 3, 4), None); // beyond ragged tail
        assert_eq!(g.thread_id(1, 0, 0), Some(100));
    }
}
