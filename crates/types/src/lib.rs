//! # hms-types
//!
//! Shared vocabulary for the `gpu-hms` workspace: the programmable memory
//! spaces of a GPU heterogeneous memory system (HMS), data types, kernel
//! launch geometry, data-array descriptors, placement maps, and the GPU
//! hardware configuration (defaulting to an NVIDIA Tesla K80 / Kepler-like
//! machine, the platform used throughout the paper).
//!
//! Everything downstream — the DRAM model, the cache models, the execution
//! simulator and the performance models — speaks in these types.

pub mod array;
pub mod config;
pub mod dtype;
pub mod error;
pub mod geometry;
pub mod layout;
pub mod placement;
pub mod space;

pub use array::{ArrayDef, ArrayId, Dims};
pub use config::{CacheGeometry, DramTimingConfig, GpuConfig};
pub use dtype::DType;
pub use error::HmsError;
pub use geometry::Geometry;
pub use placement::{Placement, PlacementDelta, PlacementMap};
pub use space::MemorySpace;
