//! A hermetic stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The workspace's build policy is zero crates.io dependencies in the
//! default graph (no network in CI), but the microbenchmarks under
//! `crates/bench/benches/` are written against criterion's API. This
//! crate reproduces exactly the slice of that API those benches use —
//! `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Throughput`,
//! `black_box`, `criterion_group!`, `criterion_main!` — over plain
//! `std::time` measurement, so
//!
//! ```text
//! cargo bench --features external-deps --offline
//! ```
//!
//! works on an air-gapped machine. What it does *not* reproduce:
//! criterion's statistical machinery (outlier classification, regression
//! against saved baselines, HTML reports). Numbers printed here are a
//! mean over a fixed measurement window — useful for spotting
//! order-of-magnitude movement, not for rigorous comparisons. If the
//! real criterion is ever wanted, point the workspace's `criterion`
//! dependency back at crates.io; the bench sources need no change.
//!
//! Environment knobs: `HMS_BENCH_MS` (measurement window per benchmark,
//! default 300 ms), `HMS_BENCH_WARMUP_MS` (default 100 ms).

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// An opaque-to-the-optimizer identity function.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

fn env_ms(name: &str, default: u64) -> Duration {
    let ms = std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(default);
    Duration::from_millis(ms)
}

/// Per-iteration work declared for a benchmark, used to report a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A `name/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// The measurement loop handed to benchmark closures.
pub struct Bencher {
    /// Total time and iteration count of the measured window.
    measured: Option<(Duration, u64)>,
    warmup: Duration,
    window: Duration,
}

impl Bencher {
    /// Time `routine`, first warming up, then running batches until the
    /// measurement window is filled.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warmup: run until the warmup window elapses (at least once).
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warmup || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        // Measure in doubling batches so timer overhead stays negligible
        // for nanosecond-scale routines.
        let mut batch: u64 = 1;
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < self.window {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += t0.elapsed();
            iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        self.measured = Some((total, iters));
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        measured: None,
        warmup: env_ms("HMS_BENCH_WARMUP_MS", 100),
        window: env_ms("HMS_BENCH_MS", 300),
    };
    f(&mut b);
    match b.measured {
        Some((total, iters)) if iters > 0 => {
            let per_iter = total / u32::try_from(iters).unwrap_or(u32::MAX).max(1);
            let rate = throughput.map(|t| {
                let per_sec = |n: u64| n as f64 * iters as f64 / total.as_secs_f64();
                match t {
                    Throughput::Elements(n) => format!("  ({:.3e} elem/s)", per_sec(n)),
                    Throughput::Bytes(n) => format!("  ({:.3e} B/s)", per_sec(n)),
                }
            });
            println!(
                "bench: {label:<48} {:>12}/iter  ({iters} iters){}",
                fmt_duration(per_iter),
                rate.unwrap_or_default()
            );
        }
        _ => println!("bench: {label:<48} (no measurement — closure never called iter)"),
    }
}

/// The harness entry point; mirrors criterion's builder-style API.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, None, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.label, None, &mut |b| f(b, input));
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("HMS_BENCH_MS", "5");
        std::env::set_var("HMS_BENCH_WARMUP_MS", "1");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("detect", 24).label, "detect/24");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
