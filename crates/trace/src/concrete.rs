//! Concrete (materialized) traces: the stand-in for a SASSI-instrumented
//! run of one placement.
//!
//! Materialization resolves every symbolic memory reference of a
//! [`KernelTrace`] into a memory space and per-lane byte addresses under
//! one [`PlacementMap`], using the deterministic allocator of
//! [`crate::alloc`] and the data layouts of [`hms_types::layout`].
//! Address-calculation ops stay symbolic ([`CInstr::AddrCalc`]) because
//! their expansion — the addressing-mode instruction count — is exactly
//! what differs between placements and what consumers (simulator and
//! `T_comp` model) expand via [`crate::addressing::addr_calc_instrs`].

use hms_types::layout::{row_major_offset, tex2d_offset};
use hms_types::{
    ArrayDef, ArrayId, Dims, Geometry, GpuConfig, HmsError, MemorySpace, PlacementMap,
};

use crate::alloc::AddressAllocator;
use crate::op::{ElemIdx, KernelTrace, SymOp};

/// Arithmetic instruction class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluKind {
    Int,
    Fp32,
    Fp64,
    Sfu,
}

/// One concrete warp memory access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CMemRef {
    pub array: ArrayId,
    pub space: MemorySpace,
    pub is_store: bool,
    pub elem_bytes: u8,
    /// Per-lane byte addresses (`None` = inactive lane). Shared-space
    /// addresses are offsets into the block's shared memory; off-chip
    /// addresses are device physical addresses.
    pub addrs: Vec<Option<u64>>,
}

impl CMemRef {
    pub fn active_addrs(&self) -> impl Iterator<Item = u64> + '_ {
        self.addrs.iter().flatten().copied()
    }
}

/// One concrete warp instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CInstr {
    /// A run of `count` arithmetic instructions of one kind.
    Alu {
        kind: AluKind,
        count: u16,
    },
    /// Placement-dependent addressing arithmetic for `count` references
    /// to `array` (expand with `addr_calc_instrs(space, dtype) * count`).
    AddrCalc {
        array: ArrayId,
        count: u16,
    },
    Mem(CMemRef),
    /// A local-memory access: each active lane touches a 4-byte slot of
    /// its private local space. Addresses are resolved by the consumer
    /// (simulator) from the thread id, since local memory is
    /// placement-independent.
    Local {
        is_store: bool,
        slots: Vec<u32>,
    },
    WaitLoads,
    SyncThreads,
}

/// Concrete trace of one warp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcreteWarp {
    pub block: u32,
    pub warp: u32,
    pub instrs: Vec<CInstr>,
}

/// Concrete trace of one kernel launch under one placement.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcreteTrace {
    pub name: String,
    pub arrays: Vec<ArrayDef>,
    pub geometry: Geometry,
    pub placement: PlacementMap,
    pub alloc: AddressAllocator,
    pub warps: Vec<ConcreteWarp>,
}

impl ConcreteTrace {
    /// Expanded addressing-instruction count for one `AddrCalc` op under
    /// this trace's placement.
    pub fn addr_calc_expansion(&self, array: ArrayId, count: u16) -> u64 {
        let space = self.placement.space(array);
        let dtype = self.arrays[array.index()].dtype;
        u64::from(crate::addressing::addr_calc_instrs(space, dtype)) * u64::from(count)
    }
}

/// Base of the local-memory region in the device address space, placed
/// far above any allocator range.
pub const LOCAL_MEM_BASE: u64 = 1 << 31;

/// Device address of one thread's local-memory slot. CUDA interleaves
/// local memory slot-major so that a warp's same-slot accesses coalesce:
/// `addr = base + (slot x total_threads + tid) x 4`.
#[inline]
pub fn local_addr(slot: u32, tid: u64, total_threads: u64) -> u64 {
    LOCAL_MEM_BASE + (u64::from(slot) * total_threads + tid) * 4
}

/// Byte offset of `idx` within `array` under `space`.
///
/// Public because the incremental search engine re-lays individual
/// accesses out under candidate spaces without rebuilding whole traces;
/// [`crate::rewrite`] uses the same function, so the two paths agree by
/// construction.
pub fn element_offset(array: &ArrayDef, space: MemorySpace, idx: ElemIdx, cfg: &GpuConfig) -> u64 {
    let esize = array.dtype.size_bytes();
    let width = match array.dims {
        Dims::D1 { len } => len,
        Dims::D2 { width, .. } => width,
    };
    match space {
        MemorySpace::Texture2D => {
            let (x, y) = idx.xy(width);
            tex2d_offset(x, y, width, esize, cfg.tex2d_tile)
        }
        _ => {
            let lin = idx.linear(width);
            debug_assert!(
                lin < array.dims.elements(),
                "index {lin} out of bounds for `{}` ({} elements)",
                array.name,
                array.dims.elements()
            );
            row_major_offset(lin, 0, u64::MAX, esize)
        }
    }
}

/// Materialize `kernel` under `placement`.
///
/// Fails when the placement is invalid for the kernel's arrays (capacity,
/// writability, or dimensionality violations).
pub fn materialize(
    kernel: &KernelTrace,
    placement: &PlacementMap,
    cfg: &GpuConfig,
) -> Result<ConcreteTrace, HmsError> {
    placement.validate(&kernel.arrays, cfg)?;
    let alloc = AddressAllocator::new(&kernel.arrays, placement, kernel.geometry.grid_blocks);
    let mut warps = Vec::with_capacity(kernel.warps.len());
    for w in &kernel.warps {
        let mut instrs = Vec::with_capacity(w.ops.len());
        for op in &w.ops {
            match op {
                SymOp::IntAlu(n) => instrs.push(CInstr::Alu {
                    kind: AluKind::Int,
                    count: *n,
                }),
                SymOp::FpAlu(n) => instrs.push(CInstr::Alu {
                    kind: AluKind::Fp32,
                    count: *n,
                }),
                SymOp::Fp64(n) => instrs.push(CInstr::Alu {
                    kind: AluKind::Fp64,
                    count: *n,
                }),
                SymOp::Sfu(n) => instrs.push(CInstr::Alu {
                    kind: AluKind::Sfu,
                    count: *n,
                }),
                SymOp::AddrCalc { array, count } => instrs.push(CInstr::AddrCalc {
                    array: *array,
                    count: *count,
                }),
                SymOp::WaitLoads => instrs.push(CInstr::WaitLoads),
                SymOp::SyncThreads => instrs.push(CInstr::SyncThreads),
                SymOp::Local { is_store, slots } => instrs.push(CInstr::Local {
                    is_store: *is_store,
                    slots: slots.clone(),
                }),
                SymOp::Access(m) => {
                    let array = &kernel.arrays[m.array.index()];
                    let space = placement.space(m.array);
                    let base = alloc.base(m.array, w.block, placement);
                    let addrs = m
                        .idx
                        .iter()
                        .map(|oi| oi.map(|i| base + element_offset(array, space, i, cfg)))
                        .collect();
                    instrs.push(CInstr::Mem(CMemRef {
                        array: m.array,
                        space,
                        is_store: m.is_store,
                        elem_bytes: array.dtype.size_bytes() as u8,
                        addrs,
                    }));
                }
            }
        }
        warps.push(ConcreteWarp {
            block: w.block,
            warp: w.warp,
            instrs,
        });
    }
    Ok(ConcreteTrace {
        name: kernel.name.clone(),
        arrays: kernel.arrays.clone(),
        geometry: kernel.geometry,
        placement: placement.clone(),
        alloc,
        warps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{MemRef, WarpTrace};
    use hms_types::DType;

    fn kernel() -> KernelTrace {
        KernelTrace {
            name: "vecadd".into(),
            arrays: vec![
                ArrayDef::new_1d(0, "a", DType::F32, 64, false),
                ArrayDef::new_2d(1, "img", DType::F32, 16, 16, false),
            ],
            geometry: Geometry::new(2, 32),
            warps: (0..2)
                .map(|b| WarpTrace {
                    block: b,
                    warp: 0,
                    ops: vec![
                        SymOp::AddrCalc {
                            array: ArrayId(0),
                            count: 1,
                        },
                        SymOp::Access(MemRef::load_lin(ArrayId(0), 0..32)),
                        SymOp::WaitLoads,
                        SymOp::FpAlu(1),
                    ],
                })
                .collect(),
        }
    }

    #[test]
    fn global_placement_uses_row_major_addresses() {
        let kt = kernel();
        let cfg = GpuConfig::tesla_k80();
        let ct = materialize(&kt, &kt.default_placement(), &cfg).unwrap();
        let CInstr::Mem(m) = &ct.warps[0].instrs[1] else {
            panic!("expected mem")
        };
        assert_eq!(m.space, MemorySpace::Global);
        let base = ct.alloc.base(ArrayId(0), 0, &ct.placement);
        let addrs: Vec<u64> = m.active_addrs().collect();
        assert_eq!(addrs[0], base);
        assert_eq!(addrs[1], base + 4);
        assert_eq!(addrs[31], base + 124);
    }

    #[test]
    fn addr_calc_expansion_follows_placement() {
        let kt = kernel();
        let cfg = GpuConfig::tesla_k80();
        let g = materialize(&kt, &kt.default_placement(), &cfg).unwrap();
        assert_eq!(g.addr_calc_expansion(ArrayId(0), 1), 2);
        let t = materialize(
            &kt,
            &kt.default_placement()
                .with(ArrayId(0), MemorySpace::Texture1D),
            &cfg,
        )
        .unwrap();
        assert_eq!(t.addr_calc_expansion(ArrayId(0), 1), 0);
        let c = materialize(
            &kt,
            &kt.default_placement()
                .with(ArrayId(0), MemorySpace::Constant),
            &cfg,
        )
        .unwrap();
        assert_eq!(c.addr_calc_expansion(ArrayId(0), 1), 1);
    }

    #[test]
    fn texture2d_placement_tiles_addresses() {
        let mut kt = kernel();
        // Access row 1 of the image: elements (0..32, y=1) linearized.
        kt.warps[0].ops[1] = SymOp::Access(MemRef::load(
            ArrayId(1),
            (0..16).map(|x| Some(ElemIdx::XY(x, 1))).collect(),
        ));
        let cfg = GpuConfig::tesla_k80();
        let pm = kt
            .default_placement()
            .with(ArrayId(1), MemorySpace::Texture2D);
        let ct = materialize(&kt, &pm, &cfg).unwrap();
        let CInstr::Mem(m) = &ct.warps[0].instrs[1] else {
            panic!()
        };
        assert_eq!(m.space, MemorySpace::Texture2D);
        let base = ct.alloc.base(ArrayId(1), 0, &pm);
        let addrs: Vec<u64> = m.active_addrs().collect();
        // (0,1) in an 8-tile layout = word 8 -> byte 32.
        assert_eq!(addrs[0], base + 32);
        // (8,1) starts the second tile: tile 1 begins at 64 elements.
        assert_eq!(addrs[8], base + (64 + 8) * 4);
    }

    #[test]
    fn shared_placement_uses_block_local_offsets() {
        let kt = kernel();
        let cfg = GpuConfig::tesla_k80();
        let pm = kt.default_placement().with(ArrayId(0), MemorySpace::Shared);
        let ct = materialize(&kt, &pm, &cfg).unwrap();
        for w in &ct.warps {
            let CInstr::Mem(m) = &w.instrs[1] else {
                panic!()
            };
            assert_eq!(m.space, MemorySpace::Shared);
            // Both blocks see the same (block-local) offsets.
            assert_eq!(m.active_addrs().next().unwrap(), 0);
        }
    }

    #[test]
    fn invalid_placement_is_rejected() {
        let kt = kernel();
        let cfg = GpuConfig::tesla_k80();
        // 1-D array into 2-D texture.
        let pm = kt
            .default_placement()
            .with(ArrayId(0), MemorySpace::Texture2D);
        assert!(materialize(&kt, &pm, &cfg).is_err());
    }

    #[test]
    fn inactive_lanes_stay_inactive() {
        let mut kt = kernel();
        let mut idx: Vec<Option<ElemIdx>> = (0..16).map(|i| Some(ElemIdx::Lin(i))).collect();
        idx.extend(vec![None; 16]);
        kt.warps[0].ops[1] = SymOp::Access(MemRef::load(ArrayId(0), idx));
        let cfg = GpuConfig::tesla_k80();
        let ct = materialize(&kt, &kt.default_placement(), &cfg).unwrap();
        let CInstr::Mem(m) = &ct.warps[0].instrs[1] else {
            panic!()
        };
        assert_eq!(m.addrs.iter().filter(|a| a.is_some()).count(), 16);
    }
}
