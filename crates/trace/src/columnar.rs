//! Columnar (struct-of-arrays) view of a [`ConcreteTrace`].
//!
//! The analysis walk visits every instruction of every warp exactly
//! once, but the per-op [`CInstr`] representation makes each visit pay
//! for pointer-chasing and allocation: a `Mem` op owns a
//! `Vec<Option<u64>>` that the walk clones and re-collects into a dense
//! lane-address vector per access. The columnar form decomposes the
//! trace once into parallel flat buffers — an op-kind byte column, an
//! argument column, compact side tables for memory/addressing/local
//! ops, and shared arenas holding every active lane address and local
//! slot back to back — so the walk streams over contiguous slices with
//! zero per-op allocation.
//!
//! The per-op API stays available as a thin view: [`ColumnarTrace::op`]
//! decodes any op back into a borrowed [`OpView`], and
//! [`ColumnarTrace::to_concrete`] reconstructs the exact
//! [`ConcreteTrace`] (the round-trip is bit-exact and property-tested),
//! so existing `rewrite`/`coalesce` call sites migrate incrementally.
//!
//! Arena lifetimes: a `ColumnarTrace` borrows the source trace (for its
//! metadata — arrays, geometry, placement, allocator) and owns its
//! column buffers. Extra op sequences (the shared-memory staging
//! prologue/epilogue the analysis synthesizes per warp) are appended
//! into the *same* arenas via [`ColumnarTrace::push_ops`], which
//! returns an [`OpRange`] handle; ranges stay valid for the life of the
//! value because the arenas only grow.

use hms_types::{ArrayId, MemorySpace};

use crate::concrete::{AluKind, CInstr, CMemRef, ConcreteTrace, ConcreteWarp};

/// Op-kind codes of the `kind` column.
const K_INT: u8 = 0;
const K_FP32: u8 = 1;
const K_FP64: u8 = 2;
const K_SFU: u8 = 3;
const K_ADDR_CALC: u8 = 4;
const K_MEM: u8 = 5;
const K_LOCAL: u8 = 6;
const K_WAIT: u8 = 7;
const K_SYNC: u8 = 8;

/// A contiguous run of ops in the columnar buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRange {
    pub start: u32,
    pub len: u32,
}

impl OpRange {
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One warp's identity plus its body ops in the columnar buffers.
#[derive(Debug, Clone, Copy)]
pub struct ColWarp {
    pub block: u32,
    pub warp: u32,
    pub ops: OpRange,
}

/// Side-table record for one memory access (fixed-size; the variable
/// parts live in the shared address/lane arenas).
#[derive(Debug, Clone, Copy)]
struct MemRec {
    array: ArrayId,
    space: MemorySpace,
    is_store: bool,
    elem_bytes: u8,
    /// Total lane count including inactive lanes (reconstructs the
    /// `Vec<Option<u64>>` width on the way back out).
    width: u32,
    addr_start: u32,
    addr_len: u32,
}

/// Side-table record for one local-memory access.
#[derive(Debug, Clone, Copy)]
struct LocalRec {
    is_store: bool,
    slot_start: u32,
    slot_len: u32,
}

/// A borrowed, decoded view of one op — the thin per-op API over the
/// columnar buffers. All variants are `Copy`-cheap; slice fields point
/// into the arenas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpView<'c> {
    Alu {
        kind: AluKind,
        count: u16,
    },
    AddrCalc {
        array: ArrayId,
        count: u16,
    },
    Mem {
        array: ArrayId,
        space: MemorySpace,
        is_store: bool,
        elem_bytes: u8,
        /// Dense active-lane byte addresses, in lane order.
        addrs: &'c [u64],
        /// Lane index of each active address (parallel to `addrs`).
        lanes: &'c [u32],
        /// Total lanes including inactive ones.
        width: u32,
    },
    Local {
        is_store: bool,
        slots: &'c [u32],
    },
    WaitLoads,
    SyncThreads,
}

/// Struct-of-arrays decomposition of a [`ConcreteTrace`] body (plus any
/// appended staging sequences). See the module docs for the layout.
#[derive(Debug)]
pub struct ColumnarTrace<'t> {
    src: &'t ConcreteTrace,
    /// Per-op kind code (`K_*`).
    kind: Vec<u8>,
    /// Per-op argument: ALU/`count` for ALU kinds, a side-table index
    /// for `AddrCalc`/`Mem`/`Local`, 0 otherwise.
    arg0: Vec<u32>,
    mem: Vec<MemRec>,
    addr_calc: Vec<(ArrayId, u16)>,
    local: Vec<LocalRec>,
    /// Arena of dense active-lane addresses for every mem op.
    mem_addrs: Vec<u64>,
    /// Arena of active lane indices, parallel to `mem_addrs`.
    mem_lanes: Vec<u32>,
    /// Arena of local-access slots.
    local_slots: Vec<u32>,
    warps: Vec<ColWarp>,
}

impl<'t> ColumnarTrace<'t> {
    /// Decompose `trace` into columnar form. One pass, `O(ops)`.
    pub fn from_concrete(trace: &'t ConcreteTrace) -> Self {
        let n_ops: usize = trace.warps.iter().map(|w| w.instrs.len()).sum();
        let mut col = ColumnarTrace {
            src: trace,
            kind: Vec::with_capacity(n_ops),
            arg0: Vec::with_capacity(n_ops),
            mem: Vec::new(),
            addr_calc: Vec::new(),
            local: Vec::new(),
            mem_addrs: Vec::new(),
            mem_lanes: Vec::new(),
            local_slots: Vec::new(),
            warps: Vec::with_capacity(trace.warps.len()),
        };
        for w in &trace.warps {
            let ops = col.push_ops(&w.instrs);
            col.warps.push(ColWarp {
                block: w.block,
                warp: w.warp,
                ops,
            });
        }
        col
    }

    /// The source trace this view was built over (metadata access:
    /// arrays, geometry, placement, allocator).
    #[inline]
    pub fn source(&self) -> &'t ConcreteTrace {
        self.src
    }

    /// Warps in source order.
    #[inline]
    pub fn warps(&self) -> &[ColWarp] {
        &self.warps
    }

    /// Total ops currently encoded (bodies plus appended sequences).
    #[inline]
    pub fn op_count(&self) -> usize {
        self.kind.len()
    }

    /// Append an extra op sequence (e.g. a synthesized staging
    /// prologue/epilogue) into the shared arenas; the returned range is
    /// decodable with [`Self::op`] exactly like body ops.
    pub fn push_ops(&mut self, instrs: &[CInstr]) -> OpRange {
        let start = self.kind.len() as u32;
        for i in instrs {
            self.push_instr(i);
        }
        OpRange {
            start,
            len: instrs.len() as u32,
        }
    }

    fn push_instr(&mut self, i: &CInstr) {
        match i {
            CInstr::Alu { kind, count } => {
                let code = match kind {
                    AluKind::Int => K_INT,
                    AluKind::Fp32 => K_FP32,
                    AluKind::Fp64 => K_FP64,
                    AluKind::Sfu => K_SFU,
                };
                self.kind.push(code);
                self.arg0.push(u32::from(*count));
            }
            CInstr::AddrCalc { array, count } => {
                self.kind.push(K_ADDR_CALC);
                self.arg0.push(self.addr_calc.len() as u32);
                self.addr_calc.push((*array, *count));
            }
            CInstr::Mem(m) => {
                let addr_start = self.mem_addrs.len() as u32;
                for (lane, a) in m.addrs.iter().enumerate() {
                    if let Some(a) = a {
                        self.mem_addrs.push(*a);
                        self.mem_lanes.push(lane as u32);
                    }
                }
                let rec = MemRec {
                    array: m.array,
                    space: m.space,
                    is_store: m.is_store,
                    elem_bytes: m.elem_bytes,
                    width: m.addrs.len() as u32,
                    addr_start,
                    addr_len: self.mem_addrs.len() as u32 - addr_start,
                };
                self.kind.push(K_MEM);
                self.arg0.push(self.mem.len() as u32);
                self.mem.push(rec);
            }
            CInstr::Local { is_store, slots } => {
                let slot_start = self.local_slots.len() as u32;
                self.local_slots.extend_from_slice(slots);
                self.kind.push(K_LOCAL);
                self.arg0.push(self.local.len() as u32);
                self.local.push(LocalRec {
                    is_store: *is_store,
                    slot_start,
                    slot_len: slots.len() as u32,
                });
            }
            CInstr::WaitLoads => {
                self.kind.push(K_WAIT);
                self.arg0.push(0);
            }
            CInstr::SyncThreads => {
                self.kind.push(K_SYNC);
                self.arg0.push(0);
            }
        }
    }

    /// Decode op `i` into its borrowed per-op view.
    #[inline]
    pub fn op(&self, i: u32) -> OpView<'_> {
        let i = i as usize;
        match self.kind[i] {
            K_INT => OpView::Alu {
                kind: AluKind::Int,
                count: self.arg0[i] as u16,
            },
            K_FP32 => OpView::Alu {
                kind: AluKind::Fp32,
                count: self.arg0[i] as u16,
            },
            K_FP64 => OpView::Alu {
                kind: AluKind::Fp64,
                count: self.arg0[i] as u16,
            },
            K_SFU => OpView::Alu {
                kind: AluKind::Sfu,
                count: self.arg0[i] as u16,
            },
            K_ADDR_CALC => {
                let (array, count) = self.addr_calc[self.arg0[i] as usize];
                OpView::AddrCalc { array, count }
            }
            K_MEM => {
                let m = &self.mem[self.arg0[i] as usize];
                let s = m.addr_start as usize;
                let e = s + m.addr_len as usize;
                OpView::Mem {
                    array: m.array,
                    space: m.space,
                    is_store: m.is_store,
                    elem_bytes: m.elem_bytes,
                    addrs: &self.mem_addrs[s..e],
                    lanes: &self.mem_lanes[s..e],
                    width: m.width,
                }
            }
            K_LOCAL => {
                let l = &self.local[self.arg0[i] as usize];
                let s = l.slot_start as usize;
                OpView::Local {
                    is_store: l.is_store,
                    slots: &self.local_slots[s..s + l.slot_len as usize],
                }
            }
            K_WAIT => OpView::WaitLoads,
            K_SYNC => OpView::SyncThreads,
            k => unreachable!("invalid op kind code {k}"),
        }
    }

    /// Re-encode one op as a [`CInstr`] (the inverse of
    /// [`Self::push_instr`]; exact, including inactive-lane positions).
    pub fn op_to_instr(&self, i: u32) -> CInstr {
        match self.op(i) {
            OpView::Alu { kind, count } => CInstr::Alu { kind, count },
            OpView::AddrCalc { array, count } => CInstr::AddrCalc { array, count },
            OpView::Mem {
                array,
                space,
                is_store,
                elem_bytes,
                addrs,
                lanes,
                width,
            } => {
                let mut full = vec![None; width as usize];
                for (a, l) in addrs.iter().zip(lanes) {
                    full[*l as usize] = Some(*a);
                }
                CInstr::Mem(CMemRef {
                    array,
                    space,
                    is_store,
                    elem_bytes,
                    addrs: full,
                })
            }
            OpView::Local { is_store, slots } => CInstr::Local {
                is_store,
                slots: slots.to_vec(),
            },
            OpView::WaitLoads => CInstr::WaitLoads,
            OpView::SyncThreads => CInstr::SyncThreads,
        }
    }

    /// Reconstruct the exact [`ConcreteTrace`] this view was built from
    /// (metadata cloned from the source, warps re-encoded op by op).
    pub fn to_concrete(&self) -> ConcreteTrace {
        let warps = self
            .warps
            .iter()
            .map(|w| ConcreteWarp {
                block: w.block,
                warp: w.warp,
                instrs: (w.ops.start..w.ops.start + w.ops.len)
                    .map(|i| self.op_to_instr(i))
                    .collect(),
            })
            .collect();
        ConcreteTrace {
            name: self.src.name.clone(),
            arrays: self.src.arrays.clone(),
            geometry: self.src.geometry,
            placement: self.src.placement.clone(),
            alloc: self.src.alloc.clone(),
            warps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concrete::materialize;
    use crate::op::{ElemIdx, KernelTrace, MemRef, SymOp, WarpTrace};
    use hms_types::{ArrayDef, DType, Geometry, GpuConfig};

    fn kernel() -> KernelTrace {
        let mut idx: Vec<Option<ElemIdx>> = (0..16).map(|i| Some(ElemIdx::Lin(i))).collect();
        idx.extend(vec![None; 16]);
        KernelTrace {
            name: "col".into(),
            arrays: vec![
                ArrayDef::new_1d(0, "a", DType::F32, 64, false),
                ArrayDef::new_1d(1, "out", DType::F64, 64, true),
            ],
            geometry: Geometry::new(2, 64),
            warps: (0..2)
                .flat_map(|b| {
                    let idx = idx.clone();
                    (0..2).map(move |w| WarpTrace {
                        block: b,
                        warp: w,
                        ops: vec![
                            SymOp::IntAlu(3),
                            SymOp::AddrCalc {
                                array: hms_types::ArrayId(0),
                                count: 2,
                            },
                            SymOp::Access(MemRef::load(hms_types::ArrayId(0), idx.clone())),
                            SymOp::Local {
                                is_store: false,
                                slots: vec![0, 1, 2],
                            },
                            SymOp::WaitLoads,
                            SymOp::Fp64(1),
                            SymOp::Access(MemRef::store_lin(hms_types::ArrayId(1), 0..32)),
                            SymOp::SyncThreads,
                        ],
                    })
                })
                .collect(),
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let kt = kernel();
        let cfg = GpuConfig::test_small();
        let ct = materialize(&kt, &kt.default_placement(), &cfg).unwrap();
        let col = ColumnarTrace::from_concrete(&ct);
        assert_eq!(col.to_concrete(), ct);
    }

    #[test]
    fn mem_view_exposes_dense_active_addrs() {
        let kt = kernel();
        let cfg = GpuConfig::test_small();
        let ct = materialize(&kt, &kt.default_placement(), &cfg).unwrap();
        let col = ColumnarTrace::from_concrete(&ct);
        let w0 = col.warps()[0];
        let OpView::Mem {
            addrs,
            lanes,
            width,
            ..
        } = col.op(w0.ops.start + 2)
        else {
            panic!("expected mem op");
        };
        // 16 active of 32 lanes, addresses in lane order.
        assert_eq!(width, 32);
        assert_eq!(addrs.len(), 16);
        assert_eq!(lanes, (0..16).collect::<Vec<u32>>());
        let CInstr::Mem(m) = &ct.warps[0].instrs[2] else {
            panic!()
        };
        let want: Vec<u64> = m.active_addrs().collect();
        assert_eq!(addrs, want);
    }

    #[test]
    fn appended_ops_decode_like_body_ops() {
        let kt = kernel();
        let cfg = GpuConfig::test_small();
        let ct = materialize(&kt, &kt.default_placement(), &cfg).unwrap();
        let mut col = ColumnarTrace::from_concrete(&ct);
        let extra = vec![
            CInstr::SyncThreads,
            ct.warps[0].instrs[2].clone(),
            CInstr::Alu {
                kind: AluKind::Sfu,
                count: 7,
            },
        ];
        let r = col.push_ops(&extra);
        assert_eq!(r.len, 3);
        for (k, i) in (r.start..r.start + r.len).enumerate() {
            assert_eq!(col.op_to_instr(i), extra[k]);
        }
    }
}
