//! The addressing-mode instruction table (paper Section III-B).
//!
//! "To address an array element, some instructions have to be introduced
//! to transform the element index into a new index or an actual data
//! address ... the numbers of instructions required to calculate the
//! address of a 1D-array element (single-precision floating point) are
//! 2, 0, 1, 1 for global, 1D texture, constant, and shared memories."
//!
//! * **Global** uses register-indirect addressing: on the 64-bit Kepler
//!   address space the effective address costs two 32-bit instructions
//!   (`IMAD` + `IMAD.HI.X` in the paper's Figure 2a).
//! * **1-D texture** fetches by element index directly (`tex1Dfetch`):
//!   zero extra instructions.
//! * **Constant** and **shared** use indexed-absolute addressing: one
//!   shift/scale instruction (`SHL.W` in Figure 2c/d); the base address
//!   lives in a fixed constant-bank slot and costs nothing.
//! * **2-D texture** fetches by `(x, y)`; recovering the two coordinates
//!   from a linear index costs one instruction (div/mod pair fused by the
//!   compiler's magic-number sequence is amortized; a native 2-D kernel
//!   index costs nothing — we charge the conservative one instruction).
//!
//! The paper "enumerate[s] and analyze[s] common data types
//! (double-precision floating point and integer)": wider elements change
//! only the scale factor, which stays a single instruction, so the table
//! is type-independent except for the global path, which still needs its
//! two-instruction 64-bit address arithmetic.

use hms_types::{DType, MemorySpace};

/// Number of integer instructions needed to turn an element index into a
/// reference for one access to an array of `dtype` placed in `space`.
#[inline]
pub fn addr_calc_instrs(space: MemorySpace, dtype: DType) -> u16 {
    let _ = dtype; // type changes the scale constant, not the count
    match space {
        MemorySpace::Global => 2,
        MemorySpace::Texture1D => 0,
        MemorySpace::Texture2D => 1,
        MemorySpace::Constant => 1,
        MemorySpace::Shared => 1,
    }
}

/// Per-access instruction *difference* when moving an array of `dtype`
/// from `from` to `to` (positive: the target placement executes more
/// instructions). This is the quantity the `T_comp` model adds to the
/// sample placement's executed-instruction count.
#[inline]
pub fn addr_calc_delta(from: MemorySpace, to: MemorySpace, dtype: DType) -> i64 {
    i64::from(addr_calc_instrs(to, dtype)) - i64::from(addr_calc_instrs(from, dtype))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper() {
        // "2, 0, 1, 1 for global, 1D texture, constant, and shared".
        assert_eq!(addr_calc_instrs(MemorySpace::Global, DType::F32), 2);
        assert_eq!(addr_calc_instrs(MemorySpace::Texture1D, DType::F32), 0);
        assert_eq!(addr_calc_instrs(MemorySpace::Constant, DType::F32), 1);
        assert_eq!(addr_calc_instrs(MemorySpace::Shared, DType::F32), 1);
    }

    #[test]
    fn deltas_are_antisymmetric() {
        use MemorySpace::*;
        for a in MemorySpace::ALL {
            for b in MemorySpace::ALL {
                assert_eq!(
                    addr_calc_delta(a, b, DType::F32),
                    -addr_calc_delta(b, a, DType::F32)
                );
            }
        }
        // Moving from global to texture removes both addressing
        // instructions per access.
        assert_eq!(addr_calc_delta(Global, Texture1D, DType::F32), -2);
        assert_eq!(addr_calc_delta(Constant, Global, DType::F64), 1);
    }

    #[test]
    fn type_does_not_change_counts() {
        for s in MemorySpace::ALL {
            assert_eq!(
                addr_calc_instrs(s, DType::F32),
                addr_calc_instrs(s, DType::F64)
            );
            assert_eq!(
                addr_calc_instrs(s, DType::I32),
                addr_calc_instrs(s, DType::I64)
            );
        }
    }
}
