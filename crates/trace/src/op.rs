//! Symbolic kernel traces.
//!
//! Kernel generators describe each warp's execution as a stream of
//! [`SymOp`]s that reference arrays by element index. The stream is
//! *placement-independent*: where an element lives, what load instruction
//! fetches it, and how many instructions compute its address are resolved
//! when the trace is materialized under a concrete [`PlacementMap`]
//! (see [`crate::concrete`]).

use hms_types::{ArrayDef, ArrayId, Geometry, PlacementMap};

/// Index of one array element referenced by one lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemIdx {
    /// Linear element index (1-D arrays, or a linearized 2-D index).
    Lin(u64),
    /// Cartesian index into a 2-D array.
    XY(u64, u64),
}

impl ElemIdx {
    /// Linearize against a row-major array of width `width`.
    #[inline]
    pub fn linear(self, width: u64) -> u64 {
        match self {
            ElemIdx::Lin(i) => i,
            ElemIdx::XY(x, y) => y * width + x,
        }
    }

    /// Cartesian coordinates against a row-major array of width `width`.
    #[inline]
    pub fn xy(self, width: u64) -> (u64, u64) {
        match self {
            ElemIdx::Lin(i) => (i % width, i / width),
            ElemIdx::XY(x, y) => (x, y),
        }
    }
}

/// One warp memory reference: per-lane element indices into an array
/// (`None` = lane inactive / predicated off).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemRef {
    pub array: ArrayId,
    pub is_store: bool,
    pub idx: Vec<Option<ElemIdx>>,
}

impl MemRef {
    pub fn load(array: ArrayId, idx: Vec<Option<ElemIdx>>) -> Self {
        MemRef {
            array,
            is_store: false,
            idx,
        }
    }

    pub fn store(array: ArrayId, idx: Vec<Option<ElemIdx>>) -> Self {
        MemRef {
            array,
            is_store: true,
            idx,
        }
    }

    /// A fully-active load with linear indices.
    pub fn load_lin(array: ArrayId, idx: impl IntoIterator<Item = u64>) -> Self {
        MemRef::load(
            array,
            idx.into_iter().map(|i| Some(ElemIdx::Lin(i))).collect(),
        )
    }

    /// A fully-active store with linear indices.
    pub fn store_lin(array: ArrayId, idx: impl IntoIterator<Item = u64>) -> Self {
        MemRef::store(
            array,
            idx.into_iter().map(|i| Some(ElemIdx::Lin(i))).collect(),
        )
    }

    /// Number of active lanes.
    pub fn active_lanes(&self) -> u32 {
        self.idx.iter().filter(|i| i.is_some()).count() as u32
    }
}

/// One symbolic warp operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymOp {
    /// `count` integer ALU instructions (index math, comparisons, hashes).
    IntAlu(u16),
    /// `count` single-precision floating-point instructions.
    FpAlu(u16),
    /// `count` double-precision instructions; these "issue over 2 cycles"
    /// — instruction-replay cause (5) in the paper.
    Fp64(u16),
    /// `count` special-function-unit instructions (transcendentals).
    Sfu(u16),
    /// Effective-address computation for `count` upcoming references to
    /// `array`. Expands to a placement-dependent number of integer
    /// instructions (the addressing-mode difference of Section III-B).
    AddrCalc { array: ArrayId, count: u16 },
    /// A warp memory access.
    Access(MemRef),
    /// A local-memory access (register spill / stack data): per-lane
    /// 32-bit slot indices into the thread's private local space.
    /// Placement-independent — local memory always lives in global DRAM
    /// behind the per-SM L1 (paper replay causes (7) and (9)).
    Local { is_store: bool, slots: Vec<u32> },
    /// Consume all outstanding loads of this warp: the warp stalls until
    /// they return (expresses the dependence structure, hence MLP).
    WaitLoads,
    /// Block-wide barrier (`__syncthreads()`).
    SyncThreads,
}

/// The symbolic trace of one warp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpTrace {
    /// Block index within the grid.
    pub block: u32,
    /// Warp index within the block.
    pub warp: u32,
    pub ops: Vec<SymOp>,
}

/// The full symbolic trace of one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTrace {
    pub name: String,
    pub arrays: Vec<ArrayDef>,
    pub geometry: Geometry,
    pub warps: Vec<WarpTrace>,
}

impl KernelTrace {
    /// Default all-global placement for this kernel's arrays.
    pub fn default_placement(&self) -> PlacementMap {
        PlacementMap::all_global(self.arrays.len())
    }

    /// Total symbolic operations across warps (diagnostic).
    pub fn total_ops(&self) -> usize {
        self.warps.iter().map(|w| w.ops.len()).sum()
    }

    /// Executed (non-replayed, non-addressing) instructions of one warp
    /// trace: ALU/SFU counts plus one per memory access and barrier.
    /// `AddrCalc` and `WaitLoads` contribute nothing — the former is
    /// placement-dependent, the latter is a scheduling annotation.
    pub fn executed_instrs(ops: &[SymOp]) -> u64 {
        ops.iter()
            .map(|op| match op {
                SymOp::IntAlu(n) | SymOp::FpAlu(n) | SymOp::Fp64(n) | SymOp::Sfu(n) => {
                    u64::from(*n)
                }
                SymOp::Access(_) | SymOp::SyncThreads | SymOp::Local { .. } => 1,
                SymOp::AddrCalc { .. } | SymOp::WaitLoads => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hms_types::DType;

    #[test]
    fn elem_idx_linearization() {
        assert_eq!(ElemIdx::Lin(42).linear(10), 42);
        assert_eq!(ElemIdx::XY(3, 2).linear(10), 23);
        assert_eq!(ElemIdx::Lin(23).xy(10), (3, 2));
        assert_eq!(ElemIdx::XY(3, 2).xy(10), (3, 2));
    }

    #[test]
    fn memref_constructors() {
        let m = MemRef::load_lin(ArrayId(0), 0..32);
        assert_eq!(m.active_lanes(), 32);
        assert!(!m.is_store);
        let mut idx: Vec<Option<ElemIdx>> = vec![Some(ElemIdx::Lin(0)); 16];
        idx.extend(vec![None; 16]);
        let s = MemRef::store(ArrayId(1), idx);
        assert_eq!(s.active_lanes(), 16);
        assert!(s.is_store);
    }

    #[test]
    fn executed_instruction_counting() {
        let ops = vec![
            SymOp::AddrCalc {
                array: ArrayId(0),
                count: 1,
            },
            SymOp::Access(MemRef::load_lin(ArrayId(0), 0..32)),
            SymOp::WaitLoads,
            SymOp::FpAlu(3),
            SymOp::IntAlu(2),
            SymOp::SyncThreads,
        ];
        // 1 access + 3 fp + 2 int + 1 sync = 7.
        assert_eq!(KernelTrace::executed_instrs(&ops), 7);
    }

    #[test]
    fn kernel_trace_defaults() {
        let kt = KernelTrace {
            name: "t".into(),
            arrays: vec![ArrayDef::new_1d(0, "a", DType::F32, 8, false)],
            geometry: Geometry::new(1, 32),
            warps: vec![WarpTrace {
                block: 0,
                warp: 0,
                ops: vec![SymOp::FpAlu(1)],
            }],
        };
        assert_eq!(kt.default_placement().len(), 1);
        assert_eq!(kt.total_ops(), 1);
    }
}
