//! Warp-level memory coalescing.
//!
//! "When analyzing a specific load or store instruction, we count the
//! total number of words for all threads in a warp, and then divide the
//! number by memory transaction size. Then, we use the result minus 1 as
//! the number of replayed instructions." (paper Section III-B, replay
//! cause (1): global memory address divergence.)
//!
//! We coalesce by unique transaction-aligned segments — equivalent to the
//! paper's word count for dense accesses and strictly more accurate for
//! scattered ones.

/// Result of coalescing one warp access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalesceResult {
    /// Base addresses of the distinct transactions, ascending.
    pub transactions: Vec<u64>,
    /// Address-divergence instruction replays: `transactions - 1`.
    pub replays: u32,
}

/// Coalesce the active lanes' byte addresses into `transaction_bytes`-wide
/// transactions. Each lane touches `elem_bytes` bytes, so an element
/// straddling a transaction boundary produces both transactions.
pub fn coalesce(
    lane_addrs: impl IntoIterator<Item = u64>,
    elem_bytes: u64,
    transaction_bytes: u64,
) -> CoalesceResult {
    debug_assert!(transaction_bytes.is_power_of_two());
    let mut txs: Vec<u64> = Vec::with_capacity(32);
    for a in lane_addrs {
        let first = a / transaction_bytes;
        let last = (a + elem_bytes - 1) / transaction_bytes;
        for t in first..=last {
            txs.push(t);
        }
    }
    txs.sort_unstable();
    txs.dedup();
    let replays = txs.len().saturating_sub(1) as u32;
    CoalesceResult {
        transactions: txs.into_iter().map(|t| t * transaction_bytes).collect(),
        replays,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_coalesced_warp_is_one_transaction() {
        // 32 lanes x 4 bytes, contiguous and aligned = one 128-byte
        // transaction, zero replays.
        let addrs = (0..32u64).map(|i| i * 4);
        let r = coalesce(addrs, 4, 128);
        assert_eq!(r.transactions, vec![0]);
        assert_eq!(r.replays, 0);
    }

    #[test]
    fn double_precision_warp_needs_two_transactions() {
        let addrs = (0..32u64).map(|i| i * 8);
        let r = coalesce(addrs, 8, 128);
        assert_eq!(r.transactions.len(), 2);
        assert_eq!(r.replays, 1);
    }

    #[test]
    fn strided_access_diverges() {
        // Stride-32 floats: every lane its own transaction.
        let addrs = (0..32u64).map(|i| i * 32 * 4);
        let r = coalesce(addrs, 4, 128);
        assert_eq!(r.transactions.len(), 32);
        assert_eq!(r.replays, 31);
    }

    #[test]
    fn unaligned_warp_spills_into_extra_transaction() {
        // Offset by one element: touches bytes 4..132 -> 2 transactions.
        let addrs = (0..32u64).map(|i| 4 + i * 4);
        let r = coalesce(addrs, 4, 128);
        assert_eq!(r.transactions, vec![0, 128]);
        assert_eq!(r.replays, 1);
    }

    #[test]
    fn element_straddling_boundary_counts_both() {
        let r = coalesce([124u64], 8, 128);
        assert_eq!(r.transactions, vec![0, 128]);
    }

    #[test]
    fn duplicate_addresses_coalesce_fully() {
        let r = coalesce(std::iter::repeat_n(64u64, 32), 4, 128);
        assert_eq!(r.transactions, vec![0]);
        assert_eq!(r.replays, 0);
    }

    #[test]
    fn empty_access_is_empty() {
        let r = coalesce(std::iter::empty(), 4, 128);
        assert!(r.transactions.is_empty());
        assert_eq!(r.replays, 0);
    }
}
