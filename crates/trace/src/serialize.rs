//! Text serialization of concrete traces.
//!
//! The paper's framework materializes SASSI instruction/memory traces as
//! files and post-processes them offline; this module provides the same
//! workflow: [`dump`] a concrete trace to a line-oriented text format,
//! [`load`] it back. The format is deliberately simple — one record per
//! line, space-separated — so external tools (awk, Python) can consume
//! the traces too.
//!
//! ```text
//! # gpu-hms trace v1
//! kernel vecAdd
//! geometry 64 128 32
//! array 0 a f32 d1 8192 ro data grid
//! placement G G G
//! warp 0 0
//! alu int 2
//! addr 0 1
//! mem 0 G ld 4 0:1000 1:1004 ...
//! wait
//! sync
//! end
//! ```

use std::fmt::Write as _;

use hms_types::{
    ArrayDef, ArrayId, DType, Dims, Geometry, GpuConfig, HmsError, MemorySpace, PlacementMap,
};

use crate::alloc::AddressAllocator;
use crate::concrete::{AluKind, CInstr, CMemRef, ConcreteTrace, ConcreteWarp};

fn dtype_name(d: DType) -> &'static str {
    match d {
        DType::F32 => "f32",
        DType::F64 => "f64",
        DType::I32 => "i32",
        DType::U32 => "u32",
        DType::I64 => "i64",
    }
}

fn dtype_parse(s: &str) -> Option<DType> {
    Some(match s {
        "f32" => DType::F32,
        "f64" => DType::F64,
        "i32" => DType::I32,
        "u32" => DType::U32,
        "i64" => DType::I64,
        _ => return None,
    })
}

fn alu_name(k: AluKind) -> &'static str {
    match k {
        AluKind::Int => "int",
        AluKind::Fp32 => "fp32",
        AluKind::Fp64 => "fp64",
        AluKind::Sfu => "sfu",
    }
}

fn alu_parse(s: &str) -> Option<AluKind> {
    Some(match s {
        "int" => AluKind::Int,
        "fp32" => AluKind::Fp32,
        "fp64" => AluKind::Fp64,
        "sfu" => AluKind::Sfu,
        _ => return None,
    })
}

/// Serialize a concrete trace to the v1 text format.
pub fn dump(trace: &ConcreteTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# gpu-hms trace v1");
    let _ = writeln!(out, "kernel {}", trace.name.replace(' ', "_"));
    let g = trace.geometry;
    let _ = writeln!(
        out,
        "geometry {} {} {}",
        g.grid_blocks, g.block_threads, g.warp_size
    );
    for a in &trace.arrays {
        let (shape, extents) = match a.dims {
            Dims::D1 { len } => ("d1", format!("{len}")),
            Dims::D2 { width, height } => ("d2", format!("{width}x{height}")),
        };
        let _ = writeln!(
            out,
            "array {} {} {} {shape} {extents} {} {} {}",
            a.id.0,
            a.name.replace(' ', "_"),
            dtype_name(a.dtype),
            if a.written { "rw" } else { "ro" },
            if a.scratch { "scratch" } else { "data" },
            if a.per_block { "block" } else { "grid" },
        );
    }
    let spaces: Vec<&str> = trace.placement.iter().map(|(_, s)| s.short()).collect();
    let _ = writeln!(out, "placement {}", spaces.join(" "));
    for w in &trace.warps {
        let _ = writeln!(out, "warp {} {}", w.block, w.warp);
        for instr in &w.instrs {
            match instr {
                CInstr::Alu { kind, count } => {
                    let _ = writeln!(out, "alu {} {count}", alu_name(*kind));
                }
                CInstr::AddrCalc { array, count } => {
                    let _ = writeln!(out, "addr {} {count}", array.0);
                }
                CInstr::WaitLoads => {
                    let _ = writeln!(out, "wait");
                }
                CInstr::SyncThreads => {
                    let _ = writeln!(out, "sync");
                }
                CInstr::Local { is_store, slots } => {
                    let lanes: Vec<String> = slots.iter().map(|s| s.to_string()).collect();
                    let _ = writeln!(
                        out,
                        "local {} {}",
                        if *is_store { "st" } else { "ld" },
                        lanes.join(" ")
                    );
                }
                CInstr::Mem(m) => {
                    let lanes: Vec<String> = m
                        .addrs
                        .iter()
                        .enumerate()
                        .filter_map(|(l, a)| a.map(|a| format!("{l}:{a}")))
                        .collect();
                    let _ = writeln!(
                        out,
                        "mem {} {} {} {} {}",
                        m.array.0,
                        m.space.short(),
                        if m.is_store { "st" } else { "ld" },
                        m.elem_bytes,
                        lanes.join(" ")
                    );
                }
            }
        }
        let _ = writeln!(out, "end");
    }
    out
}

/// Parse the v1 text format back into a concrete trace.
///
/// `cfg` is needed to rebuild the address allocator (it is derived state,
/// not serialized).
pub fn load(text: &str, cfg: &GpuConfig) -> Result<ConcreteTrace, HmsError> {
    let bad =
        |line: usize, msg: &str| HmsError::InvalidInput(format!("trace line {}: {msg}", line + 1));
    let mut name = String::new();
    let mut geometry: Option<Geometry> = None;
    let mut arrays: Vec<ArrayDef> = Vec::new();
    let mut placement: Option<PlacementMap> = None;
    let mut warps: Vec<ConcreteWarp> = Vec::new();
    let mut current: Option<ConcreteWarp> = None;

    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tok = line.split_whitespace();
        let head = tok.next().expect("non-empty line");
        let rest: Vec<&str> = tok.collect();
        match head {
            "kernel" => {
                name = rest
                    .first()
                    .ok_or_else(|| bad(ln, "kernel needs a name"))?
                    .to_string()
            }
            "geometry" => {
                if rest.len() != 3 {
                    return Err(bad(ln, "geometry needs 3 fields"));
                }
                let p = |s: &str| s.parse::<u32>().map_err(|_| bad(ln, "bad geometry number"));
                geometry = Some(Geometry {
                    grid_blocks: p(rest[0])?,
                    block_threads: p(rest[1])?,
                    warp_size: p(rest[2])?,
                });
            }
            "array" => {
                if rest.len() != 8 {
                    return Err(bad(ln, "array needs 8 fields"));
                }
                let id: u32 = rest[0].parse().map_err(|_| bad(ln, "bad array id"))?;
                let dtype = dtype_parse(rest[2]).ok_or_else(|| bad(ln, "bad dtype"))?;
                let written = match rest[5] {
                    "rw" => true,
                    "ro" => false,
                    _ => return Err(bad(ln, "expected ro/rw")),
                };
                let mut def = match rest[3] {
                    "d1" => {
                        let len = rest[4].parse().map_err(|_| bad(ln, "bad length"))?;
                        ArrayDef::new_1d(id, rest[1], dtype, len, written)
                    }
                    "d2" => {
                        let (w, h) = rest[4]
                            .split_once('x')
                            .ok_or_else(|| bad(ln, "d2 extents need WxH"))?;
                        let w = w.parse().map_err(|_| bad(ln, "bad width"))?;
                        let h = h.parse().map_err(|_| bad(ln, "bad height"))?;
                        ArrayDef::new_2d(id, rest[1], dtype, w, h, written)
                    }
                    _ => return Err(bad(ln, "expected d1/d2")),
                };
                if rest[6] == "scratch" {
                    def = def.scratch();
                }
                if rest[7] == "block" {
                    def = def.per_block();
                }
                arrays.push(def);
            }
            "placement" => {
                let spaces: Option<Vec<MemorySpace>> =
                    rest.iter().map(|s| MemorySpace::from_short(s)).collect();
                placement = Some(PlacementMap::from_spaces(
                    spaces.ok_or_else(|| bad(ln, "bad space"))?,
                ));
            }
            "warp" => {
                if current.is_some() {
                    return Err(bad(ln, "warp before previous `end`"));
                }
                if rest.len() != 2 {
                    return Err(bad(ln, "warp needs block and index"));
                }
                current = Some(ConcreteWarp {
                    block: rest[0].parse().map_err(|_| bad(ln, "bad block"))?,
                    warp: rest[1].parse().map_err(|_| bad(ln, "bad warp"))?,
                    instrs: Vec::new(),
                });
            }
            "end" => {
                warps.push(current.take().ok_or_else(|| bad(ln, "end without warp"))?);
            }
            "alu" | "addr" | "wait" | "sync" | "mem" | "local" => {
                let w = current
                    .as_mut()
                    .ok_or_else(|| bad(ln, "instruction outside warp"))?;
                match head {
                    "alu" => {
                        let kind = alu_parse(rest.first().copied().unwrap_or(""))
                            .ok_or_else(|| bad(ln, "bad alu kind"))?;
                        let count = rest
                            .get(1)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| bad(ln, "bad count"))?;
                        w.instrs.push(CInstr::Alu { kind, count });
                    }
                    "addr" => {
                        let array: u32 = rest
                            .first()
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| bad(ln, "bad array"))?;
                        let count = rest
                            .get(1)
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| bad(ln, "bad count"))?;
                        w.instrs.push(CInstr::AddrCalc {
                            array: ArrayId(array),
                            count,
                        });
                    }
                    "wait" => w.instrs.push(CInstr::WaitLoads),
                    "sync" => w.instrs.push(CInstr::SyncThreads),
                    "local" => {
                        let is_store = match rest.first().copied() {
                            Some("st") => true,
                            Some("ld") => false,
                            _ => return Err(bad(ln, "local needs ld/st")),
                        };
                        let slots: Result<Vec<u32>, _> =
                            rest[1..].iter().map(|s| s.parse()).collect();
                        w.instrs.push(CInstr::Local {
                            is_store,
                            slots: slots.map_err(|_| bad(ln, "bad slot"))?,
                        });
                    }
                    "mem" => {
                        if rest.len() < 4 {
                            return Err(bad(ln, "mem needs array/space/dir/esize"));
                        }
                        let array: u32 = rest[0].parse().map_err(|_| bad(ln, "bad array"))?;
                        let space =
                            MemorySpace::from_short(rest[1]).ok_or_else(|| bad(ln, "bad space"))?;
                        let is_store = match rest[2] {
                            "st" => true,
                            "ld" => false,
                            _ => return Err(bad(ln, "expected ld/st")),
                        };
                        let elem_bytes: u8 = rest[3].parse().map_err(|_| bad(ln, "bad esize"))?;
                        let warp_size = geometry
                            .ok_or_else(|| bad(ln, "mem before geometry"))?
                            .warp_size as usize;
                        let mut addrs = vec![None; warp_size];
                        for lane_spec in &rest[4..] {
                            let (lane, addr) = lane_spec
                                .split_once(':')
                                .ok_or_else(|| bad(ln, "lane spec needs lane:addr"))?;
                            let lane: usize = lane.parse().map_err(|_| bad(ln, "bad lane"))?;
                            if lane >= warp_size {
                                return Err(bad(ln, "lane out of range"));
                            }
                            addrs[lane] = Some(addr.parse().map_err(|_| bad(ln, "bad address"))?);
                        }
                        w.instrs.push(CInstr::Mem(CMemRef {
                            array: ArrayId(array),
                            space,
                            is_store,
                            elem_bytes,
                            addrs,
                        }));
                    }
                    _ => unreachable!(),
                }
            }
            other => return Err(bad(ln, &format!("unknown record `{other}`"))),
        }
    }
    if current.is_some() {
        return Err(HmsError::InvalidInput("trace ends inside a warp".into()));
    }
    let geometry = geometry.ok_or_else(|| HmsError::InvalidInput("missing geometry".into()))?;
    let placement = placement.ok_or_else(|| HmsError::InvalidInput("missing placement".into()))?;
    if placement.len() != arrays.len() {
        return Err(HmsError::InvalidInput(
            "placement/array count mismatch".into(),
        ));
    }
    let _ = cfg;
    let alloc = AddressAllocator::new(&arrays, &placement, geometry.grid_blocks);
    Ok(ConcreteTrace {
        name,
        arrays,
        geometry,
        placement,
        alloc,
        warps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concrete::materialize;
    use crate::op::{KernelTrace, MemRef, SymOp, WarpTrace};

    fn sample() -> ConcreteTrace {
        let kt = KernelTrace {
            name: "roundtrip".into(),
            arrays: vec![
                ArrayDef::new_1d(0, "a", DType::F32, 128, false),
                ArrayDef::new_2d(1, "img", DType::F64, 16, 8, false),
                ArrayDef::new_1d(2, "tile", DType::F32, 64, true)
                    .scratch()
                    .per_block(),
            ],
            geometry: Geometry::new(2, 64),
            warps: (0..4)
                .map(|i| WarpTrace {
                    block: i / 2,
                    warp: i % 2,
                    ops: vec![
                        SymOp::IntAlu(2),
                        SymOp::AddrCalc {
                            array: ArrayId(0),
                            count: 1,
                        },
                        SymOp::Access(MemRef::load(
                            ArrayId(0),
                            (0..32)
                                .map(|l| (l % 2 == 0).then_some(crate::op::ElemIdx::Lin(l)))
                                .collect(),
                        )),
                        SymOp::WaitLoads,
                        SymOp::Fp64(1),
                        SymOp::SyncThreads,
                        SymOp::Access(MemRef::store_lin(ArrayId(2), 0..32)),
                    ],
                })
                .collect(),
        };
        let pm = kt
            .default_placement()
            .with(ArrayId(1), MemorySpace::Texture2D)
            .with(ArrayId(2), MemorySpace::Shared);
        materialize(&kt, &pm, &GpuConfig::tesla_k80()).unwrap()
    }

    #[test]
    fn dump_load_round_trips() {
        let cfg = GpuConfig::tesla_k80();
        let t = sample();
        let text = dump(&t);
        let back = load(&text, &cfg).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn format_is_line_oriented_and_commented() {
        let text = dump(&sample());
        assert!(text.starts_with("# gpu-hms trace v1\n"));
        assert!(text.contains("placement G 2T S"));
        assert!(text.contains("mem 0 G ld 4 0:"));
    }

    #[test]
    fn load_rejects_malformed_input() {
        let cfg = GpuConfig::tesla_k80();
        for bad in [
            "geometry 1 32",                           // wrong arity
            "kernel k\nwarp 0 0\nalu int 1",           // unterminated warp
            "kernel k\ngeometry 1 32 32\nplacement X", // bad space
            "garbage line",
        ] {
            assert!(load(bad, &cfg).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn loaded_trace_simulates_identically() {
        let cfg = GpuConfig::tesla_k80();
        let t = sample();
        let back = load(&dump(&t), &cfg).unwrap();
        // Both traces are the same object, so this is implied by
        // dump_load_round_trips — but assert the behavioural equivalence
        // explicitly for the serialization contract.
        assert_eq!(format!("{:?}", back.warps), format!("{:?}", t.warps));
    }
}
