//! Deterministic address assignment (paper Section III-E).
//!
//! "If the location of the target data object is changed between the
//! off-chip memories, the address of the target data object remains the
//! same. If the location ... is changed between an off-chip memory and
//! shared memory, we assign an address range ... after the allocated
//! largest memory addresses ... following the requirements of memory
//! alignment and data object size."
//!
//! We satisfy the invariant by assigning every array a *stable* off-chip
//! range in declaration order, independent of placement: an array moved
//! between off-chip spaces keeps its address; an array placed in shared
//! memory leaves its off-chip range unused and receives a per-block
//! shared-memory offset instead. Block-scoped arrays placed off-chip get
//! one region per block, laid out after all shared ranges.

use hms_types::{ArrayDef, ArrayId, MemorySpace, PlacementMap};

/// Alignment of every off-chip allocation (matches `cudaMalloc`'s
/// 256-byte guarantee).
pub const OFFCHIP_ALIGN: u64 = 256;
/// Alignment of shared-memory allocations.
pub const SHARED_ALIGN: u64 = 128;

/// Resolved base addresses for one kernel under one placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressAllocator {
    /// Stable off-chip base per array (assigned regardless of placement).
    offchip_base: Vec<u64>,
    /// Per-block region stride for block-scoped arrays placed off-chip
    /// (0 for globally-shared arrays).
    block_stride: Vec<u64>,
    /// Shared-memory offset per array (`None` when not placed in shared).
    shared_base: Vec<Option<u64>>,
    /// Total shared memory consumed per block.
    shared_bytes_per_block: u64,
    /// One past the highest off-chip byte allocated.
    offchip_end: u64,
}

fn align_up(x: u64, a: u64) -> u64 {
    x.div_ceil(a) * a
}

impl AddressAllocator {
    /// Lay out `arrays` for `placement`. The off-chip layout is computed
    /// first and is placement-independent; per-block regions for
    /// block-scoped off-chip arrays are appended after it.
    pub fn new(arrays: &[ArrayDef], placement: &PlacementMap, grid_blocks: u32) -> Self {
        assert_eq!(arrays.len(), placement.len());
        let mut offchip_base = Vec::with_capacity(arrays.len());
        let mut block_stride = vec![0u64; arrays.len()];
        let mut cursor = 0u64;
        // Pass 1: stable ranges for every array (per-block arrays reserve
        // one region here as their backing store; they are re-pointed at
        // per-block regions below when placed off-chip).
        for a in arrays {
            cursor = align_up(cursor, OFFCHIP_ALIGN);
            offchip_base.push(cursor);
            cursor += a.size_bytes();
        }
        // Pass 2: block-scoped arrays placed off-chip get `grid_blocks`
        // regions "after the allocated largest memory addresses".
        for (i, a) in arrays.iter().enumerate() {
            if a.per_block && placement.space(ArrayId(i as u32)).is_off_chip() {
                cursor = align_up(cursor, OFFCHIP_ALIGN);
                offchip_base[i] = cursor;
                let stride = align_up(a.size_bytes(), OFFCHIP_ALIGN);
                block_stride[i] = stride;
                cursor += stride * u64::from(grid_blocks);
            }
        }
        // Shared-memory offsets.
        let mut shared_base = vec![None; arrays.len()];
        let mut shared_cursor = 0u64;
        for (i, a) in arrays.iter().enumerate() {
            if placement.space(ArrayId(i as u32)) == MemorySpace::Shared {
                shared_cursor = align_up(shared_cursor, SHARED_ALIGN);
                shared_base[i] = Some(shared_cursor);
                shared_cursor += a.size_bytes();
            }
        }
        AddressAllocator {
            offchip_base,
            block_stride,
            shared_base,
            shared_bytes_per_block: shared_cursor,
            offchip_end: cursor,
        }
    }

    /// Byte base address for `array` as referenced by `block`.
    ///
    /// For shared placements the returned address is an offset into the
    /// block's shared memory; off-chip placements return a device
    /// physical address.
    pub fn base(&self, array: ArrayId, block: u32, placement: &PlacementMap) -> u64 {
        let i = array.index();
        if placement.space(array) == MemorySpace::Shared {
            self.shared_base[i].expect("shared base exists for shared placement")
        } else {
            self.offchip_base[i] + self.block_stride[i] * u64::from(block)
        }
    }

    /// Stable off-chip base (useful for identifying an array from a raw
    /// address, as the rewriter does).
    pub fn offchip_base(&self, array: ArrayId) -> u64 {
        self.offchip_base[array.index()]
    }

    /// Shared bytes a block consumes under this placement (limits
    /// occupancy in the simulator).
    pub fn shared_bytes_per_block(&self) -> u64 {
        self.shared_bytes_per_block
    }

    /// One past the highest allocated off-chip address.
    pub fn offchip_end(&self) -> u64 {
        self.offchip_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hms_types::DType;

    fn arrays() -> Vec<ArrayDef> {
        vec![
            ArrayDef::new_1d(0, "a", DType::F32, 100, false), // 400 B
            ArrayDef::new_1d(1, "b", DType::F64, 33, false),  // 264 B
            ArrayDef::new_1d(2, "tile", DType::F32, 64, true)
                .scratch()
                .per_block(),
        ]
    }

    #[test]
    fn offchip_layout_is_aligned_and_disjoint() {
        let arrs = arrays();
        let pm = PlacementMap::all_global(3);
        let al = AddressAllocator::new(&arrs, &pm, 4);
        let a = al.base(ArrayId(0), 0, &pm);
        let b = al.base(ArrayId(1), 0, &pm);
        assert_eq!(a % OFFCHIP_ALIGN, 0);
        assert_eq!(b % OFFCHIP_ALIGN, 0);
        assert!(b >= a + 400);
    }

    #[test]
    fn moving_between_offchip_spaces_keeps_address() {
        // The paper's invariant: off-chip -> off-chip moves keep the
        // target object's address.
        let arrs = arrays();
        let g = PlacementMap::all_global(3);
        let t = g.with(ArrayId(0), MemorySpace::Texture1D);
        let ag = AddressAllocator::new(&arrs, &g, 4);
        let at = AddressAllocator::new(&arrs, &t, 4);
        assert_eq!(ag.base(ArrayId(0), 0, &g), at.base(ArrayId(0), 0, &t));
        assert_eq!(ag.base(ArrayId(1), 0, &g), at.base(ArrayId(1), 0, &t));
    }

    #[test]
    fn per_block_offchip_regions_are_disjoint_and_last() {
        let arrs = arrays();
        let pm = PlacementMap::all_global(3);
        let al = AddressAllocator::new(&arrs, &pm, 4);
        let b0 = al.base(ArrayId(2), 0, &pm);
        let b1 = al.base(ArrayId(2), 1, &pm);
        assert!(b1 >= b0 + 256);
        // Appended after the grid-wide arrays.
        assert!(b0 > al.base(ArrayId(1), 0, &pm));
        assert!(al.offchip_end() >= b0 + 4 * 256);
    }

    #[test]
    fn shared_placement_uses_shared_offsets() {
        let arrs = arrays();
        let pm = PlacementMap::all_global(3).with(ArrayId(2), MemorySpace::Shared);
        let al = AddressAllocator::new(&arrs, &pm, 4);
        // Shared offsets start at 0 and are identical across blocks.
        assert_eq!(al.base(ArrayId(2), 0, &pm), 0);
        assert_eq!(al.base(ArrayId(2), 3, &pm), 0);
        assert_eq!(al.shared_bytes_per_block(), 256);
    }

    #[test]
    fn two_shared_arrays_do_not_overlap() {
        let arrs = vec![
            ArrayDef::new_1d(0, "x", DType::F32, 10, false),
            ArrayDef::new_1d(1, "y", DType::F32, 10, false),
        ];
        let pm = PlacementMap::from_spaces(vec![MemorySpace::Shared, MemorySpace::Shared]);
        let al = AddressAllocator::new(&arrs, &pm, 1);
        let x = al.base(ArrayId(0), 0, &pm);
        let y = al.base(ArrayId(1), 0, &pm);
        assert_ne!(x, y);
        assert!(y >= x + 40);
        assert_eq!(y % SHARED_ALIGN, 0);
    }
}
