//! Sample-to-target trace rewriting (paper Section IV).
//!
//! "The memory trace is then processed to replace load and store
//! operations of the sample data placement with those of the target data
//! placement accommodating the addressing mode difference."
//!
//! The rewriter consumes only what the paper's SASSI-based framework has:
//! the *concrete* sample trace (byte addresses + the array each access
//! belongs to, recovered from address ranges) and the array metadata. It
//! recovers each lane's element coordinates by inverting the sample
//! layout, then re-lays the element out under the target placement. By
//! construction `rewrite(materialize(k, s), t) == materialize(k, t)` —
//! an equivalence the integration tests assert.

use hms_types::layout::tex2d_invert;
use hms_types::{Dims, GpuConfig, HmsError, MemorySpace, PlacementMap};

use crate::alloc::AddressAllocator;
use crate::concrete::{element_offset, CInstr, CMemRef, ConcreteTrace, ConcreteWarp};
use crate::op::ElemIdx;

/// Recover the per-lane element indices of one sample-trace access by
/// inverting the sample placement's layout — the per-access core of
/// [`rewrite`], exposed so the incremental search engine can re-lay
/// single accesses out under candidate spaces without rebuilding whole
/// traces. `block` is the issuing warp's block (per-block arrays have
/// block-dependent bases).
pub fn recover_elem_indices(
    sample: &ConcreteTrace,
    block: u32,
    m: &CMemRef,
    cfg: &GpuConfig,
) -> Vec<Option<ElemIdx>> {
    let array = &sample.arrays[m.array.index()];
    let from_space = m.space;
    let from_base = sample.alloc.base(m.array, block, &sample.placement);
    let esize = array.dtype.size_bytes();
    let width = match array.dims {
        Dims::D1 { len } => len,
        Dims::D2 { width, .. } => width,
    };
    m.addrs
        .iter()
        .map(|oa| {
            oa.map(|a| {
                let off = a - from_base;
                if from_space == MemorySpace::Texture2D {
                    let (x, y) = tex2d_invert(off, width, esize, cfg.tex2d_tile);
                    ElemIdx::XY(x, y)
                } else {
                    ElemIdx::Lin(off / esize)
                }
            })
        })
        .collect()
}

/// Rewrite `sample` (a concrete trace of the sample placement) into the
/// concrete trace of `target`.
pub fn rewrite(
    sample: &ConcreteTrace,
    target: &PlacementMap,
    cfg: &GpuConfig,
) -> Result<ConcreteTrace, HmsError> {
    target.validate(&sample.arrays, cfg)?;
    let alloc = AddressAllocator::new(&sample.arrays, target, sample.geometry.grid_blocks);
    let mut warps = Vec::with_capacity(sample.warps.len());
    for w in &sample.warps {
        let mut instrs = Vec::with_capacity(w.instrs.len());
        for instr in &w.instrs {
            match instr {
                CInstr::Mem(m) => {
                    let array = &sample.arrays[m.array.index()];
                    let to_space = target.space(m.array);
                    let to_base = alloc.base(m.array, w.block, target);
                    // Invert the sample layout to recover the element,
                    // then apply the target layout.
                    let addrs = recover_elem_indices(sample, w.block, m, cfg)
                        .into_iter()
                        .map(|oi| oi.map(|idx| to_base + element_offset(array, to_space, idx, cfg)))
                        .collect();
                    instrs.push(CInstr::Mem(CMemRef {
                        array: m.array,
                        space: to_space,
                        is_store: m.is_store,
                        elem_bytes: m.elem_bytes,
                        addrs,
                    }));
                }
                other => instrs.push(other.clone()),
            }
        }
        warps.push(ConcreteWarp {
            block: w.block,
            warp: w.warp,
            instrs,
        });
    }
    Ok(ConcreteTrace {
        name: sample.name.clone(),
        arrays: sample.arrays.clone(),
        geometry: sample.geometry,
        placement: target.clone(),
        alloc,
        warps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concrete::materialize;
    use crate::op::{KernelTrace, MemRef, SymOp, WarpTrace};
    use hms_types::{ArrayDef, ArrayId, DType, Geometry};

    fn kernel() -> KernelTrace {
        KernelTrace {
            name: "k".into(),
            arrays: vec![
                ArrayDef::new_1d(0, "a", DType::F32, 256, false),
                ArrayDef::new_2d(1, "img", DType::F64, 32, 32, false),
                ArrayDef::new_1d(2, "out", DType::F32, 256, true),
            ],
            geometry: Geometry::new(4, 64),
            warps: (0..8)
                .map(|i| WarpTrace {
                    block: i / 2,
                    warp: i % 2,
                    ops: vec![
                        SymOp::AddrCalc {
                            array: ArrayId(0),
                            count: 1,
                        },
                        SymOp::Access(MemRef::load_lin(
                            ArrayId(0),
                            (0..32).map(|l| (i as u64 * 32 + l) % 256),
                        )),
                        SymOp::Access(MemRef::load(
                            ArrayId(1),
                            (0..32)
                                .map(|l| Some(ElemIdx::XY(l % 8, l / 8 + i as u64)))
                                .collect(),
                        )),
                        SymOp::WaitLoads,
                        SymOp::FpAlu(4),
                        SymOp::Access(MemRef::store_lin(
                            ArrayId(2),
                            (0..32).map(|l| i as u64 * 32 + l),
                        )),
                    ],
                })
                .collect(),
        }
    }

    /// The central equivalence: rewriting the sample trace must be
    /// indistinguishable from materializing the target directly.
    #[test]
    fn rewrite_equals_direct_materialization() {
        let kt = kernel();
        let cfg = GpuConfig::tesla_k80();
        let sample_pm = kt
            .default_placement()
            .with(ArrayId(1), MemorySpace::Texture2D);
        let sample = materialize(&kt, &sample_pm, &cfg).unwrap();
        let targets = [
            kt.default_placement(),
            kt.default_placement()
                .with(ArrayId(0), MemorySpace::Constant),
            kt.default_placement()
                .with(ArrayId(0), MemorySpace::Texture1D),
            kt.default_placement()
                .with(ArrayId(0), MemorySpace::Shared)
                .with(ArrayId(1), MemorySpace::Texture2D),
            sample_pm.clone(),
        ];
        for t in targets {
            let rewritten = rewrite(&sample, &t, &cfg).unwrap();
            let direct = materialize(&kt, &t, &cfg).unwrap();
            assert_eq!(rewritten, direct, "divergence for target {t:?}");
        }
    }

    #[test]
    fn rewrite_round_trip_is_identity() {
        let kt = kernel();
        let cfg = GpuConfig::tesla_k80();
        let s = kt.default_placement();
        let t = s.with(ArrayId(0), MemorySpace::Constant);
        let sample = materialize(&kt, &s, &cfg).unwrap();
        let there = rewrite(&sample, &t, &cfg).unwrap();
        let back = rewrite(&there, &s, &cfg).unwrap();
        assert_eq!(back, sample);
    }

    #[test]
    fn rewrite_rejects_invalid_target() {
        let kt = kernel();
        let cfg = GpuConfig::tesla_k80();
        let sample = materialize(&kt, &kt.default_placement(), &cfg).unwrap();
        // `out` is written: texture placement is illegal.
        let bad = kt
            .default_placement()
            .with(ArrayId(2), MemorySpace::Texture1D);
        assert!(rewrite(&sample, &bad, &cfg).is_err());
    }
}
