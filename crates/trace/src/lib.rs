//! # hms-trace
//!
//! Instruction- and memory-trace machinery, mirroring the paper's
//! implementation framework (Section IV): "an instruction trace generator
//! and a memory trace generator based on SASSI ... The memory trace is
//! then processed to replace load and store operations of the sample data
//! placement with those of the target data placement accommodating the
//! addressing mode difference."
//!
//! * [`op`] — the symbolic, placement-*independent* kernel trace emitted
//!   by the workload generators (`hms-kernels`);
//! * [`addressing`] — the addressing-mode instruction table of Section
//!   III-B (2 / 0 / 1 / 1 extra instructions for global / 1-D texture /
//!   constant / shared);
//! * [`alloc`] — deterministic address assignment per Section III-E;
//! * [`concrete`] — materialization of a symbolic trace under one
//!   placement into per-warp instruction streams with byte addresses (the
//!   simulator's input, standing in for a SASSI trace);
//! * [`rewrite`] — the sample→target trace transformation that works only
//!   from the *concrete* sample trace plus array metadata, exactly like
//!   the paper's framework;
//! * [`coalesce`] — warp-level address coalescing into memory
//!   transactions, including the global address-divergence replay count
//!   (replay cause (1)).

pub mod addressing;
pub mod alloc;
pub mod coalesce;
pub mod columnar;
pub mod concrete;
pub mod op;
pub mod rewrite;
pub mod serialize;

pub use addressing::addr_calc_instrs;
pub use alloc::AddressAllocator;
pub use coalesce::{coalesce, CoalesceResult};
pub use columnar::{ColWarp, ColumnarTrace, OpRange, OpView};
pub use concrete::{element_offset, materialize, CInstr, CMemRef, ConcreteTrace, ConcreteWarp};
pub use op::{ElemIdx, KernelTrace, MemRef, SymOp, WarpTrace};
pub use rewrite::{recover_elem_indices, rewrite};
pub use serialize::{dump, load};
