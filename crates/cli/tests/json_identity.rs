//! `hms <cmd> --json` must print *exactly* the bytes the HTTP server
//! would send for the equivalent request — the acceptance criterion for
//! sharing one body builder between the two transports. Also checks the
//! CLI's failure discipline: usage errors exit 2, and nothing panics.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::Command;
use std::time::Duration;

use hms_core::Predictor;
use hms_serve::{preset, Advisor, ConfigRegistry, ServerConfig};
use hms_types::GpuConfig;

fn hms(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_hms"))
        .args(args)
        .output()
        .expect("runs hms")
}

fn advisor(cfg: GpuConfig) -> Advisor {
    Advisor::new(cfg.clone(), Predictor::new(cfg))
}

/// One POST against an in-process server; returns (status, body bytes).
fn server_post(path: &str, body: &str) -> (u16, Vec<u8>) {
    // The CLI builds its default advisor over tesla_k80; match it
    // exactly, and expose the same `--config` presets as named tenants.
    let registry = ConfigRegistry::new("default", advisor(GpuConfig::tesla_k80()))
        .with("c2050", advisor(preset("c2050").expect("c2050 preset")));
    let handle = ServerConfig::new()
        .bind("127.0.0.1:0")
        .workers(1)
        .spawn(registry)
        .expect("binds");
    let stream = TcpStream::connect(handle.addr()).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    write!(
        writer,
        "POST {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    writer.flush().unwrap();
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().unwrap();
        }
    }
    let mut bytes = vec![0u8; content_length];
    reader.read_exact(&mut bytes).unwrap();
    handle.shutdown();
    (status, bytes)
}

#[test]
fn predict_json_is_byte_identical_to_server() {
    let out = hms(&[
        "predict", "vecadd", "--scale", "test", "--json", "--move", "a=T", "--move", "b=C",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let (status, server_bytes) = server_post(
        "/v1/predict",
        r#"{"kernel":"vecadd","scale":"test","moves":[{"array":"a","space":"T"},{"array":"b","space":"C"}]}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(
        out.stdout,
        server_bytes,
        "cli --json and server body diverged:\ncli:    {}\nserver: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&server_bytes)
    );
}

#[test]
fn predict_with_config_is_byte_identical_to_server() {
    // `--config c2050` on the CLI must equal a server request whose
    // body names the same tenant — and the response must not echo the
    // tenant, so the wire format is unchanged by multi-tenancy.
    let out = hms(&[
        "predict", "vecadd", "--scale", "test", "--json", "--move", "a=T", "--config", "c2050",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let (status, server_bytes) = server_post(
        "/v1/predict",
        r#"{"kernel":"vecadd","scale":"test","config":"c2050","moves":[{"array":"a","space":"T"}]}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(
        out.stdout,
        server_bytes,
        "cli --json and server body diverged:\ncli:    {}\nserver: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&server_bytes)
    );
    let text = String::from_utf8_lossy(&server_bytes).into_owned();
    assert!(!text.contains("config"), "tenant leaked into body: {text}");

    // The `config` member is optional: omitting it selects the default
    // tenant, keeping pre-multi-tenant requests byte-compatible.
    let (status, default_bytes) = server_post(
        "/v1/predict",
        r#"{"kernel":"vecadd","scale":"test","moves":[{"array":"a","space":"T"}]}"#,
    );
    assert_eq!(status, 200);
    let (status, named_bytes) = server_post(
        "/v1/predict",
        r#"{"kernel":"vecadd","scale":"test","config":"default","moves":[{"array":"a","space":"T"}]}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(
        default_bytes, named_bytes,
        "naming the default tenant changed the bytes"
    );
}

#[test]
fn advise_json_is_byte_identical_to_server() {
    let out = hms(&[
        "advise", "vecadd", "--scale", "test", "--top", "3", "--json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let (status, server_bytes) = server_post(
        "/v1/advise",
        r#"{"kernel":"vecadd","scale":"test","top":3}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(out.stdout, server_bytes);
}

#[test]
fn search_json_is_byte_identical_to_server() {
    let out = hms(&[
        "search", "vecadd", "--scale", "test", "--top", "2", "--prune", "--json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let (status, server_bytes) = server_post(
        "/v1/search",
        r#"{"kernel":"vecadd","scale":"test","top":2,"prune":true}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(out.stdout, server_bytes);
}

#[test]
fn strategy_search_json_is_byte_identical_to_server() {
    let out = hms(&[
        "search",
        "wide6",
        "--scale",
        "test",
        "--top",
        "2",
        "--strategy",
        "beam",
        "--beam",
        "4",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let (status, server_bytes) = server_post(
        "/v1/search",
        r#"{"kernel":"wide6","scale":"test","top":2,"strategy":"beam","beam":4}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(out.stdout, server_bytes);
    let text = String::from_utf8_lossy(&server_bytes).into_owned();
    assert!(text.contains("\"strategy\": \"beam\""));
    assert!(text.contains("\"gap_upper_bound\""));
}

#[test]
fn usage_errors_exit_2_with_one_line_diagnostic() {
    for args in [
        &["predict", "ghost", "--move", "a=T"][..], // unknown kernel
        &["predict", "vecadd"],                     // no moves
        &["predict", "vecadd", "--move", "ghost=T"], // unknown array
        &["predict", "vecadd", "--scale", "test", "--move", "v=C"], // illegal placement
        &["frobnicate"],                            // unknown command
        &["search", "vecadd", "--prune", "--strategy", "beam"], // conflicting strategies
        &["search", "vecadd", "--beam", "4"],       // knob without its strategy
        &["search", "vecadd", "--strategy", "local", "--beam", "4"], // wrong knob
        &["search", "vecadd", "--strategy", "warp_drive"], // unknown strategy
    ] {
        let out = hms(args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {args:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.starts_with("error:"),
            "args {args:?} stderr: {stderr}"
        );
        assert!(
            !stderr.contains("panicked"),
            "args {args:?} panicked: {stderr}"
        );
    }
}
