//! Minimal argument parsing for the `hms` tool (no external parser —
//! the surface is five subcommands and a handful of flags).

use hms_kernels::Scale;
use hms_types::MemorySpace;

/// A parsed `--move array=SPACE` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoveSpec {
    pub array: String,
    pub space: MemorySpace,
}

impl MoveSpec {
    /// Parse `name=SPACE` with the paper's short space notation
    /// (`G`, `T`, `2T`, `C`, `S`).
    pub fn parse(s: &str) -> Result<MoveSpec, String> {
        let (array, space) = s
            .split_once('=')
            .ok_or_else(|| format!("expected `array=SPACE`, got `{s}`"))?;
        if array.is_empty() {
            return Err(format!("empty array name in `{s}`"));
        }
        let space = MemorySpace::from_short(space)
            .ok_or_else(|| format!("unknown space `{space}` (use G, T, 2T, C, or S)"))?;
        Ok(MoveSpec {
            array: array.to_owned(),
            space,
        })
    }
}

/// The `hms` subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List the built-in kernels.
    List,
    /// Probe the DRAM address mapping (Algorithm 1).
    Probe,
    /// Simulate a kernel and print its event set.
    Simulate {
        kernel: String,
        scale: Scale,
        moves: Vec<MoveSpec>,
    },
    /// Predict a target placement from a profiled sample.
    Predict {
        kernel: String,
        scale: Scale,
        moves: Vec<MoveSpec>,
        train: bool,
        json: bool,
        /// Named GPU configuration preset (`--config`); `None` = K80.
        config: Option<String>,
    },
    /// Rank every legal placement of the kernel's read-only arrays.
    Advise {
        kernel: String,
        scale: Scale,
        train: bool,
        top: usize,
        json: bool,
        /// Named GPU configuration preset (`--config`); `None` = K80.
        config: Option<String>,
    },
    /// Search the placement space through the incremental engine, with
    /// optional branch-and-bound pruning and observability stats.
    Search {
        kernel: String,
        scale: Scale,
        train: bool,
        top: usize,
        stats: bool,
        prune: bool,
        /// Search strategy spelling (`--strategy beam|halving|local|bnb|
        /// exhaustive`); `None` falls back to `--prune`.
        strategy: Option<String>,
        /// Local-search seed (`--seed`, only with `--strategy local`).
        seed: Option<u64>,
        /// Beam width (`--beam`, only with `--strategy beam`).
        beam: Option<usize>,
        threads: usize,
        json: bool,
        /// Wall-clock budget for the search; past it, the best-so-far
        /// ranking is returned flagged partial. `None` = unbounded.
        deadline_ms: Option<u64>,
        /// Directory for the persistent engine-skeleton cache.
        skel_cache: Option<String>,
        /// Named GPU configuration preset (`--config`); `None` = K80.
        config: Option<String>,
    },
    /// Run the placement-advisory HTTP server.
    Serve {
        addr: String,
        port: u16,
        /// Worker threads for cold model work (`--workers`, with
        /// `--threads` kept as an alias). 0 = auto.
        threads: usize,
        /// Event-loop shards (`--shards`). 0 = auto.
        shards: usize,
        cache_entries: usize,
        deadline_ms: u64,
        queue: usize,
        train: bool,
        /// Directory for the persistent engine-skeleton cache.
        skel_cache: Option<String>,
        /// Disable single-flight coalescing (`--no-coalesce`).
        no_coalesce: bool,
        /// Extra tenants: `--tenant NAME=PRESET`, repeatable. The
        /// default tenant (the K80, or `--config`) is always present.
        tenants: Vec<(String, String)>,
    },
    /// Dump a kernel's concrete trace in the v1 text format.
    Dump {
        kernel: String,
        scale: Scale,
        moves: Vec<MoveSpec>,
    },
    /// Print usage.
    Help,
}

/// Parse a full argument vector (excluding argv[0]).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    let rest: Vec<&String> = it.collect();

    let mut scale = Scale::Full;
    let mut moves = Vec::new();
    let mut train = false;
    let mut top = 5usize;
    let mut stats = false;
    let mut prune = false;
    let mut threads = 0usize;
    let mut json = false;
    let mut addr = String::from("127.0.0.1");
    let mut port = 7070u16;
    let mut cache_entries = 4096usize;
    let mut deadline_ms: Option<u64> = None;
    let mut queue = 128usize;
    let mut skel_cache: Option<String> = None;
    let mut shards = 0usize;
    let mut no_coalesce = false;
    let mut config: Option<String> = None;
    let mut strategy: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut beam: Option<usize> = None;
    let mut tenants: Vec<(String, String)> = Vec::new();
    let mut positional: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--scale" => {
                i += 1;
                let v = rest.get(i).ok_or("--scale needs a value")?;
                scale = match v.as_str() {
                    "full" => Scale::Full,
                    "test" => Scale::Test,
                    other => return Err(format!("unknown scale `{other}`")),
                };
            }
            "--move" => {
                i += 1;
                let v = rest.get(i).ok_or("--move needs `array=SPACE`")?;
                moves.push(MoveSpec::parse(v)?);
            }
            "--train" => train = true,
            "--stats" => stats = true,
            "--prune" => prune = true,
            "--json" => json = true,
            "--addr" => {
                i += 1;
                addr = rest.get(i).ok_or("--addr needs a value")?.to_string();
            }
            "--port" => {
                i += 1;
                let v = rest.get(i).ok_or("--port needs a number")?;
                port = v.parse().map_err(|_| format!("bad --port value `{v}`"))?;
            }
            "--cache-entries" => {
                i += 1;
                let v = rest.get(i).ok_or("--cache-entries needs a number")?;
                cache_entries = v
                    .parse()
                    .map_err(|_| format!("bad --cache-entries value `{v}`"))?;
            }
            "--deadline-ms" => {
                i += 1;
                let v = rest.get(i).ok_or("--deadline-ms needs a number")?;
                deadline_ms = Some(
                    v.parse()
                        .map_err(|_| format!("bad --deadline-ms value `{v}`"))?,
                );
            }
            "--queue" => {
                i += 1;
                let v = rest.get(i).ok_or("--queue needs a number")?;
                queue = v.parse().map_err(|_| format!("bad --queue value `{v}`"))?;
            }
            "--skel-cache" => {
                i += 1;
                let v = rest.get(i).ok_or("--skel-cache needs a directory")?;
                skel_cache = Some(v.to_string());
            }
            "--config" => {
                i += 1;
                let v = rest.get(i).ok_or("--config needs a name")?;
                config = Some(v.to_string());
            }
            "--shards" => {
                i += 1;
                let v = rest.get(i).ok_or("--shards needs a number")?;
                shards = v.parse().map_err(|_| format!("bad --shards value `{v}`"))?;
            }
            "--no-coalesce" => no_coalesce = true,
            "--strategy" => {
                i += 1;
                let v = rest.get(i).ok_or("--strategy needs a name")?;
                strategy = Some(v.to_string());
            }
            "--seed" => {
                i += 1;
                let v = rest.get(i).ok_or("--seed needs a number")?;
                seed = Some(v.parse().map_err(|_| format!("bad --seed value `{v}`"))?);
            }
            "--beam" => {
                i += 1;
                let v = rest.get(i).ok_or("--beam needs a number")?;
                beam = Some(v.parse().map_err(|_| format!("bad --beam value `{v}`"))?);
            }
            "--tenant" => {
                i += 1;
                let v = rest.get(i).ok_or("--tenant needs `NAME=PRESET`")?;
                let (name, preset) = v
                    .split_once('=')
                    .ok_or_else(|| format!("expected `NAME=PRESET`, got `{v}`"))?;
                if name.is_empty() || preset.is_empty() {
                    return Err(format!("expected `NAME=PRESET`, got `{v}`"));
                }
                tenants.push((name.to_string(), preset.to_string()));
            }
            "--threads" | "--workers" => {
                i += 1;
                let v = rest.get(i).ok_or("--threads needs a number")?;
                threads = v
                    .parse()
                    .map_err(|_| format!("bad --threads value `{v}`"))?;
            }
            "--top" => {
                i += 1;
                let v = rest.get(i).ok_or("--top needs a number")?;
                top = v.parse().map_err(|_| format!("bad --top value `{v}`"))?;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            pos => positional.push(pos),
        }
        i += 1;
    }

    let kernel = |pos: &[&str]| -> Result<String, String> {
        pos.first()
            .map(|s| s.to_string())
            .ok_or_else(|| "missing kernel name".into())
    };
    match cmd.as_str() {
        "list" => Ok(Command::List),
        "probe" => Ok(Command::Probe),
        "simulate" => Ok(Command::Simulate {
            kernel: kernel(&positional)?,
            scale,
            moves,
        }),
        "predict" => Ok(Command::Predict {
            kernel: kernel(&positional)?,
            scale,
            moves,
            train,
            json,
            config,
        }),
        "advise" => Ok(Command::Advise {
            kernel: kernel(&positional)?,
            scale,
            train,
            top,
            json,
            config,
        }),
        "search" => Ok(Command::Search {
            kernel: kernel(&positional)?,
            scale,
            train,
            top,
            stats,
            prune,
            strategy,
            seed,
            beam,
            threads,
            json,
            deadline_ms,
            skel_cache,
            config,
        }),
        "serve" => Ok(Command::Serve {
            addr,
            port,
            threads,
            shards,
            cache_entries,
            deadline_ms: deadline_ms.unwrap_or(10_000),
            queue,
            train,
            skel_cache,
            no_coalesce,
            tenants,
        }),
        "dump" => Ok(Command::Dump {
            kernel: kernel(&positional)?,
            scale,
            moves,
        }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown command `{other}` (try `hms help`)")),
    }
}

pub const USAGE: &str = "\
hms — data-placement advisor for GPU heterogeneous memory systems

USAGE:
    hms list
    hms probe
    hms simulate <kernel> [--scale full|test] [--move array=SPACE]...
    hms predict  <kernel> [--scale full|test] [--config NAME] [--train] [--json] --move array=SPACE...
    hms advise   <kernel> [--scale full|test] [--config NAME] [--train] [--top N] [--json]
    hms search   <kernel> [--scale full|test] [--config NAME] [--train] [--top N] [--stats] [--prune] [--strategy NAME] [--beam W] [--seed N] [--threads N] [--deadline-ms N] [--skel-cache DIR] [--json]
    hms dump     <kernel> [--scale full|test] [--move array=SPACE]...
    hms serve    [--addr HOST] [--port N] [--workers N] [--shards N] [--cache-entries N] [--deadline-ms N] [--queue N] [--no-coalesce] [--tenant NAME=PRESET]... [--train] [--skel-cache DIR]

SPACES: G (global), T (1-D texture), 2T (2-D texture), C (constant), S (shared)

`search` ranks like `advise` but runs the incremental delta-evaluation
engine; `--stats` prints its observability counters (full rewrites,
delta hits, prune rate), `--prune` switches to branch-and-bound.
`--strategy` picks the search algorithm by name: `exhaustive`, `bnb`
(branch-and-bound), or the anytime strategies `beam` (beam search,
width via `--beam`), `halving` (successive halving over skeleton
groups), and `local` (seeded genetic local search, seed via `--seed`).
Anytime strategies trade coverage for time and report a sound
optimality-gap upper bound in `--stats`/`--json`: the true optimum is
never better than best-found / (1 + gap). `--prune` conflicts with
`--strategy`; `--beam`/`--seed` require their strategy.
`--deadline-ms` bounds the search wall clock: past it the best-so-far
ranking is returned, flagged partial in the output. `--skel-cache DIR`
persists the engine's walk skeletons in DIR across runs (versioned and
checksummed; stale or corrupt entries silently rebuild, results are
bit-identical either way).

`--json` prints the exact response body the HTTP server would send for
the equivalent request (byte-identical, asserted by tests).

`--config NAME` selects a GPU configuration preset (k80, c2050,
test-small) instead of the default Tesla K80 — the same names requests
can send in their `config` member against a multi-tenant server.

`serve` runs the advisory HTTP server: POST /v1/predict, /v1/advise,
/v1/search; GET /v1/kernels, /metrics, /healthz. `--port 0` picks an
ephemeral port (the bound address is printed). SIGINT/SIGTERM drain
in-flight requests and exit cleanly. The event-driven core answers warm
(cached) requests on `--shards` poll loops and runs cold model work on
`--workers` threads; identical concurrent requests are answered by one
computation unless `--no-coalesce`. `--tenant NAME=PRESET` (repeatable)
adds a named GPU configuration requests select with \"config\": NAME.

EXAMPLES:
    hms advise neuralnet --train
    hms search spmv --stats --prune
    hms search wide8 --scale test --strategy beam --beam 16 --stats
    hms search wide8 --scale test --strategy local --seed 7 --deadline-ms 2000
    hms predict spmv --move d_vec=G --move rowDelimiters=C
    hms predict spmv --json --move d_vec=T
    hms simulate md --move d_position=T
    hms serve --port 7070 --threads 4
";

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_moves_and_flags() {
        let cmd = parse(&v(&[
            "predict",
            "spmv",
            "--move",
            "d_vec=G",
            "--move",
            "rowDelimiters=C",
            "--train",
        ]))
        .unwrap();
        let Command::Predict {
            kernel,
            moves,
            train,
            ..
        } = cmd
        else {
            panic!()
        };
        assert_eq!(kernel, "spmv");
        assert!(train);
        assert_eq!(moves.len(), 2);
        assert_eq!(
            moves[0],
            MoveSpec {
                array: "d_vec".into(),
                space: MemorySpace::Global
            }
        );
        assert_eq!(moves[1].space, MemorySpace::Constant);
    }

    #[test]
    fn parses_scale_and_top() {
        let cmd = parse(&v(&["advise", "md", "--scale", "test", "--top", "3"])).unwrap();
        let Command::Advise {
            kernel,
            scale,
            top,
            train,
            ..
        } = cmd
        else {
            panic!()
        };
        assert_eq!(kernel, "md");
        assert_eq!(scale, Scale::Test);
        assert_eq!(top, 3);
        assert!(!train);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&v(&["predict"])).is_err()); // missing kernel
        assert!(parse(&v(&["predict", "x", "--move", "novalue"])).is_err());
        assert!(parse(&v(&["predict", "x", "--move", "a=Q"])).is_err());
        assert!(parse(&v(&["frobnicate"])).is_err());
        assert!(parse(&v(&["simulate", "x", "--scale", "medium"])).is_err());
        assert!(parse(&v(&["simulate", "x", "--wat"])).is_err());
    }

    #[test]
    fn parses_search_flags() {
        let cmd = parse(&v(&[
            "search",
            "spmv",
            "--stats",
            "--prune",
            "--threads",
            "2",
            "--top",
            "7",
        ]))
        .unwrap();
        let Command::Search {
            kernel,
            top,
            stats,
            prune,
            threads,
            ..
        } = cmd
        else {
            panic!()
        };
        assert_eq!(kernel, "spmv");
        assert_eq!(top, 7);
        assert!(stats);
        assert!(prune);
        assert_eq!(threads, 2);
        assert!(parse(&v(&["search", "x", "--threads", "many"])).is_err());
        assert!(parse(&v(&["search"])).is_err());

        let Command::Search { deadline_ms, .. } = parse(&v(&["search", "x"])).unwrap() else {
            panic!()
        };
        assert_eq!(deadline_ms, None);
        let Command::Search { deadline_ms, .. } =
            parse(&v(&["search", "x", "--deadline-ms", "40"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(deadline_ms, Some(40));
    }

    #[test]
    fn parses_strategy_flags() {
        let cmd = parse(&v(&[
            "search",
            "wide8",
            "--strategy",
            "beam",
            "--beam",
            "16",
            "--scale",
            "test",
        ]))
        .unwrap();
        let Command::Search {
            strategy,
            beam,
            seed,
            ..
        } = cmd
        else {
            panic!()
        };
        assert_eq!(strategy.as_deref(), Some("beam"));
        assert_eq!(beam, Some(16));
        assert_eq!(seed, None);

        let Command::Search { strategy, seed, .. } = parse(&v(&[
            "search",
            "wide8",
            "--strategy",
            "local",
            "--seed",
            "7",
        ]))
        .unwrap() else {
            panic!()
        };
        assert_eq!(strategy.as_deref(), Some("local"));
        assert_eq!(seed, Some(7));

        // Absent flags stay absent (resolution happens in main, where a
        // conflict is a usage error).
        let Command::Search {
            strategy,
            seed,
            beam,
            ..
        } = parse(&v(&["search", "wide8"])).unwrap()
        else {
            panic!()
        };
        assert!(strategy.is_none() && seed.is_none() && beam.is_none());

        assert!(parse(&v(&["search", "wide8", "--strategy"])).is_err());
        assert!(parse(&v(&["search", "wide8", "--seed", "lots"])).is_err());
        assert!(parse(&v(&["search", "wide8", "--beam", "wide"])).is_err());
    }

    #[test]
    fn parses_serve_and_json() {
        let cmd = parse(&v(&[
            "serve",
            "--port",
            "0",
            "--threads",
            "3",
            "--cache-entries",
            "64",
            "--deadline-ms",
            "250",
            "--queue",
            "9",
        ]))
        .unwrap();
        let Command::Serve {
            addr,
            port,
            threads,
            shards,
            cache_entries,
            deadline_ms,
            queue,
            train,
            skel_cache,
            no_coalesce,
            tenants,
        } = cmd
        else {
            panic!()
        };
        assert_eq!(addr, "127.0.0.1");
        assert_eq!(port, 0);
        assert_eq!(threads, 3);
        assert_eq!(cache_entries, 64);
        assert_eq!(deadline_ms, 250);
        assert_eq!(queue, 9);
        assert!(!train);
        assert_eq!(skel_cache, None);
        assert_eq!(shards, 0);
        assert!(!no_coalesce);
        assert!(tenants.is_empty());
        assert!(parse(&v(&["serve", "--port", "high"])).is_err());

        let cmd = parse(&v(&["predict", "spmv", "--json", "--move", "d_vec=T"])).unwrap();
        let Command::Predict { json, .. } = cmd else {
            panic!()
        };
        assert!(json);
        let Command::Search { json, .. } = parse(&v(&["search", "spmv"])).unwrap() else {
            panic!()
        };
        assert!(!json);
    }

    #[test]
    fn parses_skel_cache() {
        let Command::Search { skel_cache, .. } =
            parse(&v(&["search", "spmv", "--skel-cache", "/tmp/hms-skel"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(skel_cache.as_deref(), Some("/tmp/hms-skel"));
        let Command::Serve { skel_cache, .. } =
            parse(&v(&["serve", "--skel-cache", "cachedir"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(skel_cache.as_deref(), Some("cachedir"));
        let Command::Search { skel_cache, .. } = parse(&v(&["search", "spmv"])).unwrap() else {
            panic!()
        };
        assert_eq!(skel_cache, None);
        assert!(parse(&v(&["search", "spmv", "--skel-cache"])).is_err());
    }

    #[test]
    fn parses_multi_tenant_serve_flags() {
        let cmd = parse(&v(&[
            "serve",
            "--workers",
            "4",
            "--shards",
            "2",
            "--no-coalesce",
            "--tenant",
            "legacy=c2050",
            "--tenant",
            "tiny=test-small",
        ]))
        .unwrap();
        let Command::Serve {
            threads,
            shards,
            no_coalesce,
            tenants,
            ..
        } = cmd
        else {
            panic!()
        };
        assert_eq!(threads, 4, "--workers must alias --threads");
        assert_eq!(shards, 2);
        assert!(no_coalesce);
        assert_eq!(
            tenants,
            vec![
                ("legacy".to_string(), "c2050".to_string()),
                ("tiny".to_string(), "test-small".to_string()),
            ]
        );
        assert!(parse(&v(&["serve", "--tenant", "nopreset"])).is_err());
        assert!(parse(&v(&["serve", "--tenant", "=c2050"])).is_err());

        let Command::Predict { config, .. } = parse(&v(&[
            "predict", "spmv", "--config", "c2050", "--move", "d_vec=T",
        ]))
        .unwrap() else {
            panic!()
        };
        assert_eq!(config.as_deref(), Some("c2050"));
    }

    #[test]
    fn two_t_notation() {
        let m = MoveSpec::parse("img=2T").unwrap();
        assert_eq!(m.space, MemorySpace::Texture2D);
    }

    #[test]
    fn dump_parses() {
        let cmd = parse(&v(&["dump", "vecadd", "--move", "a=T"])).unwrap();
        let Command::Dump { kernel, moves, .. } = cmd else {
            panic!()
        };
        assert_eq!(kernel, "vecadd");
        assert_eq!(moves.len(), 1);
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }
}
