//! `hms` — the data-placement advisor as a command-line tool.
//!
//! "Our models can work as a tool to help programmers for GPU
//! performance optimization and improve their productivity." This binary
//! wraps the workspace's predictor, simulator, and Algorithm-1 probe in
//! the workflow a performance engineer would actually run: inspect a
//! kernel, probe the machine, predict placement moves, get ranked
//! advice, or stand the whole thing up as an HTTP service (`hms serve`).
//! Run `hms help` for usage.
//!
//! Failure discipline: usage mistakes (unknown kernel, bad flag, illegal
//! placement) exit 2 with a one-line diagnostic; model failures on a
//! valid query (non-finite prediction, numerical trouble) exit 1. The
//! tool never panics on user input.

mod args;

use args::{parse, Command, MoveSpec, USAGE};
use hms_core::{ModelOptions, Predictor, SearchStrategy};
use hms_dram::{detect_mapping, AddressMapping, MemoryController};
use hms_kernels::{registry, Scale};
use hms_serve::api::{Advisor, ApiError, Effort, PredictQuery, RankQuery};
use hms_serve::{signal, ConfigRegistry, ServerConfig, PRESET_NAMES};
use hms_sim::simulate_default;
use hms_trace::materialize;
use hms_types::GpuConfig;
use std::time::{Duration, Instant};

/// A terminal failure: message for stderr plus the process exit code
/// (2 = the query was wrong, 1 = the model failed on a valid query).
struct CliError {
    code: i32,
    msg: String,
}

impl CliError {
    fn usage(msg: impl Into<String>) -> CliError {
        CliError {
            code: 2,
            msg: msg.into(),
        }
    }
}

impl From<ApiError> for CliError {
    fn from(e: ApiError) -> Self {
        let code = match e {
            ApiError::BadRequest(_) | ApiError::UnknownKernel(_) => 2,
            ApiError::Model(_) => 1,
        };
        CliError {
            code,
            msg: e.to_string(),
        }
    }
}

impl From<hms_types::HmsError> for CliError {
    fn from(e: hms_types::HmsError) -> Self {
        // Same classification the server uses: validation failures are
        // the caller's fault, the rest are the model's.
        CliError::from(ApiError::from(e))
    }
}

fn main() {
    // Die quietly on a closed pipe (`hms list | head`) like any unix
    // tool; the serve command re-ignores SIGPIPE before taking traffic.
    signal::sigpipe_default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse(&argv) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(cmd) {
        eprintln!("error: {}", e.msg);
        std::process::exit(e.code);
    }
}

fn predictor(cfg: &GpuConfig, train: bool) -> Predictor {
    if train {
        eprintln!("training T_overlap on the built-in training suite...");
        let (p, _) = hms_bench::trained_predictor(
            &hms_bench::Harness {
                cfg: cfg.clone(),
                scale: Scale::Full,
            },
            ModelOptions::full(),
        );
        p
    } else {
        Predictor::new(cfg.clone())
    }
}

fn advisor(cfg: &GpuConfig, train: bool) -> Advisor {
    Advisor::new(cfg.clone(), predictor(cfg, train))
}

/// Resolve `--config NAME` to a GPU preset (default: the paper's K80).
fn gpu_config(config: Option<&str>) -> Result<GpuConfig, CliError> {
    match config {
        None => Ok(GpuConfig::tesla_k80()),
        Some(name) => hms_serve::preset(name).ok_or_else(|| {
            CliError::usage(format!(
                "unknown config `{name}` (available: {})",
                PRESET_NAMES.join(", ")
            ))
        }),
    }
}

fn to_moves(moves: &[MoveSpec]) -> Vec<(String, hms_types::MemorySpace)> {
    moves.iter().map(|m| (m.array.clone(), m.space)).collect()
}

fn run(cmd: Command) -> Result<(), CliError> {
    let cfg = GpuConfig::tesla_k80();
    match cmd {
        Command::Help => println!("{USAGE}"),
        Command::List => {
            println!("{:<18} {:<10} arrays", "kernel", "warps");
            for spec in registry() {
                let kt = (spec.build)(Scale::Full);
                println!(
                    "{:<18} {:<10} {}",
                    spec.name,
                    kt.geometry.total_warps(),
                    kt.arrays
                        .iter()
                        .map(|a| {
                            format!(
                                "{}[{}{}]",
                                a.name,
                                a.dims.elements(),
                                if a.written { ", W" } else { "" }
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(" ")
                );
            }
        }
        Command::Probe => {
            let truth = AddressMapping::k80_like(cfg.dram.total_banks());
            let d = detect_mapping(
                || MemoryController::new(truth.clone(), cfg.dram, false),
                truth.addr_bits,
            );
            println!("column/byte bits: {:?}", d.column_bits());
            println!("row bits:         {:?}", d.row_bits());
            println!("bank bits:        {:?}", d.bank_bits());
            println!(
                "latencies: hit {:.0} ns, miss {:.0} ns, conflict {:.0} ns",
                cfg.cycles_to_ns(d.hit_latency as f64),
                cfg.cycles_to_ns(d.miss_latency as f64),
                cfg.cycles_to_ns(d.conflict_latency as f64),
            );
        }
        Command::Simulate {
            kernel,
            scale,
            moves,
        } => {
            let adv = advisor(&cfg, false);
            let kt = adv.kernel(&kernel, scale)?;
            let pm = adv.resolve_placement(&kt, &to_moves(&moves))?;
            let ct = materialize(&kt, &pm, &cfg)?;
            let r = simulate_default(&ct, &cfg)?;
            println!("placement: {}", pm.describe(&kt.arrays));
            println!("cycles: {}  ({:.1} us)", r.cycles, r.time_ns / 1000.0);
            println!();
            for (name, value) in r.events.named() {
                if value != 0.0 {
                    println!("  {name:<26} {value:>14.0}");
                }
            }
        }
        Command::Dump {
            kernel,
            scale,
            moves,
        } => {
            let adv = advisor(&cfg, false);
            let kt = adv.kernel(&kernel, scale)?;
            let pm = adv.resolve_placement(&kt, &to_moves(&moves))?;
            let ct = materialize(&kt, &pm, &cfg)?;
            print!("{}", hms_trace::dump(&ct));
        }
        Command::Predict {
            kernel,
            scale,
            moves,
            train,
            json,
            config,
        } => {
            if moves.is_empty() {
                return Err(CliError::usage("predict needs at least one --move"));
            }
            let cfg = gpu_config(config.as_deref())?;
            let adv = advisor(&cfg, train);
            let q = PredictQuery {
                kernel,
                scale,
                moves: to_moves(&moves),
                config,
            };
            let mut effort = Effort::default();
            let (body, pred) = adv.predict(&q, &mut effort)?;
            if json {
                // The exact bytes `POST /v1/predict` would return.
                print!("{}", body.encode_pretty());
                return Ok(());
            }
            let kt = adv.kernel(&q.kernel, q.scale)?;
            let sample = kt.default_placement();
            let target = adv.resolve_placement(&kt, &q.moves)?;
            let profile = adv.profile(&kt, q.scale, &mut effort)?;
            let measured = {
                let ct = materialize(&kt, &target, &cfg)?;
                simulate_default(&ct, &cfg)?.cycles
            };
            println!("sample placement:  {}", sample.describe(&kt.arrays));
            println!("target placement:  {}", target.describe(&kt.arrays));
            println!("sample measured:   {} cycles", profile.measured_cycles);
            println!(
                "target predicted:  {:.0} cycles  (T_comp {:.0} + T_mem {:.0} - T_overlap {:.0})",
                pred.cycles, pred.t_comp, pred.t_mem, pred.t_overlap
            );
            println!("target measured:   {measured} cycles (verification run)");
            println!(
                "prediction error:  {:.1}%",
                (pred.cycles / measured as f64 - 1.0).abs() * 100.0
            );
        }
        Command::Advise {
            kernel,
            scale,
            train,
            top,
            json,
            config,
        } => {
            let cfg = gpu_config(config.as_deref())?;
            let adv = advisor(&cfg, train);
            let q = RankQuery {
                kernel,
                scale,
                top,
                prune: false,
                threads: 1,
                config,
                strategy: None,
                seed: None,
                beam: None,
            };
            let mut effort = Effort::default();
            let (body, _outcome) = adv.rank(&q, false, None, &mut effort)?;
            if json {
                print!("{}", body.encode_pretty());
                return Ok(());
            }
            print_ranking(&body, top)?;
        }
        Command::Search {
            kernel,
            scale,
            train,
            top,
            stats,
            prune,
            strategy,
            seed,
            beam,
            threads,
            json,
            deadline_ms,
            skel_cache,
            config,
        } => {
            let cfg = gpu_config(config.as_deref())?;
            let mut adv = advisor(&cfg, train);
            if let Some(dir) = &skel_cache {
                adv = adv.with_skeleton_cache(dir.clone());
            }
            // The deadline clock starts now — profile simulation and
            // search both count against it, like a server request.
            let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
            let q = RankQuery {
                kernel,
                scale,
                top,
                prune,
                threads,
                config,
                strategy,
                seed,
                beam,
            };
            // Resolve before any model work so a contradictory flag set
            // (`--prune --strategy beam`, `--seed` without `--strategy
            // local`, ...) is a usage error — exit 2, same rule the
            // server enforces with a 400.
            let strategy: SearchStrategy = q.resolve_strategy()?;
            // The JSON body intentionally omits wall-clock timings; the
            // human `--stats` view wants them, so run the full outcome
            // path here and the body builder for `--json`.
            if json {
                let mut effort = Effort::default();
                let (body, _outcome) = adv.rank(&q, true, deadline, &mut effort)?;
                print!("{}", body.encode_pretty());
                return Ok(());
            }
            let kt = adv.kernel(&q.kernel, q.scale)?;
            let mut effort = Effort::default();
            let profile = adv.profile(&kt, q.scale, &mut effort)?;
            let sample = kt.default_placement();
            let mut req = hms_core::SearchRequest::new(&kt.arrays, &sample)
                .read_only_candidates()
                .strategy(strategy)
                .threads(q.threads)
                .deadline(deadline);
            if let Some(dir) = &skel_cache {
                req = req.skeleton_cache(dir.clone());
            }
            let outcome = req.run(&adv.predictor, &profile)?;
            if outcome.partial {
                println!(
                    "deadline hit after {}ms: best-so-far ranking (partial)",
                    deadline_ms.unwrap_or(0)
                );
            }
            println!("{} placements ranked; top {top}:", outcome.ranked.len());
            for r in outcome.ranked.iter().take(top) {
                println!(
                    "  {:<44} predicted {:>10.0} cycles",
                    r.placement.describe(&kt.arrays),
                    r.predicted_cycles
                );
            }
            if stats {
                println!();
                print!("{}", outcome.stats);
            }
        }
        Command::Serve {
            addr,
            port,
            threads,
            shards,
            cache_entries,
            deadline_ms,
            queue,
            train,
            skel_cache,
            no_coalesce,
            tenants,
        } => {
            // A client hanging up mid-response must be an io error on
            // that one connection, not process death.
            signal::sigpipe_ignore();
            let mut adv = advisor(&cfg, train);
            if let Some(dir) = &skel_cache {
                adv = adv.with_skeleton_cache(dir.clone());
            }
            // Tenant 0 is the default config (requests without a
            // `config` member); `--tenant NAME=PRESET` adds the rest.
            let mut registry = ConfigRegistry::new("default", adv);
            for (name, preset) in &tenants {
                let tcfg = gpu_config(Some(preset))
                    .map_err(|e| CliError::usage(format!("--tenant {name}: {}", e.msg)))?;
                registry = registry.with(name.clone(), advisor(&tcfg, false));
            }
            let handle = ServerConfig::new()
                .bind(format!("{addr}:{port}"))
                .workers(threads)
                .shards(shards)
                .cache_entries(cache_entries)
                .deadline(Duration::from_millis(deadline_ms))
                .queue_depth(queue)
                .coalescing(!no_coalesce)
                .spawn(registry)
                .map_err(|e| CliError {
                    code: 1,
                    msg: format!("cannot bind `{addr}:{port}`: {e}"),
                })?;
            // The smoke tests parse this line to find the ephemeral port.
            println!("listening on http://{}", handle.addr());
            signal::install();
            while !signal::shutdown_requested() {
                std::thread::sleep(Duration::from_millis(50));
            }
            eprintln!("shutting down (draining in-flight requests)...");
            handle.shutdown();
        }
    }
    Ok(())
}

/// Human-readable top-k from the advise response body (single source of
/// truth for the ranking — same body the server sends).
fn print_ranking(body: &hms_serve::Json, top: usize) -> Result<(), CliError> {
    use hms_serve::Json;
    let total = body
        .get("ranked_total")
        .and_then(Json::as_usize)
        .ok_or_else(|| CliError::usage("malformed ranking body"))?;
    let ranked = body
        .get("ranked")
        .and_then(Json::as_arr)
        .ok_or_else(|| CliError::usage("malformed ranking body"))?;
    println!("{total} placements ranked; top {top}:");
    for r in ranked.iter().take(top) {
        let cycles = r
            .get("predicted_cycles")
            .and_then(Json::as_f64)
            .unwrap_or(f64::NAN);
        let placement = r
            .get("placement")
            .and_then(Json::as_obj)
            .map(|members| {
                members
                    .iter()
                    .map(|(name, space)| format!("{name}={}", space.as_str().unwrap_or("?")))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .unwrap_or_default();
        println!("  {placement:<44} predicted {cycles:>10.0} cycles");
    }
    Ok(())
}
