//! `hms` — the data-placement advisor as a command-line tool.
//!
//! "Our models can work as a tool to help programmers for GPU
//! performance optimization and improve their productivity." This binary
//! wraps the workspace's predictor, simulator, and Algorithm-1 probe in
//! the workflow a performance engineer would actually run: inspect a
//! kernel, probe the machine, predict placement moves, and get ranked
//! advice. Run `hms help` for usage.

mod args;

use args::{parse, Command, MoveSpec, USAGE};
use hms_core::{profile_sample, ModelOptions, Predictor, SearchRequest, SearchStrategy};
use hms_dram::{detect_mapping, AddressMapping, MemoryController};
use hms_kernels::{by_name, registry, Scale};
use hms_sim::simulate_default;
use hms_trace::{materialize, KernelTrace};
use hms_types::{ArrayId, GpuConfig, PlacementMap};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse(&argv) {
        Ok(cmd) => run(cmd),
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}

fn load_kernel(name: &str, scale: Scale) -> KernelTrace {
    by_name(name, scale).unwrap_or_else(|| {
        eprintln!("unknown kernel `{name}`; run `hms list`");
        std::process::exit(2);
    })
}

fn apply_moves(kt: &KernelTrace, base: PlacementMap, moves: &[MoveSpec]) -> PlacementMap {
    let mut pm = base;
    for m in moves {
        let Some(idx) = kt.arrays.iter().position(|a| a.name == m.array) else {
            eprintln!(
                "kernel `{}` has no array `{}`; arrays: {}",
                kt.name,
                m.array,
                kt.arrays
                    .iter()
                    .map(|a| a.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            std::process::exit(2);
        };
        pm = pm.with(ArrayId(idx as u32), m.space);
    }
    pm
}

fn predictor(cfg: &GpuConfig, train: bool) -> Predictor {
    if train {
        eprintln!("training T_overlap on the built-in training suite...");
        let (p, _) = hms_bench::trained_predictor(
            &hms_bench::Harness {
                cfg: cfg.clone(),
                scale: Scale::Full,
            },
            ModelOptions::full(),
        );
        p
    } else {
        Predictor::new(cfg.clone())
    }
}

fn run(cmd: Command) {
    let cfg = GpuConfig::tesla_k80();
    match cmd {
        Command::Help => println!("{USAGE}"),
        Command::List => {
            println!("{:<18} {:<10} arrays", "kernel", "warps");
            for spec in registry() {
                let kt = (spec.build)(Scale::Full);
                println!(
                    "{:<18} {:<10} {}",
                    spec.name,
                    kt.geometry.total_warps(),
                    kt.arrays
                        .iter()
                        .map(|a| {
                            format!(
                                "{}[{}{}]",
                                a.name,
                                a.dims.elements(),
                                if a.written { ", W" } else { "" }
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(" ")
                );
            }
        }
        Command::Probe => {
            let truth = AddressMapping::k80_like(cfg.dram.total_banks());
            let d = detect_mapping(
                || MemoryController::new(truth.clone(), cfg.dram, false),
                truth.addr_bits,
            );
            println!("column/byte bits: {:?}", d.column_bits());
            println!("row bits:         {:?}", d.row_bits());
            println!("bank bits:        {:?}", d.bank_bits());
            println!(
                "latencies: hit {:.0} ns, miss {:.0} ns, conflict {:.0} ns",
                cfg.cycles_to_ns(d.hit_latency as f64),
                cfg.cycles_to_ns(d.miss_latency as f64),
                cfg.cycles_to_ns(d.conflict_latency as f64),
            );
        }
        Command::Simulate {
            kernel,
            scale,
            moves,
        } => {
            let kt = load_kernel(&kernel, scale);
            let pm = apply_moves(&kt, kt.default_placement(), &moves);
            let ct = materialize(&kt, &pm, &cfg).unwrap_or_else(|e| {
                eprintln!("invalid placement: {e}");
                std::process::exit(2);
            });
            let r = simulate_default(&ct, &cfg).expect("simulation completes");
            println!("placement: {}", pm.describe(&kt.arrays));
            println!("cycles: {}  ({:.1} us)", r.cycles, r.time_ns / 1000.0);
            println!();
            for (name, value) in r.events.named() {
                if value != 0.0 {
                    println!("  {name:<26} {value:>14.0}");
                }
            }
        }
        Command::Dump {
            kernel,
            scale,
            moves,
        } => {
            let kt = load_kernel(&kernel, scale);
            let pm = apply_moves(&kt, kt.default_placement(), &moves);
            let ct = materialize(&kt, &pm, &cfg).unwrap_or_else(|e| {
                eprintln!("invalid placement: {e}");
                std::process::exit(2);
            });
            print!("{}", hms_trace::dump(&ct));
        }
        Command::Predict {
            kernel,
            scale,
            moves,
            train,
        } => {
            if moves.is_empty() {
                eprintln!("predict needs at least one --move");
                std::process::exit(2);
            }
            let kt = load_kernel(&kernel, scale);
            let sample = kt.default_placement();
            let target = apply_moves(&kt, sample.clone(), &moves);
            let p = predictor(&cfg, train);
            let profile = profile_sample(&kt, &sample, &cfg).expect("profiles");
            let pred = p.predict(&profile, &target).unwrap_or_else(|e| {
                eprintln!("invalid placement: {e}");
                std::process::exit(2);
            });
            let measured = {
                let ct = materialize(&kt, &target, &cfg).expect("valid");
                simulate_default(&ct, &cfg).expect("simulates").cycles
            };
            println!("sample placement:  {}", sample.describe(&kt.arrays));
            println!("target placement:  {}", target.describe(&kt.arrays));
            println!("sample measured:   {} cycles", profile.measured_cycles);
            println!(
                "target predicted:  {:.0} cycles  (T_comp {:.0} + T_mem {:.0} - T_overlap {:.0})",
                pred.cycles, pred.t_comp, pred.t_mem, pred.t_overlap
            );
            println!("target measured:   {measured} cycles (verification run)");
            println!(
                "prediction error:  {:.1}%",
                (pred.cycles / measured as f64 - 1.0).abs() * 100.0
            );
        }
        Command::Advise {
            kernel,
            scale,
            train,
            top,
        } => {
            let kt = load_kernel(&kernel, scale);
            let sample = kt.default_placement();
            let p = predictor(&cfg, train);
            let profile = profile_sample(&kt, &sample, &cfg).expect("profiles");
            let outcome = SearchRequest::new(&kt.arrays, &sample)
                .read_only_candidates()
                .run(&p, &profile)
                .expect("predicts");
            print_ranking(&kt, &outcome, top);
        }
        Command::Search {
            kernel,
            scale,
            train,
            top,
            stats,
            prune,
            threads,
        } => {
            let kt = load_kernel(&kernel, scale);
            let sample = kt.default_placement();
            let p = predictor(&cfg, train);
            let profile = profile_sample(&kt, &sample, &cfg).expect("profiles");
            let strategy = if prune {
                SearchStrategy::BranchAndBound
            } else {
                SearchStrategy::Exhaustive
            };
            let outcome = SearchRequest::new(&kt.arrays, &sample)
                .read_only_candidates()
                .strategy(strategy)
                .threads(threads)
                .run(&p, &profile)
                .expect("predicts");
            print_ranking(&kt, &outcome, top);
            if stats {
                println!();
                print!("{}", outcome.stats);
            }
        }
    }
}

fn print_ranking(kt: &KernelTrace, outcome: &hms_core::SearchOutcome, top: usize) {
    println!("{} placements ranked; top {top}:", outcome.ranked.len());
    for r in outcome.ranked.iter().take(top) {
        println!(
            "  {:<44} predicted {:>10.0} cycles",
            r.placement.describe(&kt.arrays),
            r.predicted_cycles
        );
    }
}
