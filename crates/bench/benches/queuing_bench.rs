//! Criterion microbenchmarks of the analytic side: Kingman evaluation,
//! the per-bank queuing walk (`dram_estimate`), and the full trace
//! analysis, across the DRAM-estimation modes of Figures 8–9.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hms_core::analysis::analyze;
use hms_core::profile_sample;
use hms_core::tmem::{dram_estimate, QueuingMode};
use hms_kernels::Scale;
use hms_stats::{kingman_waiting_time, GG1Inputs};
use hms_types::GpuConfig;

fn bench_kingman(c: &mut Criterion) {
    let q = GG1Inputs {
        mean_interarrival: 100.0,
        cv_interarrival: 2.2,
        mean_service: 60.0,
        cv_service: 0.5,
    };
    c.bench_function("kingman_waiting_time", |b| {
        b.iter(|| black_box(kingman_waiting_time(black_box(&q))))
    });
}

fn bench_dram_estimate(c: &mut Criterion) {
    let cfg = GpuConfig::tesla_k80();
    let kt = hms_kernels::by_name("md", Scale::Full).expect("md exists");
    let profile = profile_sample(&kt, &kt.default_placement(), &cfg).expect("profiles");
    let analysis = analyze(&profile.trace, &cfg);
    for mode in [
        QueuingMode::ConstantLatency,
        QueuingMode::EvenDistribution,
        QueuingMode::Mapped,
    ] {
        c.bench_with_input(
            BenchmarkId::new("dram_estimate", format!("{mode:?}")),
            &mode,
            |b, &mode| b.iter(|| black_box(dram_estimate(&profile, &analysis, &cfg, mode))),
        );
    }
}

fn bench_trace_analysis(c: &mut Criterion) {
    let cfg = GpuConfig::tesla_k80();
    for name in ["spmv", "matrixMul", "stencil2d"] {
        let kt = hms_kernels::by_name(name, Scale::Full).expect("known kernel");
        let ct = hms_trace::materialize(&kt, &kt.default_placement(), &cfg).expect("valid");
        c.bench_with_input(BenchmarkId::new("analyze", name), &ct, |b, ct| {
            b.iter(|| black_box(analyze(ct, &cfg)))
        });
    }
}

criterion_group!(
    benches,
    bench_kingman,
    bench_dram_estimate,
    bench_trace_analysis
);
criterion_main!(benches);
