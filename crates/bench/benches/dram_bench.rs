//! Criterion microbenchmarks of the GDDR5 controller: request throughput
//! under streaming, scattered, and conflict-heavy address patterns, and
//! the cost of the Algorithm-1 mapping probe.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hms_dram::{detect_mapping, AddressMapping, MemoryController};
use hms_types::GpuConfig;

fn controller() -> MemoryController {
    let t = GpuConfig::tesla_k80().dram;
    MemoryController::new(AddressMapping::k80_like(t.total_banks()), t, false)
}

fn bench_access_patterns(c: &mut Criterion) {
    let n: u64 = 4096;
    let mut g = c.benchmark_group("dram_controller");
    g.throughput(Throughput::Elements(n));

    g.bench_function("streaming_rows", |b| {
        b.iter(|| {
            let mut ctl = controller();
            for i in 0..n {
                black_box(ctl.access(i, i * 32));
            }
        })
    });

    g.bench_function("scattered_banks", |b| {
        b.iter(|| {
            let mut ctl = controller();
            for i in 0..n {
                // Large stride hops banks and rows.
                black_box(ctl.access(i, (i * 7919) % (1 << 30)));
            }
        })
    });

    g.bench_function("row_conflict_pingpong", |b| {
        b.iter(|| {
            let mut ctl = controller();
            for i in 0..n {
                black_box(ctl.access(i, (i & 1) << 20));
            }
        })
    });
    g.finish();
}

fn bench_mapping_detection(c: &mut Criterion) {
    for bits in [24u32, 32] {
        c.bench_with_input(
            BenchmarkId::new("algorithm1_detect", bits),
            &bits,
            |b, &bits| {
                b.iter(|| {
                    black_box(detect_mapping(controller, bits));
                })
            },
        );
    }
}

criterion_group!(benches, bench_access_patterns, bench_mapping_detection);
criterion_main!(benches);
