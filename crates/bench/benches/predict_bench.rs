//! Criterion benchmark of the headline productivity claim: predicting a
//! target placement analytically versus actually building and running it
//! (here: simulating it). The paper's tool exists because prediction is
//! much cheaper than implementing every placement.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hms_core::{profile_sample, Predictor};
use hms_kernels::Scale;
use hms_sim::simulate_default;
use hms_trace::materialize;
use hms_types::{ArrayId, GpuConfig, MemorySpace};

fn bench_predict_vs_simulate(c: &mut Criterion) {
    let cfg = GpuConfig::tesla_k80();
    for name in ["vecadd", "spmv", "stencil2d"] {
        let kt = hms_kernels::by_name(name, Scale::Full).expect("known kernel");
        let sample = kt.default_placement();
        let profile = profile_sample(&kt, &sample, &cfg).expect("profiles");
        let target = sample.with(ArrayId(0), MemorySpace::Texture1D);
        let predictor = Predictor::new(cfg.clone());

        c.bench_with_input(BenchmarkId::new("predict", name), &(), |b, _| {
            b.iter(|| black_box(predictor.predict(&profile, &target).expect("predicts")))
        });
        c.bench_with_input(BenchmarkId::new("simulate", name), &(), |b, _| {
            b.iter(|| {
                let ct = materialize(&kt, &target, &cfg).expect("valid");
                black_box(simulate_default(&ct, &cfg).expect("simulates"))
            })
        });
    }
}

fn bench_profile(c: &mut Criterion) {
    let cfg = GpuConfig::tesla_k80();
    let kt = hms_kernels::by_name("vecadd", Scale::Full).expect("vecadd");
    let pm = kt.default_placement();
    c.bench_function("profile_sample_vecadd", |b| {
        b.iter(|| black_box(profile_sample(&kt, &pm, &cfg).expect("profiles")))
    });
}

criterion_group!(benches, bench_predict_vs_simulate, bench_profile);
criterion_main!(benches);
