//! Criterion microbenchmarks of the cache models: set-associative L2
//! throughput under hit- and miss-dominated streams, warp-level constant
//! broadcast, texture fetch, and shared bank-conflict counting.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use hms_cache::{shared_conflict_passes, ConstantCache, L2Cache, L2Source, TextureCache};
use hms_types::GpuConfig;

fn bench_l2(c: &mut Criterion) {
    let cfg = GpuConfig::tesla_k80();
    let n: u64 = 8192;
    let mut g = c.benchmark_group("l2_cache");
    g.throughput(Throughput::Elements(n));
    g.bench_function("hit_stream", |b| {
        b.iter(|| {
            let mut l2 = L2Cache::new(cfg.l2_cache);
            for i in 0..n {
                black_box(l2.access((i % 64) * 128, L2Source::Global));
            }
        })
    });
    g.bench_function("miss_stream", |b| {
        b.iter(|| {
            let mut l2 = L2Cache::new(cfg.l2_cache);
            for i in 0..n {
                black_box(l2.access(i * 4096, L2Source::Global));
            }
        })
    });
    g.finish();
}

fn bench_warp_caches(c: &mut Criterion) {
    let cfg = GpuConfig::tesla_k80();
    let uniform: Vec<u64> = vec![256; 32];
    let divergent: Vec<u64> = (0..32u64).map(|i| i * 64).collect();
    let mut g = c.benchmark_group("warp_level");
    g.throughput(Throughput::Elements(256));

    g.bench_function("constant_broadcast", |b| {
        b.iter(|| {
            let mut cc = ConstantCache::new(cfg.const_cache);
            for _ in 0..256 {
                black_box(cc.access_warp(&uniform));
            }
        })
    });
    g.bench_function("constant_divergent", |b| {
        b.iter(|| {
            let mut cc = ConstantCache::new(cfg.const_cache);
            for _ in 0..256 {
                black_box(cc.access_warp(&divergent));
            }
        })
    });
    g.bench_function("texture_fetch", |b| {
        b.iter(|| {
            let mut tc = TextureCache::new(cfg.tex_cache);
            for i in 0..256u64 {
                let addrs: Vec<u64> = (0..32).map(|l| i * 128 + l * 4).collect();
                black_box(tc.access_warp(&addrs));
            }
        })
    });
    g.bench_function("shared_conflict_count", |b| {
        b.iter(|| {
            for _ in 0..256 {
                black_box(shared_conflict_passes(&divergent, 32));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_l2, bench_warp_caches);
criterion_main!(benches);
