//! Criterion benchmark of the placement-space exploration: enumeration
//! and model-driven ranking as the number of candidate arrays grows —
//! the `m^n` search the paper motivates in its introduction.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hms_core::{enumerate_placements, profile_sample, Engine, Predictor, SearchRequest};
use hms_kernels::Scale;
use hms_types::{ArrayId, GpuConfig};

fn bench_search(c: &mut Criterion) {
    let cfg = GpuConfig::tesla_k80();
    let kt = hms_kernels::by_name("spmv", Scale::Full).expect("spmv");
    let sample = kt.default_placement();
    let profile = profile_sample(&kt, &sample, &cfg).expect("profiles");
    let predictor = Predictor::new(cfg.clone());

    for n_arrays in 1..=3usize {
        let candidates: Vec<ArrayId> = (0..n_arrays as u32).map(ArrayId).collect();
        let placements = enumerate_placements(&kt.arrays, &sample, &candidates, &cfg, 4096);
        c.bench_with_input(
            BenchmarkId::new("enumerate", n_arrays),
            &candidates,
            |b, cand| {
                b.iter(|| black_box(enumerate_placements(&kt.arrays, &sample, cand, &cfg, 4096)))
            },
        );
        // Cold engine per iteration: skeleton + memo build included.
        c.bench_with_input(
            BenchmarkId::new(format!("search_{}_placements", placements.len()), n_arrays),
            &candidates,
            |b, cand| {
                b.iter(|| {
                    black_box(
                        SearchRequest::new(&kt.arrays, &sample)
                            .candidates(cand)
                            .run(&predictor, &profile)
                            .unwrap(),
                    )
                })
            },
        );
        // Warm engine: pure delta-composed ranking.
        let engine = Engine::new(&predictor, &profile);
        engine.rank(&placements, 0).unwrap();
        c.bench_with_input(
            BenchmarkId::new(
                format!("rank_warm_{}_placements", placements.len()),
                n_arrays,
            ),
            &placements,
            |b, pl| b.iter(|| black_box(engine.rank(pl, 0).unwrap())),
        );
    }
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
