//! # hms-bench
//!
//! The experiment harness: everything needed to regenerate every table
//! and figure of the paper's evaluation (see DESIGN.md's experiment
//! index), plus Criterion microbenchmarks of the substrates.
//!
//! * [`suite`] — the benchmark/placement suites of Table IV: each
//!   kernel's *sample* placement and its placement tests, split into the
//!   evaluation set and the `T_overlap` training set;
//! * [`runner`] — profile / measure / predict plumbing with
//!   `hms_stats::par` parallelism across placements;
//! * [`table`] — plain-text table rendering for the experiment binaries.
//!
//! Binaries (all under `--release`):
//!
//! | binary          | artifact                                     |
//! |-----------------|----------------------------------------------|
//! | `table1`        | Table I (cosine similarity of events)        |
//! | `alg1`          | Algorithm 1 (mapping detection + latencies)  |
//! | `fig4`          | Figure 4 (inter-arrival distributions, c_a)  |
//! | `fig5`          | Figure 5 (ours vs [7] prediction accuracy)   |
//! | `fig6`          | Figure 6 (ranking vs PORPLE)                 |
//! | `fig7`          | Figure 7 (instruction-counting ablation)     |
//! | `fig8`          | Figure 8 (queuing + address-mapping ablation)|
//! | `fig9`          | Figure 9 (queuing-alone ablation)            |
//! | `train_overlap` | Section V training setup diagnostics         |

pub mod hist;
pub mod mining;
pub mod runner;
pub mod suite;
pub mod table;

pub use hist::Histogram;
pub use mining::{mine_events, mine_events_paper, MinedEvent, PlacementStudy};
pub use runner::{measure, run_suite, trained_predictor, ExperimentResult, Harness};
pub use suite::{evaluation_suite, training_suite, PlacementTest};
pub use table::Table;
