//! Plain-text table rendering for the experiment binaries.

use std::fmt::Write as _;

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; panics when the column count mismatches.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render with column widths fitted to content.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}", c, w = widths[i] + 2);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total.max(cols)));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Format a float with 3 significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "2.345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains("short"));
        // Values line up in the same column.
        let c1 = lines[2].find('1').unwrap();
        let c2 = lines[3].find("2.345").unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.0991), "9.9%");
    }
}
