//! Event mining (paper Section II-B): selecting the performance events
//! whose variation across data placements tracks the execution-time
//! variation.
//!
//! The paper starts from 265 `nvprof` events, keeps those whose cosine
//! similarity with the time vector exceeds 0.94, aggregates events with
//! the same modeling indication (e.g. `L2_L1_read_transactions` +
//! `L2_L1_write_transactions` -> `L2_L1_transactions`), and drops events
//! that qualify for too few kernels to generalize. This module
//! implements that pipeline over the simulator's event set.

use hms_sim::EventSet;
use hms_stats::cosine::{cosine_similarity, PAPER_THRESHOLD};

/// One kernel's placement study: execution times and event sets, one
/// entry per placement.
#[derive(Debug, Clone)]
pub struct PlacementStudy {
    pub kernel: String,
    pub times: Vec<f64>,
    pub events: Vec<EventSet>,
}

impl PlacementStudy {
    /// Build from simulation results.
    pub fn from_runs(kernel: &str, runs: &[(u64, EventSet)]) -> Self {
        PlacementStudy {
            kernel: kernel.to_owned(),
            times: runs.iter().map(|(c, _)| *c as f64).collect(),
            events: runs.iter().map(|(_, e)| e.clone()).collect(),
        }
    }

    /// Cosine similarity of each named event against the time vector;
    /// `None` where undefined (constant-zero event).
    pub fn similarities(&self) -> Vec<(&'static str, Option<f64>)> {
        if self.events.is_empty() {
            return Vec::new();
        }
        let names: Vec<&'static str> = self.events[0].named().iter().map(|(n, _)| *n).collect();
        names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let series: Vec<f64> = self.events.iter().map(|e| e.named()[i].1).collect();
                (*name, cosine_similarity(&self.times, &series))
            })
            .collect()
    }
}

/// An event that survived mining, with per-kernel support.
#[derive(Debug, Clone, PartialEq)]
pub struct MinedEvent {
    pub name: &'static str,
    /// Kernels (by index into the input studies) where it qualified.
    pub qualified_in: Vec<usize>,
    /// Mean similarity over qualifying kernels.
    pub mean_similarity: f64,
}

/// Run the Section II-B selection: keep events clearing `threshold` in at
/// least `min_kernels` of the studies, ranked by mean similarity.
pub fn mine_events(
    studies: &[PlacementStudy],
    threshold: f64,
    min_kernels: usize,
) -> Vec<MinedEvent> {
    let mut out: Vec<MinedEvent> = Vec::new();
    if studies.is_empty() {
        return out;
    }
    let per_study: Vec<Vec<(&'static str, Option<f64>)>> =
        studies.iter().map(|s| s.similarities()).collect();
    let names: Vec<&'static str> = per_study[0].iter().map(|(n, _)| *n).collect();
    for (ei, name) in names.iter().enumerate() {
        let mut qualified_in = Vec::new();
        let mut acc = 0.0;
        for (si, sims) in per_study.iter().enumerate() {
            if let (_, Some(s)) = sims[ei] {
                if s >= threshold {
                    qualified_in.push(si);
                    acc += s;
                }
            }
        }
        if qualified_in.len() >= min_kernels {
            let mean_similarity = acc / qualified_in.len() as f64;
            out.push(MinedEvent {
                name,
                qualified_in,
                mean_similarity,
            });
        }
    }
    out.sort_by(|a, b| {
        b.qualified_in.len().cmp(&a.qualified_in.len()).then(
            b.mean_similarity
                .partial_cmp(&a.mean_similarity)
                .expect("finite"),
        )
    });
    out
}

/// The paper's default mining parameters: 0.94 threshold, and an event
/// must qualify in at least 3 kernels ("remove those events that only
/// appear in two kernels").
pub fn mine_events_paper(studies: &[PlacementStudy]) -> Vec<MinedEvent> {
    mine_events(studies, PAPER_THRESHOLD, 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study(kernel: &str, times: &[f64], l2: &[f64], noise: &[f64]) -> PlacementStudy {
        let events = l2
            .iter()
            .zip(noise)
            .map(|(&l, &n)| EventSet {
                l2_transactions: l as u64,
                stall_cycles: n as u64,
                ..Default::default()
            })
            .collect();
        PlacementStudy {
            kernel: kernel.into(),
            times: times.to_vec(),
            events,
        }
    }

    #[test]
    fn mining_selects_time_tracking_events() {
        // Three kernels where L2 transactions track time and stall_cycles
        // vary independently.
        let studies = vec![
            study(
                "a",
                &[10.0, 20.0, 40.0],
                &[11.0, 19.0, 41.0],
                &[5.0, 100.0, 2.0],
            ),
            study(
                "b",
                &[5.0, 8.0, 6.0],
                &[10.0, 16.0, 12.0],
                &[90.0, 1.0, 50.0],
            ),
            study(
                "c",
                &[100.0, 50.0, 75.0],
                &[99.0, 52.0, 73.0],
                &[3.0, 80.0, 7.0],
            ),
        ];
        let mined = mine_events_paper(&studies);
        let names: Vec<&str> = mined.iter().map(|m| m.name).collect();
        assert!(names.contains(&"L2_transactions"));
        assert!(!names.contains(&"stall_cycles"));
        let l2 = mined.iter().find(|m| m.name == "L2_transactions").unwrap();
        assert_eq!(l2.qualified_in, vec![0, 1, 2]);
        assert!(l2.mean_similarity > PAPER_THRESHOLD);
    }

    #[test]
    fn min_kernels_filters_narrow_events() {
        // Event tracks time in only one kernel.
        let studies = vec![
            study("a", &[10.0, 20.0], &[10.0, 20.0], &[0.0, 0.0]),
            study("b", &[10.0, 20.0], &[0.0, 0.0], &[0.0, 0.0]),
            study("c", &[10.0, 20.0], &[0.0, 0.0], &[0.0, 0.0]),
        ];
        assert!(mine_events(&studies, 0.94, 2).is_empty());
        assert_eq!(mine_events(&studies, 0.94, 1).len(), 1);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(mine_events_paper(&[]).is_empty());
    }

    #[test]
    fn similarities_align_with_named_order() {
        let s = study("x", &[1.0, 2.0], &[1.0, 2.0], &[2.0, 1.0]);
        let sims = s.similarities();
        let names: Vec<&str> = EventSet::default()
            .named()
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(sims.len(), names.len());
        for (i, (n, _)) in sims.iter().enumerate() {
            assert_eq!(*n, names[i]);
        }
    }
}
