//! Scale-sensitivity study: how prediction accuracy behaves as the
//! workload grows — an extension beyond the paper's single-size
//! evaluation.
//!
//! Sweeps vecadd, spmv and matrixMul over problem sizes, predicting a
//! fixed placement move at each size from a sample profile of the same
//! size.
//!
//! ```text
//! cargo run -p hms-bench --release --bin sweep_scale
//! ```

use hms_bench::{Harness, Table};
use hms_core::{profile_sample, Predictor};
use hms_kernels::params::{MatmulParams, SpmvParams, VecAddParams};
use hms_trace::{materialize, KernelTrace};
use hms_types::{ArrayId, MemorySpace};

fn run_point(h: &Harness, kt: &KernelTrace, move_array: &str, to: MemorySpace) -> (u64, f64, u64) {
    let sample = kt.default_placement();
    let id = ArrayId(
        kt.arrays
            .iter()
            .position(|a| a.name == move_array)
            .expect("array") as u32,
    );
    let target = sample.with(id, to);
    let profile = profile_sample(kt, &sample, &h.cfg).expect("profiles");
    let pred = Predictor::new(h.cfg.clone())
        .predict(&profile, &target)
        .expect("predicts");
    let measured = {
        let ct = materialize(kt, &target, &h.cfg).expect("valid");
        hms_sim::simulate_default(&ct, &h.cfg)
            .expect("simulates")
            .cycles
    };
    (kt.geometry.total_warps(), pred.cycles, measured)
}

fn main() {
    let h = Harness::paper();
    println!("Prediction accuracy vs problem scale (untrained overlap model)\n");
    let mut table = Table::new(&["kernel", "size", "warps", "predicted", "measured", "error"]);

    for blocks in [8u32, 32, 128, 512] {
        let kt = VecAddParams {
            blocks,
            threads_per_block: 128,
        }
        .build()
        .expect("valid");
        let (w, p, m) = run_point(&h, &kt, "a", MemorySpace::Texture1D);
        table.row(vec![
            "vecadd a->T".into(),
            format!("{} blocks", blocks),
            w.to_string(),
            format!("{p:.0}"),
            m.to_string(),
            format!("{:.1}%", (p / m as f64 - 1.0).abs() * 100.0),
        ]);
    }
    for rows in [64u64, 256, 1024] {
        let kt = SpmvParams {
            rows,
            max_nnz_per_row: 96,
            warps_per_block: 4,
            seed: 0x535D,
        }
        .build()
        .expect("valid");
        let (w, p, m) = run_point(&h, &kt, "d_vec", MemorySpace::Texture1D);
        table.row(vec![
            "spmv vec->T".into(),
            format!("{rows} rows"),
            w.to_string(),
            format!("{p:.0}"),
            m.to_string(),
            format!("{:.1}%", (p / m as f64 - 1.0).abs() * 100.0),
        ]);
    }
    for n in [64u64, 128, 256] {
        let kt = MatmulParams { n }.build().expect("valid");
        let (w, p, m) = run_point(&h, &kt, "B", MemorySpace::Texture2D);
        table.row(vec![
            "matrixMul B->2T".into(),
            format!("{n}x{n}"),
            w.to_string(),
            format!("{p:.0}"),
            m.to_string(),
            format!("{:.1}%", (p / m as f64 - 1.0).abs() * 100.0),
        ]);
    }
    println!("{}", table.render());
}
