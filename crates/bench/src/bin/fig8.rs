//! **Figure 8**: the impact of the queuing model (with the detailed
//! instruction counting already in place), then of the address-mapping-
//! aware request distribution.
//!
//! "With the employment of the queuing model (assuming even distribution
//! of memory requests), we improve modeling accuracy by 31%, comparing
//! with the baseline. With the consideration of address mapping, we
//! further improve the modeling accuracy of the queuing model by 8.1%."
//!
//! ```text
//! cargo run -p hms-bench --release --bin fig8
//! ```

use hms_bench::runner::{ablation_predictors, mean_error, run_suite, training_profiles};
use hms_bench::{evaluation_suite, Harness, Table};
use hms_core::ModelOptions;

fn main() {
    let h = Harness::paper();
    let suite = evaluation_suite();
    eprintln!("training T_overlap variants...");
    let profiles = training_profiles(&h);
    let variants = [
        ("baseline", ModelOptions::baseline()),
        ("+instr", ModelOptions::baseline_plus_instr()),
        (
            "+instr+queuing(even)",
            ModelOptions::instr_plus_queuing_even(),
        ),
        ("our model (mapped)", ModelOptions::full()),
    ];
    let predictors = ablation_predictors(&h, &variants, &profiles);
    let results: Vec<_> = predictors
        .iter()
        .map(|(name, p)| (*name, run_suite(&h, p, &suite)))
        .collect();

    println!("Figure 8: queuing model + address mapping ablation (predicted / measured)\n");
    let mut header = vec!["benchmark"];
    header.extend(results.iter().map(|(n, _)| *n));
    let mut table = Table::new(&header);
    for i in 0..suite.len() {
        let mut row = vec![results[0].1[i].label.to_string()];
        for (_, rs) in &results {
            row.push(format!("{:.3}", rs[i].normalized()));
        }
        table.row(row);
    }
    println!("{}", table.render());

    println!("average prediction error:");
    for (name, rs) in &results {
        println!("  {:<22} {:.1}%", name, mean_error(rs) * 100.0);
    }
    let base = mean_error(&results[0].1);
    let even = mean_error(&results[2].1);
    let full = mean_error(&results[3].1);
    println!();
    println!(
        "queuing(even) vs baseline: {:+.1}pp (paper: ~31% improvement)",
        (base - even) * 100.0
    );
    println!(
        "address mapping on top of even: {:+.1}pp (paper: ~8.1% further improvement)",
        (even - full) * 100.0
    );
}
