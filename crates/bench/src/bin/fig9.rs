//! **Figure 9**: the queuing model applied *alone* (without the detailed
//! instruction counting), separating its effect; and the
//! super-additivity of combining both techniques.
//!
//! "The queuing model alone improves modeling accuracy by 13.8% on
//! average. With the queuing model in place, applying other modeling
//! techniques improves modeling accuracy by 25.3% ... when employing
//! both of them, we improve the baseline by 39.1%, larger than the
//! combination of the improvements of using the two techniques alone."
//!
//! ```text
//! cargo run -p hms-bench --release --bin fig9
//! ```

use hms_bench::runner::{ablation_predictors, mean_error, run_suite, training_profiles};
use hms_bench::{evaluation_suite, Harness, Table};
use hms_core::ModelOptions;

fn main() {
    let h = Harness::paper();
    let suite = evaluation_suite();
    eprintln!("training T_overlap variants...");
    let profiles = training_profiles(&h);
    let variants = [
        ("baseline", ModelOptions::baseline()),
        ("queuing only", ModelOptions::queuing_only()),
        ("instr only", ModelOptions::baseline_plus_instr()),
        ("our model (both)", ModelOptions::full()),
    ];
    let predictors = ablation_predictors(&h, &variants, &profiles);
    let results: Vec<_> = predictors
        .iter()
        .map(|(name, p)| (*name, run_suite(&h, p, &suite)))
        .collect();

    println!("Figure 9: queuing model alone vs combined techniques (predicted / measured)\n");
    let mut header = vec!["benchmark"];
    header.extend(results.iter().map(|(n, _)| *n));
    let mut table = Table::new(&header);
    for i in 0..suite.len() {
        let mut row = vec![results[0].1[i].label.to_string()];
        for (_, rs) in &results {
            row.push(format!("{:.3}", rs[i].normalized()));
        }
        table.row(row);
    }
    println!("{}", table.render());

    let errs: Vec<(&str, f64)> = results.iter().map(|(n, rs)| (*n, mean_error(rs))).collect();
    println!("average prediction error:");
    for (name, e) in &errs {
        println!("  {:<18} {:.1}%", name, e * 100.0);
    }
    let base = errs[0].1;
    println!();
    println!("improvement over baseline:");
    println!(
        "  queuing alone   {:+.1}pp (paper: ~13.8%)",
        (base - errs[1].1) * 100.0
    );
    println!(
        "  instr alone     {:+.1}pp (paper: ~17%)",
        (base - errs[2].1) * 100.0
    );
    println!(
        "  both            {:+.1}pp (paper: ~39.1%, super-additive)",
        (base - errs[3].1) * 100.0
    );
}
