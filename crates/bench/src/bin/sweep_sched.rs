//! Design-choice ablation: how much does the FIFO-per-bank assumption of
//! the paper's queuing model cost versus an FR-FCFS controller, and what
//! would a closed-page policy do to the row-buffer effects the model
//! depends on?
//!
//! Runs each evaluation kernel's DRAM request stream (from the trace
//! analysis) through the batch scheduler under each policy combination.
//!
//! ```text
//! cargo run -p hms-bench --release --bin sweep_sched
//! ```

use hms_bench::{evaluation_suite, Harness, Table};
use hms_core::analysis::analyze;
use hms_dram::{schedule_batch, AddressMapping, BatchRequest, PagePolicy, SchedPolicy};
use hms_trace::materialize;

fn main() {
    let h = Harness::paper();
    let mapping = AddressMapping::k80_like(h.cfg.dram.total_banks());
    println!("Scheduling-policy ablation over the evaluation kernels' DRAM streams\n");
    let mut table = Table::new(&[
        "benchmark",
        "requests",
        "FIFO/open makespan",
        "FR-FCFS/open",
        "FIFO/closed",
        "FR-FCFS hit-rate gain",
    ]);
    for t in evaluation_suite() {
        let kt = t.kernel(h.scale);
        let pm = t.target_placement(&kt);
        let ct = materialize(&kt, &pm, &h.cfg).expect("valid");
        let a = analyze(&ct, &h.cfg);
        if a.dram.len() < 8 {
            continue;
        }
        // Arrival proxy: analysis positions (one cycle per instruction).
        let reqs: Vec<BatchRequest> = a
            .dram
            .iter()
            .map(|r| BatchRequest {
                addr: r.addr,
                arrival: r.position,
            })
            .collect();
        let (_, fifo_open) = schedule_batch(
            &reqs,
            &mapping,
            &h.cfg.dram,
            SchedPolicy::Fifo,
            PagePolicy::Open,
        );
        let (_, fr_open) = schedule_batch(
            &reqs,
            &mapping,
            &h.cfg.dram,
            SchedPolicy::FrFcfs,
            PagePolicy::Open,
        );
        let (_, fifo_closed) = schedule_batch(
            &reqs,
            &mapping,
            &h.cfg.dram,
            SchedPolicy::Fifo,
            PagePolicy::Closed,
        );
        let hit_rate = |s: &hms_dram::sched::ScheduleStats| {
            s.hits as f64 / (s.hits + s.misses + s.conflicts) as f64
        };
        table.row(vec![
            t.label.into(),
            reqs.len().to_string(),
            fifo_open.makespan.to_string(),
            format!(
                "{} ({:+.1}%)",
                fr_open.makespan,
                (fr_open.makespan as f64 / fifo_open.makespan as f64 - 1.0) * 100.0
            ),
            format!(
                "{} ({:+.1}%)",
                fifo_closed.makespan,
                (fifo_closed.makespan as f64 / fifo_open.makespan as f64 - 1.0) * 100.0
            ),
            format!(
                "{:+.1}pp",
                (hit_rate(&fr_open) - hit_rate(&fifo_open)) * 100.0
            ),
        ]);
    }
    println!("{}", table.render());
    println!("Reading: FR-FCFS reorders for row locality (never slower per bank);");
    println!("a closed-page policy removes row-buffer variation entirely — the very");
    println!("signal the paper's T_mem model exploits.");
}
