//! **Figure 7**: the impact of detailed instruction counting (addressing
//! -mode difference + instruction replays) on modeling accuracy.
//!
//! "Introducing the detailed instruction counting improves modeling
//! accuracy by 17% on average ... fft_1, NN_S, and bfs_2 [show] 142%,
//! 106%, and 67% difference in modeling accuracy."
//!
//! ```text
//! cargo run -p hms-bench --release --bin fig7
//! ```

use hms_bench::runner::{ablation_predictors, mean_error, run_suite, training_profiles};
use hms_bench::{evaluation_suite, Harness, Table};
use hms_core::ModelOptions;

fn main() {
    let h = Harness::paper();
    let suite = evaluation_suite();
    eprintln!("training T_overlap variants...");
    let profiles = training_profiles(&h);
    let predictors = ablation_predictors(
        &h,
        &[
            ("baseline", ModelOptions::baseline()),
            ("+instr", ModelOptions::baseline_plus_instr()),
        ],
        &profiles,
    );
    let r_base = run_suite(&h, &predictors[0].1, &suite);
    let r_instr = run_suite(&h, &predictors[1].1, &suite);

    println!("Figure 7: baseline vs baseline + instruction replay & addressing-mode counting");
    println!("(predicted / measured; 1.000 is perfect)\n");
    let mut table = Table::new(&[
        "benchmark",
        "baseline",
        "base err",
        "+instr counting",
        "+instr err",
        "delta",
    ]);
    for (b, i) in r_base.iter().zip(&r_instr) {
        table.row(vec![
            b.label.into(),
            format!("{:.3}", b.normalized()),
            format!("{:.1}%", b.error() * 100.0),
            format!("{:.3}", i.normalized()),
            format!("{:.1}%", i.error() * 100.0),
            format!("{:+.1}pp", (b.error() - i.error()) * 100.0),
        ]);
    }
    println!("{}", table.render());
    let eb = mean_error(&r_base);
    let ei = mean_error(&r_instr);
    println!(
        "average error: baseline {:.1}%  ->  +instr counting {:.1}%",
        eb * 100.0,
        ei * 100.0
    );
    println!(
        "improvement: {:.1} percentage points (paper: ~17% average improvement)",
        (eb - ei) * 100.0
    );
}
