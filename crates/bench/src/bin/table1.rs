//! **Table I**: cosine similarity between performance-event vectors and
//! the execution-time vector across data placements (paper Section
//! II-B).
//!
//! For each kernel we simulate its placement set, build the time vector
//! and one vector per event, and report the events of the paper's
//! Table I plus whichever other events clear the 0.94 threshold.
//!
//! ```text
//! cargo run -p hms-bench --release --bin table1
//! ```

use hms_bench::suite::table1_suite;
use hms_bench::{mine_events_paper, Harness, PlacementStudy, Table};
use hms_stats::cosine::PAPER_THRESHOLD;
use hms_trace::materialize;

fn main() {
    let h = Harness::paper();
    let suite = table1_suite();
    println!("Table I: cosine similarity of performance events vs execution time");
    println!("(events with similarity < {PAPER_THRESHOLD} print as N/A, as in the paper)\n");

    let paper_events = [
        "issue_slots",
        "inst_issued",
        "inst_integer",
        "ldst_issue",
        "L2_transactions",
    ];
    let mut table = Table::new(&[
        "GPU kernel",
        "placements",
        "issue_slots",
        "inst_issued",
        "inst_integer",
        "ldst_issue",
        "L2_trans",
    ]);
    let mut studies: Vec<PlacementStudy> = Vec::new();

    for (name, tests) in &suite {
        // Simulate every placement of this kernel.
        let runs: Vec<(u64, hms_sim::EventSet)> = hms_stats::par::par_map(tests, |t| {
            let kt = t.kernel(h.scale);
            let pm = t.target_placement(&kt);
            let ct = materialize(&kt, &pm, &h.cfg).expect("valid placement");
            let r = hms_sim::simulate_default(&ct, &h.cfg).expect("simulates");
            (r.cycles, r.events)
        });
        let study = PlacementStudy::from_runs(name, &runs);
        let sims = study.similarities();

        let mut row = vec![name.to_string(), tests.len().to_string()];
        for target in paper_events {
            let (_, sim) = sims
                .iter()
                .find(|(n, _)| *n == target)
                .expect("event exists");
            row.push(match sim {
                Some(s) if *s >= PAPER_THRESHOLD => format!("{s:.3}"),
                _ => "N/A".into(),
            });
        }
        studies.push(study);
        table.row(row);
    }
    println!("{}", table.render());

    // The paper's aggregation step: events clearing the threshold in at
    // least 3 kernels become general model indicators.
    println!("\nEvents qualifying as general indicators (>= 3 kernels at {PAPER_THRESHOLD}):");
    for m in mine_events_paper(&studies) {
        println!(
            "  {:<28} kernels {:>2}/{}  mean similarity {:.3}",
            m.name,
            m.qualified_in.len(),
            studies.len(),
            m.mean_similarity
        );
    }
}
