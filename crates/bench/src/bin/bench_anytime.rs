//! Anytime-search benchmark: quality-vs-time curves for the beam,
//! successive-halving, and seeded local-search strategies on a wide
//! multi-array kernel, oracle-checked against the exhaustive optimum on
//! a down-sampled candidate set, emitted as `BENCH_anytime.json`.
//!
//! Two modes:
//!
//! * **full** (default) — everything: the oracle sandwich check, the
//!   deterministic gate gap, the 2-second-deadline contrast (every
//!   anytime strategy completes, exhaustive is cut short partial), and
//!   per-strategy quality-vs-time curves over wall-clock budgets.
//! * **gate** — the deterministic subset CI regresses on: the oracle
//!   check plus `gate_gap_upper_bound`, the beam strategy's reported
//!   gap at a pinned width with no deadline. The value is a pure
//!   function of the model, so a changed number is a changed engine,
//!   not a noisy machine.
//!
//! ```text
//! cargo run -p hms-bench --release --bin bench_anytime [-- gate]
//! ```

use std::time::{Duration, Instant};

use hms_core::{profile_sample, Predictor, SearchOutcome, SearchRequest, SearchStrategy};
use hms_kernels::Scale;
use hms_serve::Json;
use hms_types::{ArrayId, GpuConfig};

/// The kernel under test, run at full scale: per-candidate evaluation
/// is expensive enough there that exhaustive ranking of the read-only
/// space blows any interactive deadline while enumeration stays cheap —
/// exactly the regime the anytime strategies exist for.
const KERNEL: &str = "wide8";
/// Down-sampled candidate count for the exhaustive oracle.
const ORACLE_K: usize = 4;
/// Pinned beam width for the deterministic gate metric.
const GATE_BEAM_WIDTH: usize = 8;
/// Enumeration cap for the full-set runs. Deliberately below wide8's
/// whole legal space (~32k): exhaustively ranking 16k candidates at
/// full scale takes well over the deadline on one core, while the
/// anytime strategies finish comfortably inside it — and capping keeps
/// the enumeration phase itself cheap for every contender. Truncation
/// soundly widens the halving floor to the all-free bound.
const SPACE_LIMIT: usize = 16_000;
/// The deadline the acceptance criterion pins: anytime strategies must
/// complete inside it, exhaustive must not.
const DEADLINE: Duration = Duration::from_secs(2);

fn strategies() -> [(&'static str, SearchStrategy); 3] {
    [
        (
            "beam",
            SearchStrategy::Beam {
                width: GATE_BEAM_WIDTH,
            },
        ),
        ("successive_halving", SearchStrategy::SuccessiveHalving),
        (
            "local_search",
            SearchStrategy::LocalSearch {
                seed: SearchStrategy::DEFAULT_SEED,
            },
        ),
    ]
}

fn best_cycles(o: &SearchOutcome) -> f64 {
    o.ranked
        .first()
        .expect("non-empty ranking")
        .predicted_cycles
}

fn main() {
    let gate_only = std::env::args().nth(1).as_deref() == Some("gate");
    let cfg = GpuConfig::tesla_k80();
    let kt = hms_kernels::by_name(KERNEL, Scale::Full).expect(KERNEL);
    let sample = kt.default_placement();
    let profile = profile_sample(&kt, &sample, &cfg).expect("profiles");
    let predictor = Predictor::new(cfg.clone());
    let read_only: Vec<ArrayId> = kt
        .arrays
        .iter()
        .filter(|a| !a.written)
        .map(|a| a.id)
        .collect();

    // --- Oracle: exhaustive optimum on a down-sampled candidate set,
    // then every strategy must respect its own reported gap there.
    let oracle_ids: Vec<ArrayId> = read_only.iter().copied().take(ORACLE_K).collect();
    let oracle = SearchRequest::new(&kt.arrays, &sample)
        .candidates(&oracle_ids)
        .limit(SPACE_LIMIT)
        .run(&predictor, &profile)
        .expect("oracle search");
    assert!(!oracle.partial, "oracle must be complete");
    let optimum = best_cycles(&oracle);
    println!(
        "oracle ({KERNEL}, {ORACLE_K} candidate arrays): optimum {optimum:.0} cycles over {} placements",
        oracle.ranked.len()
    );
    let mut oracle_rows = Vec::new();
    for (name, strategy) in strategies() {
        let out = SearchRequest::new(&kt.arrays, &sample)
            .candidates(&oracle_ids)
            .limit(SPACE_LIMIT)
            .strategy(strategy)
            .run(&predictor, &profile)
            .expect("strategy search");
        let best = best_cycles(&out);
        let gap = out.stats.gap_upper_bound;
        assert!(
            best >= optimum - 1e-6,
            "{name}: best {best} beats the exhaustive optimum {optimum}"
        );
        assert!(
            best <= optimum * (1.0 + gap) + 1e-6,
            "{name}: best {best} outside optimum {optimum} x (1 + {gap})"
        );
        println!(
            "  {name:<20} best {best:>8.0}  gap bound {:>8.2}%  (optimum within bound)",
            gap * 100.0
        );
        oracle_rows.push(Json::Obj(vec![
            ("strategy".into(), Json::str(name)),
            ("best_cycles".into(), Json::Num(best)),
            ("gap_upper_bound".into(), Json::Num(gap)),
            (
                "optimum_within_bound".into(),
                Json::Bool(best <= optimum * (1.0 + gap) + 1e-6),
            ),
        ]));
    }

    // --- Gate metric: beam's reported gap on the full read-only set at
    // the pinned width, no deadline — deterministic on every machine.
    let full_req = || {
        SearchRequest::new(&kt.arrays, &sample)
            .candidates(&read_only)
            .limit(SPACE_LIMIT)
    };
    let gate = full_req()
        .strategy(SearchStrategy::Beam {
            width: GATE_BEAM_WIDTH,
        })
        .run(&predictor, &profile)
        .expect("gate search");
    assert!(!gate.partial);
    let gate_gap = gate.stats.gap_upper_bound;
    println!(
        "gate: beam width {GATE_BEAM_WIDTH} over {} read-only arrays -> best {:.0}, gap bound {:.2}%",
        read_only.len(),
        best_cycles(&gate),
        gate_gap * 100.0
    );

    let mut members = vec![
        ("kernel".into(), Json::str(KERNEL)),
        ("scale".into(), Json::str("full")),
        ("candidate_arrays".into(), Json::Num(read_only.len() as f64)),
        ("oracle_candidate_arrays".into(), Json::Num(ORACLE_K as f64)),
        ("oracle_optimum_cycles".into(), Json::Num(optimum)),
        ("oracle".into(), Json::Arr(oracle_rows)),
        ("gate_strategy".into(), Json::str("beam")),
        ("gate_beam_width".into(), Json::Num(GATE_BEAM_WIDTH as f64)),
        ("gate_gap_upper_bound".into(), Json::Num(gate_gap)),
    ];

    if !gate_only {
        // --- The acceptance contrast: at a 2 s deadline, exhaustive
        // over the full space is cut short (partial), while every
        // anytime strategy completes with a sound gap.
        let t0 = Instant::now();
        let exhaustive = full_req()
            .deadline(Some(Instant::now() + DEADLINE))
            .run(&predictor, &profile)
            .expect("deadlined exhaustive");
        let exhaustive_secs = t0.elapsed().as_secs_f64();
        assert!(
            exhaustive.partial,
            "exhaustive finished the whole {KERNEL} space inside {DEADLINE:?} — \
             widen the kernel or the space limit"
        );
        println!(
            "exhaustive at {DEADLINE:?}: PARTIAL after {exhaustive_secs:.2} s \
             ({} evaluated, best-so-far {:.0})",
            exhaustive.stats.candidates_evaluated,
            best_cycles(&exhaustive),
        );
        let mut contrast = vec![Json::Obj(vec![
            ("strategy".into(), Json::str("exhaustive")),
            ("partial".into(), Json::Bool(true)),
            ("elapsed_secs".into(), Json::Num(exhaustive_secs)),
            ("best_cycles".into(), Json::Num(best_cycles(&exhaustive))),
            (
                "gap_upper_bound".into(),
                Json::Num(exhaustive.stats.gap_upper_bound),
            ),
        ])];
        for (name, strategy) in strategies() {
            let t0 = Instant::now();
            let out = full_req()
                .strategy(strategy)
                .deadline(Some(Instant::now() + DEADLINE))
                .run(&predictor, &profile)
                .expect("deadlined strategy");
            let secs = t0.elapsed().as_secs_f64();
            assert!(!out.partial, "{name} did not complete inside {DEADLINE:?}");
            println!(
                "  {name:<20} complete in {secs:.2} s: best {:.0}, gap bound {:.2}%",
                best_cycles(&out),
                out.stats.gap_upper_bound * 100.0
            );
            contrast.push(Json::Obj(vec![
                ("strategy".into(), Json::str(name)),
                ("partial".into(), Json::Bool(false)),
                ("elapsed_secs".into(), Json::Num(secs)),
                ("best_cycles".into(), Json::Num(best_cycles(&out))),
                (
                    "gap_upper_bound".into(),
                    Json::Num(out.stats.gap_upper_bound),
                ),
            ]));
        }
        members.push(("deadline_contrast".into(), Json::Arr(contrast)));

        // --- Quality vs time: every strategy at increasing wall-clock
        // budgets. A strategy that finishes early holds its result; the
        // interesting column is the gap shrinking as the budget grows.
        let mut curves = Vec::new();
        for budget_ms in [100u64, 500, 2000] {
            for (name, strategy) in strategies() {
                let t0 = Instant::now();
                let out = full_req()
                    .strategy(strategy)
                    .deadline(Some(Instant::now() + Duration::from_millis(budget_ms)))
                    .run(&predictor, &profile)
                    .expect("budgeted strategy");
                let secs = t0.elapsed().as_secs_f64();
                curves.push(Json::Obj(vec![
                    ("strategy".into(), Json::str(name)),
                    ("budget_ms".into(), Json::Num(budget_ms as f64)),
                    ("elapsed_secs".into(), Json::Num(secs)),
                    ("partial".into(), Json::Bool(out.partial)),
                    ("best_cycles".into(), Json::Num(best_cycles(&out))),
                    (
                        "gap_upper_bound".into(),
                        Json::Num(out.stats.gap_upper_bound),
                    ),
                    (
                        "candidates_visited".into(),
                        Json::Num(out.stats.candidates_visited as f64),
                    ),
                ]));
            }
        }
        members.push(("quality_vs_time".into(), Json::Arr(curves)));
    }

    let json = Json::Obj(members).encode_pretty();
    std::fs::write("BENCH_anytime.json", &json).expect("writes BENCH_anytime.json");
    println!("wrote BENCH_anytime.json");
}
