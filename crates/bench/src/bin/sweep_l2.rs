//! Design-choice ablation: L2 capacity sensitivity.
//!
//! The paper's caching-effects argument ("moving data objects from one
//! memory component A to B has non-trivial impact on the data caching of
//! A and B") depends on the shared L2 being contended. This sweep halves
//! and doubles the configured 1.5 MiB L2 and reports how the measured
//! time and L2 miss ratio of the evaluation kernels respond.
//!
//! ```text
//! cargo run -p hms-bench --release --bin sweep_l2
//! ```

use hms_bench::{evaluation_suite, Harness, Table};
use hms_trace::materialize;
use hms_types::CacheGeometry;

fn main() {
    let h = Harness::paper();
    let sizes_kib = [384u64, 768, 1536, 3072];
    println!("L2 capacity sweep (measured cycles / L2 miss ratio)\n");
    let mut header = vec!["benchmark".to_string()];
    header.extend(sizes_kib.iter().map(|s| format!("{s} KiB")));
    let mut table = Table::new(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    for t in evaluation_suite() {
        let mut row = vec![t.label.to_string()];
        for &kib in &sizes_kib {
            let mut cfg = h.cfg.clone();
            cfg.l2_cache = CacheGeometry::new(kib * 1024, 128, 16);
            let kt = t.kernel(h.scale);
            let pm = t.target_placement(&kt);
            let ct = materialize(&kt, &pm, &cfg).expect("valid");
            let r = hms_sim::simulate_default(&ct, &cfg).expect("simulates");
            let miss = if r.events.l2_transactions > 0 {
                r.events.l2_misses as f64 / r.events.l2_transactions as f64
            } else {
                0.0
            };
            row.push(format!("{}/{:.2}", r.cycles, miss));
        }
        table.row(row);
    }
    println!("{}", table.render());
}
