//! **Figure 4**: measured vs theoretical (exponential) inter-arrival
//! time distributions of DRAM requests, and the per-bank coefficient of
//! variation `c_a` (paper Section III-C3).
//!
//! The paper reports mean per-bank `c_a` of 1.11 (spmv), 2.22 (md) and
//! 1.72 (matrixMul) — far enough above 1 that a Markov (M/M/1) queue is
//! the wrong model and a G/G/1 queue is required.
//!
//! ```text
//! cargo run -p hms-bench --release --bin fig4
//! ```

use hms_bench::{Harness, Table};
use hms_sim::{simulate, SimOptions};
use hms_stats::{exp_cdf_distance, fit_exponential_rate, Histogram, Summary};
use hms_trace::materialize;

fn main() {
    // The paper collects Figure 4 on GPGPUSim's default Tesla C2050
    // configuration; we do the same with our C2050 config.
    let mut h = Harness::paper();
    h.cfg = hms_types::GpuConfig::tesla_c2050();
    let kernels = ["spmv", "md", "matrixMul"];
    println!(
        "Figure 4: DRAM inter-arrival distributions (default placements, Tesla C2050 config)\n"
    );

    let mut table = Table::new(&[
        "kernel",
        "banks",
        "mean c_a",
        "std c_a",
        "KS distance vs Exp",
        "verdict",
    ]);
    for name in kernels {
        let kt = hms_kernels::by_name(name, h.scale).expect("known kernel");
        let pm = kt.default_placement();
        let ct = materialize(&kt, &pm, &h.cfg).expect("valid");
        let r = simulate(
            &ct,
            &h.cfg,
            &SimOptions {
                record_dram_arrivals: true,
                ..Default::default()
            },
        )
        .expect("simulates");

        // Per-bank c_a over banks with enough samples.
        let mut cas = Vec::new();
        let mut all_inter: Vec<f64> = Vec::new();
        for bank in 0..h.cfg.dram.total_banks() {
            let inter = r.dram.interarrival_times(bank);
            if inter.len() >= 4 {
                let xs: Vec<f64> = inter.iter().map(|&x| x as f64).collect();
                let s = Summary::of(&xs).expect("non-empty");
                if s.mean > 0.0 {
                    cas.push(s.cv());
                }
                all_inter.extend(xs);
            }
        }
        let ca = Summary::of(&cas).unwrap_or(Summary {
            n: 0,
            mean: 0.0,
            std_dev: 0.0,
            min: 0.0,
            max: 0.0,
        });
        let rate = fit_exponential_rate(&all_inter).unwrap_or(0.0);
        let ks = exp_cdf_distance(&all_inter, rate);
        let verdict = if ca.mean > 1.3 {
            "bursty (not Markov)"
        } else {
            "approx. exponential"
        };
        table.row(vec![
            name.into(),
            cas.len().to_string(),
            format!("{:.2}", ca.mean),
            format!("{:.2}", ca.std_dev),
            format!("{ks:.3}"),
            verdict.into(),
        ]);

        // Print the measured-vs-theoretical histogram series.
        println!("{name}: inter-arrival histogram (measured fraction vs exponential mass)");
        if !all_inter.is_empty() {
            let mean = all_inter.iter().sum::<f64>() / all_inter.len() as f64;
            let width = (mean / 2.0).max(1.0);
            let hist = Histogram::build(&all_inter, width, 12);
            for i in 0..12 {
                let measured = hist.density(i);
                let theory = hist.exp_mass(i, rate);
                let bar = |f: f64| "#".repeat((f * 60.0).round() as usize);
                println!(
                    "  [{:>6.0},{:>6.0}) meas {:>6.3} {:<20} theo {:>6.3} {}",
                    i as f64 * width,
                    (i + 1) as f64 * width,
                    measured,
                    bar(measured),
                    theory,
                    bar(theory)
                );
            }
        }
        println!();
    }
    println!("{}", table.render());
    println!("paper: mean per-bank c_a = 1.11 (spmv), 2.22 (md), 1.72 (matrixMul);");
    println!("c_a of an exponential stream is exactly 1.0.");
}
