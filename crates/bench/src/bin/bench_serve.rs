//! Serving load benchmark: spins up an in-process `hms-serve` instance
//! on an ephemeral port, hammers it with keep-alive client threads over
//! plain `std::net::TcpStream`, and reports throughput, latency
//! percentiles and cache behaviour as `BENCH_serve.json`.
//!
//! ```text
//! cargo run -p hms-bench --release --bin bench_serve [-- test]
//! ```
//!
//! `test` mode shrinks the run (2 clients, ~200 requests) so CI can
//! exercise the whole path in well under a second of load.
//!
//! After the clean timed phase, a second *faulted* phase commits a
//! seed-pinned [`FaultPlan`] storm against the same server while a good
//! client keeps issuing requests through `retry_with_backoff` — the
//! throughput it sustains (and the 4xx count the faults earn) land in
//! `BENCH_serve.json` alongside the clean numbers, so a fault-path
//! regression is as visible as a cache regression.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use hms_core::Predictor;
use hms_faults::{retry_with_backoff, BackoffPolicy, FaultClient, FaultOutcome, FaultPlan};
use hms_serve::{spawn, Advisor, Json, Metrics, ServeConfig};
use hms_stats::rng::Rng;
use hms_types::GpuConfig;

/// The request mix, cycled per client: mostly repeat predicts (cache
/// hits after warmup), a few distinct placements, periodic searches.
const PREDICT_BODIES: &[&str] = &[
    r#"{"kernel":"vecadd","scale":"test","moves":[{"array":"a","space":"T"}]}"#,
    r#"{"kernel":"vecadd","scale":"test","moves":[{"array":"b","space":"C"}]}"#,
    r#"{"kernel":"spmv","scale":"test","moves":[{"array":"d_vec","space":"T"}]}"#,
    r#"{"kernel":"vecadd","scale":"test","placement":{"a":"C","b":"T"}}"#,
];
const SEARCH_BODY: &str = r#"{"kernel":"vecadd","scale":"test","top":3}"#;

fn main() {
    let test_mode = std::env::args().nth(1).as_deref() == Some("test");
    let (clients, per_client) = if test_mode { (2, 100) } else { (4, 2000) };

    let cfg = GpuConfig::tesla_k80();
    let advisor = Advisor::new(cfg.clone(), Predictor::new(cfg));
    let handle = spawn(
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: 4,
            ..ServeConfig::default()
        },
        advisor,
    )
    .expect("binds ephemeral port");
    let addr = handle.addr();

    // Warmup: one of each body, so the timed run measures steady state.
    {
        let mut c = Client::connect(addr);
        for body in PREDICT_BODIES {
            assert_eq!(c.post("/v1/predict", body), 200);
        }
        assert_eq!(c.post("/v1/search", SEARCH_BODY), 200);
    }

    let t0 = Instant::now();
    let latencies: Vec<Vec<Duration>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|client_id| {
                s.spawn(move || {
                    let mut c = Client::connect(addr);
                    // Seeded per client: the retry schedule (if any
                    // transient failure occurs) replays exactly.
                    let mut rng = Rng::seed_from_u64(0xB3_5E_47 ^ client_id as u64);
                    let policy = BackoffPolicy::default();
                    let mut lat = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let (path, body) = if i % 16 == 15 {
                            ("/v1/search", SEARCH_BODY)
                        } else {
                            ("/v1/predict", PREDICT_BODIES[i % PREDICT_BODIES.len()])
                        };
                        let r0 = Instant::now();
                        let status = post_with_retry(&mut c, addr, path, body, &policy, &mut rng);
                        assert_eq!(status, 200, "{path} failed");
                        lat.push(r0.elapsed());
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.elapsed().as_secs_f64();

    // Faulted phase: commit a pinned fault storm while a good client
    // keeps the request stream flowing through the retry path. Every
    // good request must still come back 200 — faults cost their own
    // connection, never a neighbour's.
    const FAULT_SEED: u64 = 0xFA_17;
    let storm = FaultPlan::from_seed(FAULT_SEED, if test_mode { 6 } else { 20 });
    let mut fault_client = FaultClient::new(addr);
    fault_client.trickle_delay = Duration::from_millis(1);
    let mut good = Client::connect(addr);
    let mut rng = Rng::seed_from_u64(FAULT_SEED);
    let policy = BackoffPolicy::default();
    let mut fault_errors_4xx = 0u64;
    let mut faulted_requests = 0u64;
    let tf = Instant::now();
    for case in &storm.cases {
        let outcome = fault_client.commit(*case, "/v1/predict", PREDICT_BODIES[0].as_bytes());
        if let FaultOutcome::Status(s) = outcome {
            if (400..500).contains(&s) {
                fault_errors_4xx += 1;
            }
        }
        for (i, body) in PREDICT_BODIES.iter().enumerate() {
            let (path, body) = if i == 0 {
                ("/v1/search", SEARCH_BODY)
            } else {
                ("/v1/predict", *body)
            };
            let status = post_with_retry(&mut good, addr, path, body, &policy, &mut rng);
            assert_eq!(status, 200, "good traffic failed during fault storm");
            faulted_requests += 1;
        }
    }
    let faulted_wall = tf.elapsed().as_secs_f64();
    let faulted_throughput = faulted_requests as f64 / faulted_wall.max(1e-9);

    let mut all: Vec<Duration> = latencies.into_iter().flatten().collect();
    all.sort();
    let total = all.len();
    let pct = |p: f64| -> f64 {
        let idx = ((total as f64 * p).ceil() as usize).saturating_sub(1);
        all[idx.min(total - 1)].as_secs_f64()
    };
    let throughput = total as f64 / wall.max(1e-9);

    let metrics = handle.metrics().render();
    let counter = |series: &str| Metrics::scrape_counter(&metrics, series).unwrap_or(0.0);
    let hits = counter("hms_prediction_cache_hits_total");
    let misses = counter("hms_prediction_cache_misses_total");
    let hit_rate = hits / (hits + misses).max(1.0);
    let simulations = counter("hms_simulations_total");
    handle.shutdown();

    println!("serve load benchmark ({clients} clients x {per_client} requests)");
    println!("  throughput:       {throughput:.0} req/s");
    println!(
        "  latency p50/p99:  {:.2} ms / {:.2} ms",
        pct(0.50) * 1e3,
        pct(0.99) * 1e3
    );
    println!("  cache hit rate:   {:.1}%", hit_rate * 100.0);
    println!("  simulations run:  {simulations:.0}");
    println!(
        "  fault storm:      {} good req at {faulted_throughput:.0} req/s, {fault_errors_4xx} fault 4xx",
        faulted_requests
    );

    let json = Json::Obj(vec![
        ("clients".into(), Json::Num(clients as f64)),
        ("requests".into(), Json::Num(total as f64)),
        ("wall_secs".into(), Json::Num(wall)),
        ("throughput_rps".into(), Json::Num(throughput)),
        ("p50_secs".into(), Json::Num(pct(0.50))),
        ("p90_secs".into(), Json::Num(pct(0.90))),
        ("p99_secs".into(), Json::Num(pct(0.99))),
        ("prediction_cache_hits".into(), Json::Num(hits)),
        ("prediction_cache_misses".into(), Json::Num(misses)),
        ("cache_hit_rate".into(), Json::Num(hit_rate)),
        ("simulations".into(), Json::Num(simulations)),
        (
            "faulted_requests".into(),
            Json::Num(faulted_requests as f64),
        ),
        (
            "faulted_throughput_rps".into(),
            Json::Num(faulted_throughput),
        ),
        (
            "fault_errors_4xx".into(),
            Json::Num(fault_errors_4xx as f64),
        ),
    ])
    .encode_pretty();
    std::fs::write("BENCH_serve.json", &json).expect("writes BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}

/// One keep-alive HTTP/1.1 client connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connects");
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone().expect("clones stream");
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    /// POST a body, read the full response, return the status code.
    /// Infallible convenience for warmup, where a failure is a bug.
    fn post(&mut self, path: &str, body: &str) -> u16 {
        self.try_post(path, body).expect("warmup request succeeds")
    }

    /// POST a body; any transport or framing failure comes back as an
    /// `io::Error` so the caller can retry on a fresh connection.
    fn try_post(&mut self, path: &str, body: &str) -> std::io::Result<u16> {
        let bad =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
        write!(
            self.writer,
            "POST {path} HTTP/1.1\r\nhost: bench\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )?;
        self.writer.flush()?;
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("unparseable status line"))?;
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
            {
                content_length = v.parse().map_err(|_| bad("bad content-length"))?;
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(status)
    }
}

/// One request through the jittered-backoff retry path; a transport
/// failure costs a reconnect and a retry, not the whole benchmark.
fn post_with_retry(
    c: &mut Client,
    addr: SocketAddr,
    path: &str,
    body: &str,
    policy: &BackoffPolicy,
    rng: &mut Rng,
) -> u16 {
    retry_with_backoff(policy, rng, || match c.try_post(path, body) {
        Ok(status) => Ok(status),
        Err(e) => {
            *c = Client::connect(addr);
            Err(e)
        }
    })
    .expect("request exhausted its retry budget")
}
