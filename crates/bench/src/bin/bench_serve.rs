//! Serving load benchmark: spins up an in-process `hms-serve` instance
//! on an ephemeral port and drives it with an **open-loop** load
//! generator — requests arrive on a fixed schedule over hundreds of
//! pipelined keep-alive connections, whether or not earlier responses
//! have come back — then reports offered vs achieved rate, latency
//! percentiles from a coordinated-omission-safe histogram, cache and
//! coalescing behaviour as `BENCH_serve.json`.
//!
//! ```text
//! cargo run -p hms-bench --release --bin bench_serve [-- test|gate]
//! ```
//!
//! * *(default)* — the full run: 256 connections, several seconds.
//! * `gate` — the CI regression gate: 256 connections, shorter wall
//!   time, same offered rate.
//! * `test` — a smoke run (64 connections, well under a second of load)
//!   so CI can exercise the whole path cheaply.
//!
//! Latency here is measured from each request's **scheduled arrival**
//! (its slot in the open-loop plan) to its response, not from the
//! moment the client got around to writing it — a server that stalls
//! inflates the tail instead of quietly slowing the clock that feeds
//! it (the closed-loop bias the old harness had).
//!
//! After the timed phase, two storms run against the same server:
//!
//! * a *coalescing storm* — many connections fire one byte-identical
//!   cold query at once; `/metrics` must show a single single-flight
//!   leader and the rest coalesced onto it;
//! * a *fault storm* — a seed-pinned [`FaultPlan`] committed while a
//!   good client keeps issuing requests through `retry_with_backoff`,
//!   so a fault-path regression is as visible as a cache regression;
//! * a *degraded phase* — the deadline clock is skewed far past the
//!   budget so the degradation ladder caps every cold search, measuring
//!   `degraded_throughput_rps` (the floor the server holds while
//!   answering gap-bounded approximations) and `recovery_ms` (how long
//!   `/readyz` takes to report plain `ready` once the skew clears).

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use hms_bench::Histogram;
use hms_core::Predictor;
use hms_faults::{retry_with_backoff, BackoffPolicy, FaultClient, FaultOutcome, FaultPlan};
use hms_serve::{Advisor, ConfigRegistry, Json, Metrics, ServerConfig};
use hms_stats::rng::Rng;
use hms_types::GpuConfig;

/// The request mix, cycled across the schedule: mostly repeat predicts
/// (cache hits after warmup), a few distinct placements, periodic
/// searches.
const PREDICT_BODIES: &[&str] = &[
    r#"{"kernel":"vecadd","scale":"test","moves":[{"array":"a","space":"T"}]}"#,
    r#"{"kernel":"vecadd","scale":"test","moves":[{"array":"b","space":"C"}]}"#,
    r#"{"kernel":"spmv","scale":"test","moves":[{"array":"d_vec","space":"T"}]}"#,
    r#"{"kernel":"vecadd","scale":"test","placement":{"a":"C","b":"T"}}"#,
];
const SEARCH_BODY: &str = r#"{"kernel":"vecadd","scale":"test","top":3}"#;
/// Fired cold by every storm connection at once: distinct from the
/// warm mix, so the only thing that can answer the followers is the
/// single-flight table.
const STORM_BODY: &str = r#"{"kernel":"spmv","scale":"test","top":4}"#;

struct Mode {
    name: &'static str,
    connections: usize,
    offered_rps: f64,
    duration: Duration,
    storm_conns: usize,
    fault_cases: usize,
}

fn mode() -> Mode {
    match std::env::args().nth(1).as_deref() {
        Some("test") => Mode {
            name: "test",
            connections: 64,
            offered_rps: 30_000.0,
            duration: Duration::from_millis(400),
            storm_conns: 16,
            fault_cases: 6,
        },
        Some("gate") => Mode {
            name: "gate",
            connections: 256,
            offered_rps: 160_000.0,
            duration: Duration::from_millis(1_500),
            storm_conns: 64,
            fault_cases: 8,
        },
        _ => Mode {
            name: "full",
            connections: 256,
            offered_rps: 160_000.0,
            duration: Duration::from_secs(4),
            storm_conns: 64,
            fault_cases: 20,
        },
    }
}

fn main() {
    let mode = mode();

    let cfg = GpuConfig::tesla_k80();
    let advisor = Advisor::new(cfg.clone(), Predictor::new(cfg));
    let handle = ServerConfig::new()
        .bind("127.0.0.1:0")
        .queue_depth(1024)
        .spawn(ConfigRegistry::new("default", advisor))
        .expect("binds ephemeral port");
    let addr = handle.addr();

    // Warmup: one of each body, so the timed run measures steady state.
    {
        let mut c = Client::connect(addr);
        for body in PREDICT_BODIES {
            assert_eq!(c.post("/v1/predict", body), 200);
        }
        assert_eq!(c.post("/v1/search", SEARCH_BODY), 200);
    }

    let load = open_loop(addr, &mode);

    // Coalescing storm: every storm connection fires the same cold
    // query at once; the flight table must answer all but one of them
    // from the leader's single evaluation.
    let before = handle.metrics().render();
    let storm_bodies = storm(addr, mode.storm_conns);
    assert!(
        storm_bodies.windows(2).all(|w| w[0] == w[1]),
        "storm followers saw different bodies"
    );
    let after = handle.metrics().render();
    let delta = |series: &str| {
        Metrics::scrape_counter(&after, series).unwrap_or(0.0)
            - Metrics::scrape_counter(&before, series).unwrap_or(0.0)
    };
    let storm_leaders = delta("hms_singleflight_leaders_total");
    let storm_coalesced = delta("hms_coalesced_requests_total");
    assert!(
        storm_coalesced >= 1.0,
        "no coalescing observed across {} identical concurrent requests",
        mode.storm_conns
    );

    // Fault storm: commit a pinned fault schedule while a good client
    // keeps the request stream flowing through the retry path. Every
    // good request must still come back 200 — faults cost their own
    // connection, never a neighbour's.
    const FAULT_SEED: u64 = 0xFA_17;
    let plan = FaultPlan::from_seed(FAULT_SEED, mode.fault_cases);
    let mut fault_client = FaultClient::new(addr);
    fault_client.trickle_delay = Duration::from_millis(1);
    let mut good = Client::connect(addr);
    let mut rng = Rng::seed_from_u64(FAULT_SEED);
    let policy = BackoffPolicy::default();
    let mut fault_errors_4xx = 0u64;
    let mut faulted_requests = 0u64;
    let tf = Instant::now();
    for case in &plan.cases {
        let outcome = fault_client.commit(*case, "/v1/predict", PREDICT_BODIES[0].as_bytes());
        if let FaultOutcome::Status(s) = outcome {
            if (400..500).contains(&s) {
                fault_errors_4xx += 1;
            }
        }
        for (i, body) in PREDICT_BODIES.iter().enumerate() {
            let (path, body) = if i == 0 {
                ("/v1/search", SEARCH_BODY)
            } else {
                ("/v1/predict", *body)
            };
            let status = post_with_retry(&mut good, addr, path, body, &policy, &mut rng);
            assert_eq!(status, 200, "good traffic failed during fault storm");
            faulted_requests += 1;
        }
    }
    let faulted_wall = tf.elapsed().as_secs_f64();
    let faulted_throughput = faulted_requests as f64 / faulted_wall.max(1e-9);

    // Degraded phase: skew the deadline clock far past the budget so
    // every cold search is capped by the degradation ladder, then
    // measure the throughput floor the server holds while serving
    // gap-bounded approximations, and how fast `/readyz` reports plain
    // `ready` again once the skew clears.
    let degraded_requests: u64 = match mode.name {
        "test" => 50,
        _ => 200,
    };
    handle.set_clock_skew(Duration::from_secs(60));
    let mut degraded = Client::connect(addr);
    let mut degraded_flagged = 0u64;
    let td = Instant::now();
    for i in 0..degraded_requests {
        // Distinct cold queries: cache hits bypass the ladder.
        let body = format!(r#"{{"kernel":"vecadd","scale":"test","top":{}}}"#, 200 + i);
        let (status, text) = degraded
            .post_full("/v1/search", &body)
            .expect("degraded-phase request");
        assert_eq!(status, 200, "degraded search failed: {text}");
        if text.contains("\"degraded\": true") {
            degraded_flagged += 1;
        }
    }
    let degraded_wall = td.elapsed().as_secs_f64();
    let degraded_throughput = degraded_requests as f64 / degraded_wall.max(1e-9);
    assert!(
        degraded_flagged > 0,
        "no search was ladder-capped under a 60 s clock skew"
    );
    handle.set_clock_skew(Duration::ZERO);
    let tr = Instant::now();
    let recovery_ms = loop {
        let (status, text) = degraded.get_full("/readyz").expect("readiness poll");
        if status == 200 && text == "ready\n" {
            break tr.elapsed().as_secs_f64() * 1e3;
        }
        assert!(
            tr.elapsed() < Duration::from_secs(10),
            "server never recovered from the degraded phase: {status} {text}"
        );
        std::thread::sleep(Duration::from_millis(1));
    };

    let metrics = handle.metrics().render();
    let counter = |series: &str| Metrics::scrape_counter(&metrics, series).unwrap_or(0.0);
    let hits = counter("hms_prediction_cache_hits_total");
    let misses = counter("hms_prediction_cache_misses_total");
    let hit_rate = hits / (hits + misses).max(1.0);
    let simulations = counter("hms_simulations_total");
    handle.shutdown();

    let secs = |ns: u64| ns as f64 / 1e9;
    let achieved = load.completed as f64 / load.wall.max(1e-9);
    println!(
        "serve load benchmark ({} mode: {} connections, open loop)",
        mode.name, mode.connections
    );
    println!("  offered rate:     {:.0} req/s", mode.offered_rps);
    println!(
        "  achieved rate:    {achieved:.0} req/s ({} requests)",
        load.completed
    );
    println!(
        "  latency p50/p99/p999: {:.3} / {:.3} / {:.3} ms",
        secs(load.hist.percentile(0.50)) * 1e3,
        secs(load.hist.percentile(0.99)) * 1e3,
        secs(load.hist.percentile(0.999)) * 1e3,
    );
    println!("  cache hit rate:   {:.1}%", hit_rate * 100.0);
    println!("  simulations run:  {simulations:.0}");
    println!(
        "  coalescing storm: {} conns -> {storm_leaders:.0} leader, {storm_coalesced:.0} coalesced",
        mode.storm_conns
    );
    println!(
        "  fault storm:      {faulted_requests} good req at {faulted_throughput:.0} req/s, {fault_errors_4xx} fault 4xx",
    );
    println!(
        "  degraded phase:   {degraded_requests} cold searches at {degraded_throughput:.0} req/s ({degraded_flagged} ladder-capped), ready again in {recovery_ms:.1} ms",
    );

    let json = Json::Obj(vec![
        ("mode".into(), Json::Str(mode.name.into())),
        ("connections".into(), Json::Num(mode.connections as f64)),
        ("offered_rps".into(), Json::Num(mode.offered_rps)),
        ("requests".into(), Json::Num(load.completed as f64)),
        ("wall_secs".into(), Json::Num(load.wall)),
        ("throughput_rps".into(), Json::Num(achieved)),
        (
            "p50_secs".into(),
            Json::Num(secs(load.hist.percentile(0.50))),
        ),
        (
            "p90_secs".into(),
            Json::Num(secs(load.hist.percentile(0.90))),
        ),
        (
            "p99_secs".into(),
            Json::Num(secs(load.hist.percentile(0.99))),
        ),
        (
            "p999_secs".into(),
            Json::Num(secs(load.hist.percentile(0.999))),
        ),
        ("max_secs".into(), Json::Num(secs(load.hist.max()))),
        ("prediction_cache_hits".into(), Json::Num(hits)),
        ("prediction_cache_misses".into(), Json::Num(misses)),
        ("cache_hit_rate".into(), Json::Num(hit_rate)),
        ("simulations".into(), Json::Num(simulations)),
        (
            "storm_connections".into(),
            Json::Num(mode.storm_conns as f64),
        ),
        ("storm_leaders".into(), Json::Num(storm_leaders)),
        ("storm_coalesced".into(), Json::Num(storm_coalesced)),
        (
            "faulted_requests".into(),
            Json::Num(faulted_requests as f64),
        ),
        (
            "faulted_throughput_rps".into(),
            Json::Num(faulted_throughput),
        ),
        (
            "fault_errors_4xx".into(),
            Json::Num(fault_errors_4xx as f64),
        ),
        (
            "degraded_requests".into(),
            Json::Num(degraded_requests as f64),
        ),
        (
            "degraded_flagged".into(),
            Json::Num(degraded_flagged as f64),
        ),
        (
            "degraded_throughput_rps".into(),
            Json::Num(degraded_throughput),
        ),
        ("recovery_ms".into(), Json::Num(recovery_ms)),
    ])
    .encode_pretty();
    std::fs::write("BENCH_serve.json", &json).expect("writes BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}

/// One nonblocking pipelined connection of the load generator.
struct LoadConn {
    stream: TcpStream,
    /// Bytes queued but not yet accepted by the kernel.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Response bytes not yet parsed.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Scheduled-arrival stamps (ns since the run origin) of requests
    /// in flight on this connection, FIFO — HTTP/1.1 pipelining
    /// guarantees responses come back in order.
    due: VecDeque<u64>,
}

struct LoadResult {
    completed: u64,
    wall: f64,
    hist: Histogram,
}

/// Cap on requests in flight across all connections: past it the
/// schedule keeps *accruing* (latency stays anchored to the plan) but
/// no new bytes are written, bounding memory under overload.
const MAX_OUTSTANDING: usize = 8 * 1024;

/// Drive the open-loop phase from one thread: schedule, write, read,
/// parse — nonblocking throughout, sleeping only when ahead of plan.
fn open_loop(addr: SocketAddr, mode: &Mode) -> LoadResult {
    // Pre-render every request in the mix once.
    let render = |path: &str, body: &str| {
        format!(
            "POST {path} HTTP/1.1\r\nhost: bench\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes()
    };
    let mix: Vec<Vec<u8>> = PREDICT_BODIES
        .iter()
        .map(|b| render("/v1/predict", b))
        .chain(std::iter::once(render("/v1/search", SEARCH_BODY)))
        .collect();
    // Request i: every 16th a search, otherwise cycle the predicts.
    let pick = |i: u64| -> &[u8] {
        if i % 16 == 15 {
            &mix[mix.len() - 1]
        } else {
            &mix[(i % 4) as usize]
        }
    };

    let mut conns: Vec<LoadConn> = (0..mode.connections)
        .map(|_| {
            let stream = connect_retry(addr);
            stream.set_nodelay(true).ok();
            stream.set_nonblocking(true).expect("nonblocking");
            LoadConn {
                stream,
                wbuf: Vec::with_capacity(16 * 1024),
                wpos: 0,
                rbuf: Vec::with_capacity(64 * 1024),
                rpos: 0,
                due: VecDeque::new(),
            }
        })
        .collect();

    let mut hist = Histogram::new();
    let mut scheduled = 0u64;
    let mut completed = 0u64;
    let mut errors = 0u64;
    let mut scratch = vec![0u8; 64 * 1024];
    let ns_per_req = 1e9 / mode.offered_rps;
    let t0 = Instant::now();
    let deadline = mode.duration;
    // Give the drain tail a hard stop so a wedged server fails loudly
    // instead of hanging CI.
    let hard_stop = mode.duration * 3 + Duration::from_secs(5);

    loop {
        let now = t0.elapsed();
        let now_ns = now.as_nanos() as u64;

        // 1. Schedule: everything the arrival plan says is due by now
        //    (the plan stops at the deadline; the tail then drains).
        if now < deadline {
            let due_by_now = (now_ns as f64 / ns_per_req) as u64;
            while scheduled < due_by_now && (scheduled - completed) < MAX_OUTSTANDING as u64 {
                let slot = (scheduled as usize) % conns.len();
                let conn = &mut conns[slot];
                conn.wbuf.extend_from_slice(pick(scheduled));
                conn.due.push_back((scheduled as f64 * ns_per_req) as u64);
                scheduled += 1;
            }
        }

        // 2. Write: push queued bytes until the kernel pushes back.
        for conn in &mut conns {
            while conn.wpos < conn.wbuf.len() {
                match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => panic!("server closed a load connection"),
                    Ok(n) => conn.wpos += n,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => panic!("load write failed: {e}"),
                }
            }
            if conn.wpos == conn.wbuf.len() {
                conn.wbuf.clear();
                conn.wpos = 0;
            }
        }

        // 3. Read + parse: complete responses retire their request's
        //    scheduled stamp into the histogram.
        let mut progressed = false;
        for conn in &mut conns {
            if conn.due.is_empty() {
                continue;
            }
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => panic!("server hung up mid-benchmark"),
                    Ok(n) => {
                        conn.rbuf.extend_from_slice(&scratch[..n]);
                        if n < scratch.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => panic!("load read failed: {e}"),
                }
            }
            let stamp = t0.elapsed().as_nanos() as u64;
            while let Some((len, status)) = parse_response(&conn.rbuf[conn.rpos..]) {
                conn.rpos += len;
                let due = conn.due.pop_front().expect("response without a request");
                hist.record(stamp.saturating_sub(due));
                completed += 1;
                progressed = true;
                if status != 200 {
                    errors += 1;
                }
            }
            // Compact once parsed bytes dominate the buffer.
            if conn.rpos > 32 * 1024 {
                conn.rbuf.drain(..conn.rpos);
                conn.rpos = 0;
            }
        }

        // 4. Done? The plan is exhausted and every response is home.
        if now >= deadline && completed == scheduled {
            break;
        }
        assert!(
            now < hard_stop,
            "load did not drain: {completed}/{scheduled} after {now:?}"
        );
        // 5. Ahead of plan with nothing in the pipes: yield the core to
        //    the server instead of spinning against it.
        if !progressed {
            std::thread::sleep(Duration::from_micros(100));
        }
    }
    assert_eq!(errors, 0, "{errors} non-200 responses under clean load");
    LoadResult {
        completed,
        wall: t0.elapsed().as_secs_f64(),
        hist,
    }
}

/// Parse one pipelined HTTP/1.1 response at the head of `buf`. Returns
/// `(total_len, status)` when the full head + body is present. The
/// server's header block is fixed-shape (status, content-type,
/// content-length, connection), so a plain scan is enough.
fn parse_response(buf: &[u8]) -> Option<(usize, u16)> {
    let head_end = find(buf, b"\r\n\r\n")?;
    let head = &buf[..head_end];
    let status: u16 = std::str::from_utf8(head.get(9..12)?).ok()?.parse().ok()?;
    let cl_at = find(head, b"content-length:")?;
    let digits = head[cl_at + 15..]
        .iter()
        .skip_while(|b| **b == b' ')
        .take_while(|b| b.is_ascii_digit())
        .fold(0usize, |acc, b| acc * 10 + (b - b'0') as usize);
    let total = head_end + 4 + digits;
    (buf.len() >= total).then_some((total, status))
}

fn find(hay: &[u8], needle: &[u8]) -> Option<usize> {
    hay.windows(needle.len()).position(|w| w == needle)
}

/// Connect with a brief retry: 256 simultaneous connects can outrun
/// the listener's accept backlog.
fn connect_retry(addr: SocketAddr) -> TcpStream {
    for _ in 0..50 {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    panic!("could not connect load generator to {addr}");
}

/// Fire one byte-identical cold request from `n` connections at once;
/// returns every response body (they must all match).
fn storm(addr: SocketAddr, n: usize) -> Vec<String> {
    let mut streams: Vec<TcpStream> = (0..n).map(|_| connect_retry(addr)).collect();
    let req = format!(
        "POST /v1/advise HTTP/1.1\r\nhost: bench\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{STORM_BODY}",
        STORM_BODY.len()
    );
    // Write everywhere first, then read: all n requests are in flight
    // before the first response can possibly be consumed.
    for s in &mut streams {
        s.set_nodelay(true).ok();
        s.write_all(req.as_bytes()).expect("storm write");
    }
    streams
        .into_iter()
        .map(|s| {
            s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
            let mut reader = BufReader::new(s);
            let mut status_line = String::new();
            reader.read_line(&mut status_line).expect("storm status");
            assert!(
                status_line.contains("200"),
                "storm request failed: {status_line}"
            );
            let mut content_length = 0usize;
            loop {
                let mut line = String::new();
                reader.read_line(&mut line).expect("storm header");
                let line = line.trim_end();
                if line.is_empty() {
                    break;
                }
                if let Some(v) = line
                    .to_ascii_lowercase()
                    .strip_prefix("content-length:")
                    .map(str::trim)
                {
                    content_length = v.parse().expect("storm length");
                }
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body).expect("storm body");
            String::from_utf8(body).expect("storm utf8")
        })
        .collect()
}

/// One blocking keep-alive HTTP/1.1 client connection (warmup + fault
/// phase, where simplicity beats throughput).
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = connect_retry(addr);
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone().expect("clones stream");
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    /// POST a body, read the full response, return the status code.
    /// Infallible convenience for warmup, where a failure is a bug.
    fn post(&mut self, path: &str, body: &str) -> u16 {
        self.try_post(path, body).expect("warmup request succeeds")
    }

    /// POST a body; any transport or framing failure comes back as an
    /// `io::Error` so the caller can retry on a fresh connection.
    fn try_post(&mut self, path: &str, body: &str) -> std::io::Result<u16> {
        self.post_full(path, body).map(|(status, _)| status)
    }

    /// POST a body and read the full response text back (the degraded
    /// phase inspects the `degraded` wire member).
    fn post_full(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        write!(
            self.writer,
            "POST {path} HTTP/1.1\r\nhost: bench\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )?;
        self.writer.flush()?;
        self.read_response()
    }

    /// GET a path and read the full response text back.
    fn get_full(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        write!(self.writer, "GET {path} HTTP/1.1\r\nhost: bench\r\n\r\n")?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<(u16, String)> {
        let bad =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("unparseable status line"))?;
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
            {
                content_length = v.parse().map_err(|_| bad("bad content-length"))?;
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok((
            status,
            String::from_utf8(body).map_err(|_| bad("non-utf8 body"))?,
        ))
    }
}

/// One request through the jittered-backoff retry path; a transport
/// failure costs a reconnect and a retry, not the whole benchmark.
fn post_with_retry(
    c: &mut Client,
    addr: SocketAddr,
    path: &str,
    body: &str,
    policy: &BackoffPolicy,
    rng: &mut Rng,
) -> u16 {
    retry_with_backoff(policy, rng, || match c.try_post(path, body) {
        Ok(status) => Ok(status),
        Err(e) => {
            *c = Client::connect(addr);
            Err(e)
        }
    })
    .expect("request exhausted its retry budget")
}
