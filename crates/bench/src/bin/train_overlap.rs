//! **Section V training setup**: fit the `T_overlap` regression on the
//! Table IV training placements and report diagnostics.
//!
//! ```text
//! cargo run -p hms-bench --release --bin train_overlap
//! ```

use hms_bench::{trained_predictor, training_suite, Harness, Table};
use hms_core::ModelOptions;

fn main() {
    let h = Harness::paper();
    let suite = training_suite();
    println!(
        "T_overlap training set: {} placements over {} kernels",
        suite.len(),
        {
            let mut k: Vec<&str> = suite.iter().map(|t| t.kernel).collect();
            k.sort_unstable();
            k.dedup();
            k.len()
        }
    );
    println!("(paper uses 38 training placements; Table IV lower half)\n");

    let (predictor, profiles) = trained_predictor(&h, ModelOptions::full());
    println!(
        "fit: R^2 = {:.3} on {} observations",
        predictor.overlap.r_squared.unwrap_or(f64::NAN),
        profiles.len()
    );

    // Per-placement residual check: predict each training placement
    // against itself (in-sample residuals of the whole pipeline).
    let mut table = Table::new(&["placement", "measured cyc", "predicted cyc", "error"]);
    let mut total = 0.0;
    for (t, p) in suite.iter().zip(&profiles) {
        let kt = t.kernel(h.scale);
        let pm = t.target_placement(&kt);
        let pred = predictor.predict(p, &pm).expect("predicts");
        let err = (pred.cycles - p.measured_cycles as f64).abs() / p.measured_cycles as f64;
        total += err;
        table.row(vec![
            t.label.into(),
            p.measured_cycles.to_string(),
            format!("{:.0}", pred.cycles),
            format!("{:.1}%", err * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "in-sample mean error: {:.1}%",
        total / suite.len() as f64 * 100.0
    );
}
