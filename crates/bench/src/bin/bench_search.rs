//! Search micro-benchmark: the incremental engine vs the naive
//! rewrite-per-candidate path on a three-array placement search, with
//! the engine's observability counters, emitted as `BENCH_search.json`
//! for CI trend tracking.
//!
//! Three timed passes:
//!
//! 1. **naive** — full rewrite + analysis per candidate;
//! 2. **engine cold** — the incremental engine from scratch, writing
//!    its skeletons into a fresh persistent cache directory;
//! 3. **engine warm** — a *new* engine (as after a process restart)
//!    reading the skeletons back from disk. This is the headline
//!    `engine_candidates_per_sec`, the steady-state serving rate.
//!
//! Every pass is asserted bit-identical to the naive ranking. Warm
//! passes are sub-millisecond, so each is taken as the best of three
//! runs — one scheduler preemption would otherwise swamp the number.
//!
//! A fourth **batch** scenario ranks 512 candidates of the synthetic
//! wide8 kernel (8 arrays, wide fan-out): many candidates per skeleton
//! group is where lane-batched replay amortizes best, and the `batch_*`
//! keys let CI track that separately from the narrow spmv search.
//!
//! ```text
//! cargo run -p hms-bench --release --bin bench_search [-- test]
//! ```

use std::time::Instant;

use hms_core::{profile_sample, Predictor, SearchRequest, SearchStrategy};
use hms_kernels::Scale;
use hms_serve::Json;
use hms_types::{ArrayId, GpuConfig};

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("test") => Scale::Test,
        _ => Scale::Full,
    };
    let cfg = GpuConfig::tesla_k80();
    let kt = hms_kernels::by_name("spmv", scale).expect("spmv");
    let sample = kt.default_placement();
    let profile = profile_sample(&kt, &sample, &cfg).expect("profiles");
    let predictor = Predictor::new(cfg.clone());
    let candidates: Vec<ArrayId> = kt
        .arrays
        .iter()
        .filter(|a| !a.written)
        .map(|a| a.id)
        .take(3)
        .collect();

    // Naive baseline: full rewrite + analysis per candidate.
    let space = hms_core::enumerate_placements(&kt.arrays, &sample, &candidates, &cfg, 4096);
    let t0 = Instant::now();
    let naive = hms_core::rank_placements_naive(&predictor, &profile, &space, 0).expect("ranks");
    let naive_secs = t0.elapsed().as_secs_f64();

    let assert_matches_naive = |ranked: &[hms_core::RankedPlacement], what: &str| {
        assert_eq!(naive.len(), ranked.len());
        for (a, b) in naive.iter().zip(ranked) {
            assert_eq!(
                a.predicted_cycles.to_bits(),
                b.predicted_cycles.to_bits(),
                "{what} diverged from naive"
            );
        }
    };

    // Incremental engine, exhaustive, cold persistent cache.
    let skel_dir = std::env::temp_dir().join(format!("hms-bench-skel-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&skel_dir);
    let req = SearchRequest::new(&kt.arrays, &sample)
        .candidates(&candidates)
        .skeleton_cache(&skel_dir);
    let t0 = Instant::now();
    let cold = req.run(&predictor, &profile).expect("searches");
    let cold_secs = t0.elapsed().as_secs_f64();
    assert_matches_naive(&cold.ranked, "cold engine");

    // Warm restart: a fresh engine loads the skeletons back from disk.
    // Best of three runs; stats are deterministic, so keep the last.
    let mut engine_secs = f64::INFINITY;
    let mut outcome = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        outcome = Some(req.run(&predictor, &profile).expect("searches"));
        engine_secs = engine_secs.min(t0.elapsed().as_secs_f64());
    }
    let outcome = outcome.expect("three warm runs");
    assert_matches_naive(&outcome.ranked, "warm engine");
    assert_eq!(
        outcome.stats.skeletons_built, 0,
        "warm pass must not rebuild any skeleton"
    );
    assert!(
        outcome.stats.skeleton_disk_hits > 0,
        "warm pass must load skeletons from disk"
    );
    let _ = std::fs::remove_dir_all(&skel_dir);

    // Branch-and-bound, for the prune-rate counter.
    let bb = SearchRequest::new(&kt.arrays, &sample)
        .candidates(&candidates)
        .strategy(SearchStrategy::BranchAndBound)
        .run(&predictor, &profile)
        .expect("searches");
    assert_eq!(
        bb.ranked.first().map(|r| r.predicted_cycles.to_bits()),
        outcome.ranked.first().map(|r| r.predicted_cycles.to_bits()),
        "pruning dropped the optimum"
    );

    // Batch scenario: wide8 (7 read-only arrays feeding one output),
    // 512 candidates. One skeleton group covering hundreds of
    // candidates is the lane-batched replay's best case.
    let bkt = hms_kernels::by_name("wide8", scale).expect("wide8");
    let bsample = bkt.default_placement();
    let bprofile = profile_sample(&bkt, &bsample, &cfg).expect("profiles");
    let bskel = std::env::temp_dir().join(format!("hms-bench-batch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&bskel);
    let breq = SearchRequest::new(&bkt.arrays, &bsample)
        .read_only_candidates()
        .limit(512)
        .skeleton_cache(&bskel);
    let bcold = breq.run(&predictor, &bprofile).expect("searches");
    let mut batch_secs = f64::INFINITY;
    let mut batch = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        batch = Some(breq.run(&predictor, &bprofile).expect("searches"));
        batch_secs = batch_secs.min(t0.elapsed().as_secs_f64());
    }
    let batch = batch.expect("three batch runs");
    let _ = std::fs::remove_dir_all(&bskel);
    assert_eq!(
        batch.stats.skeletons_built, 0,
        "warm batch pass must not rebuild any skeleton"
    );
    assert!(
        batch.stats.batched_replays > 0,
        "batch pass must take the lane-batched path"
    );
    assert_eq!(bcold.ranked.len(), batch.ranked.len());
    for (a, b) in bcold.ranked.iter().zip(&batch.ranked) {
        assert_eq!(
            a.predicted_cycles.to_bits(),
            b.predicted_cycles.to_bits(),
            "warm batch ranking diverged from cold"
        );
    }
    // The full equivalence net lives in the test suite; the bench
    // re-checks against naive only at Test scale, where a 512-candidate
    // naive pass stays cheap.
    if matches!(scale, Scale::Test) {
        let bcands: Vec<ArrayId> = bkt
            .arrays
            .iter()
            .filter(|a| !a.written)
            .map(|a| a.id)
            .collect();
        let bspace = hms_core::enumerate_placements(&bkt.arrays, &bsample, &bcands, &cfg, 512);
        let bnaive =
            hms_core::rank_placements_naive(&predictor, &bprofile, &bspace, 0).expect("ranks");
        assert_eq!(bnaive.len(), batch.ranked.len());
        for (a, b) in bnaive.iter().zip(&batch.ranked) {
            assert_eq!(
                a.predicted_cycles.to_bits(),
                b.predicted_cycles.to_bits(),
                "batch engine diverged from naive"
            );
        }
    }

    let stats = &outcome.stats;
    let engine_cps = stats.candidates_evaluated as f64 / engine_secs.max(1e-9);
    let cold_cps = cold.stats.candidates_evaluated as f64 / cold_secs.max(1e-9);
    let naive_cps = naive.len() as f64 / naive_secs.max(1e-9);
    println!("search micro-benchmark (spmv, 3 read-only candidate arrays)");
    println!("  candidates:            {}", stats.candidates_evaluated);
    println!("  naive:                 {naive_secs:.3} s  ({naive_cps:.0} cand/s)");
    println!("  engine cold:           {cold_secs:.3} s  ({cold_cps:.0} cand/s)");
    println!("  engine warm:           {engine_secs:.3} s  ({engine_cps:.0} cand/s)");
    println!("  full rewrites (cold):  {}", cold.stats.full_rewrites);
    println!("  skeleton disk hits:    {}", stats.skeleton_disk_hits);
    println!(
        "  rewrite reduction:     {:.2}x",
        cold.stats.rewrite_reduction()
    );
    println!(
        "  b&b prune rate:        {:.1}%",
        bb.stats.prune_rate() * 100.0
    );
    let batch_cps = batch.stats.candidates_evaluated as f64 / batch_secs.max(1e-9);
    println!(
        "batch scenario (wide8, {} candidates)",
        batch.stats.candidates_evaluated
    );
    println!("  engine warm:           {batch_secs:.3} s  ({batch_cps:.0} cand/s)");
    println!("  batched replays:       {}", batch.stats.batched_replays);
    println!("  peak lane width:       {}", batch.stats.lane_width);
    println!("  events streamed:       {}", batch.stats.events_streamed);

    // Escaping-correct JSON via the serve wire codec (the workspace has
    // no external serializer by design).
    let json = Json::Obj(vec![
        ("kernel".into(), Json::str("spmv")),
        (
            "candidate_arrays".into(),
            Json::Num(candidates.len() as f64),
        ),
        (
            "candidates".into(),
            Json::Num(stats.candidates_evaluated as f64),
        ),
        ("naive_secs".into(), Json::Num(naive_secs)),
        ("engine_cold_secs".into(), Json::Num(cold_secs)),
        ("engine_secs".into(), Json::Num(engine_secs)),
        ("naive_candidates_per_sec".into(), Json::Num(naive_cps)),
        ("engine_cold_candidates_per_sec".into(), Json::Num(cold_cps)),
        ("engine_candidates_per_sec".into(), Json::Num(engine_cps)),
        (
            "full_rewrites".into(),
            Json::Num(cold.stats.full_rewrites as f64),
        ),
        (
            "delta_cache_hits".into(),
            Json::Num(stats.delta_cache_hits as f64),
        ),
        (
            "skeleton_disk_hits".into(),
            Json::Num(stats.skeleton_disk_hits as f64),
        ),
        (
            "rewrite_reduction".into(),
            Json::Num(cold.stats.rewrite_reduction()),
        ),
        (
            "bb_candidates_pruned".into(),
            Json::Num(bb.stats.candidates_pruned as f64),
        ),
        ("bb_prune_rate".into(), Json::Num(bb.stats.prune_rate())),
        ("batch_kernel".into(), Json::str("wide8")),
        (
            "batch_candidates".into(),
            Json::Num(batch.stats.candidates_evaluated as f64),
        ),
        ("batch_secs".into(), Json::Num(batch_secs)),
        ("batch_candidates_per_sec".into(), Json::Num(batch_cps)),
        (
            "batch_batched_replays".into(),
            Json::Num(batch.stats.batched_replays as f64),
        ),
        (
            "batch_peak_lane_width".into(),
            Json::Num(batch.stats.lane_width as f64),
        ),
        (
            "batch_events_streamed".into(),
            Json::Num(batch.stats.events_streamed as f64),
        ),
    ])
    .encode_pretty();
    std::fs::write("BENCH_search.json", &json).expect("writes BENCH_search.json");
    println!("wrote BENCH_search.json");
}
