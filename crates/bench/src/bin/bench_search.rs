//! Search micro-benchmark: the incremental engine vs the naive
//! rewrite-per-candidate path on a three-array placement search, with
//! the engine's observability counters, emitted as `BENCH_search.json`
//! for CI trend tracking.
//!
//! ```text
//! cargo run -p hms-bench --release --bin bench_search [-- test]
//! ```

use std::time::Instant;

use hms_core::{profile_sample, Predictor, SearchRequest, SearchStrategy};
use hms_kernels::Scale;
use hms_serve::Json;
use hms_types::{ArrayId, GpuConfig};

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("test") => Scale::Test,
        _ => Scale::Full,
    };
    let cfg = GpuConfig::tesla_k80();
    let kt = hms_kernels::by_name("spmv", scale).expect("spmv");
    let sample = kt.default_placement();
    let profile = profile_sample(&kt, &sample, &cfg).expect("profiles");
    let predictor = Predictor::new(cfg.clone());
    let candidates: Vec<ArrayId> = kt
        .arrays
        .iter()
        .filter(|a| !a.written)
        .map(|a| a.id)
        .take(3)
        .collect();

    // Naive baseline: full rewrite + analysis per candidate.
    let space = hms_core::enumerate_placements(&kt.arrays, &sample, &candidates, &cfg, 4096);
    let t0 = Instant::now();
    #[allow(deprecated)]
    let naive = hms_core::rank_placements_threads(&predictor, &profile, &space, 0).expect("ranks");
    let naive_secs = t0.elapsed().as_secs_f64();

    // Incremental engine, exhaustive.
    let t0 = Instant::now();
    let outcome = SearchRequest::new(&kt.arrays, &sample)
        .candidates(&candidates)
        .run(&predictor, &profile)
        .expect("searches");
    let engine_secs = t0.elapsed().as_secs_f64();
    assert_eq!(naive.len(), outcome.ranked.len());
    for (a, b) in naive.iter().zip(&outcome.ranked) {
        assert_eq!(
            a.predicted_cycles.to_bits(),
            b.predicted_cycles.to_bits(),
            "engine diverged from naive"
        );
    }

    // Branch-and-bound, for the prune-rate counter.
    let bb = SearchRequest::new(&kt.arrays, &sample)
        .candidates(&candidates)
        .strategy(SearchStrategy::BranchAndBound)
        .run(&predictor, &profile)
        .expect("searches");
    assert_eq!(
        bb.ranked.first().map(|r| r.predicted_cycles.to_bits()),
        outcome.ranked.first().map(|r| r.predicted_cycles.to_bits()),
        "pruning dropped the optimum"
    );

    let stats = &outcome.stats;
    let engine_cps = stats.candidates_evaluated as f64 / engine_secs.max(1e-9);
    let naive_cps = naive.len() as f64 / naive_secs.max(1e-9);
    println!("search micro-benchmark (spmv, 3 read-only candidate arrays)");
    println!("  candidates:            {}", stats.candidates_evaluated);
    println!("  naive:                 {naive_secs:.3} s  ({naive_cps:.0} cand/s)");
    println!("  engine:                {engine_secs:.3} s  ({engine_cps:.0} cand/s)");
    println!("  full rewrites:         {}", stats.full_rewrites);
    println!("  rewrite reduction:     {:.2}x", stats.rewrite_reduction());
    println!(
        "  b&b prune rate:        {:.1}%",
        bb.stats.prune_rate() * 100.0
    );

    // Escaping-correct JSON via the serve wire codec (the workspace has
    // no external serializer by design).
    let json = Json::Obj(vec![
        ("kernel".into(), Json::str("spmv")),
        (
            "candidate_arrays".into(),
            Json::Num(candidates.len() as f64),
        ),
        (
            "candidates".into(),
            Json::Num(stats.candidates_evaluated as f64),
        ),
        ("naive_secs".into(), Json::Num(naive_secs)),
        ("engine_secs".into(), Json::Num(engine_secs)),
        ("naive_candidates_per_sec".into(), Json::Num(naive_cps)),
        ("engine_candidates_per_sec".into(), Json::Num(engine_cps)),
        (
            "full_rewrites".into(),
            Json::Num(stats.full_rewrites as f64),
        ),
        (
            "delta_cache_hits".into(),
            Json::Num(stats.delta_cache_hits as f64),
        ),
        (
            "rewrite_reduction".into(),
            Json::Num(stats.rewrite_reduction()),
        ),
        (
            "bb_candidates_pruned".into(),
            Json::Num(bb.stats.candidates_pruned as f64),
        ),
        ("bb_prune_rate".into(), Json::Num(bb.stats.prune_rate())),
    ])
    .encode_pretty();
    std::fs::write("BENCH_search.json", &json).expect("writes BENCH_search.json");
    println!("wrote BENCH_search.json");
}
