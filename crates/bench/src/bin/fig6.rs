//! **Figure 6**: ranking the five `neuralnet` weight placements — our
//! model vs a PORPLE-style latency-oriented model, against the measured
//! ranking.
//!
//! "PORPLE cannot correctly rank different data placements, especially
//! because of its poor performance modeling result for a data placement
//! (NN_S). Our models correctly rank the performance of those data
//! placements."
//!
//! ```text
//! cargo run -p hms-bench --release --bin fig6
//! ```

use hms_bench::{trained_predictor, Harness, Table};
use hms_core::{ModelOptions, PorpleModel};
use hms_stats::{rank_inversions, rank_of, spearman};
use hms_types::{ArrayId, MemorySpace};

fn main() {
    let h = Harness::paper();
    let kt = hms_kernels::by_name("neuralnet", h.scale).expect("neuralnet exists");
    let weights = ArrayId(
        kt.arrays
            .iter()
            .position(|a| a.name == "weights")
            .expect("weights array") as u32,
    );
    let sample = kt.default_placement();

    eprintln!("training T_overlap...");
    let (predictor, _) = trained_predictor(&h, ModelOptions::full());
    let porple = PorpleModel::new(h.cfg.clone());
    let profile = hms_core::profile_sample(&kt, &sample, &h.cfg).expect("profiles");

    let placements = [
        ("NN_G", MemorySpace::Global),
        ("NN_C", MemorySpace::Constant),
        ("NN_S", MemorySpace::Shared),
        ("NN_T", MemorySpace::Texture1D),
        ("NN_2T", MemorySpace::Texture2D),
    ];

    let mut labels = Vec::new();
    let mut measured = Vec::new();
    let mut ours = Vec::new();
    let mut porple_scores = Vec::new();
    for (label, space) in placements {
        let pm = sample.with(weights, space);
        let m = {
            let ct = hms_trace::materialize(&kt, &pm, &h.cfg).expect("valid");
            hms_sim::simulate_default(&ct, &h.cfg)
                .expect("simulates")
                .cycles as f64
        };
        let p = predictor.predict(&profile, &pm).expect("predicts").cycles;
        let s = porple.score(&profile, &pm).expect("scores");
        labels.push(label);
        measured.push(m);
        ours.push(p);
        porple_scores.push(s);
    }

    let rank_m = rank_of(&measured);
    let rank_o = rank_of(&ours);
    let rank_p = rank_of(&porple_scores);

    println!("Figure 6: ranking five neuralnet weight placements (rank 0 = fastest)\n");
    let mut table = Table::new(&[
        "placement",
        "measured cyc",
        "measured rank",
        "ours pred",
        "ours rank",
        "PORPLE score",
        "PORPLE rank",
    ]);
    for i in 0..labels.len() {
        table.row(vec![
            labels[i].into(),
            format!("{:.0}", measured[i]),
            rank_m[i].to_string(),
            format!("{:.0}", ours[i]),
            rank_o[i].to_string(),
            format!("{:.0}", porple_scores[i]),
            rank_p[i].to_string(),
        ]);
    }
    println!("{}", table.render());

    let inv_ours = rank_inversions(&ours, &measured);
    let inv_porple = rank_inversions(&porple_scores, &measured);
    println!(
        "pairwise rank inversions vs measured: ours {inv_ours}, PORPLE {inv_porple} (of 10 pairs)"
    );
    println!(
        "Spearman correlation vs measured:     ours {:.2}, PORPLE {:.2}",
        spearman(&ours, &measured).unwrap_or(f64::NAN),
        spearman(&porple_scores, &measured).unwrap_or(f64::NAN)
    );
    println!("\npaper: our model ranks all five placements correctly; PORPLE misranks,");
    println!("driven by its poor estimate for NN_S (it is blind to staging + occupancy).");
}
