//! Design-choice ablation: the 2-D texture block-linear tile edge.
//!
//! The NVIDIA tiling is undocumented; DESIGN.md fixes an 8-element square
//! tile. This sweep measures, on the machine, how the tile edge changes
//! the kernels whose Table IV tests bind 2-D textures (matrixMul,
//! transpose, scan, qtc, convolution).
//!
//! ```text
//! cargo run -p hms-bench --release --bin sweep_tile
//! ```

use hms_bench::suite::PlacementTest;
use hms_bench::{Harness, Table};
use hms_trace::materialize;
use hms_types::MemorySpace;

fn main() {
    let h = Harness::paper();
    use MemorySpace::Texture2D as T2;
    let tests: Vec<PlacementTest> = vec![
        PlacementTest {
            kernel: "matrixMul",
            label: "mm_A2T_B2T",
            sample: &[("As", MemorySpace::Shared), ("Bs", MemorySpace::Shared)],
            moves: &[("A", T2), ("B", T2)],
        },
        PlacementTest {
            kernel: "transpose",
            label: "tr_idata_2T",
            sample: &[],
            moves: &[("idata", T2)],
        },
        PlacementTest {
            kernel: "scan",
            label: "scan_2T",
            sample: &[("s_block", MemorySpace::Shared)],
            moves: &[("g_idata", T2)],
        },
        PlacementTest {
            kernel: "qtc",
            label: "qtc_2T",
            sample: &[],
            moves: &[("distance_matrix", T2)],
        },
        PlacementTest {
            kernel: "convolutionCols",
            label: "conv2_2T",
            sample: &[("c_Kernel", MemorySpace::Constant)],
            moves: &[("d_Src", T2)],
        },
    ];
    let tiles = [2u64, 4, 8, 16, 32];

    println!("2-D texture tile-edge sweep (measured cycles; default tile = 8)\n");
    let mut header = vec!["benchmark".to_string()];
    header.extend(tiles.iter().map(|t| format!("tile {t}")));
    let mut table = Table::new(&header.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    for t in &tests {
        let mut row = vec![t.label.to_string()];
        for &tile in &tiles {
            let mut cfg = h.cfg.clone();
            cfg.tex2d_tile = tile;
            let kt = t.kernel(h.scale);
            let pm = t.target_placement(&kt);
            let ct = materialize(&kt, &pm, &cfg).expect("valid");
            let r = hms_sim::simulate_default(&ct, &cfg).expect("simulates");
            row.push(r.cycles.to_string());
        }
        table.row(row);
    }
    println!("{}", table.render());
    println!("Reading: tiles must be large enough that a 32-byte texture-cache line");
    println!("holds a whole tile row, and small enough that 2-D neighbourhoods fit");
    println!("few lines — the 8-element default balances both.");
}
