//! **Figure 5**: prediction accuracy of the full model vs the
//! Sim-et-al.-style [7] baseline over the evaluation suite.
//!
//! The paper reports 9.9% average error for its model and a 17.6%
//! average accuracy improvement over [7], with the largest gains on
//! NN_C / SCAN_2 (instruction replays) and Reduction_2 (row-buffer
//! misses).
//!
//! ```text
//! cargo run -p hms-bench --release --bin fig5
//! ```

use hms_bench::runner::{mean_error, run_suite, run_suite_simkim};
use hms_bench::{evaluation_suite, trained_predictor, Harness, Table};
use hms_core::ModelOptions;

fn main() {
    let h = Harness::paper();
    let suite = evaluation_suite();
    eprintln!("training T_overlap on the Table IV training suite...");
    let (predictor, profiles) = trained_predictor(&h, ModelOptions::full());
    eprintln!(
        "trained on {} placements (R^2 = {:.3})\n",
        profiles.len(),
        predictor.overlap.r_squared.unwrap_or(f64::NAN)
    );

    let ours = run_suite(&h, &predictor, &suite);
    let simkim = run_suite_simkim(&h, &suite);

    println!("Figure 5: predicted performance normalized by measured performance");
    println!("(1.000 = perfect prediction)\n");
    let mut table = Table::new(&[
        "benchmark",
        "measured cyc",
        "ours",
        "ours err",
        "[7]",
        "[7] err",
    ]);
    for (o, s) in ours.iter().zip(&simkim) {
        assert_eq!(o.label, s.label);
        table.row(vec![
            o.label.into(),
            o.measured_cycles.to_string(),
            format!("{:.3}", o.normalized()),
            format!("{:.1}%", o.error() * 100.0),
            format!("{:.3}", s.normalized()),
            format!("{:.1}%", s.error() * 100.0),
        ]);
    }
    println!("{}", table.render());

    let ours_err = mean_error(&ours);
    let simkim_err = mean_error(&simkim);
    // Bootstrap 95% CIs over the 14 evaluation points.
    let errs =
        |rs: &[hms_bench::ExperimentResult]| -> Vec<f64> { rs.iter().map(|r| r.error()).collect() };
    let ci_ours = hms_stats::bootstrap_mean_ci(&errs(&ours), 0.95, 4000, 5).expect("non-empty");
    let ci_simkim = hms_stats::bootstrap_mean_ci(&errs(&simkim), 0.95, 4000, 5).expect("non-empty");
    println!(
        "average prediction error: ours {:.1}% (95% CI {:.1}-{:.1}%)  |  [7]-style {:.1}% (95% CI {:.1}-{:.1}%)",
        ours_err * 100.0,
        ci_ours.lo * 100.0,
        ci_ours.hi * 100.0,
        simkim_err * 100.0,
        ci_simkim.lo * 100.0,
        ci_simkim.hi * 100.0
    );
    println!(
        "accuracy improvement over [7]: {:.1} percentage points",
        (simkim_err - ours_err) * 100.0
    );
    println!("\npaper: ours 9.9% average error; 17.6% average improvement over [7].");
}
