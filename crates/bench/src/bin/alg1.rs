//! **Algorithm 1**: address-mapping detection and row-buffer latency
//! measurement (paper Section III-C2).
//!
//! Probes the simulated GDDR5 controller one address bit at a time —
//! without looking at its configured mapping — and reports the detected
//! column/row/bank bit groups and the three latencies, next to the
//! ground truth. The paper's K80 measurement found 352 / 742 / 1008 ns.
//!
//! ```text
//! cargo run -p hms-bench --release --bin alg1
//! ```

use hms_dram::{detect_mapping, AddressMapping, BitClass, MemoryController};
use hms_types::GpuConfig;

fn main() {
    let cfg = GpuConfig::tesla_k80();
    let truth = AddressMapping::k80_like(cfg.dram.total_banks());
    let bits = truth.addr_bits;
    let timing = cfg.dram;

    let detected = detect_mapping(|| MemoryController::new(truth.clone(), timing, false), bits);

    println!("Algorithm 1: address-mapping detection on the simulated GDDR5\n");
    println!("bit classes (0..{bits}):");
    for (i, c) in detected.classes.iter().enumerate() {
        let label = match c {
            BitClass::Column => "column/byte",
            BitClass::Row => "row",
            BitClass::Bank => "bank",
        };
        println!("  bit {i:>2}: {label}");
    }
    println!();
    println!("detected column/byte bits: {:?}", detected.column_bits());
    println!("detected row bits:         {:?}", detected.row_bits());
    println!("detected bank bits:        {:?}", detected.bank_bits());
    println!();
    println!(
        "ground truth column bits:  {:?} (+ byte bits 0..{})",
        truth.col_bit_positions, truth.byte_bits
    );
    println!("ground truth row bits:     {:?}", truth.row_bit_positions);

    let ns = |cycles: u64| cfg.cycles_to_ns(cycles as f64);
    println!();
    println!("measured latencies (paper's K80: hit 352 ns, miss 742 ns, conflict 1008 ns):");
    println!(
        "  row-buffer hit:      {:>6} cycles = {:>7.0} ns",
        detected.hit_latency,
        ns(detected.hit_latency)
    );
    println!(
        "  row-buffer miss:     {:>6} cycles = {:>7.0} ns",
        detected.miss_latency,
        ns(detected.miss_latency)
    );
    println!(
        "  row conflict:        {:>6} cycles = {:>7.0} ns",
        detected.conflict_latency,
        ns(detected.conflict_latency)
    );
    let variation = (detected.miss_latency as f64 / detected.hit_latency as f64 - 1.0) * 100.0;
    println!();
    println!("hit-vs-miss latency variation: {variation:.0}% (paper reports up to 110%)");

    // Verification summary.
    let cols_ok = {
        let mut expect: Vec<u32> = (0..truth.byte_bits).collect();
        expect.extend(&truth.col_bit_positions);
        detected.column_bits() == expect
    };
    let rows_ok = detected.row_bits() == truth.row_bit_positions;
    println!();
    println!(
        "detection {} ground truth",
        if cols_ok && rows_ok {
            "MATCHES"
        } else {
            "DIVERGES FROM"
        }
    );
}
