//! Log-linear latency histogram for the load benchmarks.
//!
//! Recording is O(1) into a fixed bucket table (32 linear sub-buckets
//! per octave, ≤ ~3.2% relative error), so the serving benchmark can
//! histogram hundreds of thousands of samples per second without the
//! sort-all-samples pass the old closed-loop harness needed — and,
//! crucially, without allocating per sample on the measurement path.
//!
//! Coordinated-omission safety is the *caller's* contract: record the
//! time from each request's **scheduled arrival** (its slot in the
//! open-loop plan) to its response, never from the moment the client
//! got around to sending it. A stalled server then shows up as a long
//! tail instead of silently shrinking the sample count.

/// Linear sub-buckets per octave. 32 gives `1/32 ≈ 3.1%` worst-case
/// relative error, matching what latency gates actually resolve.
const SUB: u64 = 32;
/// `2 * SUB` values fit the first (fully linear) region `[0, 64)`.
const LINEAR: u64 = 2 * SUB;

/// Index for a value: exact below [`LINEAR`], log-linear above.
fn index(v: u64) -> usize {
    if v < LINEAR {
        return v as usize;
    }
    // Octave above the linear range, then 32 linear steps within it:
    // `v >> e` lands in `[32, 64)`, so indices stay contiguous.
    let e = (64 - v.leading_zeros() as u64) - (LINEAR.trailing_zeros() as u64);
    (e * SUB + (v >> e)) as usize
}

/// Lower edge of a bucket (inverse of [`index`] up to bucket width).
fn lower(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < LINEAR {
        return idx;
    }
    let e = idx / SUB - 1;
    (idx - e * SUB) << e
}

/// A fixed-size log-linear histogram of `u64` samples (nanoseconds, by
/// convention, though nothing depends on the unit).
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            // Enough buckets for the full u64 range: 58 octaves above
            // the linear region.
            counts: vec![0; index(u64::MAX) + 1],
            count: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[index(v)] += 1;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v as u128;
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact largest sample (not bucket-quantized).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean of all samples (exact, from the running sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the bucket midpoint, i.e.
    /// within one sub-bucket (≤ ~3.2%) of the true order statistic.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                let lo = lower(idx);
                let width = (lower(idx + 1) - lo).max(1);
                return (lo + width / 2).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hms_stats::rng::Rng;

    #[test]
    fn linear_region_is_exact() {
        let mut h = Histogram::new();
        for v in 0..LINEAR {
            h.record(v);
        }
        // Every value below LINEAR occupies its own bucket, so the
        // reported quantile is the value itself.
        for v in [0, 1, 31, 63] {
            let q = (v + 1) as f64 / LINEAR as f64;
            assert_eq!(h.percentile(q), v, "q={q}");
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), LINEAR - 1);
    }

    #[test]
    fn indices_are_contiguous_and_monotone() {
        let mut prev = 0usize;
        for bits in 6..63 {
            for v in [(1u64 << bits) - 1, 1 << bits, (1 << bits) + 1] {
                let idx = index(v);
                assert!(idx >= prev, "index regressed at {v}");
                assert!(lower(idx) <= v && v < lower(idx + 1), "v={v} idx={idx}");
                prev = idx;
            }
        }
    }

    #[test]
    fn quantiles_track_exact_order_statistics_within_bucket_error() {
        let mut rng = Rng::seed_from_u64(0x1157);
        let mut h = Histogram::new();
        let mut exact: Vec<u64> = (0..50_000)
            .map(|_| {
                // Span several octaves, like microsecond..second latencies.
                let v = 1_000 + rng.gen_range(0u64..10_000_000);
                h.record(v);
                v
            })
            .collect();
        exact.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * exact.len() as f64).ceil() as usize).max(1) - 1;
            let truth = exact[rank] as f64;
            let got = h.percentile(q) as f64;
            let rel = (got - truth).abs() / truth;
            assert!(rel <= 1.0 / SUB as f64, "q={q}: got {got}, truth {truth}");
        }
        assert_eq!(h.max(), *exact.last().unwrap());
        assert_eq!(h.min(), exact[0]);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut rng = Rng::seed_from_u64(7);
        let (mut a, mut b, mut all) = (Histogram::new(), Histogram::new(), Histogram::new());
        for i in 0..10_000u64 {
            let v = rng.gen_range(1u64..1_000_000);
            all.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for q in [0.1, 0.5, 0.99] {
            assert_eq!(a.percentile(q), all.percentile(q));
        }
    }
}
