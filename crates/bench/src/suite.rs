//! The Table IV benchmark/placement suites.
//!
//! Each [`PlacementTest`] names a kernel, its *sample* placement (the
//! benchmark's natural placement — e.g. SHOC binds spmv's `d_vec` to a
//! texture and keeps fft's staging buffer in shared memory), and the
//! moves that produce the *target* placement, in the paper's
//! `object(from->to)` notation.

use hms_kernels::Scale;
use hms_trace::KernelTrace;
use hms_types::{ArrayId, MemorySpace, PlacementMap};

/// One placement test from Table IV.
#[derive(Debug, Clone)]
pub struct PlacementTest {
    /// Kernel name in the `hms_kernels` registry.
    pub kernel: &'static str,
    /// Figure 5 label (e.g. `"NN_C"`).
    pub label: &'static str,
    /// Sample placement as `(array_name, space)` overrides of all-global.
    pub sample: &'static [(&'static str, MemorySpace)],
    /// Moves applied to the sample placement to form the target.
    pub moves: &'static [(&'static str, MemorySpace)],
}

impl PlacementTest {
    /// Build the kernel trace at `scale`.
    pub fn kernel(&self, scale: Scale) -> KernelTrace {
        hms_kernels::by_name(self.kernel, scale)
            .unwrap_or_else(|| panic!("unknown kernel `{}`", self.kernel))
    }

    /// Resolve a named placement override list against a kernel.
    fn resolve(
        kt: &KernelTrace,
        overrides: &[(&str, MemorySpace)],
        base: PlacementMap,
    ) -> PlacementMap {
        let mut pm = base;
        for (name, space) in overrides {
            let id = kt
                .arrays
                .iter()
                .position(|a| a.name == *name)
                .unwrap_or_else(|| panic!("kernel `{}` has no array `{name}`", kt.name));
            pm = pm.with(ArrayId(id as u32), *space);
        }
        pm
    }

    /// The sample placement for this test's kernel.
    pub fn sample_placement(&self, kt: &KernelTrace) -> PlacementMap {
        Self::resolve(kt, self.sample, PlacementMap::all_global(kt.arrays.len()))
    }

    /// The target placement.
    pub fn target_placement(&self, kt: &KernelTrace) -> PlacementMap {
        Self::resolve(kt, self.moves, self.sample_placement(kt))
    }
}

use MemorySpace::{Constant as C, Global as G, Shared as S, Texture1D as T, Texture2D as T2};

/// The natural (sample) placements, shared by several tests.
const FFT_SAMPLE: &[(&str, MemorySpace)] = &[("smem", S)];
const MATMUL_SAMPLE: &[(&str, MemorySpace)] = &[("As", S), ("Bs", S)];
const REDUCTION_SAMPLE: &[(&str, MemorySpace)] = &[("sdata", S)];
const SCAN_SAMPLE: &[(&str, MemorySpace)] = &[("s_block", S)];
const SORT_SAMPLE: &[(&str, MemorySpace)] = &[("sBlockOffsets", S)];
const SPMV_SAMPLE: &[(&str, MemorySpace)] = &[("d_vec", T)];
const MD_SAMPLE: &[(&str, MemorySpace)] = &[("d_position", T)];
const CONV_SAMPLE: &[(&str, MemorySpace)] = &[("c_Kernel", C)];

/// The evaluation set (Table IV, top): the paper's Figure 5 points.
pub fn evaluation_suite() -> Vec<PlacementTest> {
    vec![
        PlacementTest {
            kernel: "bfs",
            label: "bfs_2",
            sample: &[],
            moves: &[("edgeArray", T)],
        },
        PlacementTest {
            kernel: "fft",
            label: "fft_1",
            sample: FFT_SAMPLE,
            moves: &[("smem", G)],
        },
        PlacementTest {
            kernel: "neuralnet",
            label: "NN_C",
            sample: &[],
            moves: &[("weights", C)],
        },
        PlacementTest {
            kernel: "neuralnet",
            label: "NN_S",
            sample: &[],
            moves: &[("weights", S)],
        },
        PlacementTest {
            kernel: "neuralnet",
            label: "NN_T",
            sample: &[],
            moves: &[("weights", T)],
        },
        PlacementTest {
            kernel: "neuralnet",
            label: "NN_2T",
            sample: &[],
            moves: &[("weights", T2)],
        },
        PlacementTest {
            kernel: "reduction",
            label: "Reduction_2",
            sample: REDUCTION_SAMPLE,
            moves: &[("sdata", G)],
        },
        PlacementTest {
            kernel: "scan",
            label: "SCAN_2",
            sample: SCAN_SAMPLE,
            moves: &[("g_idata", T2)],
        },
        PlacementTest {
            kernel: "sort",
            label: "Sort_2",
            sample: SORT_SAMPLE,
            moves: &[("sBlockOffsets", G)],
        },
        PlacementTest {
            kernel: "stencil2d",
            label: "Stencil_2",
            sample: &[],
            moves: &[("data", T)],
        },
        PlacementTest {
            kernel: "md5hash",
            label: "MD5_2",
            sample: &[],
            moves: &[("foundKey", S)],
        },
        PlacementTest {
            kernel: "s3d",
            label: "S3D_p",
            sample: &[],
            moves: &[("gpu_p", T)],
        },
        PlacementTest {
            kernel: "s3d",
            label: "S3D_y",
            sample: &[],
            moves: &[("gpu_y", T)],
        },
        PlacementTest {
            kernel: "s3d",
            label: "S3D_py",
            sample: &[],
            moves: &[("gpu_p", T), ("gpu_y", T)],
        },
    ]
}

/// The `T_overlap` training set (Table IV, bottom): 38 placements over
/// convolution, md, matrixMul, spmv, transpose, cfd, triad, and QTC.
pub fn training_suite() -> Vec<PlacementTest> {
    vec![
        // convolutionSeparable (SDK): 5 placements incl. samples.
        PlacementTest {
            kernel: "convolutionRows",
            label: "conv_sample",
            sample: CONV_SAMPLE,
            moves: &[],
        },
        PlacementTest {
            kernel: "convolutionRows",
            label: "conv_src_2T",
            sample: CONV_SAMPLE,
            moves: &[("d_Src", T2)],
        },
        PlacementTest {
            kernel: "convolutionRows",
            label: "conv_src_T",
            sample: CONV_SAMPLE,
            moves: &[("d_Src", T)],
        },
        PlacementTest {
            kernel: "convolutionRows",
            label: "conv_kern_G",
            sample: CONV_SAMPLE,
            moves: &[("c_Kernel", G)],
        },
        PlacementTest {
            kernel: "convolutionRows",
            label: "conv_kern_T",
            sample: CONV_SAMPLE,
            moves: &[("c_Kernel", T)],
        },
        PlacementTest {
            kernel: "convolutionCols",
            label: "conv2_src_2T",
            sample: CONV_SAMPLE,
            moves: &[("d_Src", T2)],
        },
        PlacementTest {
            kernel: "convolutionCols",
            label: "conv2_kern_G",
            sample: CONV_SAMPLE,
            moves: &[("c_Kernel", G)],
        },
        // md (SHOC): 6 placements.
        PlacementTest {
            kernel: "md",
            label: "md_sample",
            sample: MD_SAMPLE,
            moves: &[],
        },
        PlacementTest {
            kernel: "md",
            label: "md_pos_G",
            sample: MD_SAMPLE,
            moves: &[("d_position", G)],
        },
        PlacementTest {
            kernel: "md",
            label: "md_neigh_T",
            sample: MD_SAMPLE,
            moves: &[("neighList", T)],
        },
        PlacementTest {
            kernel: "md",
            label: "md_pos_G_neigh_T",
            sample: MD_SAMPLE,
            moves: &[("d_position", G), ("neighList", T)],
        },
        // matrixMul (SDK): 8 placements.
        PlacementTest {
            kernel: "matrixMul",
            label: "mm_sample",
            sample: MATMUL_SAMPLE,
            moves: &[],
        },
        PlacementTest {
            kernel: "matrixMul",
            label: "mm_A2T_B2T",
            sample: MATMUL_SAMPLE,
            moves: &[("A", T2), ("B", T2)],
        },
        PlacementTest {
            kernel: "matrixMul",
            label: "mm_A2T",
            sample: MATMUL_SAMPLE,
            moves: &[("A", T2)],
        },
        PlacementTest {
            kernel: "matrixMul",
            label: "mm_AT",
            sample: MATMUL_SAMPLE,
            moves: &[("A", T)],
        },
        PlacementTest {
            kernel: "matrixMul",
            label: "mm_AT_B2T",
            sample: MATMUL_SAMPLE,
            moves: &[("A", T), ("B", T2)],
        },
        PlacementTest {
            kernel: "matrixMul",
            label: "mm_B2T",
            sample: MATMUL_SAMPLE,
            moves: &[("B", T2)],
        },
        PlacementTest {
            kernel: "matrixMul",
            label: "mm_AT_BT",
            sample: MATMUL_SAMPLE,
            moves: &[("A", T), ("B", T)],
        },
        PlacementTest {
            kernel: "matrixMul",
            label: "mm_BT",
            sample: MATMUL_SAMPLE,
            moves: &[("B", T)],
        },
        // spmv (SHOC): 10 placements.
        PlacementTest {
            kernel: "spmv",
            label: "spmv_sample",
            sample: SPMV_SAMPLE,
            moves: &[],
        },
        PlacementTest {
            kernel: "spmv",
            label: "spmv_rowD_S_vec_G",
            sample: SPMV_SAMPLE,
            moves: &[("rowDelimiters", S), ("d_vec", G)],
        },
        PlacementTest {
            kernel: "spmv",
            label: "spmv_rowD_C_vec_G",
            sample: SPMV_SAMPLE,
            moves: &[("rowDelimiters", C), ("d_vec", G)],
        },
        PlacementTest {
            kernel: "spmv",
            label: "spmv_rowD_T_vec_G",
            sample: SPMV_SAMPLE,
            moves: &[("rowDelimiters", T), ("d_vec", G)],
        },
        PlacementTest {
            kernel: "spmv",
            label: "spmv_rowD_S",
            sample: SPMV_SAMPLE,
            moves: &[("rowDelimiters", S)],
        },
        PlacementTest {
            kernel: "spmv",
            label: "spmv_val_T_vec_G",
            sample: SPMV_SAMPLE,
            moves: &[("val", T), ("d_vec", G)],
        },
        PlacementTest {
            kernel: "spmv",
            label: "spmv_rowD_T_vec_C",
            sample: SPMV_SAMPLE,
            moves: &[("rowDelimiters", T), ("d_vec", C)],
        },
        PlacementTest {
            kernel: "spmv",
            label: "spmv_val_cols_T_rowD_C_vec_G",
            sample: SPMV_SAMPLE,
            moves: &[("val", T), ("cols", T), ("rowDelimiters", C), ("d_vec", G)],
        },
        PlacementTest {
            kernel: "spmv",
            label: "spmv_val_cols_T",
            sample: SPMV_SAMPLE,
            moves: &[("val", T), ("cols", T)],
        },
        // transpose (SDK): 3 placements.
        PlacementTest {
            kernel: "transpose",
            label: "tr_sample",
            sample: &[],
            moves: &[],
        },
        PlacementTest {
            kernel: "transpose",
            label: "tr_idata_2T",
            sample: &[],
            moves: &[("idata", T2)],
        },
        PlacementTest {
            kernel: "transpose",
            label: "tr_idata_T",
            sample: &[],
            moves: &[("idata", T)],
        },
        // cfd (SDK): 2 placements.
        PlacementTest {
            kernel: "cfd",
            label: "cfd_sample",
            sample: &[],
            moves: &[],
        },
        PlacementTest {
            kernel: "cfd",
            label: "cfd_var_T",
            sample: &[],
            moves: &[("variables", T)],
        },
        // triad (SHOC): 2 placements.
        PlacementTest {
            kernel: "triad",
            label: "triad_sample",
            sample: &[],
            moves: &[],
        },
        PlacementTest {
            kernel: "triad",
            label: "triad_B_S",
            sample: &[],
            moves: &[("B", S)],
        },
        // QTC (SHOC): 2 placements.
        PlacementTest {
            kernel: "qtc",
            label: "qtc_sample",
            sample: &[],
            moves: &[],
        },
        PlacementTest {
            kernel: "qtc",
            label: "qtc_dist_2T",
            sample: &[],
            moves: &[("distance_matrix", T2)],
        },
    ]
}

/// Table I's six benchmarks / seven kernels with the placement sets used
/// for the cosine-similarity event mining (34 placements).
pub fn table1_suite() -> Vec<(&'static str, Vec<PlacementTest>)> {
    fn t(
        kernel: &'static str,
        label: &'static str,
        sample: &'static [(&'static str, MemorySpace)],
        moves: &'static [(&'static str, MemorySpace)],
    ) -> PlacementTest {
        PlacementTest {
            kernel,
            label,
            sample,
            moves,
        }
    }
    vec![
        (
            "cfd",
            vec![
                t("cfd", "G", &[], &[]),
                t("cfd", "var_T", &[], &[("variables", T)]),
                t("cfd", "norm_T", &[], &[("normals", T)]),
                t("cfd", "conn_T", &[], &[("elements_surrounding", T)]),
            ],
        ),
        (
            "convo1",
            vec![
                t("convolutionRows", "C", CONV_SAMPLE, &[]),
                t("convolutionRows", "kern_G", CONV_SAMPLE, &[("c_Kernel", G)]),
                t("convolutionRows", "src_T", CONV_SAMPLE, &[("d_Src", T)]),
                t("convolutionRows", "src_2T", CONV_SAMPLE, &[("d_Src", T2)]),
                t("convolutionRows", "kern_S", CONV_SAMPLE, &[("c_Kernel", S)]),
            ],
        ),
        (
            "convo2",
            vec![
                t("convolutionCols", "C", CONV_SAMPLE, &[]),
                t("convolutionCols", "kern_G", CONV_SAMPLE, &[("c_Kernel", G)]),
                t("convolutionCols", "src_T", CONV_SAMPLE, &[("d_Src", T)]),
                t("convolutionCols", "src_2T", CONV_SAMPLE, &[("d_Src", T2)]),
            ],
        ),
        (
            "md",
            vec![
                t("md", "T", MD_SAMPLE, &[]),
                t("md", "pos_G", MD_SAMPLE, &[("d_position", G)]),
                t("md", "neigh_T", MD_SAMPLE, &[("neighList", T)]),
                t(
                    "md",
                    "both",
                    MD_SAMPLE,
                    &[("d_position", G), ("neighList", T)],
                ),
            ],
        ),
        (
            "matrixMul",
            vec![
                t("matrixMul", "S", MATMUL_SAMPLE, &[]),
                t("matrixMul", "A2T", MATMUL_SAMPLE, &[("A", T2)]),
                t("matrixMul", "B2T", MATMUL_SAMPLE, &[("B", T2)]),
                t("matrixMul", "AT_BT", MATMUL_SAMPLE, &[("A", T), ("B", T)]),
                t(
                    "matrixMul",
                    "A2T_B2T",
                    MATMUL_SAMPLE,
                    &[("A", T2), ("B", T2)],
                ),
            ],
        ),
        (
            "spmv",
            vec![
                t("spmv", "T", SPMV_SAMPLE, &[]),
                t("spmv", "vec_G", SPMV_SAMPLE, &[("d_vec", G)]),
                t("spmv", "vec_C", SPMV_SAMPLE, &[("d_vec", C)]),
                t("spmv", "rowD_C", SPMV_SAMPLE, &[("rowDelimiters", C)]),
                t("spmv", "rowD_S", SPMV_SAMPLE, &[("rowDelimiters", S)]),
                t("spmv", "val_T", SPMV_SAMPLE, &[("val", T)]),
            ],
        ),
        (
            "transpose",
            vec![
                t("transpose", "G", &[], &[]),
                t("transpose", "idata_T", &[], &[("idata", T)]),
                t("transpose", "idata_2T", &[], &[("idata", T2)]),
            ],
        ),
        (
            "triad",
            vec![
                t("triad", "G", &[], &[]),
                t("triad", "B_T", &[], &[("B", T)]),
                t("triad", "B_S", &[], &[("B", S)]),
                t("triad", "C_T", &[], &[("C", T)]),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hms_types::GpuConfig;

    #[test]
    fn every_test_resolves_and_validates_at_both_scales() {
        let cfg = GpuConfig::tesla_k80();
        let mut all = evaluation_suite();
        all.extend(training_suite());
        for (_, tests) in table1_suite() {
            all.extend(tests);
        }
        for scale in [Scale::Test, Scale::Full] {
            for t in &all {
                let kt = t.kernel(scale);
                let sample = t.sample_placement(&kt);
                let target = t.target_placement(&kt);
                sample
                    .validate(&kt.arrays, &cfg)
                    .unwrap_or_else(|e| panic!("{} [{scale:?}]: sample invalid: {e}", t.label));
                target
                    .validate(&kt.arrays, &cfg)
                    .unwrap_or_else(|e| panic!("{} [{scale:?}]: target invalid: {e}", t.label));
            }
        }
    }

    #[test]
    fn suites_have_paper_scale_counts() {
        assert!(evaluation_suite().len() >= 12, "evaluation points");
        assert!(
            training_suite().len() >= 30,
            "training placements (paper: 38)"
        );
        let t1: usize = table1_suite().iter().map(|(_, v)| v.len()).sum();
        assert!(t1 >= 30, "Table I placements (paper: 34), got {t1}");
    }

    #[test]
    fn labels_are_unique_within_suites() {
        for suite in [evaluation_suite(), training_suite()] {
            let mut labels: Vec<&str> = suite.iter().map(|t| t.label).collect();
            let n = labels.len();
            labels.sort_unstable();
            labels.dedup();
            assert_eq!(labels.len(), n);
        }
    }
}
