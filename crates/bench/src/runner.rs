//! Experiment plumbing: profile samples, measure targets, predict with
//! every model variant, in parallel across placements.

use hms_core::{ModelOptions, Predictor, Profile, SimKimModel};
use hms_kernels::Scale;
use hms_sim::{simulate, SimOptions};
use hms_stats::par::par_map;
use hms_trace::materialize;
use hms_types::{GpuConfig, PlacementMap};

use crate::suite::{training_suite, PlacementTest};

/// Shared experiment context.
#[derive(Debug, Clone)]
pub struct Harness {
    pub cfg: GpuConfig,
    pub scale: Scale,
}

impl Harness {
    /// The configuration every experiment binary uses: the K80 machine
    /// at full workload scale.
    pub fn paper() -> Self {
        Harness {
            cfg: GpuConfig::tesla_k80(),
            scale: Scale::Full,
        }
    }

    /// A fast configuration for tests.
    pub fn test() -> Self {
        Harness {
            cfg: GpuConfig::test_small(),
            scale: Scale::Test,
        }
    }
}

/// Simulate ("measure") a kernel under a placement; returns cycles.
pub fn measure(h: &Harness, test: &PlacementTest, pm: &PlacementMap) -> u64 {
    let kt = test.kernel(h.scale);
    let ct = materialize(&kt, pm, &h.cfg).expect("suite placements validate");
    simulate(&ct, &h.cfg, &SimOptions::default())
        .expect("simulation completes")
        .cycles
}

/// Profile the sample placement of one test.
pub fn profile(h: &Harness, test: &PlacementTest) -> Profile {
    let kt = test.kernel(h.scale);
    let pm = test.sample_placement(&kt);
    hms_core::profile_sample(&kt, &pm, &h.cfg).expect("sample profiles")
}

/// Profile every placement of the Table IV training suite. Each training
/// placement is profiled as *its own* sample: the training set teaches
/// the ratio model, it never sees the evaluation kernels (Table IV keeps
/// the two sets disjoint).
pub fn training_profiles(h: &Harness) -> Vec<Profile> {
    par_map(&training_suite(), |t| {
        let kt = t.kernel(h.scale);
        let pm = t.target_placement(&kt);
        hms_core::profile_sample(&kt, &pm, &h.cfg).expect("training placement profiles")
    })
}

/// Build a predictor with `options` and train its `T_overlap` model on
/// pre-computed training profiles (the ablation binaries share one
/// profile set across model variants).
pub fn predictor_with(h: &Harness, options: ModelOptions, profiles: &[Profile]) -> Predictor {
    let mut predictor = Predictor::with_options(h.cfg.clone(), options);
    predictor
        .train(profiles)
        .expect("enough training placements");
    predictor
}

/// Build the ablation variants with a *fixed neutral* `T_overlap`
/// (the untrained 0.5 ratio) shared by every variant.
///
/// Using a trained overlap would let the regression absorb each
/// variant's bias — its `T_comp/T_mem` regime feature responds to the
/// very quantities the ablation removes — masking the component's
/// contribution. With the overlap pinned, prediction differences between
/// variants isolate the analytic `T_comp`/`T_mem` machinery, which is
/// what Figures 7–9 measure.
pub fn ablation_predictors(
    h: &Harness,
    variants: &[(&'static str, ModelOptions)],
    profiles: &[Profile],
) -> Vec<(&'static str, Predictor)> {
    let _ = profiles;
    variants
        .iter()
        .map(|(name, o)| (*name, Predictor::with_options(h.cfg.clone(), *o)))
        .collect()
}

/// Train the `T_overlap` model on the Table IV training suite and return
/// a full-model predictor (plus the training profiles for reuse).
pub fn trained_predictor(h: &Harness, options: ModelOptions) -> (Predictor, Vec<Profile>) {
    let profiles = training_profiles(h);
    let predictor = predictor_with(h, options, &profiles);
    (predictor, profiles)
}

/// Outcome of one evaluation point under one model.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    pub label: &'static str,
    pub measured_cycles: u64,
    pub predicted_cycles: f64,
}

impl ExperimentResult {
    /// Predicted time normalized by measured time (Figure 5's y-axis).
    pub fn normalized(&self) -> f64 {
        self.predicted_cycles / self.measured_cycles as f64
    }

    /// Relative prediction error `|pred - meas| / meas`.
    pub fn error(&self) -> f64 {
        (self.normalized() - 1.0).abs()
    }
}

/// Run `predictor` over the whole suite: for each test, profile the
/// sample, predict the target, and measure the target for comparison.
pub fn run_suite(
    h: &Harness,
    predictor: &Predictor,
    suite: &[PlacementTest],
) -> Vec<ExperimentResult> {
    par_map(suite, |t| {
        let kt = t.kernel(h.scale);
        let target = t.target_placement(&kt);
        let prof = profile(h, t);
        let pred = predictor
            .predict(&prof, &target)
            .expect("prediction succeeds");
        let measured = measure(h, t, &target);
        ExperimentResult {
            label: t.label,
            measured_cycles: measured,
            predicted_cycles: pred.cycles,
        }
    })
}

/// Run the [7]-style baseline over the suite.
pub fn run_suite_simkim(h: &Harness, suite: &[PlacementTest]) -> Vec<ExperimentResult> {
    let model = SimKimModel::new(h.cfg.clone());
    par_map(suite, |t| {
        let kt = t.kernel(h.scale);
        let target = t.target_placement(&kt);
        let prof = profile(h, t);
        let pred = model.predict(&prof, &target).expect("prediction succeeds");
        let measured = measure(h, t, &target);
        ExperimentResult {
            label: t.label,
            measured_cycles: measured,
            predicted_cycles: pred,
        }
    })
}

/// Arithmetic-mean relative error over a result set (the paper's 9.9%
/// headline metric for the full model).
pub fn mean_error(results: &[ExperimentResult]) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    results.iter().map(|r| r.error()).sum::<f64>() / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::evaluation_suite;

    #[test]
    fn measure_and_profile_roundtrip() {
        let h = Harness::test();
        let suite = evaluation_suite();
        let t = &suite[0];
        let kt = t.kernel(h.scale);
        let cycles = measure(&h, t, &t.sample_placement(&kt));
        assert!(cycles > 0);
        let prof = profile(&h, t);
        assert_eq!(prof.measured_cycles, cycles);
    }

    #[test]
    fn experiment_result_metrics() {
        let r = ExperimentResult {
            label: "x",
            measured_cycles: 1000,
            predicted_cycles: 1100.0,
        };
        assert!((r.normalized() - 1.1).abs() < 1e-12);
        assert!((r.error() - 0.1).abs() < 1e-12);
        let under = ExperimentResult {
            label: "y",
            measured_cycles: 1000,
            predicted_cycles: 800.0,
        };
        assert!((under.error() - 0.2).abs() < 1e-12);
        assert!((mean_error(&[r, under]) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn trained_predictor_smoke() {
        let h = Harness::test();
        let (p, profiles) = trained_predictor(&h, ModelOptions::full());
        assert!(p.overlap.is_trained());
        assert!(profiles.len() >= 30);
    }
}
