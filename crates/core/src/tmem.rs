//! The memory-cost model `T_mem` (paper Eq. 4–10, Appendix Eq. 17–19).
//!
//! ```text
//! T_mem = Effective_memory_requests_per_SM x AMAT                 (4)
//! AMAT  = DRAM_lat x miss_ratio + hit_lat + shmem_lat x shmem_ratio (5)
//! ```
//!
//! The distinguishing piece is `DRAM_lat`: instead of the constant
//! latency prior models assume, each memory bank is a G/G/1 queue whose
//! service times come from row-buffer hit/miss/conflict classification
//! (Eq. 8) and whose waiting time follows Kingman's approximation
//! (Eq. 9–10). The per-bank arrival streams come from distributing the
//! analysis's DRAM requests via the detected address mapping (Eq. 6–7);
//! the Figure 8 ablation can instead spread them evenly.

use std::cell::RefCell;

use hms_dram::{AccessKind, AddressMapping, BankState, DecodePlan};
use hms_stats::{kingman_waiting_time, GG1Inputs, Summary};
use hms_types::GpuConfig;

use crate::analysis::TraceAnalysis;
use crate::profile::Profile;

/// Per-thread reusable state of the queuing model. The model itself is
/// pure; only allocation is amortized here. The compiled [`DecodePlan`]
/// is a function of the bank count alone (the mapping layout is the
/// fixed K80-like one), and the request/service buffers are cleared per
/// call — the search engine evaluates tens of thousands of candidates
/// per second through this path, so per-candidate plan compilation and
/// buffer allocation would dominate the actual arithmetic.
#[derive(Default)]
struct TmemScratch {
    plan: Option<(u32, DecodePlan)>,
    reqs: Vec<(u32, f64, u64, u32)>,
    service: Vec<f64>,
    arrivals: Vec<f64>,
    inter: Vec<f64>,
}

thread_local! {
    static TMEM_SCRATCH: RefCell<TmemScratch> = RefCell::new(TmemScratch::default());
}

/// How `DRAM_lat` is estimated — the knob behind Figures 8 and 9.
/// `Hash` so the serving layer can key prediction caches on the exact
/// model configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueuingMode {
    /// Constant DRAM latency (prior work's assumption: one
    /// microbenchmark-measured number for every request).
    ConstantLatency,
    /// G/G/1 per bank, requests spread evenly over banks (no address
    /// mapping knowledge).
    EvenDistribution,
    /// G/G/1 per bank with the address-mapping-aware distribution — the
    /// full model.
    Mapped,
}

/// `T_mem` with its intermediate quantities (cycles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TmemResult {
    pub cycles: f64,
    pub amat: f64,
    pub dram_lat: f64,
    pub effective_requests_per_sm: f64,
    pub itmlp: f64,
}

/// Output of the queuing model: the Eq. 7 average latency plus the
/// DRAM-side occupancy lower bounds used as a bandwidth floor for
/// `T_mem`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramEstimate {
    /// System-wide average request latency (Eq. 7), in cycles.
    pub avg_latency: f64,
    /// Busy time of the most-loaded bank (sum of its service times): the
    /// kernel cannot finish its off-chip traffic faster than this.
    pub bank_makespan: f64,
    /// Busy time of the most-loaded channel data bus.
    pub channel_makespan: f64,
}

/// Compute the system-wide average DRAM latency (Eq. 6–10).
pub fn dram_latency(
    profile: &Profile,
    analysis: &TraceAnalysis,
    cfg: &GpuConfig,
    mode: QueuingMode,
) -> f64 {
    dram_estimate(profile, analysis, cfg, mode).avg_latency
}

/// The full queuing-model output (average latency + occupancy bounds).
pub fn dram_estimate(
    profile: &Profile,
    analysis: &TraceAnalysis,
    cfg: &GpuConfig,
    mode: QueuingMode,
) -> DramEstimate {
    let t = &cfg.dram;
    let burst = t.burst_cycles as f64;
    if analysis.dram.is_empty() {
        return DramEstimate {
            avg_latency: t.hit_cycles as f64 + burst,
            bank_makespan: 0.0,
            channel_makespan: 0.0,
        };
    }
    let nb = t.total_banks() as usize;
    let n_requests = analysis.dram.len() as f64;
    // Channel occupancy is mode-independent: every request bursts once.
    let channel_makespan = n_requests * burst / f64::from(t.channels);

    if mode == QueuingMode::ConstantLatency {
        // Prior work measures one latency with a pointer-chase
        // microbenchmark; on quiet row buffers that observes the
        // row-miss latency. With no distribution model, the bandwidth
        // floor assumes an even spread of uniformly-missing requests.
        return DramEstimate {
            avg_latency: t.miss_cycles as f64 + burst,
            bank_makespan: n_requests / nb as f64 * t.miss_cycles as f64,
            channel_makespan,
        };
    }

    TMEM_SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        // Distribute requests to banks. One flat `(bank, arrival, row)`
        // buffer, stably sorted by bank then arrival, replaces the per-bank
        // vectors: the stable sort preserves trace order on ties exactly as
        // the push-then-sort-per-bank formulation did, so the per-bank
        // streams — and every downstream float — are bit-identical.
        let mapping = match &scratch.plan {
            Some((banks, plan)) if *banks == t.total_banks() => plan,
            _ => {
                let plan = AddressMapping::k80_like(t.total_banks()).plan();
                &scratch.plan.insert((t.total_banks(), plan)).1
            }
        };
        let cpi = profile.cycles_per_instruction(cfg);
        let reqs = &mut scratch.reqs;
        reqs.clear();
        reqs.reserve(analysis.dram.len());
        for (i, r) in analysis.dram.iter().enumerate() {
            let arrival = r.position as f64 * cpi;
            let decoded = mapping.decode(r.addr);
            let bank = match mode {
                QueuingMode::EvenDistribution => {
                    // "assume even distribution of memory requests between
                    // memory banks": round-robin, rows from the raw address.
                    (i % nb) as u32
                }
                QueuingMode::Mapped => decoded.bank,
                QueuingMode::ConstantLatency => unreachable!(),
            };
            reqs.push((bank, arrival, decoded.row, i as u32));
        }
        // The trace index as the final key makes the order total, so the
        // allocation-free unstable sort reproduces the stable sort's
        // tie order exactly.
        reqs.sort_unstable_by(|a, b| {
            a.0.cmp(&b.0)
                .then(a.1.partial_cmp(&b.1).expect("finite arrival"))
                .then(a.3.cmp(&b.3))
        });

        // Eq. 6–10 per bank, Eq. 7's lambda-weighted average across banks.
        let total_requests = analysis.dram.len() as f64;
        let mut acc = 0.0;
        let mut bank_makespan = 0.0f64;
        let service = &mut scratch.service;
        let arrivals = &mut scratch.arrivals;
        let mut start = 0usize;
        while start < reqs.len() {
            let bank_id = reqs[start].0;
            let mut end = start + 1;
            while end < reqs.len() && reqs[end].0 == bank_id {
                end += 1;
            }
            let stream = &reqs[start..end];
            start = end;
            let refresh = t.refresh_interval_cycles;
            if let [(_, arrival, row, _)] = *stream {
                // Singleton stream: no queuing (wait is 0), the mean of
                // one service time is itself, and the refresh walk
                // cannot change a fresh bank's classification. Same
                // floats as the general walk, without the summary and
                // buffer traffic.
                let mut bank = BankState::default();
                if let Some(epoch) = (arrival.max(0.0) as u64).checked_div(refresh) {
                    if epoch != 0 {
                        bank.precharge();
                    }
                }
                let s = match bank.classify(row) {
                    AccessKind::Hit => t.hit_cycles,
                    AccessKind::Miss => t.miss_cycles,
                    AccessKind::Conflict => t.conflict_cycles,
                } as f64;
                bank_makespan = bank_makespan.max(s);
                acc += 1.0 / total_requests * (0.0 + s);
                continue;
            }
            // Service classification via a row-buffer state walk (Eq. 8),
            // closing rows across auto-refresh boundaries like the machine.
            let mut bank = BankState::default();
            let mut last_epoch = 0u64;
            service.clear();
            arrivals.clear();
            for &(_, arrival, row, _) in stream {
                if let Some(epoch) = (arrival.max(0.0) as u64).checked_div(refresh) {
                    if epoch != last_epoch {
                        bank.precharge();
                        last_epoch = epoch;
                    }
                }
                let kind = bank.classify(row);
                bank.open_row = Some(row);
                let s = match kind {
                    AccessKind::Hit => t.hit_cycles,
                    AccessKind::Miss => t.miss_cycles,
                    AccessKind::Conflict => t.conflict_cycles,
                };
                service.push(s as f64);
                arrivals.push(arrival);
            }
            let svc = Summary::of(service).expect("non-empty");
            bank_makespan = bank_makespan.max(service.iter().sum::<f64>());
            let lat_bank = queue_wait(arrivals, service, &mut scratch.inter) + svc.mean;
            let lambda_weight = stream.len() as f64 / total_requests;
            acc += lambda_weight * lat_bank;
        }
        DramEstimate {
            avg_latency: acc + burst,
            bank_makespan,
            channel_makespan,
        }
    })
}

/// Mean queuing delay of one server's finite request stream.
///
/// Kingman's approximation (Eq. 9–10) in the stable regime; a
/// deterministic-backlog estimate when the offered load saturates the
/// server. Kingman is a steady-state result: for a finite, possibly
/// saturated stream (GPU bursts routinely push a bank past `rho = 1`)
/// the queue is a finite backlog. When saturated, the mean wait of `n`
/// requests arriving uniformly over the observed span is the backlog
/// growth `(n-1)/2 x (tau_s - tau_a)`; either way the wait cannot exceed
/// the all-at-once bound `(n-1)/2 x tau_s`.
fn queue_wait(arrivals_sorted: &[f64], service: &[f64], inter: &mut Vec<f64>) -> f64 {
    let n = arrivals_sorted.len();
    debug_assert_eq!(n, service.len());
    if n < 2 {
        return 0.0;
    }
    let svc = Summary::of(service).expect("non-empty");
    inter.clear();
    inter.extend(arrivals_sorted.windows(2).map(|w| (w[1] - w[0]).max(1.0)));
    let ia = Summary::of(inter).expect("non-empty");
    let nf = n as f64;
    let backlog_cap = (nf - 1.0) / 2.0 * svc.mean;
    let rho = svc.mean / ia.mean;
    if rho >= 1.0 {
        ((nf - 1.0) / 2.0 * (svc.mean - ia.mean)).max(0.0)
    } else {
        kingman_waiting_time(&GG1Inputs {
            mean_interarrival: ia.mean,
            cv_interarrival: ia.cv(),
            mean_service: svc.mean,
            cv_service: svc.cv(),
        })
        .min(backlog_cap)
    }
}

/// Compute `T_mem` for a target placement.
///
/// Eq. 4's `Effective_memory_requests_per_SM` is evaluated with
/// `ITMLP = MLP x N` (Eq. 18 with `MWP_cp` at its occupancy bound): the
/// resident warps' dependence chains run concurrently, so the per-SM
/// memory time reduces to the length of one warp's serialized wait chain
/// (`waits_per_warp x AMAT`), repeated for every sequential block wave.
/// When the kernel is DRAM-occupancy-bound instead of latency-bound, the
/// latency form undershoots: regardless of MLP, off-chip traffic cannot
/// drain faster than the busiest bank or channel bus (the servers of the
/// Figure 3 queuing network), so those makespans floor the result.
pub fn tmem(
    profile: &Profile,
    analysis: &TraceAnalysis,
    cfg: &GpuConfig,
    mode: QueuingMode,
) -> TmemResult {
    let est = dram_estimate(profile, analysis, cfg, mode);
    let dram_lat = est.avg_latency;
    let mem_instrs = analysis.mem_instrs.max(1) as f64;

    // Eq. 5 with measurable ratios and the per-cache latency extension
    // the paper mentions ("We could extend Equation 5 to consider the
    // latency difference" between GPU caches): texture and constant
    // accesses pay their own cache's hit latency and only continue to
    // the L2 path on a miss. A wait batch completes when its slowest
    // access returns: an access costs the DRAM latency *if* any of its
    // transactions reaches DRAM (transactions of one access are serviced
    // in parallel, so the DRAM term enters with a probability, not a
    // multiplicity).
    let l2_miss_ratio = if analysis.l2_transactions > 0 {
        analysis.l2_misses as f64 / analysis.l2_transactions as f64
    } else {
        0.0
    };
    let l2_path = cfg.l2_hit_lat as f64 + l2_miss_ratio * dram_lat;
    let per_access_miss = |misses: u64, requests: u64| -> f64 {
        if requests == 0 {
            0.0
        } else {
            (misses as f64 / requests as f64).min(1.0)
        }
    };
    let tex_miss = per_access_miss(analysis.tex_misses, analysis.tex_requests);
    let const_miss = per_access_miss(analysis.const_misses, analysis.const_requests);
    let amat = (analysis.global_requests as f64 * l2_path
        + analysis.tex_requests as f64 * (cfg.tex_hit_lat as f64 + tex_miss * l2_path)
        + analysis.const_requests as f64 * (cfg.const_hit_lat as f64 + const_miss * l2_path)
        + analysis.shared_requests as f64 * cfg.shared_lat as f64)
        / mem_instrs;

    // Eq. 4 / 17–18 in chain form: ITMLP = MLP x N makes
    // effective requests per SM = waits_per_warp x waves.
    let itmlp = (analysis.mlp * analysis.warps_per_sm).max(1.0);
    let per_sm = analysis.waits_per_warp() * f64::from(analysis.waves.max(1));
    let cycles = (per_sm * amat)
        .max(est.bank_makespan)
        .max(est.channel_makespan);
    TmemResult {
        cycles,
        amat,
        dram_lat,
        effective_requests_per_sm: per_sm,
        itmlp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::profile::profile_sample;
    use hms_kernels::{md, triad, vecadd, Scale};
    use hms_trace::materialize;

    fn setup(kt: &hms_trace::KernelTrace) -> (Profile, TraceAnalysis, GpuConfig) {
        let cfg = GpuConfig::test_small();
        let pm = kt.default_placement();
        let p = profile_sample(kt, &pm, &cfg).unwrap();
        let a = analyze(&materialize(kt, &pm, &cfg).unwrap(), &cfg);
        (p, a, cfg)
    }

    #[test]
    fn queuing_latency_exceeds_constant_for_bursty_kernels() {
        // md's gather clumps create bursty per-bank arrivals: the queuing
        // model must report a *higher* average latency than the constant
        // row-miss assumption.
        let kt = md::build(Scale::Test);
        let (p, a, cfg) = setup(&kt);
        let constant = dram_latency(&p, &a, &cfg, QueuingMode::ConstantLatency);
        let queued = dram_latency(&p, &a, &cfg, QueuingMode::Mapped);
        assert!(queued > 0.0);
        assert!(
            queued != constant,
            "queuing model must not collapse to the constant assumption"
        );
    }

    #[test]
    fn mapped_distribution_tracks_measured_latency_best() {
        // The Figure 8 claim: address-mapping-aware request distribution
        // estimates the off-chip latency better than assuming an even
        // spread (and far better than a constant).
        for kt in [triad::build(Scale::Test), vecadd::build(Scale::Test)] {
            let (p, a, cfg) = setup(&kt);
            let measured =
                p.events.dram_total_latency as f64 / p.events.dram_requests.max(1) as f64;
            let err = |x: f64| (x - measured).abs();
            let constant = dram_latency(&p, &a, &cfg, QueuingMode::ConstantLatency);
            let even = dram_latency(&p, &a, &cfg, QueuingMode::EvenDistribution);
            let mapped = dram_latency(&p, &a, &cfg, QueuingMode::Mapped);
            assert!(
                err(mapped) <= err(even) && err(mapped) <= err(constant),
                "{}: mapped {mapped:.0} even {even:.0} const {constant:.0} measured {measured:.0}",
                kt.name
            );
        }
    }

    #[test]
    fn empty_dram_stream_returns_hit_floor() {
        let kt = hms_kernels::md5hash::build(Scale::Test);
        let (p, mut a, cfg) = setup(&kt);
        a.dram.clear();
        let lat = dram_latency(&p, &a, &cfg, QueuingMode::Mapped);
        assert_eq!(
            lat,
            cfg.dram.hit_cycles as f64 + cfg.dram.burst_cycles as f64
        );
    }

    #[test]
    fn tmem_is_positive_and_scales_with_traffic() {
        let small = vecadd::build(Scale::Test);
        let (p, a, cfg) = setup(&small);
        let r = tmem(&p, &a, &cfg, QueuingMode::Mapped);
        assert!(r.cycles > 0.0);
        assert!(r.amat >= cfg.l2_hit_lat as f64 * 0.5);
        assert!(r.itmlp >= 1.0);
    }

    #[test]
    fn shared_heavy_kernel_has_shmem_weighted_amat() {
        // fft with its staging buffer in shared memory (its natural
        // SHOC placement — the all-global default is the Table IV move).
        let kt = hms_kernels::fft::build(Scale::Test);
        let cfg = GpuConfig::test_small();
        let pm = kt
            .default_placement()
            .with(hms_types::ArrayId(1), hms_types::MemorySpace::Shared);
        let p = profile_sample(&kt, &pm, &cfg).unwrap();
        let a = analyze(&materialize(&kt, &pm, &cfg).unwrap(), &cfg);
        let r = tmem(&p, &a, &cfg, QueuingMode::Mapped);
        // fft's AMAT must sit well below a pure off-chip AMAT because
        // most accesses are shared-memory exchanges.
        assert!(a.shared_requests > a.global_requests);
        assert!(r.amat < cfg.l2_hit_lat as f64 + r.dram_lat);
    }
}
