//! Incremental placement-search engine: delta evaluation, memoization,
//! and branch-and-bound support for the placement search.
//!
//! The naive search pipeline re-runs `rewrite` + `analyze` for every
//! candidate placement, even though most of the work is identical
//! between candidates. Two structural facts make incremental evaluation
//! possible:
//!
//! 1. **The walk skeleton depends only on the shared-memory set.** The
//!    analysis walk's block-to-SM assignment, occupancy, staging
//!    prologue/epilogue, warp interleaving, and every placement-invariant
//!    counter (`mem_instrs`, waits, MLP, syncs, shared/local traffic)
//!    are functions of *which arrays sit in shared memory* — never of
//!    the global/texture/constant choice for the rest. The engine
//!    therefore performs **one** exact `rewrite` + recorded `analyze`
//!    per distinct shared set (a [`Skeleton`]) and replays the recorded
//!    event stream for every other candidate sharing it.
//!
//! 2. **Per-access outcomes are stateless per `(array, space, base)`.**
//!    Coalescing, constant-word dedup, and texture-line dedup depend
//!    only on the lane element indices (recovered once from the sample
//!    trace via [`hms_trace::recover_elem_indices`]), the target space's
//!    layout, and the allocator base — not on cache state. The engine
//!    memoizes them per `(array, space, base, stride)` and composes a
//!    candidate's [`TraceAnalysis`] by re-running only the *stateful*
//!    models (texture/constant caches, L2, DRAM stream) over the
//!    composed access sequence.
//!
//! The composition is **bit-identical** to the direct path by
//! construction: the stateful caches expose the same entry points the
//! walk uses ([`hms_cache::TextureCache::access_lines`],
//! [`hms_cache::ConstantCache::access_words`]), and every skeleton
//! self-checks by replaying its own canonical placement and comparing
//! the full `TraceAnalysis` (exact `PartialEq`) against the direct
//! result. A skeleton that fails the self-check is *poisoned* and its
//! candidates silently take the exact `rewrite`+`analyze` fallback, so
//! correctness never depends on the delta machinery.
//!
//! For branch-and-bound pruning the engine also precomputes a **monotone
//! lower bound** on the predicted time of any completion of a partial
//! assignment (see [`Engine::lower_bound`]): a `T_comp` floor from
//! placement-invariant issue slots plus per-space stateless-replay and
//! addressing floors, and a `T_mem` floor from per-space hit-latency
//! floors — combined through the overlap model's
//! [`ToverlapModel::max_ratio`](crate::toverlap::ToverlapModel::max_ratio)
//! ceiling. Every quantity in the bound can only grow when staging or
//! cache misses are added, so no subtree containing the true optimum is
//! ever pruned.

use std::cell::RefCell;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use hms_cache::{ConstantCache, L2Cache, L2Source, TextureCache};
use hms_trace::{
    addr_calc_instrs, coalesce, element_offset, recover_elem_indices, rewrite, CInstr, ElemIdx,
};
use hms_types::{ArrayId, DType, GpuConfig, HmsError, MemorySpace, PlacementMap};

use crate::analysis::{
    analyze_observed, l2_fill, AnalysisOptions, TraceAnalysis, WalkEvent, WalkObserver,
};
use crate::predictor::{Prediction, Predictor};
use crate::profile::Profile;
use crate::search::RankedPlacement;
use crate::tcomp::effective_throughput;

/// Search observability counters, exposed through
/// [`SearchOutcome`](crate::search::SearchOutcome) and `hms search
/// --stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Distinct walk skeletons built (one exact rewrite + recorded
    /// analysis each).
    pub skeletons_built: u64,
    /// Whole-trace `rewrite` + `analyze` runs: skeleton builds plus
    /// exact fallbacks. The headline economy metric — compare against
    /// `candidates_evaluated`.
    pub full_rewrites: u64,
    /// Candidate evaluations composed from memoized deltas instead of a
    /// full rewrite.
    pub delta_cache_hits: u64,
    /// Candidates that fell back to the exact path (poisoned skeleton).
    pub exact_fallbacks: u64,
    /// `(array, space, base)` delta-memo tables built.
    pub memo_tables_built: u64,
    /// Skeletons loaded from the persistent on-disk cache (each one a
    /// full rewrite + recorded analysis *not* paid).
    pub skeleton_disk_hits: u64,
    /// Disk-cache lookups that missed (absent, stale, or corrupt file —
    /// all trigger a silent rebuild).
    pub skeleton_disk_misses: u64,
    /// Skeletons persisted to the on-disk cache.
    pub skeleton_disk_writes: u64,
    /// Stranded `*.tmp` files swept when the disk cache was opened
    /// (leftovers of writers that died mid-store — see the
    /// [`skelcache`](crate::skelcache) temp-file hygiene notes).
    pub skeleton_disk_tmp_swept: u64,
    /// Legal candidates produced by enumeration (exhaustive) or visited
    /// as branch-and-bound leaves.
    pub candidates_enumerated: u64,
    /// Candidates actually evaluated by the model.
    pub candidates_evaluated: u64,
    /// Completions skipped by the lower bound. Counted via per-array
    /// standalone legality, so jointly-illegal completions inflate the
    /// number slightly; it is an upper estimate of work avoided.
    pub candidates_pruned: u64,
    /// Prefix subtrees cut by the bound.
    pub subtrees_pruned: u64,
    /// Wall time preparing skeletons and delta memos.
    pub prepare_nanos: u64,
    /// Wall time enumerating candidates.
    pub enumerate_nanos: u64,
    /// Wall time evaluating candidates (model math + ranking).
    pub evaluate_nanos: u64,
    /// Candidates *considered* by an anytime strategy — prefixes scored
    /// by the lower bound, arms advanced by successive halving, genomes
    /// proposed by local search — whether or not they reached the model.
    /// Exact strategies leave this 0.
    pub candidates_visited: u64,
    /// Sound upper bound on the relative optimality gap of the best
    /// returned placement: `best <= optimum * (1 + gap_upper_bound)`.
    /// 0 for exact strategies that ran to completion; see
    /// [`strategies`](crate::strategies) for how each strategy derives
    /// its bound.
    pub gap_upper_bound: f64,
    /// Wire name of the strategy that produced this snapshot (see
    /// [`SearchStrategy::name`](crate::search::SearchStrategy::name));
    /// empty for snapshots taken outside a search.
    pub strategy: &'static str,
}

impl EngineStats {
    /// Candidates evaluated per full trace rewrite — the factor the
    /// incremental engine saves over the naive search (≥ 5x on a
    /// 3-array search is the working target).
    pub fn rewrite_reduction(&self) -> f64 {
        self.candidates_evaluated as f64 / self.full_rewrites.max(1) as f64
    }

    /// Whether `strategy` names one of the anytime approximate
    /// strategies — the ones whose `candidates_visited` /
    /// `gap_upper_bound` carry meaning (and appear on the wire).
    pub fn anytime(&self) -> bool {
        matches!(
            self.strategy,
            "beam" | "successive_halving" | "local_search"
        )
    }

    /// Fraction of the (estimated) candidate space skipped by pruning.
    pub fn prune_rate(&self) -> f64 {
        let total = self.candidates_pruned + self.candidates_evaluated;
        if total == 0 {
            0.0
        } else {
            self.candidates_pruned as f64 / total as f64
        }
    }

    /// Fold another stats snapshot into this one, field by field — the
    /// hook long-lived callers (the advisory server's `/metrics`, sweep
    /// harnesses) use to keep cumulative engine totals across searches.
    pub fn accumulate(&mut self, other: &EngineStats) {
        self.skeletons_built += other.skeletons_built;
        self.full_rewrites += other.full_rewrites;
        self.delta_cache_hits += other.delta_cache_hits;
        self.exact_fallbacks += other.exact_fallbacks;
        self.memo_tables_built += other.memo_tables_built;
        self.skeleton_disk_hits += other.skeleton_disk_hits;
        self.skeleton_disk_misses += other.skeleton_disk_misses;
        self.skeleton_disk_writes += other.skeleton_disk_writes;
        self.skeleton_disk_tmp_swept += other.skeleton_disk_tmp_swept;
        self.candidates_enumerated += other.candidates_enumerated;
        self.candidates_evaluated += other.candidates_evaluated;
        self.candidates_pruned += other.candidates_pruned;
        self.subtrees_pruned += other.subtrees_pruned;
        self.prepare_nanos += other.prepare_nanos;
        self.enumerate_nanos += other.enumerate_nanos;
        self.evaluate_nanos += other.evaluate_nanos;
        self.candidates_visited += other.candidates_visited;
        // A cumulative total keeps the *worst* gap seen; the strategy
        // name is per-search, so the accumulator's own label wins.
        self.gap_upper_bound = self.gap_upper_bound.max(other.gap_upper_bound);
    }

    /// Candidates evaluated per second of evaluation wall time.
    pub fn candidates_per_sec(&self) -> f64 {
        if self.evaluate_nanos == 0 {
            0.0
        } else {
            self.candidates_evaluated as f64 / (self.evaluate_nanos as f64 / 1e9)
        }
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "search engine stats:")?;
        if !self.strategy.is_empty() {
            writeln!(f, "  strategy                {:>10}", self.strategy)?;
        }
        if self.anytime() {
            writeln!(
                f,
                "  candidates visited      {:>10}",
                self.candidates_visited
            )?;
            writeln!(
                f,
                "  gap upper bound         {:>12.2}%",
                self.gap_upper_bound * 100.0
            )?;
        }
        writeln!(
            f,
            "  candidates enumerated   {:>10}",
            self.candidates_enumerated
        )?;
        writeln!(
            f,
            "  candidates evaluated    {:>10}",
            self.candidates_evaluated
        )?;
        writeln!(
            f,
            "  candidates pruned (est) {:>10}",
            self.candidates_pruned
        )?;
        writeln!(f, "  subtrees pruned         {:>10}", self.subtrees_pruned)?;
        writeln!(f, "  skeletons built         {:>10}", self.skeletons_built)?;
        writeln!(f, "  full trace rewrites     {:>10}", self.full_rewrites)?;
        writeln!(f, "  delta-composed evals    {:>10}", self.delta_cache_hits)?;
        writeln!(f, "  exact fallbacks         {:>10}", self.exact_fallbacks)?;
        writeln!(
            f,
            "  delta memo tables       {:>10}",
            self.memo_tables_built
        )?;
        writeln!(
            f,
            "  skeleton disk hits      {:>10}",
            self.skeleton_disk_hits
        )?;
        writeln!(
            f,
            "  skeleton disk misses    {:>10}",
            self.skeleton_disk_misses
        )?;
        if self.skeleton_disk_tmp_swept > 0 {
            writeln!(
                f,
                "  skeleton temps swept    {:>10}",
                self.skeleton_disk_tmp_swept
            )?;
        }
        writeln!(
            f,
            "  rewrite reduction       {:>13.2}x",
            self.rewrite_reduction()
        )?;
        writeln!(
            f,
            "  prune rate              {:>12.1}%",
            self.prune_rate() * 100.0
        )?;
        writeln!(
            f,
            "  prepare / enumerate / evaluate  {:.2} ms / {:.2} ms / {:.2} ms",
            self.prepare_nanos as f64 / 1e6,
            self.enumerate_nanos as f64 / 1e6,
            self.evaluate_nanos as f64 / 1e6,
        )
    }
}

/// Thread-safe mirror of [`EngineStats`], bumped from worker threads.
#[derive(Debug, Default)]
pub(crate) struct EngineCounters {
    pub skeletons_built: AtomicU64,
    pub full_rewrites: AtomicU64,
    pub delta_cache_hits: AtomicU64,
    pub exact_fallbacks: AtomicU64,
    pub memo_tables_built: AtomicU64,
    pub skeleton_disk_hits: AtomicU64,
    pub skeleton_disk_misses: AtomicU64,
    pub skeleton_disk_writes: AtomicU64,
    pub skeleton_disk_tmp_swept: AtomicU64,
    pub candidates_enumerated: AtomicU64,
    pub candidates_evaluated: AtomicU64,
    pub candidates_pruned: AtomicU64,
    pub subtrees_pruned: AtomicU64,
    pub prepare_nanos: AtomicU64,
    pub enumerate_nanos: AtomicU64,
    pub evaluate_nanos: AtomicU64,
    pub candidates_visited: AtomicU64,
}

impl EngineCounters {
    fn snapshot(&self) -> EngineStats {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        EngineStats {
            skeletons_built: g(&self.skeletons_built),
            full_rewrites: g(&self.full_rewrites),
            delta_cache_hits: g(&self.delta_cache_hits),
            exact_fallbacks: g(&self.exact_fallbacks),
            memo_tables_built: g(&self.memo_tables_built),
            skeleton_disk_hits: g(&self.skeleton_disk_hits),
            skeleton_disk_misses: g(&self.skeleton_disk_misses),
            skeleton_disk_writes: g(&self.skeleton_disk_writes),
            skeleton_disk_tmp_swept: g(&self.skeleton_disk_tmp_swept),
            candidates_enumerated: g(&self.candidates_enumerated),
            candidates_evaluated: g(&self.candidates_evaluated),
            candidates_pruned: g(&self.candidates_pruned),
            subtrees_pruned: g(&self.subtrees_pruned),
            prepare_nanos: g(&self.prepare_nanos),
            enumerate_nanos: g(&self.enumerate_nanos),
            evaluate_nanos: g(&self.evaluate_nanos),
            candidates_visited: g(&self.candidates_visited),
            // Per-search, filled in by `search()` on its outcome
            // snapshot — there is no atomic mirror for them.
            gap_upper_bound: 0.0,
            strategy: "",
        }
    }

    pub(crate) fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// Event-kind codes of the skeleton's recorded stream.
pub(crate) const EV_ADVANCE: u8 = 0;
pub(crate) const EV_ADDR_CALC: u8 = 1;
pub(crate) const EV_BODY: u8 = 2;
pub(crate) const EV_STAGING_GLOBAL: u8 = 3;
pub(crate) const EV_L2_PROBE: u8 = 4;

/// One recorded walk event as a fixed-size record; the replay loop
/// streams over a flat `Vec<EventRec>` (plus the shared transaction
/// arena) instead of chasing per-event heap payloads.
///
/// Field use per kind:
///
/// | kind             | `flag`     | `arr`  | `x`        | `tx..tx+tx_len` |
/// |------------------|------------|--------|------------|-----------------|
/// | `EV_ADVANCE`     | –          | –      | slot count | –               |
/// | `EV_ADDR_CALC`   | –          | array  | ref count  | –               |
/// | `EV_BODY`        | –          | array  | ordinal    | –               |
/// | `EV_STAGING_GLOBAL` | is_store | –     | replays    | transactions    |
/// | `EV_L2_PROBE`    | is_store   | –      | address    | –               |
#[derive(Debug, Clone, Copy)]
pub(crate) struct EventRec {
    pub kind: u8,
    pub flag: u8,
    pub sm: u16,
    pub arr: u32,
    pub x: u64,
    pub tx: u32,
    pub tx_len: u32,
}

/// The recorded walk of one shared-memory set.
#[derive(Debug)]
pub(crate) struct Skeleton {
    /// Placement-invariant counters copied from the canonical analysis;
    /// placement-dependent fields zeroed (recomputed at replay).
    pub(crate) consts: TraceAnalysis,
    pub(crate) events: Vec<EventRec>,
    /// Arena of staging-copy transaction addresses, referenced by
    /// `EV_STAGING_GLOBAL` records.
    pub(crate) tx_arena: Vec<u64>,
    /// Per-array `(offchip_base, block_stride)` under this skeleton's
    /// allocator (meaningless for arrays inside the shared set, which
    /// never appear as `Body` events).
    pub(crate) bases: Vec<(u64, u64)>,
    /// Self-check failed (or recording hit an inconsistency): all
    /// candidates of this shared set take the exact path.
    pub(crate) poisoned: bool,
}

/// Per-thread replay state. The stateful cache models dominate the
/// replay's allocation cost (~hundreds of KiB per call when built
/// fresh); keeping them thread-local and generation-resetting them
/// ([`SetAssocCache::reset`](hms_cache::SetAssocCache)) makes a warm
/// replay allocation-free.
struct ReplayScratch {
    l2: L2Cache,
    const_caches: Vec<ConstantCache>,
    tex_caches: Vec<TextureCache>,
    sm_pos: Vec<u64>,
    /// Per-array memo handle, resolved lazily once per replay (a
    /// replay sees one space per array, so the array index is the
    /// whole key).
    memo_slots: Vec<Option<Arc<Vec<MemoOutcome>>>>,
}

impl ReplayScratch {
    fn new(cfg: &GpuConfig) -> Self {
        let num_sms = cfg.num_sms as usize;
        ReplayScratch {
            l2: L2Cache::new(cfg.l2_cache),
            const_caches: (0..num_sms)
                .map(|_| ConstantCache::new(cfg.const_cache))
                .collect(),
            tex_caches: (0..num_sms)
                .map(|_| TextureCache::new(cfg.tex_cache))
                .collect(),
            sm_pos: vec![0; num_sms],
            memo_slots: Vec::new(),
        }
    }

    /// Was this scratch built for an identical machine shape? A thread
    /// may serve engines with different configs over its lifetime.
    fn matches(&self, cfg: &GpuConfig) -> bool {
        self.sm_pos.len() == cfg.num_sms as usize
            && *self.l2.geometry() == cfg.l2_cache
            && self
                .const_caches
                .first()
                .is_none_or(|c| *c.geometry() == cfg.const_cache)
            && self
                .tex_caches
                .first()
                .is_none_or(|c| *c.geometry() == cfg.tex_cache)
    }

    /// Return to the just-constructed state without reallocating.
    fn reset(&mut self) {
        self.l2.reset();
        for c in &mut self.const_caches {
            c.reset();
        }
        for c in &mut self.tex_caches {
            c.reset();
        }
        self.sm_pos.fill(0);
        for m in &mut self.memo_slots {
            *m = None;
        }
    }
}

thread_local! {
    static REPLAY_SCRATCH: RefCell<Option<ReplayScratch>> = const { RefCell::new(None) };
}

/// Per-access shape recovered once from the sample trace.
#[derive(Debug)]
struct AccessShape {
    block: u32,
    is_store: bool,
    elem_bytes: u8,
    idx: Vec<Option<ElemIdx>>,
}

/// Memoized stateless outcome of one access under one `(space, base)`.
#[derive(Debug, Clone)]
enum MemoOutcome {
    /// No active lanes: the access advances the position but touches no
    /// memory system.
    Empty,
    Global {
        replays: u32,
        transactions: Vec<u64>,
        is_store: bool,
    },
    /// Sorted, deduplicated line-aligned addresses (texture).
    Tex { lines: Vec<u64> },
    /// Sorted, deduplicated word-aligned addresses (constant).
    Const { words: Vec<u64> },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MemoKey {
    array: ArrayId,
    space: MemorySpace,
    base: u64,
    stride: u64,
}

/// Index of `space` in [`MemorySpace::ALL`] order.
fn space_idx(space: MemorySpace) -> usize {
    match space {
        MemorySpace::Global => 0,
        MemorySpace::Texture1D => 1,
        MemorySpace::Texture2D => 2,
        MemorySpace::Constant => 3,
        MemorySpace::Shared => 4,
    }
}

/// Placement-invariant quantities behind the branch-and-bound lower
/// bound. Every term either equals or under-approximates its
/// counterpart in the real model for *any* completion of a partial
/// assignment.
#[derive(Debug)]
struct LbStatics {
    detailed: bool,
    /// Body issue slots excluding addressing expansion (ALU + syncs +
    /// memory + local); staging only adds to this.
    body_fixed_executed: u64,
    body_mem_instrs: u64,
    body_wait_events: u64,
    /// Per array: addressing expansion per space (already scaled by the
    /// trace's AddrCalc counts).
    expansion: Vec<[u64; 5]>,
    /// Per array: exact stateless replays per space (global divergence,
    /// constant divergence, shared conflicts; texture 0). Stateful
    /// replay causes (cache misses) only add to these.
    stateless_replays: Vec<[u64; 5]>,
    /// Per array: non-empty body accesses.
    body_requests: Vec<u64>,
    /// Per array: minima over that array's standalone-legal spaces.
    free_expansion: Vec<u64>,
    free_replays: Vec<u64>,
    free_floor: Vec<f64>,
    /// Standalone-legal spaces per array (a superset of jointly-legal).
    legal_spaces: Vec<Vec<MemorySpace>>,
    /// Per-space AMAT hit-latency floor.
    floor_lat: [f64; 5],
    /// Floor for any staging access the completion might add.
    c_min: f64,
    /// Throughput at the maximum (shared-free) occupancy: the fastest
    /// any completion can issue.
    thr_min: f64,
    active_sms: f64,
    total_warps: f64,
    waves_min: f64,
    w_serial_lb: f64,
    other_replays: u64,
    inst_executed_sample: u64,
    rmax: f64,
}

/// The incremental evaluation engine. Create once per `(predictor,
/// profile)` pair; skeletons and delta memos accumulate across calls.
pub struct Engine<'a> {
    predictor: &'a Predictor,
    profile: &'a Profile,
    /// Sample-trace analysis, shared across predictions by the
    /// non-detailed model variants (computed once instead of per call).
    sample_analysis: Option<TraceAnalysis>,
    dtypes: Vec<DType>,
    /// Per array, its body accesses in sample-trace order.
    access_info: Vec<Vec<AccessShape>>,
    /// `(block, warp)` → per-body-instruction `(array, ordinal)`.
    warp_body_map: HashMap<(u32, u32), Vec<Option<(ArrayId, u32)>>>,
    skeletons: Mutex<HashMap<Vec<bool>, Arc<Skeleton>>>,
    memos: Mutex<HashMap<MemoKey, Arc<Vec<MemoOutcome>>>>,
    lb: LbStatics,
    pub(crate) counters: EngineCounters,
    /// Fault-injection hook: when set, every skeleton built afterwards
    /// is poisoned, forcing the exact-fallback path. Exercised by the
    /// chaos suite to prove degradation is invisible in the output.
    inject_poison: AtomicBool,
    /// Optional persistent skeleton cache (see [`crate::skelcache`]).
    disk: Option<crate::skelcache::DiskCache>,
}

/// Lock one of the engine's caches, recovering from a poisoned mutex:
/// a panicking worker can only have left a cache mid-insert of an
/// `Arc` value, which the `HashMap` either holds or doesn't — both
/// states are valid, so the data is safe to keep using.
fn lock_cache<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl<'a> Engine<'a> {
    /// Scan the sample trace once: recover per-access element indices,
    /// assign per-array ordinals, and precompute the lower-bound
    /// statics.
    pub fn new(predictor: &'a Predictor, profile: &'a Profile) -> Self {
        let cfg = &predictor.cfg;
        let trace = &profile.trace;
        let n = trace.arrays.len();

        let mut access_info: Vec<Vec<AccessShape>> = (0..n).map(|_| Vec::new()).collect();
        let mut warp_body_map = HashMap::new();
        let mut body_fixed_executed = 0u64;
        let mut body_syncs = 0u64;
        let mut body_mem_instrs = 0u64;
        let mut body_wait_events = 0u64;
        let mut addrcalc_total = vec![0u64; n];
        for w in &trace.warps {
            let mut per_instr = Vec::with_capacity(w.instrs.len());
            let mut outstanding = 0u32;
            for instr in &w.instrs {
                let mut slot = None;
                match instr {
                    CInstr::Alu { count, .. } => body_fixed_executed += u64::from(*count),
                    CInstr::SyncThreads => {
                        body_fixed_executed += 1;
                        body_syncs += 1;
                    }
                    CInstr::WaitLoads => {
                        if outstanding > 0 {
                            body_wait_events += 1;
                            outstanding = 0;
                        }
                    }
                    CInstr::AddrCalc { array, count } => {
                        addrcalc_total[array.index()] += u64::from(*count);
                    }
                    CInstr::Local { is_store, .. } => {
                        body_fixed_executed += 1;
                        body_mem_instrs += 1;
                        if !is_store {
                            outstanding += 1;
                        }
                    }
                    CInstr::Mem(m) => {
                        body_fixed_executed += 1;
                        body_mem_instrs += 1;
                        if !m.is_store {
                            outstanding += 1;
                        }
                        let ai = m.array.index();
                        slot = Some((m.array, access_info[ai].len() as u32));
                        access_info[ai].push(AccessShape {
                            block: w.block,
                            is_store: m.is_store,
                            elem_bytes: m.elem_bytes,
                            idx: recover_elem_indices(trace, w.block, m, cfg),
                        });
                    }
                }
                per_instr.push(slot);
            }
            warp_body_map.insert((w.block, w.warp), per_instr);
        }

        // Per-array, per-space stateless floors. Offsets are computed at
        // base 0: coalescing, word counts, and bank patterns are all
        // invariant under the allocator's aligned base shifts.
        let mut expansion = vec![[0u64; 5]; n];
        let mut stateless_replays = vec![[0u64; 5]; n];
        let mut body_requests = vec![0u64; n];
        let mut legal_spaces: Vec<Vec<MemorySpace>> = vec![Vec::new(); n];
        let all_global = PlacementMap::all_global(n);
        for (i, arr) in trace.arrays.iter().enumerate() {
            for space in MemorySpace::ALL {
                expansion[i][space_idx(space)] =
                    u64::from(addr_calc_instrs(space, arr.dtype)) * addrcalc_total[i];
                if all_global
                    .with(ArrayId(i as u32), space)
                    .validate(&trace.arrays, cfg)
                    .is_ok()
                {
                    legal_spaces[i].push(space);
                }
            }
            for acc in &access_info[i] {
                let offs: Vec<u64> = acc
                    .idx
                    .iter()
                    .flatten()
                    .map(|&ix| element_offset(arr, MemorySpace::Global, ix, cfg))
                    .collect();
                if offs.is_empty() {
                    continue;
                }
                body_requests[i] += 1;
                let co = coalesce(
                    offs.iter().copied(),
                    u64::from(acc.elem_bytes),
                    cfg.transaction_bytes,
                );
                stateless_replays[i][space_idx(MemorySpace::Global)] += u64::from(co.replays);
                let mut words: Vec<u64> = offs.iter().map(|a| a / 4 * 4).collect();
                words.sort_unstable();
                words.dedup();
                stateless_replays[i][space_idx(MemorySpace::Constant)] += words.len() as u64 - 1;
                stateless_replays[i][space_idx(MemorySpace::Shared)] += u64::from(
                    hms_cache::shared_conflict_passes(&offs, cfg.shared_banks).saturating_sub(1),
                );
            }
        }
        let floor_lat = [
            cfg.l2_hit_lat as f64,
            cfg.tex_hit_lat as f64,
            cfg.tex_hit_lat as f64,
            cfg.const_hit_lat as f64,
            cfg.shared_lat as f64,
        ];
        let mins = |f: &dyn Fn(MemorySpace) -> f64, legal: &[MemorySpace]| -> f64 {
            legal.iter().map(|&s| f(s)).fold(f64::INFINITY, f64::min)
        };
        let mut free_expansion = vec![0u64; n];
        let mut free_replays = vec![0u64; n];
        let mut free_floor = vec![0.0f64; n];
        for i in 0..n {
            let legal = &legal_spaces[i];
            if legal.is_empty() {
                continue;
            }
            free_expansion[i] = legal
                .iter()
                .map(|&s| expansion[i][space_idx(s)])
                .min()
                .unwrap_or(0);
            free_replays[i] = legal
                .iter()
                .map(|&s| stateless_replays[i][space_idx(s)])
                .min()
                .unwrap_or(0);
            free_floor[i] = mins(&|s| floor_lat[space_idx(s)], legal);
        }

        // Occupancy extremes: with zero shared usage the SM packs the
        // most blocks, issuing fastest and draining the grid in the
        // fewest waves — both floors for any completion.
        let g = &trace.geometry;
        let blocks = g.grid_blocks as usize;
        let wpb = g.warps_per_block().max(1);
        let by_warps = (cfg.max_warps_per_sm / wpb).max(1) as usize;
        let bps_max = by_warps.min(cfg.max_blocks_per_sm as usize);
        let active_sms = (cfg.num_sms as usize).min(blocks).max(1);
        let wps_max = f64::from(wpb) * (bps_max.min(blocks.div_ceil(active_sms))) as f64;
        let thr_min = effective_throughput(cfg, wps_max.max(1.0));
        let waves_min = blocks
            .div_ceil((cfg.num_sms as usize * bps_max).max(1))
            .max(1) as f64;
        let active_sms_f = active_sms as f64;
        let total_warps = g.total_warps().max(1) as f64;

        let lb = LbStatics {
            detailed: predictor.options.detailed_instr,
            body_fixed_executed,
            body_mem_instrs,
            body_wait_events,
            expansion,
            stateless_replays,
            body_requests,
            free_expansion,
            free_replays,
            free_floor,
            legal_spaces,
            floor_lat,
            c_min: (cfg.l2_hit_lat as f64).min(cfg.shared_lat as f64),
            thr_min,
            active_sms: active_sms_f,
            total_warps,
            waves_min,
            w_serial_lb: body_syncs as f64 / active_sms_f * cfg.avg_inst_lat as f64,
            other_replays: profile.other_replays(),
            inst_executed_sample: profile.events.inst_executed,
            rmax: predictor.overlap.max_ratio(),
        };

        let sample_analysis = if predictor.options.detailed_instr {
            None
        } else {
            Some(crate::analysis::analyze(&profile.trace, cfg))
        };

        Engine {
            predictor,
            profile,
            sample_analysis,
            dtypes: trace.arrays.iter().map(|a| a.dtype).collect(),
            access_info,
            warp_body_map,
            skeletons: Mutex::new(HashMap::new()),
            memos: Mutex::new(HashMap::new()),
            lb,
            counters: EngineCounters::default(),
            inject_poison: AtomicBool::new(false),
            disk: None,
        }
    }

    /// Attach a persistent on-disk skeleton cache rooted at `dir` (see
    /// the [`skelcache`](crate::skelcache) module docs for the file
    /// format and invalidation rules). Every load is gated by the
    /// format version, a kernel fingerprint, a payload checksum, and
    /// structural validation; any failure silently rebuilds — a stale
    /// or corrupt cache can cost a rewrite, never a wrong prediction.
    pub fn with_disk_cache(self, dir: &Path) -> Self {
        self.with_disk_cache_fs(dir, Arc::new(crate::skelcache::RealFs))
    }

    /// [`with_disk_cache`](Self::with_disk_cache) on an injected
    /// filesystem — the chaos suite's entry point for disk faults
    /// (ENOSPC, torn writes, bit-rot, rename failure). Opening sweeps
    /// stranded temp files; the count lands in
    /// [`EngineStats::skeleton_disk_tmp_swept`].
    pub fn with_disk_cache_fs(
        mut self,
        dir: &Path,
        fs: Arc<dyn crate::skelcache::CacheFs>,
    ) -> Self {
        let hash = crate::skelcache::kernel_hash(&self.profile.trace, &self.predictor.cfg);
        let cache = crate::skelcache::DiskCache::with_fs(dir, hash, fs);
        self.counters
            .add(&self.counters.skeleton_disk_tmp_swept, cache.swept());
        self.disk = Some(cache);
        self
    }

    /// The predictor this engine evaluates with.
    pub fn predictor(&self) -> &Predictor {
        self.predictor
    }

    /// Force every skeleton built from now on to be poisoned, so each
    /// candidate takes the exact `rewrite`+`analyze` fallback. Set it
    /// **before** the first evaluation — already-cached healthy
    /// skeletons keep serving. A deterministic stand-in for the real
    /// poisoning trigger (a failed self-check), used by the chaos suite
    /// to assert the fallback is bit-identical to the delta path.
    pub fn inject_poison(&self, on: bool) {
        self.inject_poison.store(on, Ordering::Relaxed);
    }

    /// The profiled sample this engine searches from.
    pub fn profile(&self) -> &Profile {
        self.profile
    }

    /// Snapshot of the engine's observability counters.
    pub fn stats(&self) -> EngineStats {
        self.counters.snapshot()
    }

    fn shared_key(&self, pm: &PlacementMap) -> Vec<bool> {
        (0..self.dtypes.len())
            .map(|i| pm.space(ArrayId(i as u32)) == MemorySpace::Shared)
            .collect()
    }

    /// Fetch (or build) the delta memo for `(array, space)` under the
    /// given allocator bases.
    fn get_memo(
        &self,
        array: ArrayId,
        space: MemorySpace,
        bases: (u64, u64),
    ) -> Arc<Vec<MemoOutcome>> {
        let key = MemoKey {
            array,
            space,
            base: bases.0,
            stride: bases.1,
        };
        if let Some(m) = lock_cache(&self.memos).get(&key) {
            return m.clone();
        }
        let built = Arc::new(self.build_memo(array, space, bases));
        // Count only winning inserts: losing a build race must not make
        // the observability counters depend on the worker count.
        match lock_cache(&self.memos).entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.get().clone(),
            std::collections::hash_map::Entry::Vacant(v) => {
                self.counters.add(&self.counters.memo_tables_built, 1);
                v.insert(built).clone()
            }
        }
    }

    fn build_memo(
        &self,
        array: ArrayId,
        space: MemorySpace,
        bases: (u64, u64),
    ) -> Vec<MemoOutcome> {
        let cfg = &self.predictor.cfg;
        let arr = &self.profile.trace.arrays[array.index()];
        let tex_line = cfg.tex_cache.line_bytes;
        self.access_info[array.index()]
            .iter()
            .map(|acc| {
                let base = bases.0 + bases.1 * u64::from(acc.block);
                let addrs: Vec<u64> = acc
                    .idx
                    .iter()
                    .flatten()
                    .map(|&ix| base + element_offset(arr, space, ix, cfg))
                    .collect();
                if addrs.is_empty() {
                    return MemoOutcome::Empty;
                }
                match space {
                    MemorySpace::Global => {
                        let co = coalesce(
                            addrs.iter().copied(),
                            u64::from(acc.elem_bytes),
                            cfg.transaction_bytes,
                        );
                        MemoOutcome::Global {
                            replays: co.replays,
                            transactions: co.transactions,
                            is_store: acc.is_store,
                        }
                    }
                    MemorySpace::Texture1D | MemorySpace::Texture2D => {
                        let mut lines: Vec<u64> =
                            addrs.iter().map(|a| a / tex_line * tex_line).collect();
                        lines.sort_unstable();
                        lines.dedup();
                        MemoOutcome::Tex { lines }
                    }
                    MemorySpace::Constant => {
                        let mut words: Vec<u64> = addrs.iter().map(|a| a / 4 * 4).collect();
                        words.sort_unstable();
                        words.dedup();
                        MemoOutcome::Const { words }
                    }
                    // Shared-placed arrays never appear as Body events;
                    // an empty outcome keeps the replay total-safe.
                    MemorySpace::Shared => MemoOutcome::Empty,
                }
            })
            .collect()
    }

    /// Get (or load from disk, or build recording one full rewrite)
    /// the skeleton for the shared set of `canonical`.
    fn skeleton_for(&self, canonical: &PlacementMap) -> Arc<Skeleton> {
        let key = self.shared_key(canonical);
        if let Some(s) = lock_cache(&self.skeletons).get(&key) {
            return s.clone();
        }
        let built = self.load_or_build(canonical, &key);
        lock_cache(&self.skeletons)
            .entry(key)
            .or_insert(built)
            .clone()
    }

    /// Probe the persistent cache (when configured), falling back to a
    /// full build; healthy fresh builds are written back. Does not
    /// touch the in-memory skeleton map.
    fn load_or_build(&self, canonical: &PlacementMap, key: &[bool]) -> Arc<Skeleton> {
        let Some(disk) = &self.disk else {
            return Arc::new(self.build_skeleton(canonical));
        };
        if let Some(skel) = disk.load(key) {
            if self.skeleton_is_plausible(&skel) {
                self.counters.add(&self.counters.skeleton_disk_hits, 1);
                return Arc::new(skel);
            }
        }
        self.counters.add(&self.counters.skeleton_disk_misses, 1);
        let built = Arc::new(self.build_skeleton(canonical));
        if !built.poisoned && disk.store(key, &built) {
            self.counters.add(&self.counters.skeleton_disk_writes, 1);
        }
        built
    }

    /// Structural validation of a deserialized skeleton against this
    /// engine's trace: every record must decode to in-bounds indices.
    /// Defense in depth behind the checksum — a file that passes the
    /// header checks but indexes out of range is treated as a miss
    /// rather than a panic source.
    fn skeleton_is_plausible(&self, skel: &Skeleton) -> bool {
        let n = self.dtypes.len();
        let num_sms = u64::from(self.predictor.cfg.num_sms);
        if skel.bases.len() != n || skel.poisoned {
            return false;
        }
        skel.events.iter().all(|ev| {
            if ev.kind > EV_L2_PROBE || u64::from(ev.sm) >= num_sms {
                return false;
            }
            match ev.kind {
                EV_ADDR_CALC => (ev.arr as usize) < n,
                EV_BODY => {
                    (ev.arr as usize) < n
                        && (ev.x as usize) < self.access_info[ev.arr as usize].len()
                }
                EV_STAGING_GLOBAL => {
                    u64::from(ev.tx) + u64::from(ev.tx_len) <= skel.tx_arena.len() as u64
                }
                _ => true,
            }
        })
    }

    /// Prebuild the skeletons for every distinct shared set among
    /// `candidates` (parallel across `threads` workers) so that
    /// subsequent evaluation only reads the cache.
    fn prepare(&self, candidates: &[PlacementMap], threads: usize) {
        let t0 = Instant::now();
        let mut missing: Vec<PlacementMap> = Vec::new();
        {
            let cache = lock_cache(&self.skeletons);
            let mut seen: Vec<Vec<bool>> = Vec::new();
            for pm in candidates {
                let key = self.shared_key(pm);
                if !cache.contains_key(&key) && !seen.contains(&key) {
                    seen.push(key);
                    missing.push(pm.clone());
                }
            }
        }
        let built = hms_stats::par::par_map_threads(threads, &missing, |pm| {
            let key = self.shared_key(pm);
            let skel = self.load_or_build(pm, &key);
            (key, skel)
        });
        let mut cache = lock_cache(&self.skeletons);
        for (key, skel) in built {
            cache.entry(key).or_insert(skel);
        }
        drop(cache);
        // Warm every (array, space, base) memo the candidates will need,
        // sequentially, so the parallel evaluation pass only reads.
        for pm in candidates {
            let skel = self.skeleton_for(pm);
            if skel.poisoned {
                continue;
            }
            for i in 0..self.dtypes.len() {
                let id = ArrayId(i as u32);
                let space = pm.space(id);
                if space != MemorySpace::Shared && !self.access_info[i].is_empty() {
                    self.get_memo(id, space, skel.bases[i]);
                }
            }
        }
        self.counters
            .add(&self.counters.prepare_nanos, t0.elapsed().as_nanos() as u64);
    }

    fn build_skeleton(&self, canonical: &PlacementMap) -> Skeleton {
        let cfg = &self.predictor.cfg;
        self.counters.add(&self.counters.skeletons_built, 1);
        self.counters.add(&self.counters.full_rewrites, 1);
        let n = self.dtypes.len();
        let poisoned_skeleton = || Skeleton {
            consts: TraceAnalysis::default(),
            events: Vec::new(),
            tx_arena: Vec::new(),
            bases: vec![(0, 0); n],
            poisoned: true,
        };
        if self.inject_poison.load(Ordering::Relaxed) {
            return poisoned_skeleton();
        }
        let Ok(rewritten) = rewrite(&self.profile.trace, canonical, cfg) else {
            return poisoned_skeleton();
        };
        let mut rec = Recorder {
            cfg,
            map: &self.warp_body_map,
            events: Vec::new(),
            tx_arena: Vec::new(),
            last_advance: vec![None; cfg.num_sms as usize],
            ok: true,
        };
        let canonical_analysis =
            analyze_observed(&rewritten, cfg, AnalysisOptions::default(), &mut rec);
        if !rec.ok {
            return poisoned_skeleton();
        }
        let bases: Vec<(u64, u64)> = (0..n)
            .map(|i| {
                let id = ArrayId(i as u32);
                if canonical.space(id) == MemorySpace::Shared {
                    (0, 0)
                } else {
                    let b0 = rewritten.alloc.base(id, 0, canonical);
                    let stride = if rewritten.geometry.grid_blocks > 1 {
                        rewritten.alloc.base(id, 1, canonical) - b0
                    } else {
                        0
                    };
                    (b0, stride)
                }
            })
            .collect();
        let mut consts = canonical_analysis.clone();
        consts.executed = 0;
        consts.replay_global_divergence = 0;
        consts.replay_const_miss = 0;
        consts.replay_const_divergence = 0;
        consts.global_requests = 0;
        consts.global_transactions = 0;
        consts.tex_requests = 0;
        consts.tex_transactions = 0;
        consts.tex_misses = 0;
        consts.const_requests = 0;
        consts.const_transactions = 0;
        consts.const_misses = 0;
        consts.l2_transactions = 0;
        consts.l2_misses = 0;
        consts.l2_writebacks = 0;
        consts.dram.clear();
        let skel = Skeleton {
            consts,
            events: rec.events,
            tx_arena: rec.tx_arena,
            bases,
            poisoned: false,
        };
        // Self-check: replaying the canonical placement must reproduce
        // the direct analysis bit for bit. A mismatch poisons the
        // skeleton — its candidates silently use the exact path.
        if self.replay(&skel, canonical) != canonical_analysis {
            return Skeleton {
                poisoned: true,
                ..skel
            };
        }
        skel
    }

    /// Compose the exact `TraceAnalysis` of `target` from the skeleton's
    /// recorded events plus per-`(array, space)` memos, re-running only
    /// the stateful cache models. The cache models live in a per-thread
    /// scratch that is generation-reset (not reallocated) between
    /// replays — the hot loop streams over the flat `EventRec` column
    /// with no per-event allocation.
    fn replay(&self, skel: &Skeleton, target: &PlacementMap) -> TraceAnalysis {
        let cfg = &self.predictor.cfg;
        let n_arrays = self.dtypes.len();
        let mut out = skel.consts.clone();
        REPLAY_SCRATCH.with(|cell| {
            let mut slot = cell.borrow_mut();
            let scratch = match slot.as_mut() {
                Some(s) if s.matches(cfg) => {
                    s.reset();
                    s
                }
                _ => {
                    *slot = Some(ReplayScratch::new(cfg));
                    slot.as_mut().unwrap()
                }
            };
            scratch.memo_slots.resize(n_arrays, None);
            let ReplayScratch {
                l2,
                const_caches,
                tex_caches,
                sm_pos,
                memo_slots,
                ..
            } = scratch;
            for ev in &skel.events {
                let sm = ev.sm as usize;
                match ev.kind {
                    EV_ADVANCE => {
                        out.executed += ev.x;
                        sm_pos[sm] += ev.x;
                    }
                    EV_ADDR_CALC => {
                        let array = ArrayId(ev.arr);
                        let n = u64::from(addr_calc_instrs(
                            target.space(array),
                            self.dtypes[array.index()],
                        )) * ev.x;
                        out.executed += n;
                        sm_pos[sm] += n;
                    }
                    EV_STAGING_GLOBAL => {
                        out.executed += 1;
                        sm_pos[sm] += 1;
                        out.global_requests += 1;
                        out.global_transactions += u64::from(ev.tx_len);
                        out.replay_global_divergence += ev.x;
                        let txs = &skel.tx_arena[ev.tx as usize..(ev.tx + ev.tx_len) as usize];
                        for &t in txs {
                            l2_fill(
                                l2,
                                &mut out,
                                t,
                                L2Source::Global,
                                sm_pos[sm],
                                ev.sm as u32,
                                ev.flag != 0,
                            );
                        }
                    }
                    EV_L2_PROBE => {
                        l2_fill(
                            l2,
                            &mut out,
                            ev.x,
                            L2Source::Global,
                            sm_pos[sm],
                            ev.sm as u32,
                            ev.flag != 0,
                        );
                    }
                    _ => {
                        // EV_BODY
                        out.executed += 1;
                        sm_pos[sm] += 1;
                        let array = ArrayId(ev.arr);
                        let space = target.space(array);
                        let memo = memo_slots[array.index()].get_or_insert_with(|| {
                            self.get_memo(array, space, skel.bases[array.index()])
                        });
                        match &memo[ev.x as usize] {
                            MemoOutcome::Empty => {}
                            MemoOutcome::Global {
                                replays,
                                transactions,
                                is_store,
                            } => {
                                out.global_requests += 1;
                                out.global_transactions += transactions.len() as u64;
                                out.replay_global_divergence += u64::from(*replays);
                                for t in transactions {
                                    l2_fill(
                                        l2,
                                        &mut out,
                                        *t,
                                        L2Source::Global,
                                        sm_pos[sm],
                                        ev.sm as u32,
                                        *is_store,
                                    );
                                }
                            }
                            MemoOutcome::Tex { lines } => {
                                let r = tex_caches[sm].access_lines(lines);
                                out.tex_requests += 1;
                                out.tex_transactions += u64::from(r.transactions);
                                out.tex_misses += u64::from(r.misses);
                                for line in &r.missed_lines {
                                    l2_fill(
                                        l2,
                                        &mut out,
                                        *line,
                                        L2Source::Texture,
                                        sm_pos[sm],
                                        ev.sm as u32,
                                        false,
                                    );
                                }
                            }
                            MemoOutcome::Const { words } => {
                                let r = const_caches[sm].access_words(words);
                                out.const_requests += 1;
                                out.const_transactions += u64::from(r.transactions);
                                out.const_misses += u64::from(r.misses);
                                out.replay_const_divergence += u64::from(r.transactions - 1);
                                out.replay_const_miss += u64::from(r.misses);
                                for line in &r.missed_lines {
                                    l2_fill(
                                        l2,
                                        &mut out,
                                        *line,
                                        L2Source::Constant,
                                        sm_pos[sm],
                                        ev.sm as u32,
                                        false,
                                    );
                                }
                            }
                        }
                    }
                }
            }
            out.l2_transactions = l2.transactions();
            out.l2_misses = l2.misses();
            out.l2_writebacks = l2.writebacks();
        });
        out
    }

    /// Predict `target`'s execution time through the incremental path
    /// (exact fallback when the shared set's skeleton is poisoned).
    /// Bit-identical to [`Predictor::predict`].
    pub fn predict(&self, target: &PlacementMap) -> Result<Prediction, HmsError> {
        target.validate(&self.profile.trace.arrays, &self.predictor.cfg)?;
        let skel = self.skeleton_for(target);
        if skel.poisoned {
            self.counters.add(&self.counters.exact_fallbacks, 1);
            self.counters.add(&self.counters.full_rewrites, 1);
            return self.predictor.predict(self.profile, target);
        }
        let analysis = self.replay(&skel, target);
        self.counters.add(&self.counters.delta_cache_hits, 1);
        let pred =
            self.predictor
                .predict_prepared(self.profile, analysis, self.sample_analysis.as_ref());
        if pred.cycles.is_finite() {
            Ok(pred)
        } else {
            Err(HmsError::NonFinitePrediction {
                cycles: pred.cycles,
                t_comp: pred.t_comp,
                t_mem: pred.t_mem,
                t_overlap: pred.t_overlap,
            })
        }
    }

    /// Evaluate and rank `candidates` (ascending predicted time, stable
    /// on ties). Bit-identical to the naive
    /// [`rank_placements_naive`](crate::search::rank_placements_naive)
    /// for every worker count.
    pub fn rank(
        &self,
        candidates: &[PlacementMap],
        threads: usize,
    ) -> Result<Vec<RankedPlacement>, HmsError> {
        let mut ranked = self.evaluate_batch(candidates, threads)?;
        ranked.sort_by(|a, b| a.predicted_cycles.total_cmp(&b.predicted_cycles));
        Ok(ranked)
    }

    /// Evaluate `candidates` in input order (no sort): prepare the
    /// skeletons and memos they need, then fan the pure-read
    /// predictions out across `threads` workers.
    pub(crate) fn evaluate_batch(
        &self,
        candidates: &[PlacementMap],
        threads: usize,
    ) -> Result<Vec<RankedPlacement>, HmsError> {
        self.prepare(candidates, threads);
        let t0 = Instant::now();
        let predictions = hms_stats::par::par_map_threads(threads, candidates, |pm| {
            self.predict(pm).map(|pred| RankedPlacement {
                placement: pm.clone(),
                predicted_cycles: pred.cycles,
            })
        });
        let mut ranked = Vec::with_capacity(candidates.len());
        for p in predictions {
            ranked.push(p?);
        }
        self.counters
            .add(&self.counters.candidates_evaluated, candidates.len() as u64);
        self.counters.add(
            &self.counters.evaluate_nanos,
            t0.elapsed().as_nanos() as u64,
        );
        Ok(ranked)
    }

    /// Standalone-legal spaces for each array (superset of the jointly
    /// legal spaces) — drives branch-and-bound enumeration.
    pub(crate) fn legal_spaces(&self, array: ArrayId) -> &[MemorySpace] {
        &self.lb.legal_spaces[array.index()]
    }

    /// Monotone lower bound on the predicted cycles of **any** legal
    /// completion of a partial assignment (`None` = free array; fixed
    /// arrays carry `Some(space)`).
    ///
    /// `T >= T_comp + (1 - max_ratio) x T_mem`, with `T_comp` floored by
    /// the body's placement-invariant issue slots, per-space stateless
    /// replays and addressing expansion (free arrays take their minimum
    /// over standalone-legal spaces) at maximum-occupancy throughput,
    /// and `T_mem` floored by the body wait chain at minimum waves times
    /// an AMAT floor built from per-space hit latencies (staging can
    /// only pull AMAT toward `c_min`, never below `min(A/B, c_min)`).
    /// A `1 - 1e-9` discount absorbs float-rounding asymmetry between
    /// the bound's and the model's operation order.
    pub(crate) fn lower_bound(&self, spaces: &[Option<MemorySpace>]) -> f64 {
        let lb = &self.lb;
        let mut amat_num = 0.0f64;
        let mut issued = lb.body_fixed_executed + lb.other_replays;
        for (i, s) in spaces.iter().enumerate() {
            match s {
                Some(sp) => {
                    let k = space_idx(*sp);
                    issued += lb.expansion[i][k] + lb.stateless_replays[i][k];
                    amat_num += lb.body_requests[i] as f64 * lb.floor_lat[k];
                }
                None => {
                    issued += lb.free_expansion[i] + lb.free_replays[i];
                    amat_num += lb.body_requests[i] as f64 * lb.free_floor[i];
                }
            }
        }
        let inst_per_warp = if lb.detailed {
            issued as f64 / lb.total_warps
        } else {
            lb.inst_executed_sample as f64 / lb.total_warps
        };
        let tc = inst_per_warp * lb.total_warps / lb.active_sms * lb.thr_min + lb.w_serial_lb;
        let amat = if lb.body_mem_instrs == 0 {
            0.0
        } else {
            (amat_num / lb.body_mem_instrs as f64).min(lb.c_min)
        };
        let tm = lb.body_wait_events as f64 / lb.total_warps * lb.waves_min * amat;
        (tc + (1.0 - lb.rmax) * tm).max(1.0) * (1.0 - 1e-9)
    }
}

/// Records [`WalkEvent`]s into the skeleton's replayable stream,
/// accumulating staging coalescing and merging adjacent same-SM
/// advances.
struct Recorder<'e> {
    cfg: &'e GpuConfig,
    map: &'e HashMap<(u32, u32), Vec<Option<(ArrayId, u32)>>>,
    events: Vec<EventRec>,
    tx_arena: Vec<u64>,
    /// Index of the last `Advance` per SM, merge target for runs.
    last_advance: Vec<Option<usize>>,
    ok: bool,
}

impl Recorder<'_> {
    fn advance(&mut self, sm: usize, n: u64) {
        if let Some(i) = self.last_advance[sm] {
            let e = &mut self.events[i];
            if e.kind == EV_ADVANCE {
                e.x += n;
                return;
            }
        }
        self.last_advance[sm] = Some(self.events.len());
        self.events.push(EventRec {
            kind: EV_ADVANCE,
            flag: 0,
            sm: sm as u16,
            arr: 0,
            x: n,
            tx: 0,
            tx_len: 0,
        });
    }
}

impl WalkObserver for Recorder<'_> {
    fn event(&mut self, ev: WalkEvent<'_>) {
        match ev {
            WalkEvent::Advance { sm, n } => self.advance(sm, n),
            WalkEvent::AddrCalc { sm, array, count } => {
                self.last_advance[sm] = None;
                self.events.push(EventRec {
                    kind: EV_ADDR_CALC,
                    flag: 0,
                    sm: sm as u16,
                    arr: array.0,
                    x: u64::from(count),
                    tx: 0,
                    tx_len: 0,
                });
            }
            WalkEvent::LocalFill { sm, addr, is_store } => {
                self.last_advance[sm] = None;
                self.events.push(EventRec {
                    kind: EV_L2_PROBE,
                    flag: u8::from(is_store),
                    sm: sm as u16,
                    arr: 0,
                    x: addr,
                    tx: 0,
                    tx_len: 0,
                });
            }
            WalkEvent::Access {
                sm,
                block,
                warp,
                body_idx,
                array: ev_array,
                space,
                is_store,
                elem_bytes,
                addrs,
            } => match body_idx {
                Some(i) => {
                    match self
                        .map
                        .get(&(block, warp))
                        .and_then(|v| v.get(i))
                        .copied()
                        .flatten()
                    {
                        Some((array, ordinal)) => {
                            debug_assert_eq!(array, ev_array);
                            self.last_advance[sm] = None;
                            self.events.push(EventRec {
                                kind: EV_BODY,
                                flag: 0,
                                sm: sm as u16,
                                arr: array.0,
                                x: u64::from(ordinal),
                                tx: 0,
                                tx_len: 0,
                            });
                        }
                        None => self.ok = false,
                    }
                }
                None => {
                    // Staging copies touch only global and shared
                    // memory; shared staging counters are skeleton
                    // constants, so only the position advance replays.
                    if addrs.is_empty() || space == MemorySpace::Shared {
                        self.advance(sm, 1);
                    } else if space == MemorySpace::Global {
                        let co = coalesce(
                            addrs.iter().copied(),
                            u64::from(elem_bytes),
                            self.cfg.transaction_bytes,
                        );
                        self.last_advance[sm] = None;
                        let tx = self.tx_arena.len() as u32;
                        self.tx_arena.extend_from_slice(&co.transactions);
                        self.events.push(EventRec {
                            kind: EV_STAGING_GLOBAL,
                            flag: u8::from(is_store),
                            sm: sm as u16,
                            arr: 0,
                            x: u64::from(co.replays),
                            tx,
                            tx_len: co.transactions.len() as u32,
                        });
                    } else {
                        self.ok = false;
                    }
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_sample;
    use crate::search::enumerate_placements;
    use hms_kernels::Scale;

    fn setup(name: &str) -> (Predictor, Profile, Vec<hms_types::ArrayDef>) {
        let cfg = GpuConfig::test_small();
        let kt = hms_kernels::by_name(name, Scale::Test).expect("kernel exists");
        let profile = profile_sample(&kt, &kt.default_placement(), &cfg).unwrap();
        (Predictor::new(cfg), profile, kt.arrays)
    }

    #[test]
    fn engine_matches_naive_predictor_bitwise() {
        let (predictor, profile, arrays) = setup("vecadd");
        let base = profile.trace.placement.clone();
        let ids: Vec<ArrayId> = arrays.iter().map(|a| a.id).collect();
        let cands = enumerate_placements(&arrays, &base, &ids, &predictor.cfg, 4096);
        let engine = Engine::new(&predictor, &profile);
        for pm in &cands {
            let fast = engine.predict(pm).unwrap();
            let slow = predictor.predict(&profile, pm).unwrap();
            assert_eq!(
                fast.cycles.to_bits(),
                slow.cycles.to_bits(),
                "divergence for {pm:?}"
            );
            assert_eq!(fast.analysis, slow.analysis, "analysis drift for {pm:?}");
        }
        let stats = engine.stats();
        assert_eq!(stats.exact_fallbacks, 0, "no skeleton may fail self-check");
        assert!(stats.skeletons_built < cands.len() as u64);
    }

    #[test]
    fn skeletons_are_shared_per_shared_set() {
        let (predictor, profile, arrays) = setup("vecadd");
        let base = profile.trace.placement.clone();
        // a and b are read-only: 4 spaces each; one skeleton per shared
        // subset of {a, b} = 4 skeletons for 16 candidates.
        let cands = enumerate_placements(
            &arrays,
            &base,
            &[ArrayId(0), ArrayId(1)],
            &predictor.cfg,
            4096,
        );
        assert_eq!(cands.len(), 16);
        let engine = Engine::new(&predictor, &profile);
        let ranked = engine.rank(&cands, 1).unwrap();
        assert_eq!(ranked.len(), 16);
        let stats = engine.stats();
        assert_eq!(stats.skeletons_built, 4);
        assert_eq!(stats.full_rewrites, 4);
        assert_eq!(stats.delta_cache_hits, 16); // self-check replays bypass predict()
        assert!(stats.rewrite_reduction() >= 4.0);
    }

    #[test]
    fn injected_poison_degrades_to_exact_path_bit_identically() {
        let (predictor, profile, arrays) = setup("vecadd");
        let base = profile.trace.placement.clone();
        let ids: Vec<ArrayId> = arrays.iter().map(|a| a.id).collect();
        let cands = enumerate_placements(&arrays, &base, &ids, &predictor.cfg, 4096);

        let healthy = Engine::new(&predictor, &profile);
        let ranked = healthy.rank(&cands, 1).unwrap();

        let faulted = Engine::new(&predictor, &profile);
        faulted.inject_poison(true);
        let ranked_faulted = faulted.rank(&cands, 1).unwrap();

        assert_eq!(ranked.len(), ranked_faulted.len());
        for (a, b) in ranked.iter().zip(&ranked_faulted) {
            assert_eq!(a.placement, b.placement);
            assert_eq!(
                a.predicted_cycles.to_bits(),
                b.predicted_cycles.to_bits(),
                "poisoned fallback diverged for {:?}",
                a.placement
            );
        }
        let stats = faulted.stats();
        assert_eq!(stats.exact_fallbacks, cands.len() as u64);
        assert_eq!(stats.delta_cache_hits, 0);

        // Recovery: toggling injection off lets fresh skeletons build,
        // but the poisoned ones already cached keep falling back.
        faulted.inject_poison(false);
        let again = faulted.rank(&cands, 1).unwrap();
        assert_eq!(again.len(), ranked.len());
    }

    #[test]
    fn lower_bound_never_exceeds_true_prediction() {
        for name in ["vecadd", "spmv", "stencil2d"] {
            let (predictor, profile, arrays) = setup(name);
            let base = profile.trace.placement.clone();
            let ids: Vec<ArrayId> = arrays.iter().map(|a| a.id).collect();
            let cands = enumerate_placements(&arrays, &base, &ids, &predictor.cfg, 256);
            let engine = Engine::new(&predictor, &profile);
            let free = vec![None; arrays.len()];
            let lb_all_free = engine.lower_bound(&free);
            for pm in &cands {
                let pred = engine.predict(pm).unwrap();
                let assigned: Vec<Option<MemorySpace>> = (0..arrays.len())
                    .map(|i| Some(pm.space(ArrayId(i as u32))))
                    .collect();
                let lb = engine.lower_bound(&assigned);
                assert!(
                    lb <= pred.cycles,
                    "{name}: bound {lb} exceeds prediction {} for {pm:?}",
                    pred.cycles
                );
                assert!(
                    lb_all_free <= lb + 1e-9,
                    "{name}: freeing arrays must not raise the bound"
                );
            }
        }
    }
}
