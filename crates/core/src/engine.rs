//! Incremental placement-search engine: delta evaluation, memoization,
//! and branch-and-bound support for the placement search.
//!
//! The naive search pipeline re-runs `rewrite` + `analyze` for every
//! candidate placement, even though most of the work is identical
//! between candidates. Two structural facts make incremental evaluation
//! possible:
//!
//! 1. **The walk skeleton depends only on the shared-memory set.** The
//!    analysis walk's block-to-SM assignment, occupancy, staging
//!    prologue/epilogue, warp interleaving, and every placement-invariant
//!    counter (`mem_instrs`, waits, MLP, syncs, shared/local traffic)
//!    are functions of *which arrays sit in shared memory* — never of
//!    the global/texture/constant choice for the rest. The engine
//!    therefore performs **one** exact `rewrite` + recorded `analyze`
//!    per distinct shared set (a [`Skeleton`]) and replays the recorded
//!    event stream for every other candidate sharing it.
//!
//! 2. **Per-access outcomes are stateless per `(array, space, base)`.**
//!    Coalescing, constant-word dedup, and texture-line dedup depend
//!    only on the lane element indices (recovered once from the sample
//!    trace via [`hms_trace::recover_elem_indices`]), the target space's
//!    layout, and the allocator base — not on cache state. The engine
//!    memoizes them per `(array, space, base, stride)` and composes a
//!    candidate's [`TraceAnalysis`] by re-running only the *stateful*
//!    models (texture/constant caches, L2, DRAM stream) over the
//!    composed access sequence.
//!
//! The composition is **bit-identical** to the direct path by
//! construction: the stateful caches expose the same entry points the
//! walk uses ([`hms_cache::TextureCache::access_lines`],
//! [`hms_cache::ConstantCache::access_words`]), and every skeleton
//! self-checks by replaying its own canonical placement and comparing
//! the full `TraceAnalysis` (exact `PartialEq`) against the direct
//! result. A skeleton that fails the self-check is *poisoned* and its
//! candidates silently take the exact `rewrite`+`analyze` fallback, so
//! correctness never depends on the delta machinery.
//!
//! For branch-and-bound pruning the engine also precomputes a **monotone
//! lower bound** on the predicted time of any completion of a partial
//! assignment (see [`Engine::lower_bound`]): a `T_comp` floor from
//! placement-invariant issue slots plus per-space stateless-replay and
//! addressing floors, and a `T_mem` floor from per-space hit-latency
//! floors — combined through the overlap model's
//! [`ToverlapModel::max_ratio`](crate::toverlap::ToverlapModel::max_ratio)
//! ceiling. Every quantity in the bound can only grow when staging or
//! cache misses are added, so no subtree containing the true optimum is
//! ever pruned.

use std::cell::RefCell;
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use hms_cache::{ConstantCache, L2Cache, L2Source, TextureCache};
use hms_trace::{
    addr_calc_instrs, coalesce, element_offset, recover_elem_indices, rewrite, CInstr, ElemIdx,
};
use hms_types::{ArrayId, DType, GpuConfig, HmsError, MemorySpace, PlacementMap};

use crate::analysis::{
    analyze_observed, l2_fill, AnalysisOptions, TraceAnalysis, WalkEvent, WalkObserver,
};
use crate::predictor::{Prediction, Predictor};
use crate::profile::Profile;
use crate::search::RankedPlacement;
use crate::tcomp::effective_throughput;

/// Search observability counters, exposed through
/// [`SearchOutcome`](crate::search::SearchOutcome) and `hms search
/// --stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Distinct walk skeletons built (one exact rewrite + recorded
    /// analysis each).
    pub skeletons_built: u64,
    /// Whole-trace `rewrite` + `analyze` runs: skeleton builds plus
    /// exact fallbacks. The headline economy metric — compare against
    /// `candidates_evaluated`.
    pub full_rewrites: u64,
    /// Candidate evaluations composed from memoized deltas instead of a
    /// full rewrite.
    pub delta_cache_hits: u64,
    /// Candidates that fell back to the exact path (poisoned skeleton).
    pub exact_fallbacks: u64,
    /// `(array, space, base)` delta-memo tables built.
    pub memo_tables_built: u64,
    /// Skeletons loaded from the persistent on-disk cache (each one a
    /// full rewrite + recorded analysis *not* paid).
    pub skeleton_disk_hits: u64,
    /// Disk-cache lookups that missed (absent, stale, or corrupt file —
    /// all trigger a silent rebuild).
    pub skeleton_disk_misses: u64,
    /// Skeletons persisted to the on-disk cache.
    pub skeleton_disk_writes: u64,
    /// Stranded `*.tmp` files swept when the disk cache was opened
    /// (leftovers of writers that died mid-store — see the
    /// [`skelcache`](crate::skelcache) temp-file hygiene notes).
    pub skeleton_disk_tmp_swept: u64,
    /// Legal candidates produced by enumeration (exhaustive) or visited
    /// as branch-and-bound leaves.
    pub candidates_enumerated: u64,
    /// Candidates actually evaluated by the model.
    pub candidates_evaluated: u64,
    /// Completions skipped by the lower bound. Counted via per-array
    /// standalone legality, so jointly-illegal completions inflate the
    /// number slightly; it is an upper estimate of work avoided.
    pub candidates_pruned: u64,
    /// Prefix subtrees cut by the bound.
    pub subtrees_pruned: u64,
    /// Wall time preparing skeletons and delta memos.
    pub prepare_nanos: u64,
    /// Wall time enumerating candidates.
    pub enumerate_nanos: u64,
    /// Wall time evaluating candidates (model math + ranking).
    pub evaluate_nanos: u64,
    /// Candidates *considered* by an anytime strategy — prefixes scored
    /// by the lower bound, arms advanced by successive halving, genomes
    /// proposed by local search — whether or not they reached the model.
    /// Exact strategies leave this 0.
    pub candidates_visited: u64,
    /// Sound upper bound on the relative optimality gap of the best
    /// returned placement: `best <= optimum * (1 + gap_upper_bound)`.
    /// 0 for exact strategies that ran to completion; see
    /// [`strategies`](crate::strategies) for how each strategy derives
    /// its bound.
    pub gap_upper_bound: f64,
    /// Lane-batched replay passes: each one streams a skeleton's event
    /// column once for a whole batch of candidates. Compare against
    /// `delta_cache_hits` (lanes replayed) for the batching factor.
    pub batched_replays: u64,
    /// Widest lane batch replayed so far (a gauge, not a sum): how many
    /// candidates shared one event-stream pass at peak.
    pub lane_width: u64,
    /// Skeleton events decoded across all batched replays. Without
    /// batching this grows per *candidate*; with it, per *batch* — the
    /// ratio `events_streamed / delta_cache_hits` is the per-candidate
    /// decode cost batching saves.
    pub events_streamed: u64,
    /// Wire name of the strategy that produced this snapshot (see
    /// [`SearchStrategy::name`](crate::search::SearchStrategy::name));
    /// empty for snapshots taken outside a search.
    pub strategy: &'static str,
}

impl EngineStats {
    /// Candidates evaluated per full trace rewrite — the factor the
    /// incremental engine saves over the naive search (≥ 5x on a
    /// 3-array search is the working target).
    pub fn rewrite_reduction(&self) -> f64 {
        self.candidates_evaluated as f64 / self.full_rewrites.max(1) as f64
    }

    /// Whether `strategy` names one of the anytime approximate
    /// strategies — the ones whose `candidates_visited` /
    /// `gap_upper_bound` carry meaning (and appear on the wire).
    pub fn anytime(&self) -> bool {
        matches!(
            self.strategy,
            "beam" | "successive_halving" | "local_search"
        )
    }

    /// Fraction of the (estimated) candidate space skipped by pruning.
    pub fn prune_rate(&self) -> f64 {
        let total = self.candidates_pruned + self.candidates_evaluated;
        if total == 0 {
            0.0
        } else {
            self.candidates_pruned as f64 / total as f64
        }
    }

    /// Fold another stats snapshot into this one, field by field — the
    /// hook long-lived callers (the advisory server's `/metrics`, sweep
    /// harnesses) use to keep cumulative engine totals across searches.
    pub fn accumulate(&mut self, other: &EngineStats) {
        self.skeletons_built += other.skeletons_built;
        self.full_rewrites += other.full_rewrites;
        self.delta_cache_hits += other.delta_cache_hits;
        self.exact_fallbacks += other.exact_fallbacks;
        self.memo_tables_built += other.memo_tables_built;
        self.skeleton_disk_hits += other.skeleton_disk_hits;
        self.skeleton_disk_misses += other.skeleton_disk_misses;
        self.skeleton_disk_writes += other.skeleton_disk_writes;
        self.skeleton_disk_tmp_swept += other.skeleton_disk_tmp_swept;
        self.candidates_enumerated += other.candidates_enumerated;
        self.candidates_evaluated += other.candidates_evaluated;
        self.candidates_pruned += other.candidates_pruned;
        self.subtrees_pruned += other.subtrees_pruned;
        self.prepare_nanos += other.prepare_nanos;
        self.enumerate_nanos += other.enumerate_nanos;
        self.evaluate_nanos += other.evaluate_nanos;
        self.candidates_visited += other.candidates_visited;
        self.batched_replays += other.batched_replays;
        // Peak gauge, like the gap bound below.
        self.lane_width = self.lane_width.max(other.lane_width);
        self.events_streamed += other.events_streamed;
        // A cumulative total keeps the *worst* gap seen; the strategy
        // name is per-search, so the accumulator's own label wins.
        self.gap_upper_bound = self.gap_upper_bound.max(other.gap_upper_bound);
    }

    /// Candidates evaluated per second of evaluation wall time.
    pub fn candidates_per_sec(&self) -> f64 {
        if self.evaluate_nanos == 0 {
            0.0
        } else {
            self.candidates_evaluated as f64 / (self.evaluate_nanos as f64 / 1e9)
        }
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "search engine stats:")?;
        if !self.strategy.is_empty() {
            writeln!(f, "  strategy                {:>10}", self.strategy)?;
        }
        if self.anytime() {
            writeln!(
                f,
                "  candidates visited      {:>10}",
                self.candidates_visited
            )?;
            writeln!(
                f,
                "  gap upper bound         {:>12.2}%",
                self.gap_upper_bound * 100.0
            )?;
        }
        writeln!(
            f,
            "  candidates enumerated   {:>10}",
            self.candidates_enumerated
        )?;
        writeln!(
            f,
            "  candidates evaluated    {:>10}",
            self.candidates_evaluated
        )?;
        writeln!(
            f,
            "  candidates pruned (est) {:>10}",
            self.candidates_pruned
        )?;
        writeln!(f, "  subtrees pruned         {:>10}", self.subtrees_pruned)?;
        writeln!(f, "  skeletons built         {:>10}", self.skeletons_built)?;
        writeln!(f, "  full trace rewrites     {:>10}", self.full_rewrites)?;
        writeln!(f, "  delta-composed evals    {:>10}", self.delta_cache_hits)?;
        writeln!(f, "  exact fallbacks         {:>10}", self.exact_fallbacks)?;
        writeln!(
            f,
            "  delta memo tables       {:>10}",
            self.memo_tables_built
        )?;
        writeln!(
            f,
            "  skeleton disk hits      {:>10}",
            self.skeleton_disk_hits
        )?;
        writeln!(
            f,
            "  skeleton disk misses    {:>10}",
            self.skeleton_disk_misses
        )?;
        if self.skeleton_disk_tmp_swept > 0 {
            writeln!(
                f,
                "  skeleton temps swept    {:>10}",
                self.skeleton_disk_tmp_swept
            )?;
        }
        if self.batched_replays > 0 {
            writeln!(f, "  batched replays         {:>10}", self.batched_replays)?;
            writeln!(f, "  peak lane width         {:>10}", self.lane_width)?;
            writeln!(f, "  events streamed         {:>10}", self.events_streamed)?;
        }
        writeln!(
            f,
            "  rewrite reduction       {:>13.2}x",
            self.rewrite_reduction()
        )?;
        writeln!(
            f,
            "  prune rate              {:>12.1}%",
            self.prune_rate() * 100.0
        )?;
        writeln!(
            f,
            "  prepare / enumerate / evaluate  {:.2} ms / {:.2} ms / {:.2} ms",
            self.prepare_nanos as f64 / 1e6,
            self.enumerate_nanos as f64 / 1e6,
            self.evaluate_nanos as f64 / 1e6,
        )
    }
}

/// Thread-safe mirror of [`EngineStats`], bumped from worker threads.
#[derive(Debug, Default)]
pub(crate) struct EngineCounters {
    pub skeletons_built: AtomicU64,
    pub full_rewrites: AtomicU64,
    pub delta_cache_hits: AtomicU64,
    pub exact_fallbacks: AtomicU64,
    pub memo_tables_built: AtomicU64,
    pub skeleton_disk_hits: AtomicU64,
    pub skeleton_disk_misses: AtomicU64,
    pub skeleton_disk_writes: AtomicU64,
    pub skeleton_disk_tmp_swept: AtomicU64,
    pub candidates_enumerated: AtomicU64,
    pub candidates_evaluated: AtomicU64,
    pub candidates_pruned: AtomicU64,
    pub subtrees_pruned: AtomicU64,
    pub prepare_nanos: AtomicU64,
    pub enumerate_nanos: AtomicU64,
    pub evaluate_nanos: AtomicU64,
    pub candidates_visited: AtomicU64,
    pub batched_replays: AtomicU64,
    /// Peak lane width (gauge; updated with `fetch_max`).
    pub lane_width: AtomicU64,
    pub events_streamed: AtomicU64,
}

impl EngineCounters {
    fn snapshot(&self) -> EngineStats {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        EngineStats {
            skeletons_built: g(&self.skeletons_built),
            full_rewrites: g(&self.full_rewrites),
            delta_cache_hits: g(&self.delta_cache_hits),
            exact_fallbacks: g(&self.exact_fallbacks),
            memo_tables_built: g(&self.memo_tables_built),
            skeleton_disk_hits: g(&self.skeleton_disk_hits),
            skeleton_disk_misses: g(&self.skeleton_disk_misses),
            skeleton_disk_writes: g(&self.skeleton_disk_writes),
            skeleton_disk_tmp_swept: g(&self.skeleton_disk_tmp_swept),
            candidates_enumerated: g(&self.candidates_enumerated),
            candidates_evaluated: g(&self.candidates_evaluated),
            candidates_pruned: g(&self.candidates_pruned),
            subtrees_pruned: g(&self.subtrees_pruned),
            prepare_nanos: g(&self.prepare_nanos),
            enumerate_nanos: g(&self.enumerate_nanos),
            evaluate_nanos: g(&self.evaluate_nanos),
            candidates_visited: g(&self.candidates_visited),
            batched_replays: g(&self.batched_replays),
            lane_width: g(&self.lane_width),
            events_streamed: g(&self.events_streamed),
            // Per-search, filled in by `search()` on its outcome
            // snapshot — there is no atomic mirror for them.
            gap_upper_bound: 0.0,
            strategy: "",
        }
    }

    pub(crate) fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    fn max(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_max(n, Ordering::Relaxed);
    }
}

/// Hard cap on replay lanes per batch: each lane carries its own L2 /
/// texture / constant model state (~hundreds of KiB on real configs),
/// so unbounded widths would trade cache locality for decode savings.
const MAX_LANE_WIDTH: usize = 64;

/// Event-kind codes of the skeleton's recorded stream.
pub(crate) const EV_ADVANCE: u8 = 0;
pub(crate) const EV_ADDR_CALC: u8 = 1;
pub(crate) const EV_BODY: u8 = 2;
pub(crate) const EV_STAGING_GLOBAL: u8 = 3;
pub(crate) const EV_L2_PROBE: u8 = 4;

/// One recorded walk event as a fixed-size record; the replay loop
/// streams over a flat `Vec<EventRec>` (plus the shared transaction
/// arena) instead of chasing per-event heap payloads.
///
/// Field use per kind:
///
/// | kind             | `flag`     | `arr`  | `x`        | `tx..tx+tx_len` |
/// |------------------|------------|--------|------------|-----------------|
/// | `EV_ADVANCE`     | –          | –      | slot count | –               |
/// | `EV_ADDR_CALC`   | –          | array  | ref count  | –               |
/// | `EV_BODY`        | –          | array  | ordinal    | –               |
/// | `EV_STAGING_GLOBAL` | is_store | –     | replays    | transactions    |
/// | `EV_L2_PROBE`    | is_store   | –      | address    | –               |
#[derive(Debug, Clone, Copy)]
pub(crate) struct EventRec {
    pub kind: u8,
    pub flag: u8,
    pub sm: u16,
    pub arr: u32,
    pub x: u64,
    pub tx: u32,
    pub tx_len: u32,
}

/// The recorded walk of one shared-memory set.
#[derive(Debug)]
pub(crate) struct Skeleton {
    /// Placement-invariant counters copied from the canonical analysis;
    /// placement-dependent fields zeroed (recomputed at replay).
    pub(crate) consts: TraceAnalysis,
    pub(crate) events: Vec<EventRec>,
    /// Arena of staging-copy transaction addresses, referenced by
    /// `EV_STAGING_GLOBAL` records.
    pub(crate) tx_arena: Vec<u64>,
    /// Per-array `(offchip_base, block_stride)` under this skeleton's
    /// allocator (meaningless for arrays inside the shared set, which
    /// never appear as `Body` events).
    pub(crate) bases: Vec<(u64, u64)>,
    /// Self-check failed (or recording hit an inconsistency): all
    /// candidates of this shared set take the exact path.
    pub(crate) poisoned: bool,
}

/// One candidate lane of a batched replay: the full per-candidate model
/// state (stateful caches, per-SM position, and the output accumulator).
/// Lanes are mutually independent — each performs exactly the operation
/// sequence the per-candidate replay would, which is what makes the
/// lane-batched path bit-identical by construction.
struct LaneState {
    l2: L2Cache,
    const_caches: Vec<ConstantCache>,
    tex_caches: Vec<TextureCache>,
    sm_pos: Vec<u64>,
    /// The accumulating `TraceAnalysis`; reused across replays so the
    /// DRAM stream keeps its capacity (no per-replay allocation).
    out: TraceAnalysis,
    /// Per-array index of this lane's space in `MemorySpace::ALL` order.
    space_of: Vec<u8>,
    /// Per-array addressing expansion per `AddrCalc` count unit under
    /// this lane's placement.
    addr_n: Vec<u64>,
    /// Scratch for the texture/constant caches' missed-line output
    /// (cleared by [`TextureCache::access_lines_into`] /
    /// [`ConstantCache::access_words_into`] on every call) — keeps the
    /// per-body-event miss list off the heap.
    missed: Vec<u64>,
}

impl LaneState {
    fn new(cfg: &GpuConfig) -> Self {
        let num_sms = cfg.num_sms as usize;
        LaneState {
            l2: L2Cache::new(cfg.l2_cache),
            const_caches: (0..num_sms)
                .map(|_| ConstantCache::new(cfg.const_cache))
                .collect(),
            tex_caches: (0..num_sms)
                .map(|_| TextureCache::new(cfg.tex_cache))
                .collect(),
            sm_pos: vec![0; num_sms],
            out: TraceAnalysis::default(),
            space_of: Vec::new(),
            addr_n: Vec::new(),
            missed: Vec::new(),
        }
    }

    /// Return the model state to just-constructed and load the
    /// skeleton's placement-invariant constants, all without touching
    /// the heap: the caches generation-reset and the output's DRAM
    /// stream keeps its buffers (the skeleton's `consts.dram` is empty
    /// by construction, so the clone below allocates nothing).
    fn reset(&mut self, consts: &TraceAnalysis) {
        self.l2.reset();
        for c in &mut self.const_caches {
            c.reset();
        }
        for c in &mut self.tex_caches {
            c.reset();
        }
        self.sm_pos.fill(0);
        self.space_of.clear();
        self.addr_n.clear();
        let mut dram = std::mem::take(&mut self.out.dram);
        dram.clear();
        self.out = consts.clone();
        self.out.dram = dram;
    }
}

/// Per-thread replay state: W candidate lanes plus the shared
/// per-`(array, space)` memo table. The stateful cache models dominate
/// the allocation cost (~hundreds of KiB per lane when built fresh);
/// keeping them thread-local and generation-resetting them
/// ([`SetAssocCache::reset`](hms_cache::SetAssocCache)) makes a warm
/// batched replay allocation-free.
struct ReplayScratch {
    lanes: Vec<LaneState>,
    /// Memo handle per `(array, space)` (flat `array * 5 + space_idx`),
    /// resolved lazily once per batch — lanes sharing a space for the
    /// active array share the memo row.
    memo_slots: Vec<Option<Arc<MemoRow>>>,
}

impl ReplayScratch {
    fn new(cfg: &GpuConfig) -> Self {
        ReplayScratch {
            lanes: vec![LaneState::new(cfg)],
            memo_slots: Vec::new(),
        }
    }

    /// Was this scratch built for an identical machine shape? A thread
    /// may serve engines with different configs over its lifetime.
    fn matches(&self, cfg: &GpuConfig) -> bool {
        self.lanes.first().is_none_or(|lane| {
            lane.sm_pos.len() == cfg.num_sms as usize
                && *lane.l2.geometry() == cfg.l2_cache
                && lane
                    .const_caches
                    .first()
                    .is_none_or(|c| *c.geometry() == cfg.const_cache)
                && lane
                    .tex_caches
                    .first()
                    .is_none_or(|c| *c.geometry() == cfg.tex_cache)
        })
    }

    /// Grow to `width` lanes and reset every model to just-constructed;
    /// the memo table is cleared (or grown) to `n_arrays * 5` slots.
    fn reset(&mut self, width: usize, n_arrays: usize, cfg: &GpuConfig, consts: &TraceAnalysis) {
        while self.lanes.len() < width {
            self.lanes.push(LaneState::new(cfg));
        }
        for lane in &mut self.lanes[..width] {
            lane.reset(consts);
        }
        let slots = n_arrays * 5;
        if self.memo_slots.len() != slots {
            self.memo_slots.clear();
            self.memo_slots.resize(slots, None);
        } else {
            for m in &mut self.memo_slots {
                *m = None;
            }
        }
    }
}

thread_local! {
    static REPLAY_SCRATCH: RefCell<Option<ReplayScratch>> = const { RefCell::new(None) };
}

/// Per-access shape recovered once from the sample trace.
#[derive(Debug)]
struct AccessShape {
    block: u32,
    is_store: bool,
    elem_bytes: u8,
    idx: Vec<Option<ElemIdx>>,
}

/// Which memory system one memoized access drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemoKind {
    /// No active lanes: the access advances the position but touches no
    /// memory system.
    Empty,
    Global,
    Tex,
    Const,
}

/// Memoized stateless outcome of one access under one `(space, base)`:
/// the kind plus a span into the row's shared address arena. `Copy`, so
/// the base-shift that concretizes a cached base-0 row into a
/// `(base, stride)` row is two flat buffer copies — no per-access heap
/// allocation (the old per-outcome `Vec`s made that a deep clone).
#[derive(Debug, Clone, Copy)]
struct MemoItem {
    kind: MemoKind,
    /// Global only: is this a store (dirties L2 lines).
    is_store: bool,
    /// Global only: stateless divergence replays.
    replays: u32,
    /// Span of this access's addresses in [`MemoRow::addrs`]:
    /// coalesced transactions (global), sorted deduplicated lines
    /// (texture), or sorted deduplicated words (constant).
    start: u32,
    len: u32,
}

/// One `(array, space, base, stride)` memo: per-access items over one
/// concatenated address arena.
#[derive(Debug, Clone)]
struct MemoRow {
    items: Vec<MemoItem>,
    addrs: Vec<u64>,
}

impl MemoRow {
    /// The address span of item `ord`.
    #[inline]
    fn span(&self, item: &MemoItem) -> &[u64] {
        &self.addrs[item.start as usize..(item.start + item.len) as usize]
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MemoKey {
    array: ArrayId,
    space: MemorySpace,
    base: u64,
    stride: u64,
}

/// Index of `space` in [`MemorySpace::ALL`] order.
fn space_idx(space: MemorySpace) -> usize {
    match space {
        MemorySpace::Global => 0,
        MemorySpace::Texture1D => 1,
        MemorySpace::Texture2D => 2,
        MemorySpace::Constant => 3,
        MemorySpace::Shared => 4,
    }
}

/// Everything an [`Engine`] derives purely from `(sample trace, GPU
/// config, model options)` — no placement enters any of it. Computed on
/// the first `Engine::new` for a given `(profile, predictor shape)` and
/// cached *inside the [`Profile`]* (see [`StaticsCache`]), so repeated
/// engine construction over the same profile — the serving advisor, the
/// warm benchmark pass, every search request — skips the whole sample
/// scan, the sample analysis, and the kernel fingerprint.
///
/// Placement-*derived* state (skeletons, per-base memo tables) stays
/// per-engine / on disk: caching it here would let one engine's search
/// warm another's measurements.
pub(crate) struct EngineStatics {
    dtypes: Vec<DType>,
    /// Per array, its body accesses in sample-trace order.
    access_info: Vec<Vec<AccessShape>>,
    /// `(block, warp)` → per-body-instruction `(array, ordinal)`.
    warp_body_map: HashMap<(u32, u32), Vec<Option<(ArrayId, u32)>>>,
    lb: LbStatics,
    /// Sample-trace analysis, shared across predictions by the
    /// non-detailed model variants (computed once instead of per call).
    sample_analysis: Option<TraceAnalysis>,
    /// [`crate::skelcache::kernel_hash`] of `(trace, cfg)` — the disk
    /// cache's fingerprint, precomputed so `with_disk_cache` does not
    /// re-serialize the trace on every engine construction.
    kernel_fingerprint: u64,
    /// Base-0 delta-memo rows keyed `(array, space, block_stride)`.
    /// Every allocator base is `OFFCHIP_ALIGN`-aligned, which the
    /// transaction size, texture line, and constant word all divide —
    /// so a concrete `(base, stride)` row is the base-0 row with `base`
    /// added to every address, bit-exactly (see `Engine::build_memo`).
    base_rows: Mutex<HashMap<(ArrayId, u8, u64), Arc<MemoRow>>>,
}

/// Key identifying one statics entry: the machine + model shape the
/// statics were derived under. The overlap model enters only through
/// `max_ratio` (the lower bound's `rmax`), so its clamp ceiling is the
/// whole key contribution.
#[derive(Debug, Clone, PartialEq)]
struct StaticsKey {
    cfg: GpuConfig,
    options: crate::predictor::ModelOptions,
    rmax_bits: u64,
}

/// Interior-mutable statics cache carried by [`Profile`]. A handful of
/// `(config, options)` shapes per profile at most, so a linear scan
/// beats hashing the whole `GpuConfig`.
#[derive(Default)]
pub struct StaticsCache(Mutex<Vec<(StaticsKey, Arc<EngineStatics>)>>);

impl StaticsCache {
    fn get_or_build(
        &self,
        key: StaticsKey,
        build: impl FnOnce() -> EngineStatics,
    ) -> Arc<EngineStatics> {
        let mut slot = lock_cache(&self.0);
        if let Some((_, st)) = slot.iter().find(|(k, _)| *k == key) {
            return st.clone();
        }
        let st = Arc::new(build());
        slot.push((key, st.clone()));
        st
    }
}

impl Clone for StaticsCache {
    /// A clone starts empty: the statics are pure functions of the
    /// profile's trace, and a cloned profile may be about to mutate its
    /// trace (the validation tests do exactly that). Rebuilding costs
    /// one sample scan; inheriting stale statics could cost correctness.
    fn clone(&self) -> Self {
        StaticsCache::default()
    }
}

impl std::fmt::Debug for StaticsCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = lock_cache(&self.0).len();
        write!(f, "StaticsCache({n} entries)")
    }
}

/// Placement-invariant quantities behind the branch-and-bound lower
/// bound. Every term either equals or under-approximates its
/// counterpart in the real model for *any* completion of a partial
/// assignment.
#[derive(Debug)]
struct LbStatics {
    detailed: bool,
    /// Body issue slots excluding addressing expansion (ALU + syncs +
    /// memory + local); staging only adds to this.
    body_fixed_executed: u64,
    body_mem_instrs: u64,
    body_wait_events: u64,
    /// Per array: addressing expansion per space (already scaled by the
    /// trace's AddrCalc counts).
    expansion: Vec<[u64; 5]>,
    /// Per array: exact stateless replays per space (global divergence,
    /// constant divergence, shared conflicts; texture 0). Stateful
    /// replay causes (cache misses) only add to these.
    stateless_replays: Vec<[u64; 5]>,
    /// Per array: non-empty body accesses.
    body_requests: Vec<u64>,
    /// Per array: minima over that array's standalone-legal spaces.
    free_expansion: Vec<u64>,
    free_replays: Vec<u64>,
    free_floor: Vec<f64>,
    /// Standalone-legal spaces per array (a superset of jointly-legal).
    legal_spaces: Vec<Vec<MemorySpace>>,
    /// Per-space AMAT hit-latency floor.
    floor_lat: [f64; 5],
    /// Floor for any staging access the completion might add.
    c_min: f64,
    /// Throughput at the maximum (shared-free) occupancy: the fastest
    /// any completion can issue.
    thr_min: f64,
    active_sms: f64,
    total_warps: f64,
    waves_min: f64,
    w_serial_lb: f64,
    other_replays: u64,
    inst_executed_sample: u64,
    rmax: f64,
}

/// The incremental evaluation engine. Create once per `(predictor,
/// profile)` pair; skeletons and delta memos accumulate across calls.
pub struct Engine<'a> {
    predictor: &'a Predictor,
    profile: &'a Profile,
    /// Shared placement-invariant derivations of the sample trace —
    /// cached inside the profile, so re-constructing an engine over the
    /// same `(profile, config, options)` costs one cache probe.
    st: Arc<EngineStatics>,
    skeletons: Mutex<HashMap<Vec<bool>, Arc<Skeleton>>>,
    memos: Mutex<HashMap<MemoKey, Arc<MemoRow>>>,
    pub(crate) counters: EngineCounters,
    /// Fault-injection hook: when set, every skeleton built afterwards
    /// is poisoned, forcing the exact-fallback path. Exercised by the
    /// chaos suite to prove degradation is invisible in the output.
    inject_poison: AtomicBool,
    /// Lane width for batched replays; 0 = autosize per skeleton group.
    lane_width: AtomicU64,
    /// Optional persistent skeleton cache (see [`crate::skelcache`]).
    disk: Option<crate::skelcache::DiskCache>,
}

/// Lock one of the engine's caches, recovering from a poisoned mutex:
/// a panicking worker can only have left a cache mid-insert of an
/// `Arc` value, which the `HashMap` either holds or doesn't — both
/// states are valid, so the data is safe to keep using.
fn lock_cache<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl EngineStatics {
    /// Scan the sample trace once: recover per-access element indices,
    /// assign per-array ordinals, and precompute the lower-bound
    /// statics, the sample analysis, and the disk-cache fingerprint.
    fn build(predictor: &Predictor, profile: &Profile) -> Self {
        let cfg = &predictor.cfg;
        let trace = &profile.trace;
        let n = trace.arrays.len();

        let mut access_info: Vec<Vec<AccessShape>> = (0..n).map(|_| Vec::new()).collect();
        let mut warp_body_map = HashMap::new();
        let mut body_fixed_executed = 0u64;
        let mut body_syncs = 0u64;
        let mut body_mem_instrs = 0u64;
        let mut body_wait_events = 0u64;
        let mut addrcalc_total = vec![0u64; n];
        for w in &trace.warps {
            let mut per_instr = Vec::with_capacity(w.instrs.len());
            let mut outstanding = 0u32;
            for instr in &w.instrs {
                let mut slot = None;
                match instr {
                    CInstr::Alu { count, .. } => body_fixed_executed += u64::from(*count),
                    CInstr::SyncThreads => {
                        body_fixed_executed += 1;
                        body_syncs += 1;
                    }
                    CInstr::WaitLoads => {
                        if outstanding > 0 {
                            body_wait_events += 1;
                            outstanding = 0;
                        }
                    }
                    CInstr::AddrCalc { array, count } => {
                        addrcalc_total[array.index()] += u64::from(*count);
                    }
                    CInstr::Local { is_store, .. } => {
                        body_fixed_executed += 1;
                        body_mem_instrs += 1;
                        if !is_store {
                            outstanding += 1;
                        }
                    }
                    CInstr::Mem(m) => {
                        body_fixed_executed += 1;
                        body_mem_instrs += 1;
                        if !m.is_store {
                            outstanding += 1;
                        }
                        let ai = m.array.index();
                        slot = Some((m.array, access_info[ai].len() as u32));
                        access_info[ai].push(AccessShape {
                            block: w.block,
                            is_store: m.is_store,
                            elem_bytes: m.elem_bytes,
                            idx: recover_elem_indices(trace, w.block, m, cfg),
                        });
                    }
                }
                per_instr.push(slot);
            }
            warp_body_map.insert((w.block, w.warp), per_instr);
        }

        // Per-array, per-space stateless floors. Offsets are computed at
        // base 0: coalescing, word counts, and bank patterns are all
        // invariant under the allocator's aligned base shifts.
        let mut expansion = vec![[0u64; 5]; n];
        let mut stateless_replays = vec![[0u64; 5]; n];
        let mut body_requests = vec![0u64; n];
        let mut legal_spaces: Vec<Vec<MemorySpace>> = vec![Vec::new(); n];
        let all_global = PlacementMap::all_global(n);
        for (i, arr) in trace.arrays.iter().enumerate() {
            for space in MemorySpace::ALL {
                expansion[i][space_idx(space)] =
                    u64::from(addr_calc_instrs(space, arr.dtype)) * addrcalc_total[i];
                if all_global
                    .with(ArrayId(i as u32), space)
                    .validate(&trace.arrays, cfg)
                    .is_ok()
                {
                    legal_spaces[i].push(space);
                }
            }
            for acc in &access_info[i] {
                let offs: Vec<u64> = acc
                    .idx
                    .iter()
                    .flatten()
                    .map(|&ix| element_offset(arr, MemorySpace::Global, ix, cfg))
                    .collect();
                if offs.is_empty() {
                    continue;
                }
                body_requests[i] += 1;
                let co = coalesce(
                    offs.iter().copied(),
                    u64::from(acc.elem_bytes),
                    cfg.transaction_bytes,
                );
                stateless_replays[i][space_idx(MemorySpace::Global)] += u64::from(co.replays);
                let mut words: Vec<u64> = offs.iter().map(|a| a / 4 * 4).collect();
                words.sort_unstable();
                words.dedup();
                stateless_replays[i][space_idx(MemorySpace::Constant)] += words.len() as u64 - 1;
                stateless_replays[i][space_idx(MemorySpace::Shared)] += u64::from(
                    hms_cache::shared_conflict_passes(&offs, cfg.shared_banks).saturating_sub(1),
                );
            }
        }
        let floor_lat = [
            cfg.l2_hit_lat as f64,
            cfg.tex_hit_lat as f64,
            cfg.tex_hit_lat as f64,
            cfg.const_hit_lat as f64,
            cfg.shared_lat as f64,
        ];
        let mins = |f: &dyn Fn(MemorySpace) -> f64, legal: &[MemorySpace]| -> f64 {
            legal.iter().map(|&s| f(s)).fold(f64::INFINITY, f64::min)
        };
        let mut free_expansion = vec![0u64; n];
        let mut free_replays = vec![0u64; n];
        let mut free_floor = vec![0.0f64; n];
        for i in 0..n {
            let legal = &legal_spaces[i];
            if legal.is_empty() {
                continue;
            }
            free_expansion[i] = legal
                .iter()
                .map(|&s| expansion[i][space_idx(s)])
                .min()
                .unwrap_or(0);
            free_replays[i] = legal
                .iter()
                .map(|&s| stateless_replays[i][space_idx(s)])
                .min()
                .unwrap_or(0);
            free_floor[i] = mins(&|s| floor_lat[space_idx(s)], legal);
        }

        // Occupancy extremes: with zero shared usage the SM packs the
        // most blocks, issuing fastest and draining the grid in the
        // fewest waves — both floors for any completion.
        let g = &trace.geometry;
        let blocks = g.grid_blocks as usize;
        let wpb = g.warps_per_block().max(1);
        let by_warps = (cfg.max_warps_per_sm / wpb).max(1) as usize;
        let bps_max = by_warps.min(cfg.max_blocks_per_sm as usize);
        let active_sms = (cfg.num_sms as usize).min(blocks).max(1);
        let wps_max = f64::from(wpb) * (bps_max.min(blocks.div_ceil(active_sms))) as f64;
        let thr_min = effective_throughput(cfg, wps_max.max(1.0));
        let waves_min = blocks
            .div_ceil((cfg.num_sms as usize * bps_max).max(1))
            .max(1) as f64;
        let active_sms_f = active_sms as f64;
        let total_warps = g.total_warps().max(1) as f64;

        let lb = LbStatics {
            detailed: predictor.options.detailed_instr,
            body_fixed_executed,
            body_mem_instrs,
            body_wait_events,
            expansion,
            stateless_replays,
            body_requests,
            free_expansion,
            free_replays,
            free_floor,
            legal_spaces,
            floor_lat,
            c_min: (cfg.l2_hit_lat as f64).min(cfg.shared_lat as f64),
            thr_min,
            active_sms: active_sms_f,
            total_warps,
            waves_min,
            w_serial_lb: body_syncs as f64 / active_sms_f * cfg.avg_inst_lat as f64,
            other_replays: profile.other_replays(),
            inst_executed_sample: profile.events.inst_executed,
            rmax: predictor.overlap.max_ratio(),
        };

        let sample_analysis = if predictor.options.detailed_instr {
            None
        } else {
            Some(crate::analysis::analyze(&profile.trace, cfg))
        };

        EngineStatics {
            dtypes: trace.arrays.iter().map(|a| a.dtype).collect(),
            access_info,
            warp_body_map,
            lb,
            sample_analysis,
            kernel_fingerprint: crate::skelcache::kernel_hash(trace, cfg),
            base_rows: Mutex::new(HashMap::new()),
        }
    }
}

impl<'a> Engine<'a> {
    /// Create an engine over `(predictor, profile)`. The sample-trace
    /// scan behind it is cached in the profile (see [`EngineStatics`]),
    /// so repeated construction over the same profile is cheap.
    pub fn new(predictor: &'a Predictor, profile: &'a Profile) -> Self {
        let key = StaticsKey {
            cfg: predictor.cfg.clone(),
            options: predictor.options,
            rmax_bits: predictor.overlap.max_ratio().to_bits(),
        };
        let st = profile
            .statics
            .get_or_build(key, || EngineStatics::build(predictor, profile));
        Engine {
            predictor,
            profile,
            st,
            skeletons: Mutex::new(HashMap::new()),
            memos: Mutex::new(HashMap::new()),
            counters: EngineCounters::default(),
            inject_poison: AtomicBool::new(false),
            lane_width: AtomicU64::new(0),
            disk: None,
        }
    }

    /// Attach a persistent on-disk skeleton cache rooted at `dir` (see
    /// the [`skelcache`](crate::skelcache) module docs for the file
    /// format and invalidation rules). Every load is gated by the
    /// format version, a kernel fingerprint, a payload checksum, and
    /// structural validation; any failure silently rebuilds — a stale
    /// or corrupt cache can cost a rewrite, never a wrong prediction.
    pub fn with_disk_cache(self, dir: &Path) -> Self {
        self.with_disk_cache_fs(dir, Arc::new(crate::skelcache::RealFs))
    }

    /// [`with_disk_cache`](Self::with_disk_cache) on an injected
    /// filesystem — the chaos suite's entry point for disk faults
    /// (ENOSPC, torn writes, bit-rot, rename failure). Opening sweeps
    /// stranded temp files; the count lands in
    /// [`EngineStats::skeleton_disk_tmp_swept`].
    pub fn with_disk_cache_fs(
        mut self,
        dir: &Path,
        fs: Arc<dyn crate::skelcache::CacheFs>,
    ) -> Self {
        // The kernel fingerprint was computed (and cached) with the
        // statics — attaching a disk cache costs no trace serialization.
        let cache = crate::skelcache::DiskCache::with_fs(dir, self.st.kernel_fingerprint, fs);
        self.counters
            .add(&self.counters.skeleton_disk_tmp_swept, cache.swept());
        self.disk = Some(cache);
        self
    }

    /// The predictor this engine evaluates with.
    pub fn predictor(&self) -> &Predictor {
        self.predictor
    }

    /// Force every skeleton built from now on to be poisoned, so each
    /// candidate takes the exact `rewrite`+`analyze` fallback. Set it
    /// **before** the first evaluation — already-cached healthy
    /// skeletons keep serving. A deterministic stand-in for the real
    /// poisoning trigger (a failed self-check), used by the chaos suite
    /// to assert the fallback is bit-identical to the delta path.
    pub fn inject_poison(&self, on: bool) {
        self.inject_poison.store(on, Ordering::Relaxed);
    }

    /// Fix the lane width of batched replays (`0` = autosize per
    /// skeleton group, the default). Any width yields bit-identical
    /// results — the knob trades decode amortization against per-lane
    /// cache-model memory, and exists mostly for the equivalence suite
    /// and benchmarks.
    pub fn set_lane_width(&self, width: u64) {
        self.lane_width
            .store(width.min(MAX_LANE_WIDTH as u64), Ordering::Relaxed);
    }

    /// Lane width one skeleton group of `group_len` candidates splits
    /// into, given `threads` evaluation workers. Autosizing favors full
    /// groups (maximum decode amortization) but splits a group that
    /// would otherwise leave workers idle.
    fn unit_width(&self, group_len: usize, threads: usize) -> usize {
        let fixed = self.lane_width.load(Ordering::Relaxed) as usize;
        if fixed > 0 {
            return fixed.min(MAX_LANE_WIDTH);
        }
        if threads <= 1 {
            group_len.clamp(1, MAX_LANE_WIDTH)
        } else {
            group_len.div_ceil(threads).clamp(1, MAX_LANE_WIDTH)
        }
    }

    /// The profiled sample this engine searches from.
    pub fn profile(&self) -> &Profile {
        self.profile
    }

    /// Snapshot of the engine's observability counters.
    pub fn stats(&self) -> EngineStats {
        self.counters.snapshot()
    }

    fn shared_key(&self, pm: &PlacementMap) -> Vec<bool> {
        (0..self.st.dtypes.len())
            .map(|i| pm.space(ArrayId(i as u32)) == MemorySpace::Shared)
            .collect()
    }

    /// Fetch (or build) the delta memo for `(array, space)` under the
    /// given allocator bases.
    fn get_memo(&self, array: ArrayId, space: MemorySpace, bases: (u64, u64)) -> Arc<MemoRow> {
        let key = MemoKey {
            array,
            space,
            base: bases.0,
            stride: bases.1,
        };
        if let Some(m) = lock_cache(&self.memos).get(&key) {
            return m.clone();
        }
        let built = Arc::new(self.build_memo(array, space, bases));
        // Count only winning inserts: losing a build race must not make
        // the observability counters depend on the worker count.
        match lock_cache(&self.memos).entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.get().clone(),
            std::collections::hash_map::Entry::Vacant(v) => {
                self.counters.add(&self.counters.memo_tables_built, 1);
                v.insert(built).clone()
            }
        }
    }

    /// Build the memo row for `(array, space)` under concrete allocator
    /// `bases = (b0, stride)`. When `b0` is a multiple of every granule
    /// the stateless math rounds to (transaction, texture line,
    /// constant word), the row equals the shared base-0 row with `b0`
    /// added to every address — bit-exactly: `floor((a + b0)/g)*g =
    /// floor(a/g)*g + b0` whenever `g | b0`, a uniform shift preserves
    /// sort order and dedup structure, and coalescing groups by
    /// address-over-transaction quotients which all shift together. The
    /// allocator's `OFFCHIP_ALIGN` guarantees the alignment in
    /// practice; the guard keeps any other allocator on the direct
    /// path.
    fn build_memo(&self, array: ArrayId, space: MemorySpace, bases: (u64, u64)) -> MemoRow {
        let cfg = &self.predictor.cfg;
        let b0 = bases.0;
        let aligned =
            b0 % cfg.transaction_bytes == 0 && b0 % cfg.tex_cache.line_bytes == 0 && b0 % 4 == 0;
        if !aligned {
            return self.build_memo_at(array, space, bases);
        }
        let row0 = self.base_row(array, space, bases.1);
        if b0 == 0 {
            return (*row0).clone();
        }
        MemoRow {
            items: row0.items.clone(),
            addrs: row0.addrs.iter().map(|a| a + b0).collect(),
        }
    }

    /// Fetch (or build) the shared base-0 row for `(array, space,
    /// stride)` from the profile-level statics cache. The row is a pure
    /// function of the sample trace and the config — every skeleton
    /// whose allocator lands the array at the same block stride reuses
    /// it, whatever the base.
    fn base_row(&self, array: ArrayId, space: MemorySpace, stride: u64) -> Arc<MemoRow> {
        let key = (array, space_idx(space) as u8, stride);
        if let Some(r) = lock_cache(&self.st.base_rows).get(&key) {
            return r.clone();
        }
        let built = Arc::new(self.build_memo_at(array, space, (0, stride)));
        lock_cache(&self.st.base_rows)
            .entry(key)
            .or_insert(built)
            .clone()
    }

    fn build_memo_at(&self, array: ArrayId, space: MemorySpace, bases: (u64, u64)) -> MemoRow {
        let cfg = &self.predictor.cfg;
        let arr = &self.profile.trace.arrays[array.index()];
        let tex_line = cfg.tex_cache.line_bytes;
        let accesses = &self.st.access_info[array.index()];
        let mut row = MemoRow {
            items: Vec::with_capacity(accesses.len()),
            addrs: Vec::new(),
        };
        let empty = MemoItem {
            kind: MemoKind::Empty,
            is_store: false,
            replays: 0,
            start: 0,
            len: 0,
        };
        for acc in accesses {
            let base = bases.0 + bases.1 * u64::from(acc.block);
            let addrs: Vec<u64> = acc
                .idx
                .iter()
                .flatten()
                .map(|&ix| base + element_offset(arr, space, ix, cfg))
                .collect();
            if addrs.is_empty() {
                row.items.push(empty);
                continue;
            }
            let start = row.addrs.len() as u32;
            let item = match space {
                MemorySpace::Global => {
                    let co = coalesce(
                        addrs.iter().copied(),
                        u64::from(acc.elem_bytes),
                        cfg.transaction_bytes,
                    );
                    row.addrs.extend_from_slice(&co.transactions);
                    MemoItem {
                        kind: MemoKind::Global,
                        is_store: acc.is_store,
                        replays: co.replays,
                        start,
                        len: co.transactions.len() as u32,
                    }
                }
                MemorySpace::Texture1D | MemorySpace::Texture2D => {
                    let mut lines: Vec<u64> =
                        addrs.iter().map(|a| a / tex_line * tex_line).collect();
                    lines.sort_unstable();
                    lines.dedup();
                    row.addrs.extend_from_slice(&lines);
                    MemoItem {
                        kind: MemoKind::Tex,
                        is_store: false,
                        replays: 0,
                        start,
                        len: lines.len() as u32,
                    }
                }
                MemorySpace::Constant => {
                    let mut words: Vec<u64> = addrs.iter().map(|a| a / 4 * 4).collect();
                    words.sort_unstable();
                    words.dedup();
                    row.addrs.extend_from_slice(&words);
                    MemoItem {
                        kind: MemoKind::Const,
                        is_store: false,
                        replays: 0,
                        start,
                        len: words.len() as u32,
                    }
                }
                // Shared-placed arrays never appear as Body events;
                // an empty outcome keeps the replay total-safe.
                MemorySpace::Shared => empty,
            };
            row.items.push(item);
        }
        row
    }

    /// Get (or load from disk, or build recording one full rewrite)
    /// the skeleton for the shared set of `canonical`.
    fn skeleton_for(&self, canonical: &PlacementMap) -> Arc<Skeleton> {
        let key = self.shared_key(canonical);
        if let Some(s) = lock_cache(&self.skeletons).get(&key) {
            return s.clone();
        }
        let built = self.load_or_build(canonical, &key);
        lock_cache(&self.skeletons)
            .entry(key)
            .or_insert(built)
            .clone()
    }

    /// Probe the persistent cache (when configured), falling back to a
    /// full build; healthy fresh builds are written back. Does not
    /// touch the in-memory skeleton map.
    fn load_or_build(&self, canonical: &PlacementMap, key: &[bool]) -> Arc<Skeleton> {
        let Some(disk) = &self.disk else {
            return Arc::new(self.build_skeleton(canonical));
        };
        if let Some(skel) = disk.load(key) {
            if self.skeleton_is_plausible(&skel) {
                self.counters.add(&self.counters.skeleton_disk_hits, 1);
                return Arc::new(skel);
            }
        }
        self.counters.add(&self.counters.skeleton_disk_misses, 1);
        let built = Arc::new(self.build_skeleton(canonical));
        if !built.poisoned && disk.store(key, &built) {
            self.counters.add(&self.counters.skeleton_disk_writes, 1);
        }
        built
    }

    /// Structural validation of a deserialized skeleton against this
    /// engine's trace: every record must decode to in-bounds indices.
    /// Defense in depth behind the checksum — a file that passes the
    /// header checks but indexes out of range is treated as a miss
    /// rather than a panic source.
    fn skeleton_is_plausible(&self, skel: &Skeleton) -> bool {
        let n = self.st.dtypes.len();
        let num_sms = u64::from(self.predictor.cfg.num_sms);
        if skel.bases.len() != n || skel.poisoned {
            return false;
        }
        skel.events.iter().all(|ev| {
            if ev.kind > EV_L2_PROBE || u64::from(ev.sm) >= num_sms {
                return false;
            }
            match ev.kind {
                EV_ADDR_CALC => (ev.arr as usize) < n,
                EV_BODY => {
                    (ev.arr as usize) < n
                        && (ev.x as usize) < self.st.access_info[ev.arr as usize].len()
                }
                EV_STAGING_GLOBAL => {
                    u64::from(ev.tx) + u64::from(ev.tx_len) <= skel.tx_arena.len() as u64
                }
                _ => true,
            }
        })
    }

    /// Resolve one skeleton per group (building the missing ones in
    /// parallel) and warm every `(array, space, base)` memo the group
    /// members will need — sequentially, so the parallel evaluation
    /// pass only reads. Returns skeletons aligned with `groups`.
    fn prepare_groups(
        &self,
        candidates: &[PlacementMap],
        groups: &[(Vec<bool>, Vec<usize>)],
        threads: usize,
    ) -> Vec<Arc<Skeleton>> {
        let t0 = Instant::now();
        let missing: Vec<(&Vec<bool>, &PlacementMap)> = {
            let cache = lock_cache(&self.skeletons);
            groups
                .iter()
                .filter(|(key, _)| !cache.contains_key(key))
                .map(|(key, members)| (key, &candidates[members[0]]))
                .collect()
        };
        let built = hms_stats::par::par_map_threads(threads, &missing, |(key, pm)| {
            self.load_or_build(pm, key)
        });
        {
            let mut cache = lock_cache(&self.skeletons);
            for ((key, _), skel) in missing.iter().zip(built) {
                cache.entry((*key).clone()).or_insert(skel);
            }
        }
        let skels: Vec<Arc<Skeleton>> = {
            let cache = lock_cache(&self.skeletons);
            groups
                .iter()
                .map(|(key, _)| cache.get(key).expect("group prepared").clone())
                .collect()
        };
        for ((_, members), skel) in groups.iter().zip(&skels) {
            if skel.poisoned {
                continue;
            }
            for i in 0..self.st.dtypes.len() {
                if self.st.access_info[i].is_empty() {
                    continue;
                }
                // Distinct spaces across the group's members, as a
                // 5-bit set — one memo fetch per (array, space).
                let mut seen = 0u8;
                for &ci in members {
                    let space = candidates[ci].space(ArrayId(i as u32));
                    if space == MemorySpace::Shared {
                        continue;
                    }
                    let bit = 1u8 << space_idx(space);
                    if seen & bit == 0 {
                        seen |= bit;
                        self.get_memo(ArrayId(i as u32), space, skel.bases[i]);
                    }
                }
            }
        }
        self.counters
            .add(&self.counters.prepare_nanos, t0.elapsed().as_nanos() as u64);
        skels
    }

    fn build_skeleton(&self, canonical: &PlacementMap) -> Skeleton {
        let cfg = &self.predictor.cfg;
        self.counters.add(&self.counters.skeletons_built, 1);
        self.counters.add(&self.counters.full_rewrites, 1);
        let n = self.st.dtypes.len();
        let poisoned_skeleton = || Skeleton {
            consts: TraceAnalysis::default(),
            events: Vec::new(),
            tx_arena: Vec::new(),
            bases: vec![(0, 0); n],
            poisoned: true,
        };
        if self.inject_poison.load(Ordering::Relaxed) {
            return poisoned_skeleton();
        }
        let Ok(rewritten) = rewrite(&self.profile.trace, canonical, cfg) else {
            return poisoned_skeleton();
        };
        let mut rec = Recorder {
            cfg,
            map: &self.st.warp_body_map,
            events: Vec::new(),
            tx_arena: Vec::new(),
            last_advance: vec![None; cfg.num_sms as usize],
            ok: true,
        };
        let canonical_analysis =
            analyze_observed(&rewritten, cfg, AnalysisOptions::default(), &mut rec);
        if !rec.ok {
            return poisoned_skeleton();
        }
        let bases: Vec<(u64, u64)> = (0..n)
            .map(|i| {
                let id = ArrayId(i as u32);
                if canonical.space(id) == MemorySpace::Shared {
                    (0, 0)
                } else {
                    let b0 = rewritten.alloc.base(id, 0, canonical);
                    let stride = if rewritten.geometry.grid_blocks > 1 {
                        rewritten.alloc.base(id, 1, canonical) - b0
                    } else {
                        0
                    };
                    (b0, stride)
                }
            })
            .collect();
        let mut consts = canonical_analysis.clone();
        consts.executed = 0;
        consts.replay_global_divergence = 0;
        consts.replay_const_miss = 0;
        consts.replay_const_divergence = 0;
        consts.global_requests = 0;
        consts.global_transactions = 0;
        consts.tex_requests = 0;
        consts.tex_transactions = 0;
        consts.tex_misses = 0;
        consts.const_requests = 0;
        consts.const_transactions = 0;
        consts.const_misses = 0;
        consts.l2_transactions = 0;
        consts.l2_misses = 0;
        consts.l2_writebacks = 0;
        consts.dram.clear();
        let skel = Skeleton {
            consts,
            events: rec.events,
            tx_arena: rec.tx_arena,
            bases,
            poisoned: false,
        };
        // Self-check: replaying the canonical placement must reproduce
        // the direct analysis bit for bit. A mismatch poisons the
        // skeleton — its candidates silently use the exact path.
        if self.replay(&skel, canonical) != canonical_analysis {
            return Skeleton {
                poisoned: true,
                ..skel
            };
        }
        skel
    }

    /// Event-major lane-batched replay: stream the skeleton's event
    /// column **once** while updating `targets.len()` candidate lanes
    /// simultaneously, calling `sink(lane_index, &analysis)` per lane
    /// when the stream ends. Placement-invariant events (`EV_ADVANCE`,
    /// `EV_STAGING_GLOBAL` and its transaction walk, `EV_L2_PROBE`) are
    /// decoded once and broadcast to every lane; `EV_ADDR_CALC` and
    /// `EV_BODY` dispatch per lane on that lane's space for the active
    /// array, with the memo row resolved once per `(array, space)` and
    /// shared by every lane placing the array there. Each lane carries
    /// fully independent model state and performs exactly the operation
    /// sequence the per-candidate replay would — bit-identity for every
    /// lane width falls out by construction.
    fn replay_batch_with(
        &self,
        skel: &Skeleton,
        targets: &[&PlacementMap],
        mut sink: impl FnMut(usize, &TraceAnalysis),
    ) {
        let cfg = &self.predictor.cfg;
        let n_arrays = self.st.dtypes.len();
        let width = targets.len();
        debug_assert!(width <= MAX_LANE_WIDTH);
        self.counters.add(&self.counters.batched_replays, 1);
        self.counters
            .add(&self.counters.events_streamed, skel.events.len() as u64);
        self.counters.max(&self.counters.lane_width, width as u64);
        REPLAY_SCRATCH.with(|cell| {
            let mut slot = cell.borrow_mut();
            let scratch = match slot.as_mut() {
                Some(s) if s.matches(cfg) => s,
                _ => {
                    *slot = Some(ReplayScratch::new(cfg));
                    slot.as_mut().unwrap()
                }
            };
            scratch.reset(width, n_arrays, cfg, &skel.consts);
            let ReplayScratch { lanes, memo_slots } = scratch;
            let lanes = &mut lanes[..width];
            for (lane, pm) in lanes.iter_mut().zip(targets) {
                for i in 0..n_arrays {
                    let space = pm.space(ArrayId(i as u32));
                    lane.space_of.push(space_idx(space) as u8);
                    lane.addr_n
                        .push(u64::from(addr_calc_instrs(space, self.st.dtypes[i])));
                }
            }
            // Placement-invariant progress is accumulated once in shared
            // bases rather than per lane: `lane.sm_pos` holds only the
            // lane-dependent offset contributed by address-calculation
            // events, so the effective position is `pos_base[sm] +
            // lane.sm_pos[sm]` and EV_ADVANCE costs O(1) instead of
            // O(lanes). u64 addition is associative, so totals stay
            // bit-identical to the unsplit accumulation.
            let mut executed_base = 0u64;
            let mut pos_base = vec![0u64; self.predictor.cfg.num_sms as usize];
            for ev in &skel.events {
                let sm = ev.sm as usize;
                match ev.kind {
                    EV_ADVANCE => {
                        executed_base += ev.x;
                        pos_base[sm] += ev.x;
                    }
                    EV_ADDR_CALC => {
                        let ai = ev.arr as usize;
                        for lane in lanes.iter_mut() {
                            let n = lane.addr_n[ai] * ev.x;
                            lane.out.executed += n;
                            lane.sm_pos[sm] += n;
                        }
                    }
                    EV_STAGING_GLOBAL => {
                        executed_base += 1;
                        pos_base[sm] += 1;
                        let base = pos_base[sm];
                        let txs = &skel.tx_arena[ev.tx as usize..(ev.tx + ev.tx_len) as usize];
                        for lane in lanes.iter_mut() {
                            lane.out.global_requests += 1;
                            lane.out.global_transactions += u64::from(ev.tx_len);
                            lane.out.replay_global_divergence += ev.x;
                            let pos = base + lane.sm_pos[sm];
                            for &t in txs {
                                l2_fill(
                                    &mut lane.l2,
                                    &mut lane.out,
                                    t,
                                    L2Source::Global,
                                    pos,
                                    ev.sm as u32,
                                    ev.flag != 0,
                                );
                            }
                        }
                    }
                    EV_L2_PROBE => {
                        let base = pos_base[sm];
                        for lane in lanes.iter_mut() {
                            l2_fill(
                                &mut lane.l2,
                                &mut lane.out,
                                ev.x,
                                L2Source::Global,
                                base + lane.sm_pos[sm],
                                ev.sm as u32,
                                ev.flag != 0,
                            );
                        }
                    }
                    _ => {
                        // EV_BODY
                        let ai = ev.arr as usize;
                        let ord = ev.x as usize;
                        executed_base += 1;
                        pos_base[sm] += 1;
                        let base = pos_base[sm];
                        for lane in lanes.iter_mut() {
                            let si = lane.space_of[ai] as usize;
                            let memo = memo_slots[ai * 5 + si].get_or_insert_with(|| {
                                self.get_memo(ArrayId(ev.arr), MemorySpace::ALL[si], skel.bases[ai])
                            });
                            let pos = base + lane.sm_pos[sm];
                            let item = memo.items[ord];
                            match item.kind {
                                MemoKind::Empty => {}
                                MemoKind::Global => {
                                    lane.out.global_requests += 1;
                                    lane.out.global_transactions += u64::from(item.len);
                                    lane.out.replay_global_divergence += u64::from(item.replays);
                                    for &t in memo.span(&item) {
                                        l2_fill(
                                            &mut lane.l2,
                                            &mut lane.out,
                                            t,
                                            L2Source::Global,
                                            pos,
                                            ev.sm as u32,
                                            item.is_store,
                                        );
                                    }
                                }
                                MemoKind::Tex => {
                                    let (transactions, misses) = lane.tex_caches[sm]
                                        .access_lines_into(memo.span(&item), &mut lane.missed);
                                    lane.out.tex_requests += 1;
                                    lane.out.tex_transactions += u64::from(transactions);
                                    lane.out.tex_misses += u64::from(misses);
                                    for line in &lane.missed {
                                        l2_fill(
                                            &mut lane.l2,
                                            &mut lane.out,
                                            *line,
                                            L2Source::Texture,
                                            pos,
                                            ev.sm as u32,
                                            false,
                                        );
                                    }
                                }
                                MemoKind::Const => {
                                    let (transactions, misses) = lane.const_caches[sm]
                                        .access_words_into(memo.span(&item), &mut lane.missed);
                                    lane.out.const_requests += 1;
                                    lane.out.const_transactions += u64::from(transactions);
                                    lane.out.const_misses += u64::from(misses);
                                    lane.out.replay_const_divergence += u64::from(transactions - 1);
                                    lane.out.replay_const_miss += u64::from(misses);
                                    for line in &lane.missed {
                                        l2_fill(
                                            &mut lane.l2,
                                            &mut lane.out,
                                            *line,
                                            L2Source::Constant,
                                            pos,
                                            ev.sm as u32,
                                            false,
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
            for (li, lane) in lanes.iter_mut().enumerate() {
                lane.out.executed += executed_base;
                lane.out.l2_transactions = lane.l2.transactions();
                lane.out.l2_misses = lane.l2.misses();
                lane.out.l2_writebacks = lane.l2.writebacks();
                sink(li, &lane.out);
            }
        });
    }

    /// Batched replay returning owned analyses, one per target, in
    /// input order. The hot search path goes through
    /// [`replay_batch_with`](Self::replay_batch_with) instead to skip
    /// the per-lane clone.
    pub(crate) fn replay_batch(
        &self,
        skel: &Skeleton,
        targets: &[&PlacementMap],
    ) -> Vec<TraceAnalysis> {
        let mut out = Vec::with_capacity(targets.len());
        self.replay_batch_with(skel, targets, |_, a| out.push(a.clone()));
        out
    }

    /// Single-candidate replay: a one-lane batch.
    fn replay(&self, skel: &Skeleton, target: &PlacementMap) -> TraceAnalysis {
        self.replay_batch(skel, &[target]).pop().expect("one lane")
    }

    /// Predict `target`'s execution time through the incremental path
    /// (exact fallback when the shared set's skeleton is poisoned).
    /// Bit-identical to [`Predictor::predict`].
    pub fn predict(&self, target: &PlacementMap) -> Result<Prediction, HmsError> {
        target.validate(&self.profile.trace.arrays, &self.predictor.cfg)?;
        let skel = self.skeleton_for(target);
        if skel.poisoned {
            self.counters.add(&self.counters.exact_fallbacks, 1);
            self.counters.add(&self.counters.full_rewrites, 1);
            return self.predictor.predict(self.profile, target);
        }
        let analysis = self.replay(&skel, target);
        self.counters.add(&self.counters.delta_cache_hits, 1);
        let pred = self.predictor.predict_prepared(
            self.profile,
            analysis,
            self.st.sample_analysis.as_ref(),
        );
        if pred.cycles.is_finite() {
            Ok(pred)
        } else {
            Err(HmsError::NonFinitePrediction {
                cycles: pred.cycles,
                t_comp: pred.t_comp,
                t_mem: pred.t_mem,
                t_overlap: pred.t_overlap,
            })
        }
    }

    /// Evaluate and rank `candidates` (ascending predicted time, stable
    /// on ties). Bit-identical to the naive
    /// [`rank_placements_naive`](crate::search::rank_placements_naive)
    /// for every worker count.
    pub fn rank(
        &self,
        candidates: &[PlacementMap],
        threads: usize,
    ) -> Result<Vec<RankedPlacement>, HmsError> {
        let mut ranked = self.evaluate_batch(candidates, threads)?;
        ranked.sort_by(|a, b| a.predicted_cycles.total_cmp(&b.predicted_cycles));
        Ok(ranked)
    }

    /// Evaluate `candidates` in input order (no sort): group them by
    /// shared-memory set, prepare each group's skeleton and memos, then
    /// feed lane batches to `threads` workers — each batch streams its
    /// skeleton's event column once for all its lanes. Workers steal
    /// whole units across skeleton groups; results reassemble by input
    /// index, so the output (and every non-wall-clock counter) is
    /// bit-identical for any worker count and any lane width.
    pub(crate) fn evaluate_batch(
        &self,
        candidates: &[PlacementMap],
        threads: usize,
    ) -> Result<Vec<RankedPlacement>, HmsError> {
        let mut groups: Vec<(Vec<bool>, Vec<usize>)> = Vec::new();
        {
            let mut group_of: HashMap<Vec<bool>, usize> = HashMap::new();
            for (i, pm) in candidates.iter().enumerate() {
                let key = self.shared_key(pm);
                if let Some(&g) = group_of.get(&key) {
                    groups[g].1.push(i);
                } else {
                    group_of.insert(key.clone(), groups.len());
                    groups.push((key, vec![i]));
                }
            }
        }
        let skels = self.prepare_groups(candidates, &groups, threads);
        let t0 = Instant::now();
        let mut units: Vec<(usize, &[usize])> = Vec::new();
        for (g, (_, members)) in groups.iter().enumerate() {
            let width = self.unit_width(members.len(), threads);
            for chunk in members.chunks(width) {
                units.push((g, chunk));
            }
        }
        let per_unit = hms_stats::par::par_map_steal(threads, &units, |&(g, chunk)| {
            self.evaluate_unit(&skels[g], candidates, chunk)
        });
        let mut slots: Vec<Option<Result<f64, HmsError>>> = Vec::new();
        slots.resize_with(candidates.len(), || None);
        for unit in per_unit {
            for (ci, r) in unit {
                slots[ci] = Some(r);
            }
        }
        let mut ranked = Vec::with_capacity(candidates.len());
        for (i, slot) in slots.into_iter().enumerate() {
            let cycles = slot.expect("every candidate evaluated")?;
            ranked.push(RankedPlacement {
                placement: candidates[i].clone(),
                predicted_cycles: cycles,
            });
        }
        self.counters
            .add(&self.counters.candidates_evaluated, candidates.len() as u64);
        self.counters.add(
            &self.counters.evaluate_nanos,
            t0.elapsed().as_nanos() as u64,
        );
        Ok(ranked)
    }

    /// Evaluate one lane batch: validate each member (the same check
    /// [`predict`](Self::predict) runs), replay the valid lanes in one
    /// event-stream pass, and turn each lane's borrowed analysis into
    /// cycles without cloning it. A poisoned skeleton routes the whole
    /// unit through the per-candidate exact path.
    fn evaluate_unit(
        &self,
        skel: &Skeleton,
        candidates: &[PlacementMap],
        chunk: &[usize],
    ) -> Vec<(usize, Result<f64, HmsError>)> {
        let mut out = Vec::with_capacity(chunk.len());
        if skel.poisoned {
            for &ci in chunk {
                let pm = &candidates[ci];
                let r = pm
                    .validate(&self.profile.trace.arrays, &self.predictor.cfg)
                    .and_then(|()| {
                        self.counters.add(&self.counters.exact_fallbacks, 1);
                        self.counters.add(&self.counters.full_rewrites, 1);
                        self.predictor.predict(self.profile, pm).map(|p| p.cycles)
                    });
                out.push((ci, r));
            }
            return out;
        }
        let mut lanes: Vec<&PlacementMap> = Vec::with_capacity(chunk.len());
        let mut lane_ci: Vec<usize> = Vec::with_capacity(chunk.len());
        for &ci in chunk {
            let pm = &candidates[ci];
            match pm.validate(&self.profile.trace.arrays, &self.predictor.cfg) {
                Ok(()) => {
                    lanes.push(pm);
                    lane_ci.push(ci);
                }
                Err(e) => out.push((ci, Err(e))),
            }
        }
        if lanes.is_empty() {
            return out;
        }
        self.counters
            .add(&self.counters.delta_cache_hits, lanes.len() as u64);
        self.replay_batch_with(skel, &lanes, |li, analysis| {
            let (cycles, t_comp, t_mem, t_overlap) = self.predictor.predict_parts(
                self.profile,
                analysis,
                self.st.sample_analysis.as_ref(),
            );
            let r = if cycles.is_finite() {
                Ok(cycles)
            } else {
                Err(HmsError::NonFinitePrediction {
                    cycles,
                    t_comp,
                    t_mem,
                    t_overlap,
                })
            };
            out.push((lane_ci[li], r));
        });
        out
    }

    /// Standalone-legal spaces for each array (superset of the jointly
    /// legal spaces) — drives branch-and-bound enumeration.
    pub(crate) fn legal_spaces(&self, array: ArrayId) -> &[MemorySpace] {
        &self.st.lb.legal_spaces[array.index()]
    }

    /// Monotone lower bound on the predicted cycles of **any** legal
    /// completion of a partial assignment (`None` = free array; fixed
    /// arrays carry `Some(space)`).
    ///
    /// `T >= T_comp + (1 - max_ratio) x T_mem`, with `T_comp` floored by
    /// the body's placement-invariant issue slots, per-space stateless
    /// replays and addressing expansion (free arrays take their minimum
    /// over standalone-legal spaces) at maximum-occupancy throughput,
    /// and `T_mem` floored by the body wait chain at minimum waves times
    /// an AMAT floor built from per-space hit latencies (staging can
    /// only pull AMAT toward `c_min`, never below `min(A/B, c_min)`).
    /// A `1 - 1e-9` discount absorbs float-rounding asymmetry between
    /// the bound's and the model's operation order.
    pub(crate) fn lower_bound(&self, spaces: &[Option<MemorySpace>]) -> f64 {
        let lb = &self.st.lb;
        let mut amat_num = 0.0f64;
        let mut issued = lb.body_fixed_executed + lb.other_replays;
        for (i, s) in spaces.iter().enumerate() {
            match s {
                Some(sp) => {
                    let k = space_idx(*sp);
                    issued += lb.expansion[i][k] + lb.stateless_replays[i][k];
                    amat_num += lb.body_requests[i] as f64 * lb.floor_lat[k];
                }
                None => {
                    issued += lb.free_expansion[i] + lb.free_replays[i];
                    amat_num += lb.body_requests[i] as f64 * lb.free_floor[i];
                }
            }
        }
        let inst_per_warp = if lb.detailed {
            issued as f64 / lb.total_warps
        } else {
            lb.inst_executed_sample as f64 / lb.total_warps
        };
        let tc = inst_per_warp * lb.total_warps / lb.active_sms * lb.thr_min + lb.w_serial_lb;
        let amat = if lb.body_mem_instrs == 0 {
            0.0
        } else {
            (amat_num / lb.body_mem_instrs as f64).min(lb.c_min)
        };
        let tm = lb.body_wait_events as f64 / lb.total_warps * lb.waves_min * amat;
        (tc + (1.0 - lb.rmax) * tm).max(1.0) * (1.0 - 1e-9)
    }
}

/// Records [`WalkEvent`]s into the skeleton's replayable stream,
/// accumulating staging coalescing and merging adjacent same-SM
/// advances.
struct Recorder<'e> {
    cfg: &'e GpuConfig,
    map: &'e HashMap<(u32, u32), Vec<Option<(ArrayId, u32)>>>,
    events: Vec<EventRec>,
    tx_arena: Vec<u64>,
    /// Index of the last `Advance` per SM, merge target for runs.
    last_advance: Vec<Option<usize>>,
    ok: bool,
}

impl Recorder<'_> {
    fn advance(&mut self, sm: usize, n: u64) {
        if let Some(i) = self.last_advance[sm] {
            let e = &mut self.events[i];
            if e.kind == EV_ADVANCE {
                e.x += n;
                return;
            }
        }
        self.last_advance[sm] = Some(self.events.len());
        self.events.push(EventRec {
            kind: EV_ADVANCE,
            flag: 0,
            sm: sm as u16,
            arr: 0,
            x: n,
            tx: 0,
            tx_len: 0,
        });
    }
}

impl WalkObserver for Recorder<'_> {
    fn event(&mut self, ev: WalkEvent<'_>) {
        match ev {
            WalkEvent::Advance { sm, n } => self.advance(sm, n),
            WalkEvent::AddrCalc { sm, array, count } => {
                self.last_advance[sm] = None;
                self.events.push(EventRec {
                    kind: EV_ADDR_CALC,
                    flag: 0,
                    sm: sm as u16,
                    arr: array.0,
                    x: u64::from(count),
                    tx: 0,
                    tx_len: 0,
                });
            }
            WalkEvent::LocalFill { sm, addr, is_store } => {
                self.last_advance[sm] = None;
                self.events.push(EventRec {
                    kind: EV_L2_PROBE,
                    flag: u8::from(is_store),
                    sm: sm as u16,
                    arr: 0,
                    x: addr,
                    tx: 0,
                    tx_len: 0,
                });
            }
            WalkEvent::Access {
                sm,
                block,
                warp,
                body_idx,
                array: ev_array,
                space,
                is_store,
                elem_bytes,
                addrs,
            } => match body_idx {
                Some(i) => {
                    match self
                        .map
                        .get(&(block, warp))
                        .and_then(|v| v.get(i))
                        .copied()
                        .flatten()
                    {
                        Some((array, ordinal)) => {
                            debug_assert_eq!(array, ev_array);
                            self.last_advance[sm] = None;
                            self.events.push(EventRec {
                                kind: EV_BODY,
                                flag: 0,
                                sm: sm as u16,
                                arr: array.0,
                                x: u64::from(ordinal),
                                tx: 0,
                                tx_len: 0,
                            });
                        }
                        None => self.ok = false,
                    }
                }
                None => {
                    // Staging copies touch only global and shared
                    // memory; shared staging counters are skeleton
                    // constants, so only the position advance replays.
                    if addrs.is_empty() || space == MemorySpace::Shared {
                        self.advance(sm, 1);
                    } else if space == MemorySpace::Global {
                        let co = coalesce(
                            addrs.iter().copied(),
                            u64::from(elem_bytes),
                            self.cfg.transaction_bytes,
                        );
                        self.last_advance[sm] = None;
                        let tx = self.tx_arena.len() as u32;
                        self.tx_arena.extend_from_slice(&co.transactions);
                        self.events.push(EventRec {
                            kind: EV_STAGING_GLOBAL,
                            flag: u8::from(is_store),
                            sm: sm as u16,
                            arr: 0,
                            x: u64::from(co.replays),
                            tx,
                            tx_len: co.transactions.len() as u32,
                        });
                    } else {
                        self.ok = false;
                    }
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_sample;
    use crate::search::enumerate_placements;
    use hms_kernels::Scale;

    fn setup(name: &str) -> (Predictor, Profile, Vec<hms_types::ArrayDef>) {
        let cfg = GpuConfig::test_small();
        let kt = hms_kernels::by_name(name, Scale::Test).expect("kernel exists");
        let profile = profile_sample(&kt, &kt.default_placement(), &cfg).unwrap();
        (Predictor::new(cfg), profile, kt.arrays)
    }

    #[test]
    fn engine_matches_naive_predictor_bitwise() {
        let (predictor, profile, arrays) = setup("vecadd");
        let base = profile.trace.placement.clone();
        let ids: Vec<ArrayId> = arrays.iter().map(|a| a.id).collect();
        let cands = enumerate_placements(&arrays, &base, &ids, &predictor.cfg, 4096);
        let engine = Engine::new(&predictor, &profile);
        for pm in &cands {
            let fast = engine.predict(pm).unwrap();
            let slow = predictor.predict(&profile, pm).unwrap();
            assert_eq!(
                fast.cycles.to_bits(),
                slow.cycles.to_bits(),
                "divergence for {pm:?}"
            );
            assert_eq!(fast.analysis, slow.analysis, "analysis drift for {pm:?}");
        }
        let stats = engine.stats();
        assert_eq!(stats.exact_fallbacks, 0, "no skeleton may fail self-check");
        assert!(stats.skeletons_built < cands.len() as u64);
    }

    #[test]
    fn skeletons_are_shared_per_shared_set() {
        let (predictor, profile, arrays) = setup("vecadd");
        let base = profile.trace.placement.clone();
        // a and b are read-only: 4 spaces each; one skeleton per shared
        // subset of {a, b} = 4 skeletons for 16 candidates.
        let cands = enumerate_placements(
            &arrays,
            &base,
            &[ArrayId(0), ArrayId(1)],
            &predictor.cfg,
            4096,
        );
        assert_eq!(cands.len(), 16);
        let engine = Engine::new(&predictor, &profile);
        let ranked = engine.rank(&cands, 1).unwrap();
        assert_eq!(ranked.len(), 16);
        let stats = engine.stats();
        assert_eq!(stats.skeletons_built, 4);
        assert_eq!(stats.full_rewrites, 4);
        assert_eq!(stats.delta_cache_hits, 16); // self-check replays bypass predict()
        assert!(stats.rewrite_reduction() >= 4.0);
    }

    #[test]
    fn injected_poison_degrades_to_exact_path_bit_identically() {
        let (predictor, profile, arrays) = setup("vecadd");
        let base = profile.trace.placement.clone();
        let ids: Vec<ArrayId> = arrays.iter().map(|a| a.id).collect();
        let cands = enumerate_placements(&arrays, &base, &ids, &predictor.cfg, 4096);

        let healthy = Engine::new(&predictor, &profile);
        let ranked = healthy.rank(&cands, 1).unwrap();

        let faulted = Engine::new(&predictor, &profile);
        faulted.inject_poison(true);
        let ranked_faulted = faulted.rank(&cands, 1).unwrap();

        assert_eq!(ranked.len(), ranked_faulted.len());
        for (a, b) in ranked.iter().zip(&ranked_faulted) {
            assert_eq!(a.placement, b.placement);
            assert_eq!(
                a.predicted_cycles.to_bits(),
                b.predicted_cycles.to_bits(),
                "poisoned fallback diverged for {:?}",
                a.placement
            );
        }
        let stats = faulted.stats();
        assert_eq!(stats.exact_fallbacks, cands.len() as u64);
        assert_eq!(stats.delta_cache_hits, 0);

        // Recovery: toggling injection off lets fresh skeletons build,
        // but the poisoned ones already cached keep falling back.
        faulted.inject_poison(false);
        let again = faulted.rank(&cands, 1).unwrap();
        assert_eq!(again.len(), ranked.len());
    }

    #[test]
    fn lower_bound_never_exceeds_true_prediction() {
        for name in ["vecadd", "spmv", "stencil2d"] {
            let (predictor, profile, arrays) = setup(name);
            let base = profile.trace.placement.clone();
            let ids: Vec<ArrayId> = arrays.iter().map(|a| a.id).collect();
            let cands = enumerate_placements(&arrays, &base, &ids, &predictor.cfg, 256);
            let engine = Engine::new(&predictor, &profile);
            let free = vec![None; arrays.len()];
            let lb_all_free = engine.lower_bound(&free);
            for pm in &cands {
                let pred = engine.predict(pm).unwrap();
                let assigned: Vec<Option<MemorySpace>> = (0..arrays.len())
                    .map(|i| Some(pm.space(ArrayId(i as u32))))
                    .collect();
                let lb = engine.lower_bound(&assigned);
                assert!(
                    lb <= pred.cycles,
                    "{name}: bound {lb} exceeds prediction {} for {pm:?}",
                    pred.cycles
                );
                assert!(
                    lb_all_free <= lb + 1e-9,
                    "{name}: freeing arrays must not raise the bound"
                );
            }
        }
    }
}
