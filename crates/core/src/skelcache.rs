//! Persistent on-disk skeleton cache.
//!
//! A skeleton (the engine's recorded walk of one shared-memory set) is
//! expensive to build — one full `rewrite` + observed analysis — but is
//! a pure function of the sample trace, the GPU config, and the shared
//! set. This module persists healthy skeletons so a later process
//! (another CLI run, a serving restart) skips straight to replay.
//!
//! # File format (`skel-<kernelhash>-<sharedbits>.hsk`)
//!
//! All integers little-endian; `f64` stored as its IEEE-754 bit
//! pattern, so round-trips are bit-exact.
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 8    | magic `HMSSKEL1` |
//! | 8      | 4    | format version ([`FORMAT_VERSION`]) |
//! | 12     | 8    | kernel hash (trace + config fingerprint) |
//! | 20     | 8    | payload length in bytes |
//! | 28     | 8    | FNV-1a-64 checksum of the payload |
//! | 36     | —    | payload |
//!
//! Payload: the skeleton's placement-invariant `TraceAnalysis`
//! constants in fixed field order, the per-array `(base, stride)`
//! table, the flat `EventRec` stream (24 bytes per record, same field
//! order as in memory), and the staging-transaction arena.
//!
//! # Invalidation rules
//!
//! A cached file is used only if **all** of these hold; any failure is
//! a miss that silently falls back to an in-process rebuild (which
//! then rewrites the file):
//!
//! 1. magic and [`FORMAT_VERSION`] match this binary;
//! 2. the kernel hash matches the engine's (sample-trace dump + GPU
//!    config debug string), so a retraced kernel or retuned config
//!    invalidates every old file;
//! 3. the stored payload length matches the bytes actually present
//!    (truncation detection);
//! 4. the FNV-1a checksum over the payload matches (bit-rot
//!    detection);
//! 5. the decoded records pass the engine's structural validation
//!    (event kinds, SM indices, body ordinals and transaction ranges
//!    in bounds — see `Engine::skeleton_is_plausible`).
//!
//! Corruption therefore costs one rebuild, never a wrong result:
//! predictions after a rejected load are byte-identical to a cold run.
//!
//! Writes go to a temp file in the same directory followed by an
//! atomic rename; I/O errors are swallowed (the cache is an
//! optimization, not a source of truth). Poisoned skeletons are never
//! persisted. Shared sets wider than 64 arrays skip the disk (the
//! filename packs the set into a `u64` bitmask).
//!
//! # Temp-file hygiene
//!
//! A failed write or rename removes its own temp file, but a process
//! that dies mid-store (or a disk so sick that even the cleanup
//! `remove_file` fails) strands a `*.tmp<pid>` file. Opening the cache
//! sweeps any `skel-*.tmp*` leftovers in the directory and reports the
//! count (surfaced as `skeleton_disk_tmp_swept` in the engine stats),
//! so a crash-looping writer can never fill the disk with orphans.
//!
//! # Fault injection
//!
//! Every filesystem touch goes through the [`CacheFs`] trait; the
//! default [`RealFs`] is `std::fs`, and the chaos suite injects a
//! deterministic faulty implementation (ENOSPC, torn writes, bit-rot,
//! rename failure) to prove each failure mode degrades to a rebuild,
//! never a wrong prediction.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use hms_trace::{dump, ConcreteTrace};
use hms_types::GpuConfig;

use crate::analysis::TraceAnalysis;
use crate::engine::{EventRec, Skeleton};

/// Bump on any change to the payload encoding or to the skeleton's
/// semantics (event kinds, `TraceAnalysis` field set, ...).
///
/// v2: payload checksum switched from byte-at-a-time FNV-1a to the
/// word-folded variant ([`fnv1a_words`]) — the checksum dominates warm
/// load time once decode is chunked, and folding eight bytes per
/// multiply cuts it ~8x.
pub(crate) const FORMAT_VERSION: u32 = 2;

const MAGIC: &[u8; 8] = b"HMSSKEL1";
const HEADER_LEN: usize = 36;

/// FNV-1a 64-bit over `bytes`, continuing from `h` (seed with
/// [`FNV_OFFSET`]).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a folding a little-endian `u64` per step instead of a byte —
/// not the same function as [`fnv1a`], but the checksum only has to be
/// self-consistent within a [`FORMAT_VERSION`]. One multiply per eight
/// bytes makes payload verification a rounding error in the warm load.
fn fnv1a_words(mut h: u64, bytes: &[u8]) -> u64 {
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().unwrap());
        h = h.wrapping_mul(FNV_PRIME);
    }
    fnv1a(h, chunks.remainder())
}

/// Fingerprint of everything a skeleton's contents depend on besides
/// the shared set: the sample trace (via its canonical text dump) and
/// the GPU configuration (via its `Debug` form, which covers every
/// model-relevant field).
pub(crate) fn kernel_hash(trace: &ConcreteTrace, cfg: &GpuConfig) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &FORMAT_VERSION.to_le_bytes());
    h = fnv1a(h, dump(trace).as_bytes());
    fnv1a(h, format!("{cfg:?}").as_bytes())
}

/// Little-endian byte writer/reader over the payload.
struct Enc(Vec<u8>);

impl Enc {
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Dec<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let s = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }
    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Serialize the placement-invariant constants. Field order is fixed
/// and covered by [`FORMAT_VERSION`]; the skeleton's DRAM stream is
/// empty by construction, so it is not stored.
fn enc_consts(e: &mut Enc, a: &TraceAnalysis) {
    for v in [
        a.executed,
        a.mem_instrs,
        a.replay_global_divergence,
        a.replay_const_miss,
        a.replay_const_divergence,
        a.replay_shared_conflict,
        a.replay_double_width,
        a.global_requests,
        a.global_transactions,
        a.tex_requests,
        a.tex_transactions,
        a.tex_misses,
        a.const_requests,
        a.const_transactions,
        a.const_misses,
        a.shared_requests,
        a.local_requests,
        a.l1_local_misses,
        a.replay_local,
        a.l2_transactions,
        a.l2_misses,
        a.l2_writebacks,
        a.sync_count,
        a.wait_events,
        a.total_warps,
    ] {
        e.u64(v);
    }
    e.f64(a.mlp);
    e.f64(a.warps_per_sm);
    e.u32(a.active_sms);
    e.u32(a.waves);
}

fn dec_consts(d: &mut Dec) -> Option<TraceAnalysis> {
    let mut a = TraceAnalysis::default();
    for f in [
        &mut a.executed,
        &mut a.mem_instrs,
        &mut a.replay_global_divergence,
        &mut a.replay_const_miss,
        &mut a.replay_const_divergence,
        &mut a.replay_shared_conflict,
        &mut a.replay_double_width,
        &mut a.global_requests,
        &mut a.global_transactions,
        &mut a.tex_requests,
        &mut a.tex_transactions,
        &mut a.tex_misses,
        &mut a.const_requests,
        &mut a.const_transactions,
        &mut a.const_misses,
        &mut a.shared_requests,
        &mut a.local_requests,
        &mut a.l1_local_misses,
        &mut a.replay_local,
        &mut a.l2_transactions,
        &mut a.l2_misses,
        &mut a.l2_writebacks,
        &mut a.sync_count,
        &mut a.wait_events,
        &mut a.total_warps,
    ] {
        *f = d.u64()?;
    }
    a.mlp = d.f64()?;
    a.warps_per_sm = d.f64()?;
    a.active_sms = d.u32()?;
    a.waves = d.u32()?;
    Some(a)
}

fn encode_payload(skel: &Skeleton) -> Vec<u8> {
    let mut e = Enc(Vec::with_capacity(
        64 + skel.events.len() * 24 + skel.tx_arena.len() * 8,
    ));
    enc_consts(&mut e, &skel.consts);
    e.u32(skel.bases.len() as u32);
    for &(b, s) in &skel.bases {
        e.u64(b);
        e.u64(s);
    }
    e.u32(skel.events.len() as u32);
    for ev in &skel.events {
        e.0.push(ev.kind);
        e.0.push(ev.flag);
        e.0.extend_from_slice(&ev.sm.to_le_bytes());
        e.u32(ev.arr);
        e.u64(ev.x);
        e.u32(ev.tx);
        e.u32(ev.tx_len);
    }
    e.u32(skel.tx_arena.len() as u32);
    for &t in &skel.tx_arena {
        e.u64(t);
    }
    e.0
}

fn decode_payload(payload: &[u8]) -> Option<Skeleton> {
    let mut d = Dec {
        buf: payload,
        pos: 0,
    };
    let consts = dec_consts(&mut d)?;
    // Counted sections are taken as one slice up front (so a lying
    // count can never allocate more than the bytes actually present)
    // and decoded with `chunks_exact` — no per-field cursor bookkeeping
    // on the hot warm-load path.
    let n_bases = d.u32()? as usize;
    let base_bytes = d.take(n_bases.checked_mul(16)?)?;
    let bases: Vec<(u64, u64)> = base_bytes
        .chunks_exact(16)
        .map(|c| {
            (
                u64::from_le_bytes(c[0..8].try_into().unwrap()),
                u64::from_le_bytes(c[8..16].try_into().unwrap()),
            )
        })
        .collect();
    let n_events = d.u32()? as usize;
    let event_bytes = d.take(n_events.checked_mul(24)?)?;
    let events: Vec<EventRec> = event_bytes
        .chunks_exact(24)
        .map(|c| EventRec {
            kind: c[0],
            flag: c[1],
            sm: u16::from_le_bytes(c[2..4].try_into().unwrap()),
            arr: u32::from_le_bytes(c[4..8].try_into().unwrap()),
            x: u64::from_le_bytes(c[8..16].try_into().unwrap()),
            tx: u32::from_le_bytes(c[16..20].try_into().unwrap()),
            tx_len: u32::from_le_bytes(c[20..24].try_into().unwrap()),
        })
        .collect();
    let n_tx = d.u32()? as usize;
    let tx_bytes = d.take(n_tx.checked_mul(8)?)?;
    let tx_arena: Vec<u64> = tx_bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    if !d.done() {
        return None; // trailing garbage: treat as corruption
    }
    Some(Skeleton {
        consts,
        events,
        tx_arena,
        bases,
        poisoned: false,
    })
}

/// Pack a shared set into the filename's `u64` bitmask; `None` (skip
/// the disk entirely) beyond 64 arrays.
pub(crate) fn key_bits(key: &[bool]) -> Option<u64> {
    if key.len() > 64 {
        return None;
    }
    let mut bits = 0u64;
    for (i, &b) in key.iter().enumerate() {
        if b {
            bits |= 1 << i;
        }
    }
    Some(bits)
}

/// The filesystem surface the disk cache runs on. Production code uses
/// [`RealFs`]; fault suites inject an implementation that fails or
/// corrupts specific operations on a deterministic schedule. Every
/// method mirrors its `std::fs` namesake.
pub trait CacheFs: Send + Sync + std::fmt::Debug {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// File paths directly inside `path` (no recursion, no dirs).
    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
}

/// The passthrough `std::fs` implementation of [`CacheFs`].
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl CacheFs for RealFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        fs::write(path, data)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }
    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut files = Vec::new();
        for entry in fs::read_dir(path)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                files.push(entry.path());
            }
        }
        Ok(files)
    }
}

/// Handle on one cache directory, bound to one kernel fingerprint.
#[derive(Debug, Clone)]
pub(crate) struct DiskCache {
    dir: PathBuf,
    kernel_hash: u64,
    fs: Arc<dyn CacheFs>,
    /// Stale `*.tmp*` files removed when this handle opened the
    /// directory (leftovers of writers that died mid-store).
    swept: u64,
}

impl DiskCache {
    /// Best-effort: the directory is created eagerly so a misconfigured
    /// path degrades to misses, not errors.
    #[cfg(test)]
    pub(crate) fn new(dir: &Path, kernel_hash: u64) -> Self {
        Self::with_fs(dir, kernel_hash, Arc::new(RealFs))
    }

    /// Open on an injected filesystem (see [`CacheFs`]).
    pub(crate) fn with_fs(dir: &Path, kernel_hash: u64, fs: Arc<dyn CacheFs>) -> Self {
        let _ = fs.create_dir_all(dir);
        let swept = sweep_stale_tmps(fs.as_ref(), dir);
        DiskCache {
            dir: dir.to_path_buf(),
            kernel_hash,
            fs,
            swept,
        }
    }

    /// Stale temp files removed at open time.
    pub(crate) fn swept(&self) -> u64 {
        self.swept
    }

    fn path(&self, bits: u64) -> PathBuf {
        self.dir
            .join(format!("skel-{:016x}-{:016x}.hsk", self.kernel_hash, bits))
    }

    /// Load the skeleton for `key`, or `None` on any miss/validation
    /// failure (see the module docs for the invalidation rules).
    pub(crate) fn load(&self, key: &[bool]) -> Option<Skeleton> {
        let bits = key_bits(key)?;
        let data = self.fs.read(&self.path(bits)).ok()?;
        if data.len() < HEADER_LEN || &data[0..8] != MAGIC {
            return None;
        }
        let word = |at: usize| u64::from_le_bytes(data[at..at + 8].try_into().unwrap());
        let version = u32::from_le_bytes(data[8..12].try_into().unwrap());
        if version != FORMAT_VERSION || word(12) != self.kernel_hash {
            return None;
        }
        let payload_len = word(20) as usize;
        let payload = data.get(HEADER_LEN..)?;
        if payload.len() != payload_len || fnv1a_words(FNV_OFFSET, payload) != word(28) {
            return None;
        }
        decode_payload(payload)
    }

    /// Persist `skel` under `key`; returns whether a file was written.
    /// Errors are swallowed — a read-only or full disk only loses the
    /// warm-start.
    pub(crate) fn store(&self, key: &[bool], skel: &Skeleton) -> bool {
        debug_assert!(!skel.poisoned, "poisoned skeletons are never persisted");
        let Some(bits) = key_bits(key) else {
            return false;
        };
        let payload = encode_payload(skel);
        let mut data = Vec::with_capacity(HEADER_LEN + payload.len());
        data.extend_from_slice(MAGIC);
        data.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        data.extend_from_slice(&self.kernel_hash.to_le_bytes());
        data.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        data.extend_from_slice(&fnv1a_words(FNV_OFFSET, &payload).to_le_bytes());
        data.extend_from_slice(&payload);
        let dest = self.path(bits);
        let tmp = dest.with_extension(format!("tmp{}", std::process::id()));
        if self.fs.write(&tmp, &data).is_err() {
            // ENOSPC (or any short write) must not strand the temp; if
            // even the cleanup fails, the next open's sweep collects it.
            let _ = self.fs.remove_file(&tmp);
            return false;
        }
        if self.fs.rename(&tmp, &dest).is_err() {
            let _ = self.fs.remove_file(&tmp);
            return false;
        }
        true
    }
}

/// Remove stranded `skel-*.tmp*` files in `dir`, returning how many
/// were deleted. Runs at open: a concurrent writer mid-store can lose
/// its temp here, which costs that writer one swallowed `store` (its
/// rename fails), never a corrupt file — renames of swept paths simply
/// fail.
fn sweep_stale_tmps(fs: &dyn CacheFs, dir: &Path) -> u64 {
    let Ok(files) = fs.list_dir(dir) else {
        return 0;
    };
    let mut swept = 0;
    for path in files {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let is_tmp = name.starts_with("skel-")
            && path
                .extension()
                .and_then(|e| e.to_str())
                .is_some_and(|e| e.starts_with("tmp"));
        if is_tmp && fs.remove_file(&path).is_ok() {
            swept += 1;
        }
    }
    swept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_skeleton() -> Skeleton {
        let mut consts = TraceAnalysis::default();
        consts.executed = 123;
        consts.mlp = 2.5;
        consts.warps_per_sm = 13.037;
        consts.waves = 3;
        Skeleton {
            consts,
            events: vec![
                EventRec {
                    kind: 0,
                    flag: 0,
                    sm: 1,
                    arr: 0,
                    x: 42,
                    tx: 0,
                    tx_len: 0,
                },
                EventRec {
                    kind: 3,
                    flag: 1,
                    sm: 7,
                    arr: 0,
                    x: 2,
                    tx: 0,
                    tx_len: 3,
                },
            ],
            tx_arena: vec![128, 256, 384],
            bases: vec![(0x1000, 0x40), (0x2000, 0)],
            poisoned: false,
        }
    }

    fn skeletons_equal(a: &Skeleton, b: &Skeleton) -> bool {
        a.consts == b.consts
            && a.bases == b.bases
            && a.tx_arena == b.tx_arena
            && a.events.len() == b.events.len()
            && a.events.iter().zip(&b.events).all(|(x, y)| {
                (x.kind, x.flag, x.sm, x.arr, x.x, x.tx, x.tx_len)
                    == (y.kind, y.flag, y.sm, y.arr, y.x, y.tx, y.tx_len)
            })
            && a.poisoned == b.poisoned
    }

    #[test]
    fn payload_round_trips_bit_exactly() {
        let skel = sample_skeleton();
        let back = decode_payload(&encode_payload(&skel)).expect("decodes");
        assert!(skeletons_equal(&skel, &back));
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let p = encode_payload(&sample_skeleton());
        for cut in [0, 1, p.len() / 2, p.len() - 1] {
            assert!(decode_payload(&p[..cut]).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut p = encode_payload(&sample_skeleton());
        p.push(0);
        assert!(decode_payload(&p).is_none());
    }

    #[test]
    fn key_bits_packs_and_caps() {
        assert_eq!(key_bits(&[]), Some(0));
        assert_eq!(key_bits(&[true, false, true]), Some(0b101));
        assert_eq!(key_bits(&vec![false; 64]), Some(0));
        assert_eq!(key_bits(&vec![false; 65]), None);
    }

    #[test]
    fn store_then_load_round_trips_and_bad_headers_miss() {
        let dir = std::env::temp_dir().join(format!("hms-skelcache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = DiskCache::new(&dir, 0xDEAD_BEEF);
        let key = vec![true, false];
        let skel = sample_skeleton();
        assert!(cache.store(&key, &skel));
        let loaded = cache.load(&key).expect("hit");
        assert!(skeletons_equal(&skel, &loaded));

        // A different kernel hash misses the same file.
        let other = DiskCache::new(&dir, 0xBADC_0FFE);
        assert!(other.load(&key).is_none());

        // Flip one payload byte: checksum rejects.
        let path = cache.path(key_bits(&key).unwrap());
        let mut data = fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0x01;
        fs::write(&path, &data).unwrap();
        assert!(cache.load(&key).is_none());

        // Restore, then bump the version header: versioning rejects.
        data[last] ^= 0x01;
        data[8] ^= 0xFF;
        fs::write(&path, &data).unwrap();
        assert!(cache.load(&key).is_none());

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_stale_tmp_files_and_counts_them() {
        let dir = std::env::temp_dir().join(format!("hms-skelsweep-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        // Two stranded temps from writers that died mid-store, one
        // healthy cache file, one unrelated file.
        fs::write(dir.join("skel-aaaa-bbbb.tmp123"), b"dead").unwrap();
        fs::write(dir.join("skel-cccc-dddd.tmp9"), b"dead").unwrap();
        fs::write(dir.join("not-a-skel.tmp123"), b"keep").unwrap();

        let cache = DiskCache::new(&dir, 0x1234);
        let key = vec![true];
        assert!(cache.store(&key, &sample_skeleton()));
        assert_eq!(cache.swept(), 2, "both stranded temps swept");
        assert!(!dir.join("skel-aaaa-bbbb.tmp123").exists());
        assert!(!dir.join("skel-cccc-dddd.tmp9").exists());
        assert!(
            dir.join("not-a-skel.tmp123").exists(),
            "sweep only touches skel-* temps"
        );

        // Reopening after the sweep finds nothing to do, and real cache
        // files are never swept.
        let again = DiskCache::new(&dir, 0x1234);
        assert_eq!(again.swept(), 0);
        assert!(again.load(&key).is_some(), "healthy files survive sweeps");
        let _ = fs::remove_dir_all(&dir);
    }
}
