//! Profiling the sample data placement.
//!
//! "Given a GPU kernel to optimize its data placement, we measure and
//! profile T_comp, T_mem and T_overlap of the sample data placement,
//! based on which we predict ... target data placements." In this
//! workspace "profiling" means one run of the execution simulator — the
//! stand-in for `nvprof` + SASSI on the K80.

use hms_sim::{simulate, EventSet, SimOptions, SimResult};
use hms_trace::{materialize, ConcreteTrace, KernelTrace};
use hms_types::{GpuConfig, HmsError, PlacementMap};

/// Everything the models may use about the sample placement: its concrete
/// trace, its hardware events, and its measured time.
#[derive(Debug, Clone)]
pub struct Profile {
    pub trace: ConcreteTrace,
    pub events: EventSet,
    pub measured_cycles: u64,
    /// Cache of the search engine's placement-invariant derivations of
    /// this profile (sample scan, lower-bound statics, fingerprint) —
    /// see [`EngineStatics`](crate::engine). Interior-mutable and empty
    /// until the first [`Engine::new`](crate::Engine::new); a `clone()`
    /// of the profile starts with a fresh empty cache, since a clone is
    /// typically about to mutate `trace`.
    pub(crate) statics: crate::engine::StaticsCache,
}

impl Profile {
    /// Average cycles per issued instruction per SM on the sample run —
    /// the time scale used to convert instruction distances into the
    /// inter-arrival times of the queuing model (Section III-C3
    /// approximates inter-arrival "with the number of instructions
    /// between" two requests).
    pub fn cycles_per_instruction(&self, cfg: &GpuConfig) -> f64 {
        let active_sms = u64::from(cfg.num_sms)
            .min(self.trace.geometry.grid_blocks as u64)
            .max(1);
        let per_sm_instrs = (self.events.inst_issued as f64 / active_sms as f64).max(1.0);
        self.measured_cycles as f64 / per_sm_instrs
    }

    /// Instruction replays on the sample run that are *not* attributable
    /// to causes (1)–(4) — carried over unchanged to every target
    /// placement (Eq. 3's assumption for causes (5)–(10)).
    ///
    /// Saturating: a cause subset exceeding the total is an inconsistent
    /// event set, which [`Profile::validate`] reports as a typed
    /// [`HmsError::CounterOverflow`]; the accessor itself must not panic
    /// under `overflow-checks` on a profile that skipped validation.
    pub fn other_replays(&self) -> u64 {
        self.events
            .total_replays()
            .saturating_sub(self.events.replays_1_to_4())
    }

    /// Check that this profile lies inside the model's validity domain
    /// (see DESIGN.md §11): a non-empty trace, a nonzero measured time,
    /// finite derived rates, and internally consistent event counters.
    /// Every failure is a typed [`HmsError`], so degenerate profiles
    /// surface as errors end-to-end instead of silently producing NaN
    /// predictions or panicking under `overflow-checks`.
    pub fn validate(&self, cfg: &GpuConfig) -> Result<(), HmsError> {
        if self.trace.warps.is_empty() {
            return Err(HmsError::EmptyTrace);
        }
        if self.measured_cycles == 0 {
            return Err(HmsError::ZeroMeasuredCycles);
        }
        // Summing the replay causes must stay inside u64: a wrapped sum
        // means a corrupt event set, and every downstream quantity
        // (other_replays, replay ratios) would be silently saturated.
        if self.events.checked_total_replays().is_none() {
            return Err(HmsError::CounterOverflow {
                what: "total_replays (replay cause counters wrap u64)",
            });
        }
        // Zero issued instructions is legal (an empty kernel body; the
        // CPI floor handles it) — but replays *of* instructions that
        // were never issued are not.
        if self.events.inst_issued == 0 && self.events.total_replays() > 0 {
            return Err(HmsError::CounterOverflow {
                what: "total_replays (replays counted with zero issued instructions)",
            });
        }
        let cpi = self.cycles_per_instruction(cfg);
        if !cpi.is_finite() || cpi <= 0.0 {
            return Err(HmsError::NonFiniteRatio {
                name: "cycles_per_instruction",
                value: cpi,
            });
        }
        if self.events.inst_issued > 0 {
            let replay_ratio = self.events.total_replays() as f64 / self.events.inst_issued as f64;
            if !replay_ratio.is_finite() {
                return Err(HmsError::NonFiniteRatio {
                    name: "replay_ratio",
                    value: replay_ratio,
                });
            }
        }
        Ok(())
    }
}

/// Profile `kernel` under `sample` placement: materialize and simulate.
pub fn profile_sample(
    kernel: &KernelTrace,
    sample: &PlacementMap,
    cfg: &GpuConfig,
) -> Result<Profile, HmsError> {
    let trace = materialize(kernel, sample, cfg)?;
    let SimResult { cycles, events, .. } = simulate(&trace, cfg, &SimOptions::default())?;
    let profile = Profile {
        trace,
        events,
        measured_cycles: cycles,
        statics: Default::default(),
    };
    // A simulator (or, one day, a real profiler) handing back a profile
    // outside the model's validity domain is an error here, not a NaN
    // prediction three layers later.
    profile.validate(cfg)?;
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hms_kernels::{vecadd, Scale};

    #[test]
    fn profile_produces_trace_events_and_time() {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let p = profile_sample(&kt, &kt.default_placement(), &cfg).unwrap();
        assert!(p.measured_cycles > 0);
        assert!(p.events.inst_issued > 0);
        assert_eq!(p.trace.placement, kt.default_placement());
        assert!(p.cycles_per_instruction(&cfg) > 0.0);
    }

    #[test]
    fn validate_rejects_degenerate_profiles() {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let good = profile_sample(&kt, &kt.default_placement(), &cfg).unwrap();
        assert_eq!(good.validate(&cfg), Ok(()));

        let mut p = good.clone();
        p.trace.warps.clear();
        assert_eq!(p.validate(&cfg), Err(HmsError::EmptyTrace));

        let mut p = good.clone();
        p.measured_cycles = 0;
        assert_eq!(p.validate(&cfg), Err(HmsError::ZeroMeasuredCycles));

        // Doctored counters whose sum wraps u64: exactly the shape that
        // used to panic inside `total_replays()` under overflow-checks.
        let mut p = good.clone();
        p.events.replay_global_divergence = u64::MAX;
        p.events.replay_double_width = 1;
        assert!(matches!(
            p.validate(&cfg),
            Err(HmsError::CounterOverflow { .. })
        ));
        assert_eq!(p.other_replays(), 0, "accessor saturates, never panics");

        // Replays without any issued instructions are inconsistent.
        let mut p = good;
        p.events.inst_issued = 0;
        p.events.replay_double_width = 5;
        assert!(matches!(
            p.validate(&cfg),
            Err(HmsError::CounterOverflow { .. })
        ));
    }

    #[test]
    fn other_replays_excludes_causes_1_to_4() {
        let cfg = GpuConfig::test_small();
        let kt = hms_kernels::md::build(Scale::Test);
        let p = profile_sample(&kt, &kt.default_placement(), &cfg).unwrap();
        // md uses double precision: cause (5) replays exist and are
        // "other"; gather divergence is cause (1) and is not.
        assert!(p.other_replays() > 0);
        assert_eq!(
            p.other_replays() + p.events.replays_1_to_4(),
            p.events.total_replays()
        );
    }
}
