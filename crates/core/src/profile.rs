//! Profiling the sample data placement.
//!
//! "Given a GPU kernel to optimize its data placement, we measure and
//! profile T_comp, T_mem and T_overlap of the sample data placement,
//! based on which we predict ... target data placements." In this
//! workspace "profiling" means one run of the execution simulator — the
//! stand-in for `nvprof` + SASSI on the K80.

use hms_sim::{simulate, EventSet, SimOptions, SimResult};
use hms_trace::{materialize, ConcreteTrace, KernelTrace};
use hms_types::{GpuConfig, HmsError, PlacementMap};

/// Everything the models may use about the sample placement: its concrete
/// trace, its hardware events, and its measured time.
#[derive(Debug, Clone)]
pub struct Profile {
    pub trace: ConcreteTrace,
    pub events: EventSet,
    pub measured_cycles: u64,
}

impl Profile {
    /// Average cycles per issued instruction per SM on the sample run —
    /// the time scale used to convert instruction distances into the
    /// inter-arrival times of the queuing model (Section III-C3
    /// approximates inter-arrival "with the number of instructions
    /// between" two requests).
    pub fn cycles_per_instruction(&self, cfg: &GpuConfig) -> f64 {
        let active_sms = u64::from(cfg.num_sms)
            .min(self.trace.geometry.grid_blocks as u64)
            .max(1);
        let per_sm_instrs = (self.events.inst_issued as f64 / active_sms as f64).max(1.0);
        self.measured_cycles as f64 / per_sm_instrs
    }

    /// Instruction replays on the sample run that are *not* attributable
    /// to causes (1)–(4) — carried over unchanged to every target
    /// placement (Eq. 3's assumption for causes (5)–(10)).
    pub fn other_replays(&self) -> u64 {
        self.events.total_replays() - self.events.replays_1_to_4()
    }
}

/// Profile `kernel` under `sample` placement: materialize and simulate.
pub fn profile_sample(
    kernel: &KernelTrace,
    sample: &PlacementMap,
    cfg: &GpuConfig,
) -> Result<Profile, HmsError> {
    let trace = materialize(kernel, sample, cfg)?;
    let SimResult { cycles, events, .. } = simulate(&trace, cfg, &SimOptions::default())?;
    Ok(Profile {
        trace,
        events,
        measured_cycles: cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hms_kernels::{vecadd, Scale};

    #[test]
    fn profile_produces_trace_events_and_time() {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let p = profile_sample(&kt, &kt.default_placement(), &cfg).unwrap();
        assert!(p.measured_cycles > 0);
        assert!(p.events.inst_issued > 0);
        assert_eq!(p.trace.placement, kt.default_placement());
        assert!(p.cycles_per_instruction(&cfg) > 0.0);
    }

    #[test]
    fn other_replays_excludes_causes_1_to_4() {
        let cfg = GpuConfig::test_small();
        let kt = hms_kernels::md::build(Scale::Test);
        let p = profile_sample(&kt, &kt.default_placement(), &cfg).unwrap();
        // md uses double precision: cause (5) replays exist and are
        // "other"; gather divergence is cause (1) and is not.
        assert!(p.other_replays() > 0);
        assert_eq!(
            p.other_replays() + p.events.replays_1_to_4(),
            p.events.total_replays()
        );
    }
}
