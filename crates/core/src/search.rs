//! Placement-space enumeration and model-driven ranking.
//!
//! "In theory, to decide data placement of n data objects on m
//! programmable memory components there are m^n possible data
//! placements, subject to the limitation of memory capacities and
//! read/write properties." The models make exhausting that space cheap:
//! one profiled sample run, then one analytical evaluation per
//! candidate — and the incremental [`Engine`] makes each evaluation a
//! delta composition instead of a full trace rewrite.
//!
//! The entry point is [`SearchRequest`]: name the search space, pick a
//! [`SearchStrategy`], and [`search`] returns a [`SearchOutcome`] with
//! the ranking plus the engine's observability counters.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use hms_types::{ArrayDef, ArrayId, GpuConfig, HmsError, MemorySpace, PlacementMap};

use crate::engine::{Engine, EngineStats};
use crate::predictor::Predictor;
use crate::profile::Profile;

/// Enumerate every *legal* placement of `candidates` (other arrays stay
/// as in `base`), bounded by `limit` to keep pathological spaces in
/// check.
pub fn enumerate_placements(
    arrays: &[ArrayDef],
    base: &PlacementMap,
    candidates: &[ArrayId],
    cfg: &GpuConfig,
    limit: usize,
) -> Vec<PlacementMap> {
    let mut out = Vec::new();
    let spaces = MemorySpace::ALL;
    let mut stack: Vec<PlacementMap> = vec![base.clone()];
    for &array in candidates {
        let mut next = Vec::new();
        for pm in &stack {
            for space in spaces {
                let cand = pm.with(array, space);
                // Quick per-array legality; full validation below.
                if cand.validate(arrays, cfg).is_ok() {
                    next.push(cand);
                    if next.len() >= limit {
                        break;
                    }
                }
            }
            if next.len() >= limit {
                break;
            }
        }
        stack = next;
    }
    out.extend(stack);
    out.truncate(limit);
    // Deterministic order by the placements' short-name tuples. The
    // comparator walks the iterators directly — `sort_by_key` would
    // materialize a `Vec<String>` key on *every comparison*, which
    // dominated enumeration cost; elementwise `&str` comparison orders
    // identically to the old `Vec<String>` lexicographic key.
    out.sort_by(|a, b| {
        a.iter()
            .map(|(_, s)| s.short())
            .cmp(b.iter().map(|(_, s)| s.short()))
    });
    out.dedup();
    out
}

/// One ranked candidate.
#[derive(Debug, Clone)]
pub struct RankedPlacement {
    pub placement: PlacementMap,
    pub predicted_cycles: f64,
}

/// How [`search`] covers the placement space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SearchStrategy {
    /// Enumerate every legal placement (up to the limit) and rank all of
    /// them. The full ranking is bit-identical to the naive
    /// rewrite-per-candidate path for every worker count.
    #[default]
    Exhaustive,
    /// Depth-first branch-and-bound over candidate arrays: subtrees
    /// whose monotone lower bound already exceeds the best evaluated
    /// candidate are skipped. Returns a *partial* ranking — pruned
    /// placements are absent — but the top entry is always the true
    /// optimum of the legal space, for every worker count.
    BranchAndBound,
    /// Anytime beam search over per-array placement prefixes: at each
    /// depth only the `width` prefixes with the smallest monotone lower
    /// bound survive. The gap bound comes from the cheapest dropped
    /// prefix (see [`strategies::beam`](crate::strategies::beam)).
    Beam {
        /// Surviving prefixes per depth (≥ 1).
        width: usize,
    },
    /// Anytime successive halving over skeleton groups: candidates that
    /// share a shared-memory skeleton form one arm; arms are advanced
    /// round-robin and the worse half is retired each rung (see
    /// [`strategies::halving`](crate::strategies::halving)).
    SuccessiveHalving,
    /// Anytime seeded genetic local search on `hms_stats::rng`: the seed
    /// fully determines the result, bit for bit, at any worker count
    /// (see [`strategies::local`](crate::strategies::local)).
    LocalSearch {
        /// RNG seed; the whole run is a pure function of it.
        seed: u64,
    },
}

impl SearchStrategy {
    /// Beam width used when the spelling `beam` carries no explicit
    /// width.
    pub const DEFAULT_BEAM_WIDTH: usize = 8;
    /// Seed used when the spelling `local` carries no explicit seed.
    pub const DEFAULT_SEED: u64 = 42;

    /// The strategy's wire name, as it appears in `--json` bodies,
    /// `/v1/search` responses, and [`EngineStats::strategy`].
    pub fn name(self) -> &'static str {
        match self {
            SearchStrategy::Exhaustive => "exhaustive",
            SearchStrategy::BranchAndBound => "branch_and_bound",
            SearchStrategy::Beam { .. } => "beam",
            SearchStrategy::SuccessiveHalving => "successive_halving",
            SearchStrategy::LocalSearch { .. } => "local_search",
        }
    }

    /// True for the approximate anytime strategies — the ones that
    /// report a meaningful [`EngineStats::gap_upper_bound`].
    pub fn is_anytime(self) -> bool {
        matches!(
            self,
            SearchStrategy::Beam { .. }
                | SearchStrategy::SuccessiveHalving
                | SearchStrategy::LocalSearch { .. }
        )
    }

    /// Parse the CLI/wire spelling plus its optional knobs. Accepts the
    /// short and long spellings (`bnb`/`branch_and_bound`,
    /// `halving`/`successive_halving`, `local`/`local_search`), rejects
    /// knobs that do not apply to the named strategy, and rejects a
    /// zero beam width. The shared entry point for `hms search
    /// --strategy` and the `/v1/search` `strategy` member, so both
    /// surfaces accept exactly the same language.
    pub fn parse(name: &str, beam: Option<usize>, seed: Option<u64>) -> Result<Self, String> {
        let strategy = match name {
            "exhaustive" => SearchStrategy::Exhaustive,
            "bnb" | "branch_and_bound" => SearchStrategy::BranchAndBound,
            "beam" => SearchStrategy::Beam {
                width: beam.unwrap_or(Self::DEFAULT_BEAM_WIDTH),
            },
            "halving" | "successive_halving" => SearchStrategy::SuccessiveHalving,
            "local" | "local_search" => SearchStrategy::LocalSearch {
                seed: seed.unwrap_or(Self::DEFAULT_SEED),
            },
            other => {
                return Err(format!(
                    "unknown strategy `{other}` (expected beam|halving|local|bnb|exhaustive)"
                ))
            }
        };
        if beam.is_some() && !matches!(strategy, SearchStrategy::Beam { .. }) {
            return Err(format!("beam width only applies to `beam`, not `{name}`"));
        }
        if matches!(strategy, SearchStrategy::Beam { width: 0 }) {
            return Err("beam width must be at least 1".into());
        }
        if seed.is_some() && !matches!(strategy, SearchStrategy::LocalSearch { .. }) {
            return Err(format!("seed only applies to `local`, not `{name}`"));
        }
        Ok(strategy)
    }
}

/// A named-field description of one placement search. Replaces the old
/// eight-positional-argument [`exhaustive_search`] call.
///
/// ```ignore
/// let outcome = SearchRequest::new(&kt.arrays, &base)
///     .candidates(&[ArrayId(0), ArrayId(1)])
///     .strategy(SearchStrategy::BranchAndBound)
///     .run(&predictor, &profile)?;
/// println!("{}", outcome.stats);
/// ```
#[derive(Debug, Clone)]
pub struct SearchRequest<'a> {
    pub(crate) arrays: &'a [ArrayDef],
    pub(crate) base: &'a PlacementMap,
    pub(crate) candidates: Vec<ArrayId>,
    pub(crate) limit: usize,
    pub(crate) threads: usize,
    pub(crate) strategy: SearchStrategy,
    pub(crate) deadline: Option<Instant>,
    pub(crate) skeleton_cache: Option<PathBuf>,
    pub(crate) cache_fs: Option<Arc<dyn crate::skelcache::CacheFs>>,
    pub(crate) cancel: Option<Arc<AtomicBool>>,
    pub(crate) lane_width: u64,
}

impl<'a> SearchRequest<'a> {
    /// A search over **all** arrays of the kernel, starting from `base`
    /// for anything not being varied. Defaults: `limit` 4096 legal
    /// placements, all-core evaluation, [`SearchStrategy::Exhaustive`].
    pub fn new(arrays: &'a [ArrayDef], base: &'a PlacementMap) -> Self {
        SearchRequest {
            arrays,
            base,
            candidates: arrays.iter().map(|a| a.id).collect(),
            limit: 4096,
            threads: 0,
            strategy: SearchStrategy::default(),
            deadline: None,
            skeleton_cache: None,
            cache_fs: None,
            cancel: None,
            lane_width: 0,
        }
    }

    /// Restrict the search to these arrays (others keep their `base`
    /// space).
    pub fn candidates(mut self, ids: &[ArrayId]) -> Self {
        self.candidates = ids.to_vec();
        self
    }

    /// Restrict the search to the kernel's read-only arrays — the ones
    /// with the full five-way space choice, where the search space (and
    /// the delta engine's leverage) is largest.
    pub fn read_only_candidates(mut self) -> Self {
        self.candidates = self
            .arrays
            .iter()
            .filter(|a| !a.written)
            .map(|a| a.id)
            .collect();
        self
    }

    /// Cap the number of legal placements enumerated (exhaustive) or
    /// evaluated as leaves (branch-and-bound).
    pub fn limit(mut self, limit: usize) -> Self {
        self.limit = limit;
        self
    }

    /// Worker threads for candidate evaluation (`0` = all cores). The
    /// outcome is identical for every worker count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Pick the coverage strategy.
    pub fn strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Fix the engine's replay lane width (candidates evaluated per
    /// event-stream pass; see [`Engine::set_lane_width`]). `0` (the
    /// default) autosizes per skeleton group. Any width produces
    /// bit-identical rankings — the knob trades skeleton-decode
    /// amortization against per-lane cache-model footprint.
    pub fn lane_width(mut self, width: u64) -> Self {
        self.lane_width = width;
        self
    }

    /// Persist engine skeletons under `dir` and reuse them across
    /// processes (see [`Engine::with_disk_cache`]). Rankings are
    /// bit-identical with a cold, warm, stale, or corrupt cache — a
    /// bad file only costs the rebuild it would have saved.
    pub fn skeleton_cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.skeleton_cache = Some(dir.into());
        self
    }

    /// Like [`Self::skeleton_cache`], but every cache I/O goes through
    /// `fs` instead of the real filesystem — the injection seam the
    /// robustness tests drive with `hms_faults::FaultyFs`. Rankings stay
    /// bit-identical no matter what `fs` does to the bytes.
    pub fn skeleton_cache_fs(
        mut self,
        dir: impl Into<PathBuf>,
        fs: Arc<dyn crate::skelcache::CacheFs>,
    ) -> Self {
        self.skeleton_cache = Some(dir.into());
        self.cache_fs = Some(fs);
        self
    }

    /// Stop evaluating new candidates once `deadline` passes and return
    /// the best-so-far ranking flagged [`SearchOutcome::partial`]. With
    /// no deadline (the default) the evaluation schedule — and therefore
    /// the bit pattern of every prediction — is exactly the deadline-free
    /// path; the flag never changes results, only how many there are.
    pub fn deadline(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Cooperative cancellation: when `flag` becomes `true` the search
    /// stops at the next batch boundary — the same points the deadline
    /// is checked at — and returns the best-so-far ranking flagged
    /// [`SearchOutcome::partial`]. The server's pool watchdog raises
    /// the flag on stalled compute slots; like the deadline, the flag
    /// never changes the bit pattern of any returned prediction, only
    /// how many there are.
    pub fn cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Has the deadline passed or the cancel flag been raised? Checked
    /// only between evaluation batches, so every prediction inside a
    /// batch is computed exactly as in an uninterrupted run.
    pub(crate) fn interrupted(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Whether this request can be interrupted at all — if not, the
    /// single-batch evaluation path (the byte-identity baseline) runs.
    pub(crate) fn interruptible(&self) -> bool {
        self.deadline.is_some() || self.cancel.is_some()
    }

    /// Reject structurally nonsense searches before any model work:
    /// a zero candidate cap, a candidate id past the kernel's arrays, or
    /// the same array listed twice (the branch-and-bound assignment
    /// vector indexes by array id and would silently double-assign).
    pub fn validate(&self) -> Result<(), HmsError> {
        if self.limit == 0 {
            return Err(HmsError::InvalidInput(
                "search limit is 0; no placement can be ranked".into(),
            ));
        }
        let mut seen = vec![false; self.arrays.len()];
        for &id in &self.candidates {
            let Some(slot) = seen.get_mut(id.index()) else {
                return Err(HmsError::InvalidInput(format!(
                    "candidate array id {} out of range (kernel has {} arrays)",
                    id.index(),
                    self.arrays.len()
                )));
            };
            if *slot {
                return Err(HmsError::InvalidInput(format!(
                    "candidate array id {} listed twice",
                    id.index()
                )));
            }
            *slot = true;
        }
        Ok(())
    }

    /// Run the search. Equivalent to `search(predictor, profile, &self)`.
    pub fn run(&self, predictor: &Predictor, profile: &Profile) -> Result<SearchOutcome, HmsError> {
        search(predictor, profile, self)
    }
}

/// A completed search: the ranking (ascending predicted cycles, best
/// first) plus the engine's observability counters.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    pub ranked: Vec<RankedPlacement>,
    pub stats: EngineStats,
    /// `true` when the search hit its [`SearchRequest::deadline`] before
    /// covering the whole space: `ranked` is the best-so-far prefix of
    /// the evaluation schedule, every entry still a real (bit-identical)
    /// prediction. Always `false` without a deadline.
    pub partial: bool,
}

impl SearchOutcome {
    /// The best placement found, if any candidate was legal.
    pub fn best(&self) -> Option<&RankedPlacement> {
        self.ranked.first()
    }
}

/// Execute a [`SearchRequest`] through the incremental [`Engine`].
pub fn search(
    predictor: &Predictor,
    profile: &Profile,
    req: &SearchRequest<'_>,
) -> Result<SearchOutcome, HmsError> {
    req.validate()?;
    profile.validate(&predictor.cfg)?;
    let mut engine = Engine::new(predictor, profile);
    if let Some(dir) = &req.skeleton_cache {
        engine = match &req.cache_fs {
            Some(fs) => engine.with_disk_cache_fs(dir, Arc::clone(fs)),
            None => engine.with_disk_cache(dir),
        };
    }
    engine.set_lane_width(req.lane_width);
    let (ranked, partial, gap) = match req.strategy {
        SearchStrategy::Exhaustive => {
            let t0 = Instant::now();
            let space = enumerate_placements(
                req.arrays,
                req.base,
                &req.candidates,
                &predictor.cfg,
                req.limit,
            );
            engine.counters.add(
                &engine.counters.enumerate_nanos,
                t0.elapsed().as_nanos() as u64,
            );
            engine
                .counters
                .add(&engine.counters.candidates_enumerated, space.len() as u64);
            if !req.interruptible() {
                // No deadline and no cancel flag: the single-batch
                // path, untouched — this is the byte/bit-identity
                // baseline.
                (engine.rank(&space, req.threads)?, false, 0.0)
            } else {
                {
                    // Evaluate in the same deterministic BB_BATCH chunks
                    // the branch-and-bound path uses, checking the clock
                    // (and the cancel flag) only between chunks so each
                    // prediction inside a chunk is computed exactly as
                    // in the uninterrupted run.
                    let mut ranked = Vec::with_capacity(space.len());
                    let mut partial = false;
                    let mut cut_at = space.len();
                    for (i, chunk) in space.chunks(BB_BATCH).enumerate() {
                        if req.interrupted() && !ranked.is_empty() {
                            partial = true;
                            cut_at = i * BB_BATCH;
                            break;
                        }
                        ranked.extend(engine.evaluate_batch(chunk, req.threads)?);
                    }
                    ranked.sort_by(|a, b| a.predicted_cycles.total_cmp(&b.predicted_cycles));
                    // A deadline-cut exhaustive run is no longer exact:
                    // bound the gap by the cheapest unevaluated
                    // candidate's lower bound.
                    let gap = if partial {
                        let mut floor = crate::strategies::space_floor(
                            &engine,
                            req,
                            space[cut_at..].iter(),
                            space.len() >= req.limit,
                        );
                        if let Some(best) = ranked.first() {
                            floor = floor.min(best.predicted_cycles);
                        }
                        crate::strategies::gap_from_floor(
                            ranked.first().map(|r| r.predicted_cycles),
                            floor,
                        )
                    } else {
                        0.0
                    };
                    (ranked, partial, gap)
                }
            }
        }
        SearchStrategy::BranchAndBound => {
            let (ranked, partial) = branch_and_bound(&engine, req)?;
            // Complete branch-and-bound is exact (gap 0); a deadline cut
            // leaves unexplored subtrees whose bounds were never
            // visited, so fall back to the all-free floor.
            let gap = if partial {
                let floor = crate::strategies::all_free_floor(&engine, req)
                    .min(ranked.first().map_or(f64::INFINITY, |r| r.predicted_cycles));
                crate::strategies::gap_from_floor(ranked.first().map(|r| r.predicted_cycles), floor)
            } else {
                0.0
            };
            (ranked, partial, gap)
        }
        SearchStrategy::Beam { width } => crate::strategies::beam::run(&engine, req, width)?,
        SearchStrategy::SuccessiveHalving => crate::strategies::halving::run(&engine, req)?,
        SearchStrategy::LocalSearch { seed } => crate::strategies::local::run(&engine, req, seed)?,
    };
    let mut stats = engine.stats();
    stats.strategy = req.strategy.name();
    stats.gap_upper_bound = gap;
    Ok(SearchOutcome {
        ranked,
        stats,
        partial,
    })
}

/// Leaves per evaluation batch. Constant (never derived from the worker
/// count or core count) so the bound-update schedule — and therefore the
/// exact set of placements evaluated — is machine- and thread-count
/// independent.
pub(crate) const BB_BATCH: usize = 64;

/// Depth-first branch-and-bound over the candidate arrays, in candidate
/// order, spaces in [`MemorySpace::ALL`] order. Leaves are collected
/// into fixed-size batches and evaluated in parallel; the incumbent
/// upper bound tightens between batches. A subtree is cut only when its
/// monotone lower bound *strictly exceeds* the incumbent, so the true
/// optimum always survives to evaluation.
fn branch_and_bound(
    engine: &Engine<'_>,
    req: &SearchRequest<'_>,
) -> Result<(Vec<RankedPlacement>, bool), HmsError> {
    let t0 = Instant::now();
    let n = req.arrays.len();
    // Remaining-subtree sizes for the pruned-candidate estimate: the
    // product of standalone-legal space counts below each depth.
    let mut subtree: Vec<u64> = vec![1; req.candidates.len() + 1];
    for (d, &id) in req.candidates.iter().enumerate().rev() {
        subtree[d] = subtree[d + 1].saturating_mul(engine.legal_spaces(id).len().max(1) as u64);
    }
    let mut assignment: Vec<Option<MemorySpace>> = (0..n)
        .map(|i| {
            let id = ArrayId(i as u32);
            if req.candidates.contains(&id) {
                None
            } else {
                Some(req.base.space(id))
            }
        })
        .collect();

    struct Dfs<'s, 'e, 'p> {
        engine: &'s Engine<'e>,
        req: &'s SearchRequest<'p>,
        subtree: &'s [u64],
        ub: f64,
        batch: Vec<PlacementMap>,
        evaluated: Vec<RankedPlacement>,
        leaves: usize,
        error: Option<HmsError>,
        partial: bool,
    }

    impl Dfs<'_, '_, '_> {
        /// Deadline and cancel flag are checked only between leaves, and
        /// never before the first leaf has been collected: a partial
        /// outcome always carries at least one real best-so-far
        /// prediction.
        fn out_of_time(&mut self) -> bool {
            if self.partial {
                return true;
            }
            if self.leaves > 0 && self.req.interrupted() {
                self.partial = true;
                return true;
            }
            false
        }

        fn flush(&mut self) {
            if self.batch.is_empty() || self.error.is_some() {
                return;
            }
            let batch = std::mem::take(&mut self.batch);
            match self.engine.evaluate_batch(&batch, self.req.threads) {
                Ok(ranked) => {
                    for r in &ranked {
                        if r.predicted_cycles < self.ub {
                            self.ub = r.predicted_cycles;
                        }
                    }
                    self.evaluated.extend(ranked);
                }
                Err(e) => self.error = Some(e),
            }
        }

        fn visit(
            &mut self,
            depth: usize,
            assignment: &mut [Option<MemorySpace>],
            pm: &PlacementMap,
        ) {
            if self.error.is_some() || self.leaves >= self.req.limit || self.out_of_time() {
                return;
            }
            if self.engine.lower_bound(assignment) > self.ub {
                let c = &self.engine.counters;
                c.add(&c.subtrees_pruned, 1);
                c.add(&c.candidates_pruned, self.subtree[depth]);
                return;
            }
            let Some(&id) = self.req.candidates.get(depth) else {
                // Leaf: joint legality can be stricter than the per-array
                // legality that shaped the tree (e.g. shared capacity).
                if pm
                    .validate(self.req.arrays, &self.engine.predictor().cfg)
                    .is_ok()
                {
                    self.leaves += 1;
                    let c = &self.engine.counters;
                    c.add(&c.candidates_enumerated, 1);
                    self.batch.push(pm.clone());
                    if self.batch.len() >= BB_BATCH {
                        self.flush();
                    }
                }
                return;
            };
            for &space in self.engine.legal_spaces(id) {
                assignment[id.index()] = Some(space);
                let child = pm.with(id, space);
                self.visit(depth + 1, assignment, &child);
                assignment[id.index()] = None;
            }
        }
    }

    let mut dfs = Dfs {
        engine,
        req,
        subtree: &subtree,
        ub: f64::INFINITY,
        batch: Vec::new(),
        evaluated: Vec::new(),
        leaves: 0,
        error: None,
        partial: false,
    };
    let root = req.base.clone();
    engine.counters.add(
        &engine.counters.enumerate_nanos,
        t0.elapsed().as_nanos() as u64,
    );
    dfs.visit(0, &mut assignment, &root);
    dfs.flush();
    if let Some(e) = dfs.error {
        return Err(e);
    }
    let partial = dfs.partial;
    let mut ranked = dfs.evaluated;
    ranked.sort_by(|a, b| a.predicted_cycles.total_cmp(&b.predicted_cycles));
    Ok((ranked, partial))
}

/// Predict every candidate placement and rank ascending by predicted
/// time (best first), through the incremental engine. Prefer
/// [`SearchRequest`] when you also control enumeration.
pub fn rank_placements(
    predictor: &Predictor,
    profile: &Profile,
    candidates: &[PlacementMap],
) -> Result<Vec<RankedPlacement>, HmsError> {
    Engine::new(predictor, profile).rank(candidates, 0)
}

/// The naive ranking path: one full `rewrite` + `analyze` per
/// candidate, no delta reuse.
///
/// Kept as the engine's ground truth — the equivalence suite asserts the
/// incremental path reproduces this bit for bit. The result is
/// identical for every worker count: `par_map` reassembles in input
/// order, and the final ordering is a *stable* total sort on the
/// predicted time, so ties keep enumeration order no matter how the
/// work was scheduled.
#[deprecated(note = "use `rank_placements_naive` (oracle) or `SearchRequest::run` (fast path)")]
pub fn rank_placements_threads(
    predictor: &Predictor,
    profile: &Profile,
    candidates: &[PlacementMap],
    threads: usize,
) -> Result<Vec<RankedPlacement>, HmsError> {
    rank_placements_naive(predictor, profile, candidates, threads)
}

/// The naive oracle: rank `candidates` with one full `rewrite` +
/// `analyze` per candidate, no delta reuse. Slow by design — this is
/// the ground truth the incremental engine is checked against, and the
/// baseline the search benchmarks measure speedups from.
pub fn rank_placements_naive(
    predictor: &Predictor,
    profile: &Profile,
    candidates: &[PlacementMap],
    threads: usize,
) -> Result<Vec<RankedPlacement>, HmsError> {
    let predictions = hms_stats::par::par_map_threads(threads, candidates, |pm| {
        predictor.predict(profile, pm).map(|pred| RankedPlacement {
            placement: pm.clone(),
            predicted_cycles: pred.cycles,
        })
    });
    let mut ranked = Vec::with_capacity(candidates.len());
    for p in predictions {
        ranked.push(p?);
    }
    ranked.sort_by(|a, b| a.predicted_cycles.total_cmp(&b.predicted_cycles));
    Ok(ranked)
}

/// Exhaustively search the placement space of `candidates` and return
/// the full ranking. Thin wrapper over [`SearchRequest`]; `cfg` must
/// match the predictor's config (it always did at every call site) and
/// is otherwise ignored.
#[allow(clippy::too_many_arguments)]
#[deprecated(note = "use `SearchRequest::new(arrays, base).candidates(..).run(..)`")]
pub fn exhaustive_search(
    predictor: &Predictor,
    profile: &Profile,
    arrays: &[ArrayDef],
    base: &PlacementMap,
    candidates: &[ArrayId],
    _cfg: &GpuConfig,
    limit: usize,
    threads: usize,
) -> Result<Vec<RankedPlacement>, HmsError> {
    SearchRequest::new(arrays, base)
        .candidates(candidates)
        .limit(limit)
        .threads(threads)
        .run(predictor, profile)
        .map(|o| o.ranked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_sample;
    use hms_kernels::{vecadd, Scale};

    #[test]
    fn enumeration_respects_legality() {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let base = kt.default_placement();
        // Candidate: array 2 ("v") is written -> only global/shared are
        // legal; 1-D shape forbids Texture2D anyway.
        let all = enumerate_placements(&kt.arrays, &base, &[ArrayId(2)], &cfg, 100);
        assert_eq!(all.len(), 2);
        for pm in &all {
            assert!(pm.validate(&kt.arrays, &cfg).is_ok());
        }
    }

    #[test]
    fn enumeration_is_combinatorial_over_candidates() {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let base = kt.default_placement();
        // a and b are read-only 1-D arrays: legal spaces are G, T, C, S
        // (4 each) -> 16 combinations.
        let all = enumerate_placements(&kt.arrays, &base, &[ArrayId(0), ArrayId(1)], &cfg, 100);
        assert_eq!(all.len(), 16);
    }

    #[test]
    fn limit_caps_enumeration() {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let base = kt.default_placement();
        let all = enumerate_placements(&kt.arrays, &base, &[ArrayId(0), ArrayId(1)], &cfg, 5);
        assert!(all.len() <= 5);
    }

    #[test]
    fn parallel_search_matches_single_threaded() {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let base = kt.default_placement();
        let profile = profile_sample(&kt, &base, &cfg).unwrap();
        let predictor = Predictor::new(cfg.clone());
        let single = SearchRequest::new(&kt.arrays, &base)
            .threads(1)
            .run(&predictor, &profile)
            .unwrap();
        assert!(!single.ranked.is_empty());
        for threads in [2, 0] {
            let multi = SearchRequest::new(&kt.arrays, &base)
                .threads(threads)
                .run(&predictor, &profile)
                .unwrap();
            assert_eq!(single.ranked.len(), multi.ranked.len());
            for (a, b) in single.ranked.iter().zip(&multi.ranked) {
                assert_eq!(a.placement, b.placement);
                assert_eq!(
                    a.predicted_cycles.to_bits(),
                    b.predicted_cycles.to_bits(),
                    "prediction differs across thread counts"
                );
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_new_api() {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let base = kt.default_placement();
        let profile = profile_sample(&kt, &base, &cfg).unwrap();
        let predictor = Predictor::new(cfg.clone());
        let ids: Vec<ArrayId> = kt.arrays.iter().map(|a| a.id).collect();
        let old = exhaustive_search(&predictor, &profile, &kt.arrays, &base, &ids, &cfg, 4096, 1)
            .unwrap();
        let new = SearchRequest::new(&kt.arrays, &base)
            .threads(1)
            .run(&predictor, &profile)
            .unwrap();
        assert_eq!(old.len(), new.ranked.len());
        for (a, b) in old.iter().zip(&new.ranked) {
            assert_eq!(a.placement, b.placement);
            assert_eq!(a.predicted_cycles.to_bits(), b.predicted_cycles.to_bits());
        }
        // And the naive path agrees bit for bit with the engine path.
        let space = enumerate_placements(&kt.arrays, &base, &ids, &cfg, 4096);
        let naive = rank_placements_threads(&predictor, &profile, &space, 1).unwrap();
        for (a, b) in naive.iter().zip(&new.ranked) {
            assert_eq!(a.placement, b.placement);
            assert_eq!(a.predicted_cycles.to_bits(), b.predicted_cycles.to_bits());
        }
    }

    #[test]
    fn branch_and_bound_keeps_true_best() {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let base = kt.default_placement();
        let profile = profile_sample(&kt, &base, &cfg).unwrap();
        let predictor = Predictor::new(cfg);
        let full = SearchRequest::new(&kt.arrays, &base)
            .run(&predictor, &profile)
            .unwrap();
        for threads in [1, 2, 0] {
            let bb = SearchRequest::new(&kt.arrays, &base)
                .strategy(SearchStrategy::BranchAndBound)
                .threads(threads)
                .run(&predictor, &profile)
                .unwrap();
            let best = bb.best().expect("non-empty");
            let truth = full.best().expect("non-empty");
            assert_eq!(best.placement, truth.placement);
            assert_eq!(
                best.predicted_cycles.to_bits(),
                truth.predicted_cycles.to_bits()
            );
            assert_eq!(
                bb.stats.candidates_evaluated + bb.stats.candidates_pruned
                    >= full.ranked.len() as u64,
                true
            );
        }
    }

    #[test]
    fn validate_rejects_malformed_requests() {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let base = kt.default_placement();
        let profile = profile_sample(&kt, &base, &cfg).unwrap();
        let predictor = Predictor::new(cfg);

        let zero = SearchRequest::new(&kt.arrays, &base).limit(0);
        assert!(matches!(
            zero.run(&predictor, &profile),
            Err(HmsError::InvalidInput(_))
        ));

        let dup = SearchRequest::new(&kt.arrays, &base).candidates(&[ArrayId(0), ArrayId(0)]);
        assert!(matches!(dup.validate(), Err(HmsError::InvalidInput(_))));

        let oob = SearchRequest::new(&kt.arrays, &base).candidates(&[ArrayId(99)]);
        let err = oob.validate().unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn deadline_yields_partial_best_so_far() {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let base = kt.default_placement();
        let profile = profile_sample(&kt, &base, &cfg).unwrap();
        let predictor = Predictor::new(cfg);
        let full = SearchRequest::new(&kt.arrays, &base)
            .run(&predictor, &profile)
            .unwrap();
        assert!(!full.partial);

        // An already-expired deadline: branch-and-bound still evaluates
        // at least one leaf, flags the outcome, and every entry it does
        // return is bit-identical to the deadline-free prediction.
        let bb = SearchRequest::new(&kt.arrays, &base)
            .strategy(SearchStrategy::BranchAndBound)
            .deadline(Some(Instant::now()))
            .run(&predictor, &profile)
            .unwrap();
        assert!(bb.partial);
        assert!(!bb.ranked.is_empty());
        assert!(bb.ranked.len() < full.ranked.len());
        for r in &bb.ranked {
            let truth = full
                .ranked
                .iter()
                .find(|f| f.placement == r.placement)
                .expect("partial entry is a real candidate");
            assert_eq!(
                r.predicted_cycles.to_bits(),
                truth.predicted_cycles.to_bits()
            );
        }

        // A generous deadline covers the space: not partial, and the
        // chunked evaluation path reproduces the single-batch ranking
        // bit for bit.
        let far = Instant::now() + std::time::Duration::from_secs(3600);
        let timed = SearchRequest::new(&kt.arrays, &base)
            .deadline(Some(far))
            .run(&predictor, &profile)
            .unwrap();
        assert!(!timed.partial);
        assert_eq!(timed.ranked.len(), full.ranked.len());
        for (a, b) in timed.ranked.iter().zip(&full.ranked) {
            assert_eq!(a.placement, b.placement);
            assert_eq!(a.predicted_cycles.to_bits(), b.predicted_cycles.to_bits());
        }
    }

    #[test]
    fn search_stats_report_delta_economy() {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let base = kt.default_placement();
        let profile = profile_sample(&kt, &base, &cfg).unwrap();
        let predictor = Predictor::new(cfg);
        let outcome = SearchRequest::new(&kt.arrays, &base)
            .read_only_candidates()
            .run(&predictor, &profile)
            .unwrap();
        // Two read-only candidates -> 16 placements over 4 skeletons.
        assert_eq!(outcome.stats.candidates_evaluated, 16);
        assert_eq!(outcome.stats.full_rewrites, 4);
        assert!(outcome.stats.rewrite_reduction() >= 4.0);
        assert_eq!(outcome.stats.exact_fallbacks, 0);
    }

    #[test]
    fn ranking_orders_by_prediction() {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let base = kt.default_placement();
        let profile = profile_sample(&kt, &base, &cfg).unwrap();
        let candidates = enumerate_placements(&kt.arrays, &base, &[ArrayId(0)], &cfg, 100);
        let predictor = Predictor::new(cfg);
        let ranked = rank_placements(&predictor, &profile, &candidates).unwrap();
        assert_eq!(ranked.len(), candidates.len());
        for w in ranked.windows(2) {
            assert!(w[0].predicted_cycles <= w[1].predicted_cycles);
        }
    }
}
