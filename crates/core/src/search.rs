//! Placement-space enumeration and model-driven ranking.
//!
//! "In theory, to decide data placement of n data objects on m
//! programmable memory components there are m^n possible data
//! placements, subject to the limitation of memory capacities and
//! read/write properties." The models make exhausting that space cheap:
//! one profiled sample run, then one analytical evaluation per
//! candidate.

use hms_types::{ArrayDef, ArrayId, GpuConfig, HmsError, MemorySpace, PlacementMap};

use crate::predictor::Predictor;
use crate::profile::Profile;

/// Enumerate every *legal* placement of `candidates` (other arrays stay
/// as in `base`), bounded by `limit` to keep pathological spaces in
/// check.
pub fn enumerate_placements(
    arrays: &[ArrayDef],
    base: &PlacementMap,
    candidates: &[ArrayId],
    cfg: &GpuConfig,
    limit: usize,
) -> Vec<PlacementMap> {
    let mut out = Vec::new();
    let spaces = MemorySpace::ALL;
    let mut stack: Vec<PlacementMap> = vec![base.clone()];
    for &array in candidates {
        let mut next = Vec::new();
        for pm in &stack {
            for space in spaces {
                let cand = pm.with(array, space);
                // Quick per-array legality; full validation below.
                if cand.validate(arrays, cfg).is_ok() {
                    next.push(cand);
                    if next.len() >= limit {
                        break;
                    }
                }
            }
            if next.len() >= limit {
                break;
            }
        }
        stack = next;
    }
    out.extend(stack);
    out.truncate(limit);
    out.sort_by_key(|p| {
        p.iter()
            .map(|(_, s)| s.short().to_owned())
            .collect::<Vec<_>>()
    });
    out.dedup();
    out
}

/// One ranked candidate.
#[derive(Debug, Clone)]
pub struct RankedPlacement {
    pub placement: PlacementMap,
    pub predicted_cycles: f64,
}

/// Predict every candidate placement and rank ascending by predicted
/// time (best first). Fans the per-candidate predictions out across all
/// cores; see [`rank_placements_threads`] for determinism notes.
pub fn rank_placements(
    predictor: &Predictor,
    profile: &Profile,
    candidates: &[PlacementMap],
) -> Result<Vec<RankedPlacement>, HmsError> {
    rank_placements_threads(predictor, profile, candidates, 0)
}

/// [`rank_placements`] with an explicit worker count (`0` = all cores).
///
/// Candidate predictions are independent, so they run on a
/// [`hms_stats::par`] pool. The result is **bit-identical for every
/// worker count**: `par_map` reassembles results in input order, and the
/// final ordering is a *stable* sort on the predicted time, so ties keep
/// enumeration order no matter how the work was scheduled.
pub fn rank_placements_threads(
    predictor: &Predictor,
    profile: &Profile,
    candidates: &[PlacementMap],
    threads: usize,
) -> Result<Vec<RankedPlacement>, HmsError> {
    let predictions = hms_stats::par::par_map_threads(threads, candidates, |pm| {
        predictor.predict(profile, pm).map(|pred| RankedPlacement {
            placement: pm.clone(),
            predicted_cycles: pred.cycles,
        })
    });
    let mut ranked = Vec::with_capacity(candidates.len());
    for p in predictions {
        ranked.push(p?);
    }
    ranked.sort_by(|a, b| {
        a.predicted_cycles
            .partial_cmp(&b.predicted_cycles)
            .expect("finite predictions")
    });
    Ok(ranked)
}

/// Exhaustively search the placement space of `candidates` (up to
/// `limit` legal placements of the `m^n` space) and return the full
/// ranking, fanning the model evaluations out across `threads` workers
/// (`0` = all cores).
///
/// Enumeration stays sequential — it is a cheap, deterministic walk —
/// while the per-placement model evaluation, the hot path, runs on the
/// pool. Single-threaded and multi-threaded searches return identical
/// rankings (and therefore the identical best placement).
pub fn exhaustive_search(
    predictor: &Predictor,
    profile: &Profile,
    arrays: &[ArrayDef],
    base: &PlacementMap,
    candidates: &[ArrayId],
    cfg: &GpuConfig,
    limit: usize,
    threads: usize,
) -> Result<Vec<RankedPlacement>, HmsError> {
    let space = enumerate_placements(arrays, base, candidates, cfg, limit);
    rank_placements_threads(predictor, profile, &space, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_sample;
    use hms_kernels::{vecadd, Scale};

    #[test]
    fn enumeration_respects_legality() {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let base = kt.default_placement();
        // Candidate: array 2 ("v") is written -> only global/shared are
        // legal; 1-D shape forbids Texture2D anyway.
        let all = enumerate_placements(&kt.arrays, &base, &[ArrayId(2)], &cfg, 100);
        assert_eq!(all.len(), 2);
        for pm in &all {
            assert!(pm.validate(&kt.arrays, &cfg).is_ok());
        }
    }

    #[test]
    fn enumeration_is_combinatorial_over_candidates() {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let base = kt.default_placement();
        // a and b are read-only 1-D arrays: legal spaces are G, T, C, S
        // (4 each) -> 16 combinations.
        let all = enumerate_placements(&kt.arrays, &base, &[ArrayId(0), ArrayId(1)], &cfg, 100);
        assert_eq!(all.len(), 16);
    }

    #[test]
    fn limit_caps_enumeration() {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let base = kt.default_placement();
        let all = enumerate_placements(&kt.arrays, &base, &[ArrayId(0), ArrayId(1)], &cfg, 5);
        assert!(all.len() <= 5);
    }

    #[test]
    fn parallel_search_matches_single_threaded() {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let base = kt.default_placement();
        let profile = profile_sample(&kt, &base, &cfg).unwrap();
        let predictor = Predictor::new(cfg.clone());
        let candidates: Vec<ArrayId> = kt.arrays.iter().map(|a| a.id).collect();
        let single = exhaustive_search(
            &predictor,
            &profile,
            &kt.arrays,
            &base,
            &candidates,
            &cfg,
            4096,
            1,
        )
        .unwrap();
        assert!(!single.is_empty());
        for threads in [2, 0] {
            let multi = exhaustive_search(
                &predictor,
                &profile,
                &kt.arrays,
                &base,
                &candidates,
                &cfg,
                4096,
                threads,
            )
            .unwrap();
            assert_eq!(single.len(), multi.len());
            for (a, b) in single.iter().zip(&multi) {
                assert_eq!(a.placement, b.placement);
                assert_eq!(
                    a.predicted_cycles.to_bits(),
                    b.predicted_cycles.to_bits(),
                    "prediction differs across thread counts"
                );
            }
        }
    }

    #[test]
    fn ranking_orders_by_prediction() {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let base = kt.default_placement();
        let profile = profile_sample(&kt, &base, &cfg).unwrap();
        let candidates = enumerate_placements(&kt.arrays, &base, &[ArrayId(0)], &cfg, 100);
        let predictor = Predictor::new(cfg);
        let ranked = rank_placements(&predictor, &profile, &candidates).unwrap();
        assert_eq!(ranked.len(), candidates.len());
        for w in ranked.windows(2) {
            assert!(w[0].predicted_cycles <= w[1].predicted_cycles);
        }
    }
}
