//! Placement-space enumeration and model-driven ranking.
//!
//! "In theory, to decide data placement of n data objects on m
//! programmable memory components there are m^n possible data
//! placements, subject to the limitation of memory capacities and
//! read/write properties." The models make exhausting that space cheap:
//! one profiled sample run, then one analytical evaluation per
//! candidate.

use hms_types::{ArrayDef, ArrayId, GpuConfig, HmsError, MemorySpace, PlacementMap};

use crate::predictor::Predictor;
use crate::profile::Profile;

/// Enumerate every *legal* placement of `candidates` (other arrays stay
/// as in `base`), bounded by `limit` to keep pathological spaces in
/// check.
pub fn enumerate_placements(
    arrays: &[ArrayDef],
    base: &PlacementMap,
    candidates: &[ArrayId],
    cfg: &GpuConfig,
    limit: usize,
) -> Vec<PlacementMap> {
    let mut out = Vec::new();
    let spaces = MemorySpace::ALL;
    let mut stack: Vec<PlacementMap> = vec![base.clone()];
    for &array in candidates {
        let mut next = Vec::new();
        for pm in &stack {
            for space in spaces {
                let cand = pm.with(array, space);
                // Quick per-array legality; full validation below.
                if cand.validate(arrays, cfg).is_ok() {
                    next.push(cand);
                    if next.len() >= limit {
                        break;
                    }
                }
            }
            if next.len() >= limit {
                break;
            }
        }
        stack = next;
    }
    out.extend(stack);
    out.truncate(limit);
    out.sort_by_key(|p| p.iter().map(|(_, s)| s.short().to_owned()).collect::<Vec<_>>());
    out.dedup();
    out
}

/// One ranked candidate.
#[derive(Debug, Clone)]
pub struct RankedPlacement {
    pub placement: PlacementMap,
    pub predicted_cycles: f64,
}

/// Predict every candidate placement and rank ascending by predicted
/// time (best first).
pub fn rank_placements(
    predictor: &Predictor,
    profile: &Profile,
    candidates: &[PlacementMap],
) -> Result<Vec<RankedPlacement>, HmsError> {
    let mut ranked = Vec::with_capacity(candidates.len());
    for pm in candidates {
        let pred = predictor.predict(profile, pm)?;
        ranked.push(RankedPlacement { placement: pm.clone(), predicted_cycles: pred.cycles });
    }
    ranked.sort_by(|a, b| {
        a.predicted_cycles.partial_cmp(&b.predicted_cycles).expect("finite predictions")
    });
    Ok(ranked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_sample;
    use hms_kernels::{vecadd, Scale};

    #[test]
    fn enumeration_respects_legality() {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let base = kt.default_placement();
        // Candidate: array 2 ("v") is written -> only global/shared are
        // legal; 1-D shape forbids Texture2D anyway.
        let all = enumerate_placements(&kt.arrays, &base, &[ArrayId(2)], &cfg, 100);
        assert_eq!(all.len(), 2);
        for pm in &all {
            assert!(pm.validate(&kt.arrays, &cfg).is_ok());
        }
    }

    #[test]
    fn enumeration_is_combinatorial_over_candidates() {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let base = kt.default_placement();
        // a and b are read-only 1-D arrays: legal spaces are G, T, C, S
        // (4 each) -> 16 combinations.
        let all = enumerate_placements(&kt.arrays, &base, &[ArrayId(0), ArrayId(1)], &cfg, 100);
        assert_eq!(all.len(), 16);
    }

    #[test]
    fn limit_caps_enumeration() {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let base = kt.default_placement();
        let all = enumerate_placements(&kt.arrays, &base, &[ArrayId(0), ArrayId(1)], &cfg, 5);
        assert!(all.len() <= 5);
    }

    #[test]
    fn ranking_orders_by_prediction() {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let base = kt.default_placement();
        let profile = profile_sample(&kt, &base, &cfg).unwrap();
        let candidates = enumerate_placements(&kt.arrays, &base, &[ArrayId(0)], &cfg, 100);
        let predictor = Predictor::new(cfg);
        let ranked = rank_placements(&predictor, &profile, &candidates).unwrap();
        assert_eq!(ranked.len(), candidates.len());
        for w in ranked.windows(2) {
            assert!(w[0].predicted_cycles <= w[1].predicted_cycles);
        }
    }
}
