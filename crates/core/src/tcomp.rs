//! The computation-cost model `T_comp` (paper Eq. 2, 3, 13–16).
//!
//! ```text
//! T_comp = (#inst x #total_warps / #active_SMs) x
//!              Effective_instruction_throughput + W_serial        (2)
//! ```
//!
//! `#inst` is the number of *issued* instructions per warp — executed
//! instructions (with the addressing-mode expansion of the target
//! placement) plus instruction replays. Replays decompose per Eq. 3:
//! causes (1)–(4) are recomputed for the target by the trace analysis;
//! causes (5)–(10) are carried over from the sample profile.

use hms_types::GpuConfig;

use crate::analysis::TraceAnalysis;
use crate::profile::Profile;

/// Result of the `T_comp` model, in cycles, with its intermediate terms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcompResult {
    pub cycles: f64,
    /// Issued instructions per warp (Eq. 2's `#inst`).
    pub inst_per_warp: f64,
    /// Cycles per issued instruction (Eq. 13).
    pub effective_throughput: f64,
    /// Serialization overhead (Eq. 16).
    pub w_serial: f64,
}

/// Effective instruction throughput in cycles per instruction (Eq. 13),
/// driven by inter-thread ILP (Eq. 14–15).
///
/// Deviation from the printed Eq. 15 (documented in DESIGN.md): the
/// ceiling `ITILP_max` is scaled by the SM's dual-issue width so that a
/// fully-occupied SM reaches `1/issue_width` cycles per instruction —
/// the paper's K80 shares the same property through its
/// `Effective_instruction_throughput` calibration.
pub fn effective_throughput(cfg: &GpuConfig, warps_per_sm: f64) -> f64 {
    let lat = cfg.avg_inst_lat as f64;
    let issue_cycles_per_warp_inst = f64::from(cfg.warp_size) / f64::from(cfg.simd_width);
    let itilp_max = lat * f64::from(cfg.issue_width) / issue_cycles_per_warp_inst;
    let itilp = (cfg.warp_ilp * warps_per_sm).min(itilp_max).max(1.0);
    lat / itilp
}

/// Compute `T_comp` for a target placement.
///
/// `detailed_instr` selects the paper's detailed issued-instruction
/// counting; when false (the "baseline" of Figure 7 and the [7]-style
/// model), the *sample* placement's executed-instruction count is used
/// unchanged and replays are ignored.
pub fn tcomp(
    profile: &Profile,
    analysis: &TraceAnalysis,
    cfg: &GpuConfig,
    detailed_instr: bool,
) -> TcompResult {
    let total_warps = analysis.total_warps.max(1) as f64;
    let inst_per_warp = if detailed_instr {
        // Eq. 3: target replays = sample replays - sample_(1-4) + target_(1-4),
        // where the sample terms fold into `other_replays()`.
        let issued = analysis.executed + analysis.replays_1_to_4() + profile.other_replays();
        issued as f64 / total_warps
    } else {
        profile.events.inst_executed as f64 / total_warps
    };

    let throughput = effective_throughput(cfg, analysis.warps_per_sm.max(1.0));
    let active_sms = f64::from(analysis.active_sms.max(1));

    // Eq. 16: W_serial = O_sync + O_SFU + O_CFdiv, assumed equal between
    // placements; the sync term is the only one our machine exposes.
    let syncs_per_sm = analysis.sync_count as f64 / active_sms;
    let w_serial = syncs_per_sm * cfg.avg_inst_lat as f64;

    let cycles = inst_per_warp * total_warps / active_sms * throughput + w_serial;
    TcompResult {
        cycles,
        inst_per_warp,
        effective_throughput: throughput,
        w_serial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::profile::profile_sample;
    use hms_kernels::{vecadd, Scale};
    use hms_trace::materialize;
    use hms_types::{ArrayId, MemorySpace};

    #[test]
    fn throughput_saturates_with_occupancy() {
        let cfg = GpuConfig::tesla_k80();
        let low = effective_throughput(&cfg, 1.0);
        let high = effective_throughput(&cfg, 32.0);
        assert!(low > high);
        // Saturated: dual issue reaches 0.5 cycles/instruction.
        assert!((high - 0.5).abs() < 1e-9);
        // One warp: latency/ILP = 9/3 = 3 cycles per instruction.
        assert!((low - 3.0).abs() < 1e-9);
    }

    #[test]
    fn texture_targets_need_fewer_instructions() {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let sample = kt.default_placement();
        let p = profile_sample(&kt, &sample, &cfg).unwrap();
        let target = sample
            .with(ArrayId(0), MemorySpace::Texture1D)
            .with(ArrayId(1), MemorySpace::Texture1D);
        let a_g = analyze(&materialize(&kt, &sample, &cfg).unwrap(), &cfg);
        let a_t = analyze(&materialize(&kt, &target, &cfg).unwrap(), &cfg);
        let g = tcomp(&p, &a_g, &cfg, true);
        let t = tcomp(&p, &a_t, &cfg, true);
        assert!(t.inst_per_warp < g.inst_per_warp);
        assert!(t.cycles < g.cycles);
    }

    #[test]
    fn baseline_counting_ignores_placement() {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let sample = kt.default_placement();
        let p = profile_sample(&kt, &sample, &cfg).unwrap();
        let target = sample.with(ArrayId(0), MemorySpace::Texture1D);
        let a_t = analyze(&materialize(&kt, &target, &cfg).unwrap(), &cfg);
        let detailed = tcomp(&p, &a_t, &cfg, true);
        let baseline = tcomp(&p, &a_t, &cfg, false);
        // Baseline keeps the sample's instruction count.
        assert!(baseline.inst_per_warp > detailed.inst_per_warp);
    }

    #[test]
    fn tcomp_tracks_simulated_compute_time_for_compute_kernel() {
        // md5hash is almost pure compute: T_comp alone should land within
        // a factor of two of the measured time.
        let cfg = GpuConfig::test_small();
        let kt = hms_kernels::md5hash::build(Scale::Test);
        let sample = kt.default_placement();
        let p = profile_sample(&kt, &sample, &cfg).unwrap();
        let a = analyze(&p.trace, &cfg);
        let t = tcomp(&p, &a, &cfg, true);
        let measured = p.measured_cycles as f64;
        assert!(
            t.cycles > measured * 0.4 && t.cycles < measured * 2.5,
            "tcomp {} vs measured {measured}",
            t.cycles
        );
    }
}
