//! The full predictor (paper Eq. 1) and the ablation presets of
//! Figures 7–9.
//!
//! Pipeline for one target placement:
//!
//! 1. rewrite the sample's concrete trace to the target placement
//!    (`hms-trace::rewrite` — the SASSI-style transformation);
//! 2. run the cache-model trace analysis (`analysis`);
//! 3. `T_comp` (Eq. 2/3), `T_mem` (Eq. 4–10), `T_overlap` (Eq. 11–12);
//! 4. `T = T_comp + T_mem − T_overlap`.

use hms_trace::rewrite;
use hms_types::{GpuConfig, HmsError, PlacementMap};

use crate::analysis::{analyze, TraceAnalysis};
use crate::profile::Profile;
use crate::tcomp::tcomp;
use crate::tmem::tmem;
pub use crate::tmem::QueuingMode;
use crate::toverlap::{features, ToverlapModel, TrainingPoint};

/// Model-configuration knobs — the axes of the paper's ablation study.
/// `Hash` so the serving layer can key prediction caches on the exact
/// model configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelOptions {
    /// Detailed issued-instruction counting: addressing-mode expansion +
    /// replay causes (1)–(4) (Figure 7's "instr replay & addr mode
    /// diff").
    pub detailed_instr: bool,
    /// DRAM latency estimation mode (Figures 8–9).
    pub queuing: QueuingMode,
}

impl ModelOptions {
    /// The full model ("Our Model" in the figures).
    pub fn full() -> Self {
        ModelOptions {
            detailed_instr: true,
            queuing: QueuingMode::Mapped,
        }
    }

    /// The ablation baseline: no detailed instruction counting, constant
    /// DRAM latency, even request distribution.
    pub fn baseline() -> Self {
        ModelOptions {
            detailed_instr: false,
            queuing: QueuingMode::ConstantLatency,
        }
    }

    /// Baseline + detailed instruction counting (Figure 7's second bar).
    pub fn baseline_plus_instr() -> Self {
        ModelOptions {
            detailed_instr: true,
            queuing: QueuingMode::ConstantLatency,
        }
    }

    /// Detailed counting + queuing with even request distribution
    /// (Figure 8's third bar).
    pub fn instr_plus_queuing_even() -> Self {
        ModelOptions {
            detailed_instr: true,
            queuing: QueuingMode::EvenDistribution,
        }
    }

    /// Queuing alone, no detailed instruction counting (Figure 9).
    pub fn queuing_only() -> Self {
        ModelOptions {
            detailed_instr: false,
            queuing: QueuingMode::Mapped,
        }
    }
}

/// A predicted execution time with its decomposition.
#[derive(Debug, Clone)]
pub struct Prediction {
    pub cycles: f64,
    pub t_comp: f64,
    pub t_mem: f64,
    pub t_overlap: f64,
    /// The target-trace analysis behind the prediction.
    pub analysis: TraceAnalysis,
}

/// The paper's performance-model framework.
#[derive(Debug, Clone)]
pub struct Predictor {
    pub cfg: GpuConfig,
    pub options: ModelOptions,
    pub overlap: ToverlapModel,
}

impl Predictor {
    /// A full-model predictor with an untrained overlap model.
    pub fn new(cfg: GpuConfig) -> Self {
        Predictor {
            cfg,
            options: ModelOptions::full(),
            overlap: ToverlapModel::untrained(),
        }
    }

    pub fn with_options(cfg: GpuConfig, options: ModelOptions) -> Self {
        Predictor {
            cfg,
            options,
            overlap: ToverlapModel::untrained(),
        }
    }

    /// Replace the overlap model (after training).
    pub fn with_overlap(mut self, overlap: ToverlapModel) -> Self {
        self.overlap = overlap;
        self
    }

    /// Predict the execution time of `target` given the sample
    /// `profile`.
    ///
    /// A model that produces a NaN or infinite time surfaces as
    /// [`HmsError::NonFinitePrediction`] rather than a poisoned float, so
    /// downstream ranking can use [`f64::total_cmp`] on trusted keys.
    pub fn predict(
        &self,
        profile: &Profile,
        target: &PlacementMap,
    ) -> Result<Prediction, HmsError> {
        let target_trace = rewrite(&profile.trace, target, &self.cfg)?;
        let analysis = analyze(&target_trace, &self.cfg);
        let pred = self.predict_from_analysis(profile, analysis);
        if pred.cycles.is_finite() {
            Ok(pred)
        } else {
            Err(HmsError::NonFinitePrediction {
                cycles: pred.cycles,
                t_comp: pred.t_comp,
                t_mem: pred.t_mem,
                t_overlap: pred.t_overlap,
            })
        }
    }

    /// Predict from a pre-computed analysis (used by the harness to
    /// share work across model variants).
    pub fn predict_from_analysis(&self, profile: &Profile, analysis: TraceAnalysis) -> Prediction {
        if self.options.detailed_instr {
            self.predict_prepared(profile, analysis, None)
        } else {
            let sample_analysis = analyze(&profile.trace, &self.cfg);
            self.predict_prepared(profile, analysis, Some(&sample_analysis))
        }
    }

    /// Predict from a pre-computed target analysis plus an optional
    /// pre-computed *sample* analysis. The non-detailed ablation variants
    /// feed Eq. 11 the sample placement's events (see below), which
    /// normally means re-analyzing the sample trace on every call; the
    /// incremental search engine computes that analysis once and passes
    /// it here. Float operations are identical either way, so results
    /// are bit-for-bit the same.
    pub fn predict_prepared(
        &self,
        profile: &Profile,
        analysis: TraceAnalysis,
        sample_analysis: Option<&TraceAnalysis>,
    ) -> Prediction {
        let (cycles, t_comp, t_mem, t_overlap) =
            self.predict_parts(profile, &analysis, sample_analysis);
        Prediction {
            cycles,
            t_comp,
            t_mem,
            t_overlap,
            analysis,
        }
    }

    /// [`predict_prepared`](Self::predict_prepared) without taking
    /// ownership of the analysis: returns `(cycles, t_comp, t_mem,
    /// t_overlap)`. The lane-batched search path predicts straight from
    /// a borrowed per-lane accumulator, skipping the per-candidate
    /// `TraceAnalysis` clone a full [`Prediction`] would need.
    pub fn predict_parts(
        &self,
        profile: &Profile,
        analysis: &TraceAnalysis,
        sample_analysis: Option<&TraceAnalysis>,
    ) -> (f64, f64, f64, f64) {
        let tc = tcomp(profile, analysis, &self.cfg, self.options.detailed_instr);
        let tm = tmem(profile, analysis, &self.cfg, self.options.queuing);
        // Without the detailed counting framework a model cannot know
        // the *target's* memory events — only the sample run's. The
        // paper's ablation baseline "incorrectly calculates the numbers
        // of those memory events needed by Equation 11" for exactly this
        // reason, so the degraded variants feed Eq. 11 the sample
        // placement's events.
        let to = match (self.options.detailed_instr, sample_analysis) {
            (true, _) => self
                .overlap
                .t_overlap(analysis, &self.cfg, tc.cycles, tm.cycles),
            (false, Some(sa)) => self.overlap.t_overlap(sa, &self.cfg, tc.cycles, tm.cycles),
            (false, None) => {
                let sa = analyze(&profile.trace, &self.cfg);
                self.overlap.t_overlap(&sa, &self.cfg, tc.cycles, tm.cycles)
            }
        };
        let cycles = (tc.cycles + tm.cycles - to).max(1.0);
        (cycles, tc.cycles, tm.cycles, to)
    }

    /// Build one `T_overlap` training observation from a profiled
    /// placement: the residual overlap the simulator actually exhibited
    /// under this model configuration.
    pub fn training_point(&self, profile: &Profile) -> TrainingPoint {
        let analysis = analyze(&profile.trace, &self.cfg);
        let tc = tcomp(profile, &analysis, &self.cfg, self.options.detailed_instr);
        let tm = tmem(profile, &analysis, &self.cfg, self.options.queuing);
        let ratio = if tm.cycles > 0.0 {
            ((tc.cycles + tm.cycles - profile.measured_cycles as f64) / tm.cycles).clamp(-1.0, 1.0)
        } else {
            0.0
        };
        // Group by kernel identity so cross-validation holds out whole
        // kernels (placements of one kernel are near-duplicates).
        let group = {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            profile.trace.name.hash(&mut h);
            h.finish()
        };
        TrainingPoint {
            features: features(&analysis, &self.cfg, tc.cycles, tm.cycles),
            ratio,
            group,
        }
    }

    /// Fit the overlap model from profiled training placements, in
    /// place. Training and evaluation sets are disjoint in the harness,
    /// as in the paper (Table IV's lower half trains, upper half
    /// evaluates).
    pub fn train(&mut self, training: &[Profile]) -> Result<(), HmsError> {
        let points: Vec<TrainingPoint> = training.iter().map(|p| self.training_point(p)).collect();
        self.overlap = ToverlapModel::fit(&points)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_sample;
    use hms_kernels::{convolution, vecadd, Scale};
    use hms_types::{ArrayId, MemorySpace};

    fn cfg() -> GpuConfig {
        GpuConfig::test_small()
    }

    #[test]
    fn predicts_identity_placement_within_factor_two() {
        let cfg = cfg();
        let kt = vecadd::build(Scale::Test);
        let pm = kt.default_placement();
        let profile = profile_sample(&kt, &pm, &cfg).unwrap();
        let pred = Predictor::new(cfg.clone()).predict(&profile, &pm).unwrap();
        let measured = profile.measured_cycles as f64;
        assert!(
            pred.cycles > measured * 0.3 && pred.cycles < measured * 3.0,
            "pred {} vs measured {measured}",
            pred.cycles
        );
        assert!(pred.t_comp > 0.0 && pred.t_mem > 0.0);
        assert!(pred.t_overlap <= pred.t_mem);
    }

    #[test]
    fn prediction_ranks_significant_moves_correctly() {
        // For placement moves whose measured effect is clear (> 12%),
        // even the untrained predictor must point the right way — that
        // is the tool's advertised use. Small measured differences are
        // within model noise and are not ranked here.
        // Full scale on the K80 machine: placement effects at test
        // scale are within noise, which is exactly why the paper
        // evaluates at benchmark scale.
        let cfg = GpuConfig::tesla_k80();
        let kt = hms_kernels::neuralnet::build(Scale::Full);
        let sample = kt.default_placement();
        let profile = profile_sample(&kt, &sample, &cfg).unwrap();
        let predictor = Predictor::new(cfg.clone());
        let pred_sample = predictor.predict(&profile, &sample).unwrap();
        let meas_sample = profile.measured_cycles as f64;

        let mut significant = 0;
        // Shared moves are excluded: at test scale the dominant cost of
        // a shared placement is barrier skew from the staging sync,
        // which the analytic model intentionally approximates (Eq. 16
        // treats serialization as placement-invariant).
        for (id, space) in [
            (ArrayId(0), MemorySpace::Texture2D),
            (ArrayId(0), MemorySpace::Texture1D),
            (ArrayId(0), MemorySpace::Constant),
            (ArrayId(1), MemorySpace::Constant),
        ] {
            let target = sample.with(id, space);
            if target.validate(&kt.arrays, &cfg).is_err() {
                continue;
            }
            let meas_target = profile_sample(&kt, &target, &cfg).unwrap().measured_cycles as f64;
            let rel = (meas_target - meas_sample).abs() / meas_sample;
            if rel < 0.12 {
                continue;
            }
            significant += 1;
            let pred_target = predictor.predict(&profile, &target).unwrap();
            assert_eq!(
                pred_target.cycles < pred_sample.cycles,
                meas_target < meas_sample,
                "misranked {}({})",
                id.0,
                space
            );
        }
        // The probe set must exercise at least one significant move.
        assert!(significant >= 1, "no significant moves in probe set");
    }

    #[test]
    fn ablation_options_change_predictions() {
        let cfg = cfg();
        let kt = hms_kernels::md::build(Scale::Test);
        let sample = kt.default_placement();
        let profile = profile_sample(&kt, &sample, &cfg).unwrap();
        let target = sample.with(ArrayId(0), MemorySpace::Texture1D);

        let full = Predictor::with_options(cfg.clone(), ModelOptions::full())
            .predict(&profile, &target)
            .unwrap();
        let base = Predictor::with_options(cfg.clone(), ModelOptions::baseline())
            .predict(&profile, &target)
            .unwrap();
        assert!(full.cycles != base.cycles);
    }

    #[test]
    fn training_improves_identity_prediction() {
        let cfg = cfg();
        let kernels = [
            vecadd::build(Scale::Test),
            convolution::build_rows(Scale::Test),
            hms_kernels::triad::build(Scale::Test),
            hms_kernels::spmv::build(Scale::Test),
            hms_kernels::md::build(Scale::Test),
        ];
        // Train on several placements of each kernel.
        let mut profiles = Vec::new();
        for kt in &kernels {
            let g = kt.default_placement();
            profiles.push(profile_sample(kt, &g, &cfg).unwrap());
            for (id, _) in g.iter() {
                for space in [MemorySpace::Texture1D, MemorySpace::Constant] {
                    let pm = g.with(id, space);
                    if pm.validate(&kt.arrays, &cfg).is_ok() {
                        if let Ok(p) = profile_sample(kt, &pm, &cfg) {
                            profiles.push(p);
                        }
                    }
                }
            }
        }
        let mut predictor = Predictor::new(cfg.clone());
        predictor.train(&profiles).unwrap();
        assert!(predictor.overlap.is_trained());

        // Evaluate on a held-out kernel.
        let kt = hms_kernels::stencil2d::build(Scale::Test);
        let pm = kt.default_placement();
        let profile = profile_sample(&kt, &pm, &cfg).unwrap();
        let trained_pred = predictor.predict(&profile, &pm).unwrap();
        let untrained_pred = Predictor::new(cfg.clone()).predict(&profile, &pm).unwrap();
        let measured = profile.measured_cycles as f64;
        let err = |x: f64| (x - measured).abs() / measured;
        // Trained should not be (much) worse than the untrained default.
        assert!(
            err(trained_pred.cycles) <= err(untrained_pred.cycles) + 0.35,
            "trained {} untrained {} measured {}",
            trained_pred.cycles,
            untrained_pred.cycles,
            measured
        );
    }
}
