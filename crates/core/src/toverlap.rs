//! The overlap model `T_overlap` (paper Eq. 11–12).
//!
//! ```text
//! T_overlap_ratio = sum_i g_i e_i + sum_j c_j e_j + sum_m t_m e_m +
//!                   sum_n s_n e_n + sum_k r_k e_k + w #warps + c    (11)
//! T_overlap = T_overlap_ratio x T_mem                              (12)
//! ```
//!
//! The feature groups follow the paper: global events (L2 misses +
//! global requests), constant events (constant-cache misses + requests),
//! texture events (texture-cache misses + requests), shared events (bank
//! conflicts + requests), row-buffer miss/conflict events, and warps per
//! SM. Event features enter as *ratios* (normalized per warp-level
//! memory instruction), which "makes models independent of applications
//! and results in better modeling accuracy".
//!
//! Coefficients come from ordinary least squares over a training set of
//! placements whose true overlap is extracted from simulator runs:
//! `ratio = (T_comp + T_mem - T_measured) / T_mem`.

use hms_stats::LinearModel;
use hms_types::{GpuConfig, HmsError};

use crate::analysis::TraceAnalysis;

/// Number of features in Eq. 11's vector.
pub const FEATURES: usize = 11;

/// Indices of the features eligible for selection during `fit` (see the
/// candidate-prior note there): memory intensity (6), MLP (7), and the
/// `T_comp`/`T_mem` regime balance (8).
pub const STABLE_FEATURES: [usize; 3] = [8, 7, 6];

/// Build Eq. 11's feature vector from a trace analysis plus the two
/// model terms whose balance determines how much overlap is possible.
///
/// The final two features go beyond the paper's printed event list:
/// `min(T_comp/T_mem, 1)` and `min(T_mem/T_comp, 1)` encode which side
/// dominates — overlap can hide at most the smaller of the two costs, a
/// regime indicator a purely event-based linear model cannot express.
pub fn features(
    analysis: &TraceAnalysis,
    cfg: &GpuConfig,
    t_comp: f64,
    t_mem: f64,
) -> [f64; FEATURES] {
    let m = analysis.mem_instrs.max(1) as f64;
    [
        // Global: L2 misses + global requests.
        (analysis.l2_misses + analysis.global_requests) as f64 / m,
        // Constant: cache misses + requests.
        (analysis.const_misses + analysis.const_requests) as f64 / m,
        // Texture: cache misses + requests.
        (analysis.tex_misses + analysis.tex_requests) as f64 / m,
        // Shared: bank conflicts + requests.
        (analysis.replay_shared_conflict + analysis.shared_requests) as f64 / m,
        // Row-buffer "miss and conflict events": DRAM requests stand in,
        // since every request is classified by the bank walk.
        analysis.dram.len() as f64 / m,
        // Warps per SM: availability of threads to cover stalls.
        analysis.warps_per_sm / f64::from(cfg.max_warps_per_sm),
        // Memory intensity: memory instructions per executed instruction.
        m / analysis.executed.max(1) as f64,
        // MLP: loads in flight per dependence barrier.
        analysis.mlp,
        // Regime balance: which of the two costs dominates.
        if t_mem > 0.0 {
            (t_comp / t_mem).min(1.0)
        } else {
            1.0
        },
        if t_comp > 0.0 {
            (t_mem / t_comp).min(1.0)
        } else {
            1.0
        },
        // Per-wait DRAM fan-out: a wait batch completes at the *max* of
        // its parallel requests; the wider the fan-out, the more the
        // mean-based AMAT underestimates. (cfd/spmv-style divergent
        // gathers have large fan-out; md's serialized gathers do not.)
        {
            let offchip =
                (analysis.global_requests + analysis.tex_requests + analysis.const_requests) as f64;
            if offchip > 0.0 {
                let txs_per_access = analysis.l2_transactions as f64 / offchip;
                let p_dram = (analysis.dram.len() as f64 / offchip).min(1.0);
                (1.0 + analysis.mlp * txs_per_access * p_dram).ln()
            } else {
                0.0
            }
        },
    ]
}

/// One training observation.
#[derive(Debug, Clone)]
pub struct TrainingPoint {
    pub features: [f64; FEATURES],
    /// True overlap ratio `(T_comp + T_mem - T_measured) / T_mem`.
    pub ratio: f64,
    /// Cross-validation group (kernel identity): placements of the same
    /// kernel are held out together during feature selection.
    pub group: u64,
}

/// The trainable overlap model.
#[derive(Debug, Clone)]
pub struct ToverlapModel {
    model: Option<LinearModel>,
    /// Observed range of training ratios; predictions clamp to it — the
    /// model interpolates overlap regimes, it must not extrapolate past
    /// anything it has seen.
    ratio_range: (f64, f64),
    /// Training diagnostics (R^2), available after `fit`.
    pub r_squared: Option<f64>,
}

impl ToverlapModel {
    /// An untrained model; predictions fall back to a neutral default
    /// ratio, so an untrained predictor still produces usable output.
    pub fn untrained() -> Self {
        ToverlapModel {
            model: None,
            ratio_range: (0.0, 1.0),
            r_squared: None,
        }
    }

    /// Fit Eq. 11's coefficients from training observations.
    ///
    /// Coefficients come from forward-stepwise OLS with leave-one-out
    /// cross-validation: with tens of training placements and ten
    /// candidate features, plain least squares extrapolates wildly on
    /// unseen kernels; stepwise selection keeps only features that
    /// demonstrably generalize.
    pub fn fit(points: &[TrainingPoint]) -> Result<Self, HmsError> {
        if points.len() < FEATURES + 1 {
            return Err(HmsError::InvalidInput(format!(
                "need more than {FEATURES} training placements, got {}",
                points.len()
            )));
        }
        let rows: Vec<Vec<f64>> = points.iter().map(|p| p.features.to_vec()).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.ratio).collect();
        let groups: Vec<u64> = points.iter().map(|p| p.group).collect();
        // The regime-balance feature min(T_comp/T_mem, 1) is seeded in a
        // priori: overlap can hide at most the smaller of the two costs,
        // so its relationship to the ratio is structural. The MLP and
        // memory-intensity candidates then compete under leave-one-
        // kernel-out cross-validation; the per-space event ratios remain
        // in the vector for analysis and ablation, but a ~10-kernel
        // training set cannot identify their coefficients in a way that
        // transfers (leave-one-kernel-out experiments bear this out).
        let fit = hms_stats::regression::stepwise_fit_seeded(
            &rows,
            &ys,
            &groups,
            1e-9,
            &[STABLE_FEATURES[0]],
            &[STABLE_FEATURES[1], STABLE_FEATURES[2]],
            3,
        )?;
        let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Ok(ToverlapModel {
            model: Some(fit.model),
            ratio_range: (lo, hi),
            r_squared: Some(fit.r_squared),
        })
    }

    /// Whether `fit` has been run.
    pub fn is_trained(&self) -> bool {
        self.model.is_some()
    }

    /// Predict the overlap ratio for a target analysis.
    ///
    /// Positive overlap hides part of `T_mem` under computation (at most
    /// all of it); a *negative* ratio lets the trained model act as a
    /// bias correction when the analytic `T_comp + T_mem` underestimates
    /// a regime (e.g. queue-bound gather kernels) — the same role the
    /// paper assigns Eq. 11's empirical coefficients. Predictions clamp
    /// to the training ratio range intersected with `[-1, 1]`.
    pub fn ratio(&self, analysis: &TraceAnalysis, cfg: &GpuConfig, t_comp: f64, t_mem: f64) -> f64 {
        match &self.model {
            Some(m) => {
                let raw = m.predict(&features(analysis, cfg, t_comp, t_mem));
                let lo = self.ratio_range.0.clamp(-1.0, 1.0);
                let hi = self.ratio_range.1.clamp(lo, 1.0);
                raw.clamp(lo, hi)
            }
            // Untrained default: moderate overlap. Chosen so that the
            // ablation baseline still subtracts *something*, as Eq. 12
            // always applies.
            None => 0.5,
        }
    }

    /// The largest ratio [`Self::ratio`] can return for *any* analysis —
    /// the trained clamp ceiling, or the untrained default. The search
    /// engine's branch-and-bound lower bound relies on this:
    /// `T >= T_comp + (1 - max_ratio) x T_mem` for every candidate.
    pub fn max_ratio(&self) -> f64 {
        match &self.model {
            Some(_) => {
                let lo = self.ratio_range.0.clamp(-1.0, 1.0);
                self.ratio_range.1.clamp(lo, 1.0)
            }
            None => 0.5,
        }
    }

    /// Eq. 12: `T_overlap = ratio x T_mem`.
    pub fn t_overlap(
        &self,
        analysis: &TraceAnalysis,
        cfg: &GpuConfig,
        t_comp: f64,
        t_mem: f64,
    ) -> f64 {
        self.ratio(analysis, cfg, t_comp, t_mem) * t_mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use hms_kernels::{vecadd, Scale};
    use hms_trace::materialize;
    use hms_types::GpuConfig;

    fn an() -> (TraceAnalysis, GpuConfig) {
        let cfg = GpuConfig::test_small();
        let kt = vecadd::build(Scale::Test);
        let a = analyze(
            &materialize(&kt, &kt.default_placement(), &cfg).unwrap(),
            &cfg,
        );
        (a, cfg)
    }

    const TC: f64 = 100.0;
    const TM: f64 = 400.0;

    #[test]
    fn untrained_model_is_neutral() {
        let (a, cfg) = an();
        let m = ToverlapModel::untrained();
        assert!(!m.is_trained());
        assert_eq!(m.ratio(&a, &cfg, TC, TM), 0.5);
        assert_eq!(m.t_overlap(&a, &cfg, TC, 1000.0), 500.0);
    }

    #[test]
    fn regime_features_encode_balance() {
        let (a, cfg) = an();
        let f = features(&a, &cfg, 100.0, 400.0);
        assert!((f[8] - 0.25).abs() < 1e-12); // tc/tm
        assert!((f[9] - 1.0).abs() < 1e-12); // tm/tc clamped
        let g = features(&a, &cfg, 400.0, 100.0);
        assert!((g[8] - 1.0).abs() < 1e-12);
        assert!((g[9] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fit_recovers_planted_linear_ratio() {
        let (a, cfg) = an();
        // Plant a relation over the *selectable* features (see
        // STABLE_FEATURES): ratio = 0.2 + 0.3 f8 - 0.05 f7, varied by
        // sweeping the tc/tm balance and the analysis MLP.
        let mut points = Vec::new();
        for i in 0..40u64 {
            let tc = 50.0 + 10.0 * i as f64;
            let tm = 500.0;
            let mut a2 = a.clone();
            a2.mlp = 1.0 + (i % 5) as f64;
            let f = features(&a2, &cfg, tc, tm);
            let ratio = 0.2 + 0.3 * f[8] - 0.05 * f[7];
            points.push(TrainingPoint {
                features: f,
                ratio,
                group: i,
            });
        }
        let m = ToverlapModel::fit(&points).unwrap();
        assert!(m.is_trained());
        assert!(m.r_squared.unwrap() > 0.999, "r2 = {:?}", m.r_squared);
        // Probe at unseen tc/tm and MLP values inside the seen range.
        let mut a2 = a.clone();
        a2.mlp = 2.5;
        let tc = 123.0;
        let tm = 500.0;
        let f = features(&a2, &cfg, tc, tm);
        let want = 0.2 + 0.3 * f[8] - 0.05 * f[7];
        let got = m.ratio(&a2, &cfg, tc, tm);
        assert!((got - want).abs() < 1e-6, "got {got}, want {want}");
    }

    #[test]
    fn prediction_is_clamped() {
        let (a, cfg) = an();
        let points: Vec<TrainingPoint> = (0..20)
            .map(|i| {
                let mut f = features(&a, &cfg, TC, TM);
                f[0] += i as f64;
                TrainingPoint {
                    features: f,
                    ratio: 50.0 + i as f64,
                    group: i as u64,
                } // absurd ratios
            })
            .collect();
        let m = ToverlapModel::fit(&points).unwrap();
        let r = m.ratio(&a, &cfg, TC, TM);
        assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn too_few_points_is_an_error() {
        assert!(ToverlapModel::fit(&[]).is_err());
    }
}
