//! Trace analysis for a target placement (paper Section IV).
//!
//! "Our cache models take the processed memory trace as input, and then
//! output a new memory trace filtered by our cache models. The memory
//! requests in the new memory trace include the dynamic instruction IDs
//! that issue memory requests. The new memory trace is fed into the
//! T_mem model to count inter-arrival times and row buffer misses/hits
//! ... Our cache models also count disruptive memory events (e.g., the
//! cache miss and memory bank conflict). The statistics of those memory
//! events is fed into the T_comp model to estimate instruction replays
//! and into the T_overlap model."
//!
//! The analysis walks the (rewritten) target trace in the same
//! block-to-SM assignment and round-robin warp order the hardware
//! scheduler uses — but with **no timing**: only cache state, event
//! counters, and per-SM instruction positions. DRAM requests come out
//! stamped with their issuing SM's instruction index, the paper's proxy
//! for arrival time.
//!
//! Two implementations of the same walk live here:
//!
//! * [`analyze`] (and the observed variant the incremental engine
//!   records through) streams over a [`ColumnarTrace`] — the
//!   struct-of-arrays decomposition of the trace — so each op decode is
//!   a couple of column loads and each access hands the cache models a
//!   contiguous `&[u64]` address slice with zero per-op allocation;
//! * [`analyze_reference`] is the original per-op walk over
//!   [`CInstr`] structs, kept as the independent oracle the
//!   property/fuzz equivalence net compares against bit for bit.

use hms_cache::{ConstantCache, L2Cache, L2Source, SharedMemBanks, TextureCache};
use hms_sim::copy::{shared_init_prologue, shared_writeback_epilogue};
use hms_trace::{coalesce, CInstr, ColumnarTrace, ConcreteTrace, OpRange, OpView};
use hms_types::{GpuConfig, MemorySpace};

/// One predicted DRAM request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramRequest {
    /// Transaction-aligned byte address.
    pub addr: u64,
    /// Arrival proxy: the issuing SM's instruction position at issue,
    /// scaled to cycles by the caller (Section III-C3's
    /// instructions-between-requests approximation).
    pub position: u64,
    /// Issuing SM.
    pub sm: u32,
}

/// The filtered post-L2 request stream, stored struct-of-arrays so the
/// DRAM models ([`crate::tmem`], `hms-dram`) stream over contiguous
/// address/position columns instead of an array of structs.
///
/// Order is analysis order — the arrival proxy the T_mem model depends
/// on — and `PartialEq` is exact, like the rest of [`TraceAnalysis`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DramStream {
    addrs: Vec<u64>,
    positions: Vec<u64>,
    sms: Vec<u32>,
}

impl DramStream {
    #[inline]
    pub fn push(&mut self, r: DramRequest) {
        self.addrs.push(r.addr);
        self.positions.push(r.position);
        self.sms.push(r.sm);
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Requests in analysis order, decoded on the fly.
    pub fn iter(&self) -> impl Iterator<Item = DramRequest> + '_ {
        self.addrs
            .iter()
            .zip(&self.positions)
            .zip(&self.sms)
            .map(|((&addr, &position), &sm)| DramRequest { addr, position, sm })
    }

    pub fn clear(&mut self) {
        self.addrs.clear();
        self.positions.clear();
        self.sms.clear();
    }

    /// Transaction-aligned byte addresses, contiguous.
    #[inline]
    pub fn addrs(&self) -> &[u64] {
        &self.addrs
    }

    /// Arrival-proxy positions, contiguous and parallel to `addrs`.
    #[inline]
    pub fn positions(&self) -> &[u64] {
        &self.positions
    }

    /// Issuing SMs, contiguous and parallel to `addrs`.
    #[inline]
    pub fn sms(&self) -> &[u32] {
        &self.sms
    }
}

/// Event statistics and the filtered DRAM stream for one target trace.
///
/// `PartialEq` is exact (bit-level on the float fields): the incremental
/// search engine's self-check compares a composed analysis against the
/// direct `rewrite`+`analyze` result field for field.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceAnalysis {
    /// Executed instructions (replays excluded), addressing-mode
    /// expansion included, staging copies included.
    pub executed: u64,
    /// Warp-level memory instructions.
    pub mem_instrs: u64,
    /// Estimated replays by placement-dependent cause (1)–(4).
    pub replay_global_divergence: u64,
    pub replay_const_miss: u64,
    pub replay_const_divergence: u64,
    pub replay_shared_conflict: u64,
    /// Double-width issue slots (cause (5)); placement-invariant but
    /// counted for completeness.
    pub replay_double_width: u64,

    /// Per-space warp-level requests.
    pub global_requests: u64,
    pub global_transactions: u64,
    pub tex_requests: u64,
    pub tex_transactions: u64,
    pub tex_misses: u64,
    pub const_requests: u64,
    pub const_transactions: u64,
    pub const_misses: u64,
    pub shared_requests: u64,
    pub local_requests: u64,
    pub l1_local_misses: u64,
    /// (7) L1 misses on local accesses + (9) local address divergence —
    /// placement-invariant, counted for event completeness.
    pub replay_local: u64,

    pub l2_transactions: u64,
    pub l2_misses: u64,
    /// Dirty L2 write-backs (store traffic returning to DRAM).
    pub l2_writebacks: u64,

    pub sync_count: u64,

    /// The filtered post-L2 request stream, in analysis order.
    pub dram: DramStream,

    /// Loads issued per `WaitLoads` barrier, averaged — the MLP estimate
    /// of Eq. 18.
    pub mlp: f64,
    /// Dependence-wait events (a `WaitLoads` with loads outstanding),
    /// totalled over all warps: the number of memory stalls each warp
    /// chain serializes on.
    pub wait_events: u64,

    /// Resident warps per SM under this kernel's occupancy.
    pub warps_per_sm: f64,
    /// SMs with at least one block.
    pub active_sms: u32,
    /// Total warps launched.
    pub total_warps: u64,
    /// Sequential waves of concurrent blocks needed to drain the grid
    /// (`ceil(blocks / (active_sms x blocks_per_sm))`).
    pub waves: u32,
}

impl TraceAnalysis {
    /// Placement-dependent replays, causes (1)–(4) (Eq. 3's
    /// `inst_replay_target_1-4`).
    pub fn replays_1_to_4(&self) -> u64 {
        self.replay_global_divergence
            + self.replay_const_miss
            + self.replay_const_divergence
            + self.replay_shared_conflict
    }

    /// Memory-dependence stalls per warp — the length of the serialized
    /// wait chain each warp runs through.
    pub fn waits_per_warp(&self) -> f64 {
        self.wait_events as f64 / self.total_warps.max(1) as f64
    }
}

/// Analysis options.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisOptions {
    /// Include the shared-memory staging prologue/epilogue copies
    /// (Section III-B's initialization phase). The full model includes
    /// them; the PORPLE-style baseline does not — that omission is one
    /// of its Figure 6 blind spots.
    pub include_staging: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            include_staging: true,
        }
    }
}

/// A walk event, emitted in exact walk order to a [`WalkObserver`].
///
/// The incremental search engine ([`crate::engine`]) records these while
/// analyzing one canonical placement per shared-memory set and replays
/// them to compose other candidates' analyses without re-walking the
/// trace. The event split mirrors what is placement-dependent:
/// `Advance` covers every issue slot whose count cannot change between
/// candidates sharing the walk (ALU runs, syncs, local and staging
/// instructions), `AddrCalc` and `Access` cover the parts that can.
#[derive(Debug)]
pub(crate) enum WalkEvent<'a> {
    /// `n` placement-invariant issue slots retired on `sm`.
    Advance { sm: usize, n: u64 },
    /// Addressing-mode expansion site for `array` (`count` references).
    AddrCalc {
        sm: usize,
        array: hms_types::ArrayId,
        count: u16,
    },
    /// A warp memory access, decoded from the columnar trace. `addrs`
    /// is the dense active-lane address slice; `body_idx` is the
    /// instruction's index in the warp's body stream, or `None` for
    /// staging prologue/epilogue copies. Emitted *before* the access's
    /// cache probes.
    Access {
        sm: usize,
        block: u32,
        warp: u32,
        body_idx: Option<usize>,
        array: hms_types::ArrayId,
        space: MemorySpace,
        is_store: bool,
        elem_bytes: u8,
        addrs: &'a [u64],
    },
    /// An L1-missed local transaction continuing to L2 (the L1 outcome
    /// is walk-internal state the observer cannot recompute).
    LocalFill {
        sm: usize,
        addr: u64,
        is_store: bool,
    },
}

/// Observer of the analysis walk; see [`WalkEvent`].
pub(crate) trait WalkObserver {
    fn event(&mut self, ev: WalkEvent<'_>);
}

/// The default no-op observer; monomorphizes away entirely.
pub(crate) struct NoObserver;

impl WalkObserver for NoObserver {
    #[inline(always)]
    fn event(&mut self, _ev: WalkEvent<'_>) {}
}

/// Analyze `trace` (already materialized/rewritten for the target
/// placement) through the cache models.
pub fn analyze(trace: &ConcreteTrace, cfg: &GpuConfig) -> TraceAnalysis {
    analyze_with(trace, cfg, AnalysisOptions::default())
}

/// [`analyze`] with explicit options.
pub fn analyze_with(
    trace: &ConcreteTrace,
    cfg: &GpuConfig,
    opts: AnalysisOptions,
) -> TraceAnalysis {
    analyze_observed(trace, cfg, opts, &mut NoObserver)
}

/// Shared occupancy/wave math of both walk implementations.
struct WalkShape {
    num_sms: usize,
    blocks: usize,
    blocks_per_sm: usize,
    wave_span: usize,
    waves: usize,
}

fn walk_shape(trace: &ConcreteTrace, cfg: &GpuConfig, out: &mut TraceAnalysis) -> WalkShape {
    let num_sms = cfg.num_sms as usize;
    let blocks = trace.geometry.grid_blocks as usize;

    // Occupancy mirrors the simulator's limits.
    let wpb = trace.geometry.warps_per_block().max(1);
    let by_warps = (cfg.max_warps_per_sm / wpb).max(1) as usize;
    let by_blocks = cfg.max_blocks_per_sm as usize;
    let shared_per_block = trace.alloc.shared_bytes_per_block();
    let by_shared = cfg
        .shared_mem_bytes_per_sm
        .checked_div(shared_per_block)
        .map_or(usize::MAX, |b| (b as usize).max(1));
    let blocks_per_sm = by_warps.min(by_blocks).min(by_shared);
    out.active_sms = num_sms.min(blocks).max(1) as u32;
    out.warps_per_sm =
        f64::from(wpb) * (blocks_per_sm.min(blocks.div_ceil(out.active_sms as usize))) as f64;
    out.total_warps = trace.geometry.total_warps();

    // Waves of concurrent blocks: wave w puts block (w*SMs*K + sm*K + k)
    // on SM `sm` — the same greedy fill the simulator starts with.
    let wave_span = num_sms * blocks_per_sm;
    let waves = blocks.div_ceil(wave_span.max(1));
    out.waves = waves.max(1) as u32;
    WalkShape {
        num_sms,
        blocks,
        blocks_per_sm,
        wave_span,
        waves,
    }
}

/// Per-warp cursor over the columnar op buffers: `pro` is the appended
/// staging prologue+epilogue range, `body` the warp's own ops.
struct ColCursor {
    pro: OpRange,
    body: OpRange,
    pc: u32,
    total: u32,
    outstanding: u32,
    loads_since_wait: u32,
    block: u32,
    warp: u32,
}

impl ColCursor {
    #[inline]
    fn op_index(&self, pc: u32) -> u32 {
        if pc < self.pro.len {
            self.pro.start + pc
        } else {
            self.body.start + (pc - self.pro.len)
        }
    }
}

/// [`analyze_with`] that also streams [`WalkEvent`]s to `obs` in exact
/// walk order — the recording entry point of the incremental engine.
///
/// This is the columnar walk: the trace is decomposed once into a
/// [`ColumnarTrace`] (staging copies appended into the same arenas) and
/// the round-robin scheduler loop then decodes ops from flat columns,
/// handing the cache models contiguous address slices.
pub(crate) fn analyze_observed(
    trace: &ConcreteTrace,
    cfg: &GpuConfig,
    opts: AnalysisOptions,
    obs: &mut impl WalkObserver,
) -> TraceAnalysis {
    let mut out = TraceAnalysis::default();
    let shape = walk_shape(trace, cfg, &mut out);
    let num_sms = shape.num_sms;

    let mut col = ColumnarTrace::from_concrete(trace);

    // Group warps (by index into `col.warps()`) per block.
    let mut block_warps: Vec<Vec<usize>> = vec![Vec::new(); shape.blocks];
    for (i, w) in trace.warps.iter().enumerate() {
        block_warps[w.block as usize].push(i);
    }

    // Shared device structures.
    let mut l2 = L2Cache::new(cfg.l2_cache);
    // Per-SM structures.
    let mut const_caches: Vec<ConstantCache> = (0..num_sms)
        .map(|_| ConstantCache::new(cfg.const_cache))
        .collect();
    let mut tex_caches: Vec<TextureCache> = (0..num_sms)
        .map(|_| TextureCache::new(cfg.tex_cache))
        .collect();
    let mut shared_banks: Vec<SharedMemBanks> = (0..num_sms)
        .map(|_| SharedMemBanks::new(cfg.shared_banks))
        .collect();
    let mut l1_caches: Vec<hms_cache::SetAssocCache> = (0..num_sms)
        .map(|_| hms_cache::SetAssocCache::new(cfg.l1_cache))
        .collect();
    let mut sm_pos = vec![0u64; num_sms];

    let mut wait_count: u64 = 0;
    let mut loads_total: u64 = 0;
    // Reused local-address scratch: cleared per local op, never freed.
    let mut local_scratch: Vec<u64> = Vec::new();

    for wave in 0..shape.waves {
        // Collect this wave's warp cursors per SM, appending each
        // warp's staging copies into the columnar arenas first.
        let mut per_sm: Vec<Vec<ColCursor>> = (0..num_sms).map(|_| Vec::new()).collect();
        for k in 0..shape.blocks_per_sm {
            for sm in 0..num_sms {
                let b = wave * shape.wave_span + k * num_sms + sm;
                if b >= shape.blocks {
                    continue;
                }
                for &wi in &block_warps[b] {
                    let w = col.warps()[wi];
                    let pro = if opts.include_staging {
                        let mut v = shared_init_prologue(trace, w.block, w.warp, cfg);
                        v.extend(shared_writeback_epilogue(trace, w.block, w.warp, cfg));
                        // The prologue runs before the body; the
                        // epilogue order relative to the body does not
                        // affect counting, so the concatenation keeps
                        // the walk simple.
                        col.push_ops(&v)
                    } else {
                        OpRange { start: 0, len: 0 }
                    };
                    let body = col.warps()[wi].ops;
                    per_sm[sm].push(ColCursor {
                        pro,
                        body,
                        pc: 0,
                        total: pro.len + body.len,
                        outstanding: 0,
                        loads_since_wait: 0,
                        block: w.block,
                        warp: w.warp,
                    });
                }
            }
        }
        // Round-robin walk: one instruction per live warp per round,
        // SMs interleaved — approximating the scheduler's order without
        // timing.
        let mut live = per_sm
            .iter()
            .flat_map(|v| v.iter())
            .filter(|c| c.total > 0)
            .count();
        while live > 0 {
            for sm in 0..num_sms {
                for wi in 0..per_sm[sm].len() {
                    let cur = &mut per_sm[sm][wi];
                    if cur.pc >= cur.total {
                        continue;
                    }
                    let pc0 = cur.pc;
                    let op = col.op(cur.op_index(pc0));
                    cur.pc += 1;
                    if cur.pc == cur.total {
                        live -= 1;
                    }
                    match op {
                        OpView::WaitLoads => {
                            if cur.outstanding > 0 {
                                wait_count += 1;
                                loads_total += u64::from(cur.loads_since_wait);
                                cur.outstanding = 0;
                                cur.loads_since_wait = 0;
                            }
                        }
                        OpView::SyncThreads => {
                            out.sync_count += 1;
                            out.executed += 1;
                            sm_pos[sm] += 1;
                            obs.event(WalkEvent::Advance { sm, n: 1 });
                        }
                        OpView::Alu { kind, count } => {
                            let n = u64::from(count);
                            out.executed += n;
                            sm_pos[sm] += n;
                            if matches!(kind, hms_trace::concrete::AluKind::Fp64) {
                                out.replay_double_width += n;
                            }
                            obs.event(WalkEvent::Advance { sm, n });
                        }
                        OpView::AddrCalc { array, count } => {
                            let n = trace.addr_calc_expansion(array, count);
                            out.executed += n;
                            sm_pos[sm] += n;
                            obs.event(WalkEvent::AddrCalc { sm, array, count });
                        }
                        OpView::Local { is_store, slots } => {
                            out.executed += 1;
                            out.mem_instrs += 1;
                            out.local_requests += 1;
                            sm_pos[sm] += 1;
                            obs.event(WalkEvent::Advance { sm, n: 1 });
                            if !is_store {
                                cur.outstanding += 1;
                                cur.loads_since_wait += 1;
                            }
                            let g = &trace.geometry;
                            let total_threads = g.total_threads();
                            let (cb, cw) = (cur.block, cur.warp);
                            local_scratch.clear();
                            local_scratch.extend(slots.iter().enumerate().filter_map(
                                |(lane, &slot)| {
                                    g.thread_id(cb, cw, lane as u32).map(|tid| {
                                        hms_trace::concrete::local_addr(slot, tid, total_threads)
                                    })
                                },
                            ));
                            if local_scratch.is_empty() {
                                continue;
                            }
                            let co =
                                coalesce(local_scratch.iter().copied(), 4, cfg.transaction_bytes);
                            out.replay_local += u64::from(co.replays);
                            for t in &co.transactions {
                                if !l1_caches[sm].access_rw(*t, is_store).is_hit() {
                                    out.l1_local_misses += 1;
                                    out.replay_local += 1;
                                    obs.event(WalkEvent::LocalFill {
                                        sm,
                                        addr: *t,
                                        is_store,
                                    });
                                    l2_fill(
                                        &mut l2,
                                        &mut out,
                                        *t,
                                        L2Source::Global,
                                        sm_pos[sm],
                                        sm as u32,
                                        is_store,
                                    );
                                }
                            }
                        }
                        OpView::Mem {
                            array,
                            space,
                            is_store,
                            elem_bytes,
                            addrs,
                            ..
                        } => {
                            out.executed += 1;
                            out.mem_instrs += 1;
                            sm_pos[sm] += 1;
                            obs.event(WalkEvent::Access {
                                sm,
                                block: cur.block,
                                warp: cur.warp,
                                body_idx: pc0.checked_sub(cur.pro.len).map(|i| i as usize),
                                array,
                                space,
                                is_store,
                                elem_bytes,
                                addrs,
                            });
                            if !is_store {
                                cur.outstanding += 1;
                                cur.loads_since_wait += 1;
                            }
                            if addrs.is_empty() {
                                continue;
                            }
                            match space {
                                MemorySpace::Shared => {
                                    out.shared_requests += 1;
                                    let r = shared_banks[sm].access_warp(addrs);
                                    out.replay_shared_conflict += u64::from(r);
                                }
                                MemorySpace::Constant => {
                                    let r = const_caches[sm].access_warp(addrs);
                                    out.const_requests += 1;
                                    out.const_transactions += u64::from(r.transactions);
                                    out.const_misses += u64::from(r.misses);
                                    out.replay_const_divergence += u64::from(r.transactions - 1);
                                    out.replay_const_miss += u64::from(r.misses);
                                    for line in &r.missed_lines {
                                        l2_fill(
                                            &mut l2,
                                            &mut out,
                                            *line,
                                            L2Source::Constant,
                                            sm_pos[sm],
                                            sm as u32,
                                            false,
                                        );
                                    }
                                }
                                MemorySpace::Texture1D | MemorySpace::Texture2D => {
                                    let r = tex_caches[sm].access_warp(addrs);
                                    out.tex_requests += 1;
                                    out.tex_transactions += u64::from(r.transactions);
                                    out.tex_misses += u64::from(r.misses);
                                    for line in &r.missed_lines {
                                        l2_fill(
                                            &mut l2,
                                            &mut out,
                                            *line,
                                            L2Source::Texture,
                                            sm_pos[sm],
                                            sm as u32,
                                            false,
                                        );
                                    }
                                }
                                MemorySpace::Global => {
                                    let co = coalesce(
                                        addrs.iter().copied(),
                                        u64::from(elem_bytes),
                                        cfg.transaction_bytes,
                                    );
                                    out.global_requests += 1;
                                    out.global_transactions += co.transactions.len() as u64;
                                    out.replay_global_divergence += u64::from(co.replays);
                                    for t in &co.transactions {
                                        l2_fill(
                                            &mut l2,
                                            &mut out,
                                            *t,
                                            L2Source::Global,
                                            sm_pos[sm],
                                            sm as u32,
                                            is_store,
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out.l2_transactions = l2.transactions();
    out.l2_misses = l2.misses();
    out.l2_writebacks = l2.writebacks();
    out.wait_events = wait_count;
    out.mlp = if wait_count == 0 {
        1.0
    } else {
        (loads_total as f64 / wait_count as f64).max(1.0)
    };
    out
}

/// Per-warp cursor state during the reference (per-op) analysis walk.
struct Cursor<'t> {
    instrs: Vec<CInstr>,
    body: &'t [CInstr],
    pc: usize,
    outstanding: u32,
    loads_since_wait: u32,
    block: u32,
    warp: u32,
}

impl<'t> Cursor<'t> {
    fn get(&self, pc: usize) -> Option<&CInstr> {
        let p = self.instrs.len();
        if pc < p {
            self.instrs.get(pc)
        } else {
            self.body.get(pc - p)
        }
    }
}

/// [`analyze`] via the original per-op (`CInstr`-chasing) walk.
///
/// Kept as the independent oracle of the equivalence net: the columnar
/// walk must reproduce this result bit for bit on every trace
/// (`tests/trace_properties.rs` fuzzes the pair; `trace_analysis` unit
/// tests pin it on the registry kernels).
pub fn analyze_reference(trace: &ConcreteTrace, cfg: &GpuConfig) -> TraceAnalysis {
    analyze_reference_with(trace, cfg, AnalysisOptions::default())
}

/// [`analyze_reference`] with explicit options.
pub fn analyze_reference_with(
    trace: &ConcreteTrace,
    cfg: &GpuConfig,
    opts: AnalysisOptions,
) -> TraceAnalysis {
    let mut out = TraceAnalysis::default();
    let shape = walk_shape(trace, cfg, &mut out);
    let num_sms = shape.num_sms;

    // Group warps by block.
    let mut block_warps: Vec<Vec<&hms_trace::ConcreteWarp>> = vec![Vec::new(); shape.blocks];
    for w in &trace.warps {
        block_warps[w.block as usize].push(w);
    }

    // Shared device structures.
    let mut l2 = L2Cache::new(cfg.l2_cache);
    // Per-SM structures.
    let mut const_caches: Vec<ConstantCache> = (0..num_sms)
        .map(|_| ConstantCache::new(cfg.const_cache))
        .collect();
    let mut tex_caches: Vec<TextureCache> = (0..num_sms)
        .map(|_| TextureCache::new(cfg.tex_cache))
        .collect();
    let mut shared_banks: Vec<SharedMemBanks> = (0..num_sms)
        .map(|_| SharedMemBanks::new(cfg.shared_banks))
        .collect();
    let mut l1_caches: Vec<hms_cache::SetAssocCache> = (0..num_sms)
        .map(|_| hms_cache::SetAssocCache::new(cfg.l1_cache))
        .collect();
    let mut sm_pos = vec![0u64; num_sms];

    let mut wait_count: u64 = 0;
    let mut loads_total: u64 = 0;

    for wave in 0..shape.waves {
        // Collect this wave's warp cursors per SM.
        let mut per_sm: Vec<Vec<Cursor>> = (0..num_sms).map(|_| Vec::new()).collect();
        for k in 0..shape.blocks_per_sm {
            for sm in 0..num_sms {
                let b = wave * shape.wave_span + k * num_sms + sm;
                if b >= shape.blocks {
                    continue;
                }
                for w in &block_warps[b] {
                    let instrs = if opts.include_staging {
                        let mut v = shared_init_prologue(trace, w.block, w.warp, cfg);
                        v.extend(shared_writeback_epilogue(trace, w.block, w.warp, cfg));
                        v
                    } else {
                        Vec::new()
                    };
                    // Prologue runs before the body; the epilogue order
                    // relative to the body does not affect counting, so
                    // the concatenation keeps the walk simple.
                    per_sm[sm].push(Cursor {
                        instrs,
                        body: &w.instrs,
                        pc: 0,
                        outstanding: 0,
                        loads_since_wait: 0,
                        block: w.block,
                        warp: w.warp,
                    });
                }
            }
        }
        // Round-robin walk: one instruction per live warp per round,
        // SMs interleaved — approximating the scheduler's order without
        // timing.
        let mut live = per_sm
            .iter()
            .flat_map(|v| v.iter())
            .filter(|c| c.get(0).is_some())
            .count();
        while live > 0 {
            for sm in 0..num_sms {
                for wi in 0..per_sm[sm].len() {
                    let cur = &mut per_sm[sm][wi];
                    let Some(instr) = cur.get(cur.pc) else {
                        continue;
                    };
                    let instr = instr.clone();
                    cur.pc += 1;
                    if cur.get(cur.pc).is_none() {
                        live -= 1;
                    }
                    match &instr {
                        CInstr::WaitLoads => {
                            if cur.outstanding > 0 {
                                wait_count += 1;
                                loads_total += u64::from(cur.loads_since_wait);
                                cur.outstanding = 0;
                                cur.loads_since_wait = 0;
                            }
                        }
                        CInstr::SyncThreads => {
                            out.sync_count += 1;
                            out.executed += 1;
                            sm_pos[sm] += 1;
                        }
                        CInstr::Alu { kind, count } => {
                            let n = u64::from(*count);
                            out.executed += n;
                            sm_pos[sm] += n;
                            if matches!(kind, hms_trace::concrete::AluKind::Fp64) {
                                out.replay_double_width += n;
                            }
                        }
                        CInstr::AddrCalc { array, count } => {
                            let n = trace.addr_calc_expansion(*array, *count);
                            out.executed += n;
                            sm_pos[sm] += n;
                        }
                        CInstr::Local { is_store, slots } => {
                            out.executed += 1;
                            out.mem_instrs += 1;
                            out.local_requests += 1;
                            sm_pos[sm] += 1;
                            if !is_store {
                                cur.outstanding += 1;
                                cur.loads_since_wait += 1;
                            }
                            let g = &trace.geometry;
                            let total_threads = g.total_threads();
                            let (cb, cw) = (cur.block, cur.warp);
                            let addrs: Vec<u64> = slots
                                .iter()
                                .enumerate()
                                .filter_map(|(lane, &slot)| {
                                    g.thread_id(cb, cw, lane as u32).map(|tid| {
                                        hms_trace::concrete::local_addr(slot, tid, total_threads)
                                    })
                                })
                                .collect();
                            if addrs.is_empty() {
                                continue;
                            }
                            let co = coalesce(addrs.iter().copied(), 4, cfg.transaction_bytes);
                            out.replay_local += u64::from(co.replays);
                            for t in &co.transactions {
                                if !l1_caches[sm].access_rw(*t, *is_store).is_hit() {
                                    out.l1_local_misses += 1;
                                    out.replay_local += 1;
                                    l2_fill(
                                        &mut l2,
                                        &mut out,
                                        *t,
                                        L2Source::Global,
                                        sm_pos[sm],
                                        sm as u32,
                                        *is_store,
                                    );
                                }
                            }
                        }
                        CInstr::Mem(m) => {
                            out.executed += 1;
                            out.mem_instrs += 1;
                            sm_pos[sm] += 1;
                            if !m.is_store {
                                cur.outstanding += 1;
                                cur.loads_since_wait += 1;
                            }
                            let lane_addrs: Vec<u64> = m.active_addrs().collect();
                            if lane_addrs.is_empty() {
                                continue;
                            }
                            match m.space {
                                MemorySpace::Shared => {
                                    out.shared_requests += 1;
                                    let r = shared_banks[sm].access_warp(&lane_addrs);
                                    out.replay_shared_conflict += u64::from(r);
                                }
                                MemorySpace::Constant => {
                                    let r = const_caches[sm].access_warp(&lane_addrs);
                                    out.const_requests += 1;
                                    out.const_transactions += u64::from(r.transactions);
                                    out.const_misses += u64::from(r.misses);
                                    out.replay_const_divergence += u64::from(r.transactions - 1);
                                    out.replay_const_miss += u64::from(r.misses);
                                    for line in &r.missed_lines {
                                        l2_fill(
                                            &mut l2,
                                            &mut out,
                                            *line,
                                            L2Source::Constant,
                                            sm_pos[sm],
                                            sm as u32,
                                            false,
                                        );
                                    }
                                }
                                MemorySpace::Texture1D | MemorySpace::Texture2D => {
                                    let r = tex_caches[sm].access_warp(&lane_addrs);
                                    out.tex_requests += 1;
                                    out.tex_transactions += u64::from(r.transactions);
                                    out.tex_misses += u64::from(r.misses);
                                    for line in &r.missed_lines {
                                        l2_fill(
                                            &mut l2,
                                            &mut out,
                                            *line,
                                            L2Source::Texture,
                                            sm_pos[sm],
                                            sm as u32,
                                            false,
                                        );
                                    }
                                }
                                MemorySpace::Global => {
                                    let co = coalesce(
                                        lane_addrs.iter().copied(),
                                        u64::from(m.elem_bytes),
                                        cfg.transaction_bytes,
                                    );
                                    out.global_requests += 1;
                                    out.global_transactions += co.transactions.len() as u64;
                                    out.replay_global_divergence += u64::from(co.replays);
                                    for t in &co.transactions {
                                        l2_fill(
                                            &mut l2,
                                            &mut out,
                                            *t,
                                            L2Source::Global,
                                            sm_pos[sm],
                                            sm as u32,
                                            m.is_store,
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out.l2_transactions = l2.transactions();
    out.l2_misses = l2.misses();
    out.l2_writebacks = l2.writebacks();
    out.wait_events = wait_count;
    out.mlp = if wait_count == 0 {
        1.0
    } else {
        (loads_total as f64 / wait_count as f64).max(1.0)
    };
    out
}

/// Probe L2 and record a DRAM request on miss — shared by the walk and
/// the incremental engine's replay so both paths fill `out.dram`
/// identically.
#[allow(clippy::too_many_arguments)]
pub(crate) fn l2_fill(
    l2: &mut L2Cache,
    out: &mut TraceAnalysis,
    addr: u64,
    source: L2Source,
    position: u64,
    sm: u32,
    write: bool,
) {
    if !l2.access_rw(addr, source, write).is_hit() {
        out.dram.push(DramRequest { addr, position, sm });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hms_kernels::{convolution, registry, vecadd, Scale};
    use hms_trace::materialize;
    use hms_types::{ArrayId, PlacementMap};

    fn cfg() -> GpuConfig {
        GpuConfig::test_small()
    }

    #[test]
    fn analysis_counts_match_simulator_for_vecadd() {
        // The analysis reuses the simulator's cache models and walk
        // order, so its counts should be very close to the simulated
        // events (identical for this regular kernel).
        let cfg = cfg();
        let kt = vecadd::build(Scale::Test);
        let ct = materialize(&kt, &kt.default_placement(), &cfg).unwrap();
        let a = analyze(&ct, &cfg);
        let s = hms_sim::simulate_default(&ct, &cfg).unwrap();
        assert_eq!(a.executed, s.events.inst_executed);
        assert_eq!(a.global_transactions, s.events.global_transactions);
        assert_eq!(a.replays_1_to_4(), s.events.replays_1_to_4());
        assert_eq!(a.l2_transactions, s.events.l2_transactions);
        assert_eq!(a.mem_instrs, s.events.ldst_executed);
    }

    #[test]
    fn columnar_walk_matches_reference_walk_registry_wide() {
        // The bit-identity contract between the two implementations,
        // pinned on every registry kernel under several placements
        // (the fuzz net in tests/trace_properties.rs covers random
        // kernels).
        let cfg = cfg();
        for spec in registry() {
            let kt = (spec.build)(Scale::Test);
            let base = kt.default_placement();
            let spaces = [
                base.clone(),
                base.with(ArrayId(0), hms_types::MemorySpace::Shared),
            ];
            for pm in &spaces {
                if pm.validate(&kt.arrays, &cfg).is_err() {
                    continue;
                }
                let ct = materialize(&kt, pm, &cfg).unwrap();
                for opts in [
                    AnalysisOptions {
                        include_staging: true,
                    },
                    AnalysisOptions {
                        include_staging: false,
                    },
                ] {
                    let fast = analyze_with(&ct, &cfg, opts);
                    let slow = analyze_reference_with(&ct, &cfg, opts);
                    assert_eq!(fast, slow, "{}: columnar walk diverged", spec.name);
                }
            }
        }
    }

    #[test]
    fn constant_placement_changes_replay_estimate() {
        let cfg = cfg();
        let kt = convolution::build_rows(Scale::Test);
        let g = materialize(&kt, &kt.default_placement(), &cfg).unwrap();
        let c = materialize(
            &kt,
            &kt.default_placement()
                .with(ArrayId(1), hms_types::MemorySpace::Constant),
            &cfg,
        )
        .unwrap();
        let ag = analyze(&g, &cfg);
        let ac = analyze(&c, &cfg);
        assert_eq!(ag.const_requests, 0);
        assert!(ac.const_requests > 0);
        // Uniform coefficient reads: no divergence replays in constant.
        assert_eq!(ac.replay_const_divergence, 0);
        // Global requests drop when the kernel array moves out.
        assert!(ac.global_requests < ag.global_requests);
    }

    #[test]
    fn dram_positions_are_monotone_per_sm() {
        let cfg = cfg();
        let kt = vecadd::build(Scale::Test);
        let ct = materialize(&kt, &kt.default_placement(), &cfg).unwrap();
        let a = analyze(&ct, &cfg);
        assert!(!a.dram.is_empty());
        let mut last = vec![0u64; cfg.num_sms as usize];
        for r in a.dram.iter() {
            assert!(r.position >= last[r.sm as usize]);
            last[r.sm as usize] = r.position;
        }
    }

    #[test]
    fn dram_stream_columns_stay_parallel() {
        let cfg = cfg();
        let kt = vecadd::build(Scale::Test);
        let ct = materialize(&kt, &kt.default_placement(), &cfg).unwrap();
        let a = analyze(&ct, &cfg);
        assert_eq!(a.dram.addrs().len(), a.dram.len());
        assert_eq!(a.dram.positions().len(), a.dram.len());
        assert_eq!(a.dram.sms().len(), a.dram.len());
        for (i, r) in a.dram.iter().enumerate() {
            assert_eq!(r.addr, a.dram.addrs()[i]);
            assert_eq!(r.position, a.dram.positions()[i]);
            assert_eq!(r.sm, a.dram.sms()[i]);
        }
    }

    #[test]
    fn mlp_reflects_load_batching() {
        let cfg = cfg();
        // vecadd issues 2 loads before each wait.
        let kt = vecadd::build(Scale::Test);
        let ct = materialize(&kt, &kt.default_placement(), &cfg).unwrap();
        let a = analyze(&ct, &cfg);
        assert!((a.mlp - 2.0).abs() < 1e-9);
    }

    #[test]
    fn shared_placement_adds_staging_traffic() {
        let cfg = cfg();
        let kt = vecadd::build(Scale::Test);
        let pm: PlacementMap = kt
            .default_placement()
            .with(ArrayId(0), hms_types::MemorySpace::Shared);
        let g = analyze(
            &materialize(&kt, &kt.default_placement(), &cfg).unwrap(),
            &cfg,
        );
        let s = analyze(&materialize(&kt, &pm, &cfg).unwrap(), &cfg);
        assert!(s.shared_requests > 0);
        assert!(s.sync_count > g.sync_count);
        assert!(s.executed > g.executed, "staging copies add instructions");
    }
}
