//! # hms-core
//!
//! The paper's contribution: performance models that, given one profiled
//! *sample* data placement of a GPU kernel, predict the execution time of
//! any *target* placement over the heterogeneous memory system — without
//! implementing or running the target.
//!
//! The prediction (Eq. 1) decomposes into
//!
//! ```text
//! T = T_comp + T_mem − T_overlap
//! ```
//!
//! * [`profile`] — profiling a sample placement (trace + events + time);
//! * [`analysis`] — cache-model-driven trace analysis of a rewritten
//!   target trace (paper Section IV): executed-instruction counts with
//!   addressing-mode expansion, replay causes (1)–(4), per-space memory
//!   events, and the stamped DRAM request stream;
//! * [`tcomp`] — Eq. 2/3 and Appendix Eq. 13–16;
//! * [`tmem`] — Eq. 4–10 and Appendix Eq. 17–19, including the per-bank
//!   G/G/1 queuing model with Kingman's approximation and the address-
//!   mapping-aware request distribution;
//! * [`toverlap`] — the trainable linear model of Eq. 11–12;
//! * [`predictor`] — the full pipeline plus the ablation presets used in
//!   Figures 7–9;
//! * [`baselines`] — the comparison models: a Sim-et-al.-style [7]
//!   MWP/CWP model with constant DRAM latency and executed-instruction
//!   counts, and a PORPLE-style latency-oriented ranking model;
//! * [`search`] — legal-placement enumeration and model-driven ranking;
//! * [`strategies`] — anytime approximate search (beam, successive
//!   halving, seeded local search) with sound reported optimality gaps.

pub mod analysis;
pub mod baselines;
pub mod engine;
pub mod predictor;
pub mod profile;
pub mod search;
pub mod sensitivity;
pub mod skelcache;
pub mod strategies;
pub mod tcomp;
pub mod tmem;
pub mod toverlap;

pub use analysis::{analyze, TraceAnalysis};
pub use baselines::{PorpleModel, SimKimModel};
pub use engine::{Engine, EngineStats};
pub use predictor::{ModelOptions, Prediction, Predictor, QueuingMode};
pub use profile::{profile_sample, Profile};
pub use search::{
    enumerate_placements, rank_placements, rank_placements_naive, search, RankedPlacement,
    SearchOutcome, SearchRequest, SearchStrategy,
};
#[allow(deprecated)]
pub use search::{exhaustive_search, rank_placements_threads};
pub use sensitivity::{stability, sweep, Knob, SensitivityReport};
pub use skelcache::{CacheFs, RealFs};
pub use toverlap::ToverlapModel;
