//! Deterministic seeded genetic local search.
//!
//! A small generational GA over placement genomes: each candidate
//! array's gene is an index into its standalone-legal space list. The
//! population starts from the base placement plus random genomes,
//! children come from uniform crossover of elite parents plus per-locus
//! mutation, and a few random immigrants per generation keep the pool
//! from collapsing.
//!
//! **The seed is the whole story.** Every stochastic choice draws from
//! one `hms_stats::rng::Rng` stream seeded by the request, and the
//! draws are consumed in an order that depends only on evaluation
//! *results* — which are themselves bit-identical at any worker count —
//! never on scheduling. So the entire outcome (population trajectory,
//! rankings, gap) is a pure function of `(request, seed)`, replayable
//! like the fault plans: `--threads 1`, `2`, and `8` produce the same
//! bytes.
//!
//! A stochastic search proves nothing about the space it never
//! visited, so the reported gap floor is the all-free lower bound —
//! honest, and typically the widest of the three strategies.

use std::collections::BTreeSet;
use std::time::Instant;

use hms_types::{MemorySpace, PlacementMap};

use crate::engine::Engine;
use crate::search::{RankedPlacement, SearchRequest, BB_BATCH};

use super::{all_free_floor, gap_from_floor};

const POP: usize = 24;
const GENERATIONS: usize = 16;
const ELITE: usize = 6;
const IMMIGRANTS: usize = 4;

pub(crate) fn run(
    engine: &Engine<'_>,
    req: &SearchRequest<'_>,
    seed: u64,
) -> Result<(Vec<RankedPlacement>, bool, f64), hms_types::HmsError> {
    let t0 = Instant::now();
    let c = &engine.counters;
    let cfg = &engine.predictor().cfg;
    let mut rng = hms_stats::rng::Rng::seed_from_u64(seed);

    // Per-candidate gene alphabets. An array with no standalone-legal
    // space admits no legal placement at all; pinning its lone gene to
    // the base space keeps the genome total.
    let spaces: Vec<Vec<MemorySpace>> = req
        .candidates
        .iter()
        .map(|&id| {
            let legal = engine.legal_spaces(id);
            if legal.is_empty() {
                vec![req.base.space(id)]
            } else {
                legal.to_vec()
            }
        })
        .collect();
    let len = spaces.len();
    let decode = |genome: &[usize]| -> PlacementMap {
        let mut pm = req.base.clone();
        for (j, &id) in req.candidates.iter().enumerate() {
            pm = pm.with(id, spaces[j][genome[j]]);
        }
        pm
    };
    let random_genome = |rng: &mut hms_stats::rng::Rng| -> Vec<usize> {
        (0..len)
            .map(|j| rng.gen_range(0..spaces[j].len()))
            .collect()
    };
    // Base placement as a genome (gene 0 when its space is not in the
    // alphabet — joint validation decides legality either way).
    let base_genome: Vec<usize> = req
        .candidates
        .iter()
        .enumerate()
        .map(|(j, &id)| {
            spaces[j]
                .iter()
                .position(|&s| s == req.base.space(id))
                .unwrap_or(0)
        })
        .collect();

    let mut population: Vec<Vec<usize>> = vec![base_genome];
    while population.len() < POP {
        population.push(random_genome(&mut rng));
    }
    c.add(&c.enumerate_nanos, t0.elapsed().as_nanos() as u64);

    let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
    // Evaluated pool across all generations, in evaluation order.
    let mut pool: Vec<(f64, Vec<usize>)> = Vec::new();
    let mut ranked: Vec<RankedPlacement> = Vec::new();
    let mut partial = false;
    'generations: for _gen in 0..GENERATIONS {
        c.add(&c.candidates_visited, population.len() as u64);
        let mut fresh: Vec<Vec<usize>> = Vec::new();
        for genome in population.drain(..) {
            if seen.insert(genome.clone()) && decode(&genome).validate(req.arrays, cfg).is_ok() {
                fresh.push(genome);
            }
        }
        let pms: Vec<PlacementMap> = fresh.iter().map(|g| decode(g)).collect();
        c.add(&c.candidates_enumerated, pms.len() as u64);
        let mut done = 0usize;
        for chunk in pms.chunks(BB_BATCH) {
            if !ranked.is_empty() && req.interrupted() {
                partial = true;
                break;
            }
            let evaluated = engine.evaluate_batch(chunk, req.threads)?;
            for (r, genome) in evaluated.iter().zip(&fresh[done..]) {
                pool.push((r.predicted_cycles, genome.clone()));
            }
            done += chunk.len();
            ranked.extend(evaluated);
        }
        if partial {
            break 'generations;
        }

        // Selection: stable sort keeps evaluation order on ties, so the
        // elite set — and every RNG draw below — depends only on the
        // (thread-invariant) predicted cycles.
        pool.sort_by(|a, b| a.0.total_cmp(&b.0));
        let elites: Vec<&Vec<usize>> = pool.iter().take(ELITE).map(|(_, g)| g).collect();
        for _ in 0..POP.saturating_sub(IMMIGRANTS) {
            if elites.is_empty() || len == 0 {
                population.push(random_genome(&mut rng));
                continue;
            }
            let pa = elites[rng.gen_range(0..elites.len())];
            let pb = elites[rng.gen_range(0..elites.len())];
            let mut child: Vec<usize> = (0..len)
                .map(|j| if rng.gen_bool(0.5) { pa[j] } else { pb[j] })
                .collect();
            for (j, gene) in child.iter_mut().enumerate() {
                if rng.gen_bool(1.0 / len as f64) {
                    *gene = rng.gen_range(0..spaces[j].len());
                }
            }
            // Forced point mutation: pure elite clones stall the search.
            let j = rng.gen_range(0..len);
            child[j] = rng.gen_range(0..spaces[j].len());
            population.push(child);
        }
        for _ in 0..IMMIGRANTS {
            population.push(random_genome(&mut rng));
        }
    }

    ranked.sort_by(|a, b| a.predicted_cycles.total_cmp(&b.predicted_cycles));
    let best = ranked.first().map(|r| r.predicted_cycles);
    let mut floor = all_free_floor(engine, req);
    if let Some(b) = best {
        floor = floor.min(b);
    }
    Ok((ranked, partial, gap_from_floor(best, floor)))
}
