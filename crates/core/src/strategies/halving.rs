//! Successive halving over skeleton groups.
//!
//! Candidates that place the same subset of arrays in shared memory
//! share one walk skeleton — one exact rewrite — in the incremental
//! engine. That makes the skeleton group the natural *arm* for a
//! bandit-style budget race: evaluating one more candidate from an arm
//! whose skeleton is already built costs only a delta replay.
//!
//! The strategy enumerates the legal space (respecting the request
//! limit), buckets it by shared set in enumeration order, then runs
//! rungs: every surviving arm advances its cursor by the rung budget,
//! arms are ranked by their best evaluated candidate, and the worse
//! half is retired. The budget doubles each rung, so the surviving
//! arm(s) end up exhaustively evaluated if time allows.
//!
//! The floor behind the reported gap is the minimum lower bound over
//! every enumerated-but-unevaluated candidate (retired arms' tails and
//! deadline-cut work), widened to the all-free floor only when the
//! enumeration itself was truncated by the limit.

use std::time::Instant;

use hms_types::{ArrayId, MemorySpace, PlacementMap};

use crate::engine::Engine;
use crate::search::{enumerate_placements, RankedPlacement, SearchRequest, BB_BATCH};

use super::{gap_from_floor, space_floor};

struct Arm {
    /// Indices into the enumerated space, in enumeration order.
    members: Vec<usize>,
    /// How many of `members` have been evaluated.
    cursor: usize,
    /// Best predicted cycles seen in this arm so far.
    best: f64,
}

pub(crate) fn run(
    engine: &Engine<'_>,
    req: &SearchRequest<'_>,
) -> Result<(Vec<RankedPlacement>, bool, f64), hms_types::HmsError> {
    let t0 = Instant::now();
    let n = req.arrays.len();
    let c = &engine.counters;
    let cfg = &engine.predictor().cfg;
    let space = enumerate_placements(req.arrays, req.base, &req.candidates, cfg, req.limit);
    let truncated = space.len() >= req.limit;
    c.add(&c.candidates_enumerated, space.len() as u64);
    c.add(&c.candidates_visited, space.len() as u64);

    // Bucket by shared-memory set; first-seen order (over the sorted,
    // deduplicated enumeration) keeps arm identity deterministic.
    let mut arms: Vec<(Vec<bool>, Arm)> = Vec::new();
    for (i, pm) in space.iter().enumerate() {
        let key: Vec<bool> = (0..n)
            .map(|j| pm.space(ArrayId(j as u32)) == MemorySpace::Shared)
            .collect();
        match arms.iter_mut().find(|(k, _)| *k == key) {
            Some((_, arm)) => arm.members.push(i),
            None => arms.push((
                key,
                Arm {
                    members: vec![i],
                    cursor: 0,
                    best: f64::INFINITY,
                },
            )),
        }
    }
    let mut arms: Vec<Arm> = arms.into_iter().map(|(_, a)| a).collect();
    c.add(&c.enumerate_nanos, t0.elapsed().as_nanos() as u64);

    let mut evaluated = vec![false; space.len()];
    let mut ranked: Vec<RankedPlacement> = Vec::with_capacity(space.len());
    let mut per_arm = 1usize;
    let mut partial = false;
    'rungs: loop {
        // This rung's work list: the next `per_arm` unevaluated members
        // of each surviving arm, arm-major so every arm gets service
        // even if the deadline lands mid-rung.
        let mut rung: Vec<usize> = Vec::new();
        for arm in &arms {
            let take = arm.members.len().min(arm.cursor + per_arm);
            rung.extend_from_slice(&arm.members[arm.cursor..take]);
        }
        if rung.is_empty() {
            break; // survivors fully evaluated
        }
        let pms: Vec<PlacementMap> = rung.iter().map(|&i| space[i].clone()).collect();
        let mut done = 0usize;
        for chunk in pms.chunks(BB_BATCH) {
            if !ranked.is_empty() && req.interrupted() {
                partial = true;
                break;
            }
            ranked.extend(engine.evaluate_batch(chunk, req.threads)?);
            done += chunk.len();
        }
        // Credit results back to their arms (rung order is arm-major,
        // so a prefix of `rung` maps to per-arm cursor advances).
        for (&idx, r) in rung[..done].iter().zip(&ranked[ranked.len() - done..]) {
            debug_assert_eq!(space[idx], r.placement);
            evaluated[idx] = true;
        }
        let mut offset = 0usize;
        for arm in &mut arms {
            let take = arm.members.len().min(arm.cursor + per_arm) - arm.cursor;
            let served = take.min(done.saturating_sub(offset));
            // A deadline cut can leave later arms unserved (offset past
            // `done`); slicing is only legal for the served prefix.
            if served > 0 {
                let start = ranked.len() - done + offset;
                for r in &ranked[start..start + served] {
                    if r.predicted_cycles < arm.best {
                        arm.best = r.predicted_cycles;
                    }
                }
            }
            arm.cursor += served;
            offset += take;
        }
        if partial {
            break 'rungs;
        }
        if arms.len() > 1 {
            // Rank arms by best-so-far (stable: ties keep arm order)
            // and retire the worse half.
            arms.sort_by(|a, b| a.best.total_cmp(&b.best));
            arms.truncate(arms.len().div_ceil(2));
        }
        per_arm = per_arm.saturating_mul(2);
    }

    ranked.sort_by(|a, b| a.predicted_cycles.total_cmp(&b.predicted_cycles));
    let unevaluated = space
        .iter()
        .enumerate()
        .filter(|&(i, _)| !evaluated[i])
        .map(|(_, pm)| pm);
    let mut floor = space_floor(engine, req, unevaluated, truncated);
    let best = ranked.first().map(|r| r.predicted_cycles);
    if let Some(b) = best {
        floor = floor.min(b);
    }
    Ok((ranked, partial, gap_from_floor(best, floor)))
}
