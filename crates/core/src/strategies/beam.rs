//! Beam search over per-array placement prefixes.
//!
//! The branch-and-bound tree — candidate arrays in request order, each
//! level choosing that array's standalone-legal space — is walked
//! breadth-first, but only the `width` prefixes with the smallest
//! monotone lower bound survive a level. Surviving complete
//! assignments are joint-validated and evaluated exactly, in
//! deterministic `BB_BATCH` chunks.
//!
//! Because every dropped prefix's bound is recorded, the reported gap
//! is sound: the true optimum either survived to evaluation (then
//! `best` is it, or its leaf's bound is in the floor if the deadline
//! cut evaluation short) or lives under a dropped prefix whose bound
//! the floor already contains. With nothing dropped and nothing cut,
//! beam search *was* exhaustive over the legal tree and the gap is 0.

use std::time::Instant;

use hms_types::{MemorySpace, PlacementMap};

use crate::engine::Engine;
use crate::search::{RankedPlacement, SearchRequest, BB_BATCH};

use super::{full_assignment, gap_from_floor};

struct Prefix {
    assignment: Vec<Option<MemorySpace>>,
    pm: PlacementMap,
    lb: f64,
}

pub(crate) fn run(
    engine: &Engine<'_>,
    req: &SearchRequest<'_>,
    width: usize,
) -> Result<(Vec<RankedPlacement>, bool, f64), hms_types::HmsError> {
    let t0 = Instant::now();
    let n = req.arrays.len();
    let c = &engine.counters;
    let width = width.max(1);

    let root = Prefix {
        assignment: super::template(req),
        pm: req.base.clone(),
        lb: 0.0,
    };
    let mut beam: Vec<Prefix> = vec![root];
    // Min lower bound over everything the search will never evaluate:
    // dropped prefixes, limit-truncated leaves, deadline-cut leaves.
    let mut floor = f64::INFINITY;
    for &id in &req.candidates {
        let mut children: Vec<Prefix> = Vec::with_capacity(beam.len() * MemorySpace::ALL.len());
        for prefix in &beam {
            for &space in engine.legal_spaces(id) {
                let mut assignment = prefix.assignment.clone();
                assignment[id.index()] = Some(space);
                let lb = engine.lower_bound(&assignment);
                c.add(&c.candidates_visited, 1);
                children.push(Prefix {
                    assignment,
                    pm: prefix.pm.with(id, space),
                    lb,
                });
            }
        }
        // Stable sort: bound ties keep expansion order, so the beam's
        // contents are independent of anything but the request.
        children.sort_by(|a, b| a.lb.total_cmp(&b.lb));
        for dropped in children.iter().skip(width) {
            floor = floor.min(dropped.lb);
        }
        children.truncate(width);
        beam = children;
    }

    // Joint legality can be stricter than the per-array legality that
    // shaped the tree (e.g. shared capacity): a jointly-illegal leaf
    // contains no legal candidate, so skipping it costs nothing.
    let cfg = &engine.predictor().cfg;
    let mut leaves: Vec<Prefix> = beam
        .into_iter()
        .filter(|p| p.pm.validate(req.arrays, cfg).is_ok())
        .collect();
    for truncated in leaves.iter().skip(req.limit) {
        floor = floor.min(truncated.lb);
    }
    leaves.truncate(req.limit);
    if leaves.is_empty() && req.base.validate(req.arrays, cfg).is_ok() {
        // Every survivor was jointly illegal: fall back to the base
        // placement so the outcome still carries a real prediction.
        leaves.push(Prefix {
            assignment: full_assignment(req.base, n),
            pm: req.base.clone(),
            lb: engine.lower_bound(&full_assignment(req.base, n)),
        });
    }
    c.add(&c.candidates_enumerated, leaves.len() as u64);
    c.add(&c.enumerate_nanos, t0.elapsed().as_nanos() as u64);

    let mut ranked: Vec<RankedPlacement> = Vec::with_capacity(leaves.len());
    let mut partial = false;
    let mut cut_at = leaves.len();
    let pms: Vec<PlacementMap> = leaves.iter().map(|p| p.pm.clone()).collect();
    for (i, chunk) in pms.chunks(BB_BATCH).enumerate() {
        if !ranked.is_empty() && req.interrupted() {
            partial = true;
            cut_at = i * BB_BATCH;
            break;
        }
        ranked.extend(engine.evaluate_batch(chunk, req.threads)?);
    }
    for unevaluated in &leaves[cut_at..] {
        floor = floor.min(unevaluated.lb);
    }
    ranked.sort_by(|a, b| a.predicted_cycles.total_cmp(&b.predicted_cycles));

    let best = ranked.first().map(|r| r.predicted_cycles);
    if let Some(b) = best {
        floor = floor.min(b);
    }
    Ok((ranked, partial, gap_from_floor(best, floor)))
}
